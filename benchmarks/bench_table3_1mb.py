"""E4 — Table 3: mixed-precision deployment under a 1 MB read-only budget,
compared against integer-only INT8 deployments of smaller models."""

from repro.evaluation import experiments, paper_data
from repro.evaluation.tables import render_table


def test_benchmark_table3_one_megabyte(benchmark, record_report):
    rows = benchmark(experiments.table3)

    table_rows = []
    for r in rows:
        key = f"{r.label} {r.method}".replace("MixQ-PC-ICN", "MixQ-PC-ICN")
        paper_key = next((k for k in paper_data.TABLE3 if r.label in k and
                          (("MixQ" in k) == ("MixQ" in r.method))), None)
        paper_top1 = paper_data.TABLE3[paper_key]["top1"] if paper_key else "-"
        table_rows.append([
            r.label, r.method, paper_top1, round(r.top1, 2),
            round(r.ro_mb, 2), round(r.rw_kb, 0), "yes" if r.feasible else "no",
        ])
    report = render_table(
        ["Model", "Method", "paper Top-1", "repro Top-1", "RO (MB)", "RW (kB)", "fits"],
        table_rows,
        title="Table 3 — mixed-precision models under MRO = 1 MB (paper vs reproduction)",
    )
    record_report("table3_1mb", report)

    by_key = {f"{r.label} {r.method}": r for r in rows}
    ours_224 = by_key["MobilenetV1_224_0.5 MixQ-PC-ICN"]
    ours_192 = by_key["MobilenetV1_192_0.5 MixQ-PC-ICN"]
    int8_small = by_key["MobilenetV1_224_0.25 INT8 PL+FB [11]"]
    # The paper's qualitative claims at 1 MB: our mixed models fit the budget
    # and beat the INT8 model small enough to fit a comparable footprint.
    assert ours_224.feasible and ours_224.ro_mb <= 1.0 + 1e-6
    assert ours_192.feasible and ours_192.ro_mb <= 1.0 + 1e-6
    assert ours_224.top1 > int8_small.top1 + 5.0
