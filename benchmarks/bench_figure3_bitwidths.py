"""E5 — Figure 3 (appendix): per-tensor weight/activation bit precision
selected by the memory-driven procedure for every MobileNetV1 config
under the STM32H7 budgets."""

from repro.evaluation import experiments


def _render_policy_ascii(policy) -> str:
    """Compact per-layer bit map, e.g. 'w: 8 8 4 ...  /  a: 8 4 8 ...'."""
    w = " ".join(str(lp.q_w) for lp in policy.layers)
    a = " ".join(str(lp.q_out) for lp in policy.layers)
    return f"    w: {w}\n    a: {a}"


def test_benchmark_figure3_bit_assignments(benchmark, record_report):
    result = benchmark(experiments.figure3)

    lines = ["Figure 3 — per-tensor bit precision under MRO=2MB, MRW=512kB", ""]
    for label in sorted(result.keys()):
        lines.append(label)
        for method_label, policy in result[label].items():
            lines.append(f"  {method_label} (feasible={policy.feasible})")
            lines.append(_render_policy_ascii(policy))
        lines.append("")
    record_report("figure3_bitwidths", "\n".join(lines))

    # Qualitative structure reported in the paper's appendix:
    # the small configurations keep homogeneous 8 bit, the width-1.0 ones
    # cut several weight tensors, and cuts concentrate on the later
    # (heavier) pointwise layers plus the classifier.
    assert result["128_0.25"]["MixQ-PC-ICN"].is_uniform(8)
    big = result["224_1.0"]["MixQ-PC-ICN"]
    cut_layers = [i for i, lp in enumerate(big.layers) if lp.q_w < 8]
    assert len(cut_layers) >= 3
    assert min(cut_layers) > 5
    for per_method in result.values():
        for policy in per_method.values():
            policy.validate()
