"""E8 — per-layer latency breakdown of representative configurations and
the PL-vs-PC kernel overhead (§6: ~20 % from the Z_w subtraction in the
inner loop), plus microbenchmarks of the bit-accurate integer kernels."""

import numpy as np
import pytest

from repro.core.policy import QuantMethod, QuantPolicy
from repro.evaluation.tables import render_table
from repro.inference.kernels import int_conv2d, int_depthwise_conv2d
from repro.mcu.device import STM32H7
from repro.mcu.latency import network_cycles
from repro.models.model_zoo import mobilenet_v1_spec


def test_benchmark_latency_breakdown_192_05(benchmark, record_report):
    spec = mobilenet_v1_spec(192, 0.5)

    def run():
        out = {}
        for label, method in (("MixQ-PL", QuantMethod.PL_ICN), ("MixQ-PC-ICN", QuantMethod.PC_ICN)):
            policy = QuantPolicy.uniform(spec, method=method, bits=8)
            out[label] = network_cycles(spec, policy)
        return out

    breakdowns = benchmark(run)

    pl, pc = breakdowns["MixQ-PL"], breakdowns["MixQ-PC-ICN"]
    rows = []
    for name, c_pl, c_pc in zip(pl.layer_names, pl.per_layer_cycles, pc.per_layer_cycles):
        rows.append([name, round(c_pl / 1e6, 2), round(c_pc / 1e6, 2), round(c_pc / c_pl, 2)])
    rows.append(["TOTAL", round(pl.total_cycles / 1e6, 1), round(pc.total_cycles / 1e6, 1),
                 round(pc.total_cycles / pl.total_cycles, 2)])
    report = render_table(
        ["Layer", "PL Mcycles", "PC Mcycles", "PC/PL"],
        rows,
        title=f"E8 — per-layer cycle breakdown of MobileNetV1 192_0.5 on {STM32H7.name}",
    )
    record_report("latency_breakdown", report)

    overhead = pc.total_cycles / pl.total_cycles
    assert 1.1 < overhead < 1.3  # paper: ~20 %


@pytest.mark.parametrize("w_bits", [8, 4, 2])
def test_benchmark_int_conv_kernel(benchmark, w_bits):
    """Microbenchmark of the bit-accurate integer convolution kernel."""
    rng = np.random.default_rng(0)
    x = rng.integers(0, 256, size=(1, 32, 28, 28))
    w = rng.integers(0, 2 ** w_bits, size=(64, 32, 3, 3))
    z_w = rng.integers(0, 2 ** w_bits, size=64)
    phi = benchmark(int_conv2d, x, w, 0, z_w, 1, 1, 8, w_bits)
    assert phi.shape == (1, 64, 28, 28)


@pytest.mark.parametrize("backend", ["blas", "int64"])
def test_benchmark_int_conv_kernel_backends(benchmark, backend):
    """BLAS fast path vs int64 einsum reference on the same operands."""
    rng = np.random.default_rng(0)
    x = rng.integers(0, 256, size=(1, 32, 28, 28))
    w = rng.integers(0, 256, size=(64, 32, 3, 3))
    z_w = rng.integers(0, 256, size=64)
    phi = benchmark(int_conv2d, x, w, 0, z_w, 1, 1, 8, 8, True, backend)
    assert np.array_equal(phi, int_conv2d(x, w, 0, z_w, 1, 1, 8, 8, backend="int64"))


def test_benchmark_int_depthwise_kernel(benchmark):
    rng = np.random.default_rng(0)
    x = rng.integers(0, 256, size=(1, 64, 28, 28))
    w = rng.integers(0, 16, size=(64, 1, 3, 3))
    phi = benchmark(int_depthwise_conv2d, x, w, 0, 7, 1, 1, 8, 4)
    assert phi.shape == (1, 64, 28, 28)
