"""E1 — Table 1: memory requirements of a quantized convolutional layer.

Regenerates the element counts of the four deployment strategies (PL+FB,
PL+ICN, PC+ICN, PC+Thresholds) for a representative MobileNetV1 layer and
the resulting whole-network read-only footprints, and times the memory
model itself.
"""

from repro.core.policy import QuantMethod
from repro.evaluation import experiments
from repro.evaluation.tables import render_table


def test_benchmark_table1_memory_model(benchmark, record_report):
    result = benchmark(experiments.table1)

    headers = ["Method", "Zx", "Weights", "Zw", "Bq", "M0", "N0", "Zy", "Thr",
               "extra bytes", "network RO (MB)"]
    rows = []
    for method in QuantMethod:
        entry = result["rows"][method.value]
        c = entry["counts"]
        rows.append([
            method.value, c["Zx"], c["Weights"], c["Zw"], c["Bq"], c["M0"], c["N0"],
            c["Zy"], c["Thr"], entry["layer_extra_bytes"],
            entry["network_ro_bytes"] / (1024 * 1024),
        ])
    report = render_table(
        headers, rows,
        title=f"Table 1 — memory requirements of layer {result['layer']} "
              f"({result['spec']}, Q_out = 4)",
    )
    record_report("table1_memory", report)

    # Shape checks mirroring the paper's table.
    pc = result["rows"]["PC+ICN"]["counts"]
    thr = result["rows"]["PC+Thr"]["counts"]
    assert thr["Thr"] == pc["Bq"] * 16
    assert result["rows"]["PL+FB"]["layer_extra_bytes"] < result["rows"]["PC+ICN"]["layer_extra_bytes"]
