"""E6 — Table 4 (appendix): Top-1 accuracy of MixQ-PL vs MixQ-PC-ICN for
all 16 MobileNetV1 configurations under the STM32H7 memory budgets."""

from repro.evaluation import experiments, paper_data
from repro.evaluation.tables import render_table


def test_benchmark_table4_all_configurations(benchmark, record_report):
    result = benchmark(experiments.table4)

    rows = []
    for label in paper_data.TABLE4:
        paper_pl, paper_pc = paper_data.TABLE4[label]
        repro_pl, repro_pc = result[label]
        rows.append([
            label, paper_pl, round(repro_pl, 2), paper_pc, round(repro_pc, 2),
            round(repro_pc - repro_pl, 2),
        ])
    report = render_table(
        ["Config", "paper PL", "repro PL", "paper PC-ICN", "repro PC-ICN", "repro gap"],
        rows,
        title="Table 4 — Top-1 of mixed-precision MobileNetV1 models (paper vs reproduction)",
    )
    record_report("table4_accuracy", report)

    # Shape checks: PC-ICN >= PL everywhere; the ranking of configurations
    # by accuracy is broadly preserved (the most accurate configs in the
    # paper are also the most accurate here).
    for label, (pl, pc) in result.items():
        assert pc >= pl - 1e-9
    top_paper = sorted(paper_data.TABLE4, key=lambda k: -paper_data.TABLE4[k][1])[:4]
    top_repro = sorted(result, key=lambda k: -result[k][1])[:4]
    assert len(set(top_paper) & set(top_repro)) >= 2
