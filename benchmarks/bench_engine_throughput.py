"""E9 — throughput of the compiled inference engine vs. the seed
interpreted int64-einsum path on a MobileNetV1 deployment graph.

Records imgs/sec end to end plus a per-layer latency breakdown, and
asserts both the bit-exactness of the compiled+BLAS outputs against the
int64 reference and the headline speedup of the engine rework.
"""

import time

import numpy as np

from repro.evaluation.tables import render_table
from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec

RESOLUTION = 128
WIDTH = 0.5
BATCH = 8
NUM_CLASSES = 100


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_benchmark_engine_throughput(record_report):
    spec = mobilenet_v1_spec(RESOLUTION, WIDTH, num_classes=NUM_CLASSES)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    x = np.random.default_rng(1).uniform(0, 1, size=(BATCH, 3, RESOLUTION, RESOLUTION))
    plan = net.compile()

    # Bit-exactness of the fast path against the seed int64 reference.
    ref_logits = net.forward(x)
    fast_logits = plan.run(x)
    assert np.array_equal(ref_logits, fast_logits), "compiled engine diverged from int64 reference"
    assert np.array_equal(fast_logits, plan.run_batched(x, batch_size=3))

    t_seed = _best_of(lambda: net.forward(x))
    t_plan = _best_of(lambda: plan.run(x))
    speedup = t_seed / t_plan

    # Per-layer latency breakdown on the propagated intermediate codes.
    rows = []
    codes = plan.quantize_input(x)
    infos = {i.name: i for i in plan.layer_info()}
    for compiled_layer, ref_layer in zip(plan.layers, net.conv_layers):
        t_l_seed = _best_of(lambda: ref_layer.forward(codes))
        t_l_plan = _best_of(lambda: compiled_layer(codes.copy()))
        info = infos[compiled_layer.name]
        rows.append([
            compiled_layer.name,
            compiled_layer.kind,
            f"{info.backend}/{info.gemm_dtype}",
            round(t_l_seed * 1e3, 2),
            round(t_l_plan * 1e3, 2),
            round(t_l_seed / t_l_plan, 1),
        ])
        codes = compiled_layer(codes)
    rows.append([
        "TOTAL", "", "",
        round(t_seed * 1e3, 2), round(t_plan * 1e3, 2), round(speedup, 1),
    ])

    report = render_table(
        ["Layer", "Kind", "Dispatch", "Seed ms", "Compiled ms", "Speedup"],
        rows,
        title=(
            f"E9 — MobileNetV1 {RESOLUTION}_{WIDTH} batch={BATCH}: "
            f"{BATCH / t_seed:.1f} -> {BATCH / t_plan:.1f} imgs/sec "
            f"({speedup:.1f}x, bit-exact)"
        ),
    )
    record_report("engine_throughput", report)

    assert speedup >= 5.0, f"compiled engine speedup {speedup:.2f}x below the 5x target"


def test_benchmark_batched_sweep_throughput(record_report):
    """Streaming a sweep through run_batched sustains the compiled rate."""
    spec = mobilenet_v1_spec(96, 0.25, num_classes=NUM_CLASSES)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    plan = net.compile()
    sweep = np.random.default_rng(2).uniform(0, 1, size=(64, 3, 96, 96))

    t_sweep = _best_of(lambda: plan.run_batched(sweep, batch_size=8), reps=2)
    rate = sweep.shape[0] / t_sweep
    report = render_table(
        ["Sweep images", "Tile", "Seconds", "imgs/sec"],
        [[sweep.shape[0], 8, round(t_sweep, 3), round(rate, 1)]],
        title="E9b — batched evaluation sweep through the compiled plan",
    )
    record_report("engine_sweep_throughput", report)
    assert rate > 0
