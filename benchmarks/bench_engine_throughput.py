"""E9 — throughput of the compiled inference engine vs. the seed
interpreted int64-einsum path on a MobileNetV1 deployment graph.

Three measurements:

* E9  — end-to-end + per-layer latency of the arena/auto-dispatch plan
  against both the interpreted seed and the PR-1 im2col compiled plan,
  asserting bit-exactness and the headline speedup;
* E9a — the depthwise-dominated regime (the paper's flagship 224_1.0
  geometry, where the kh*kw-fold im2col copy blows the cache): the fused
  stencil layers must beat the im2col plan >= 1.5x on those layers;
* E9b — a streamed ``run_batched`` sweep whose measured peak allocation
  must stay inside the compile-time activation-arena plan reported by
  ``ExecutionPlan.describe()``.
"""

import time
import tracemalloc

import numpy as np

from repro.evaluation.tables import render_table
from repro.inference.kernels import depthwise_prefers_stencil
from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec

RESOLUTION = 128
WIDTH = 0.5
BATCH = 8
NUM_CLASSES = 100


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def test_benchmark_engine_throughput(record_report):
    spec = mobilenet_v1_spec(RESOLUTION, WIDTH, num_classes=NUM_CLASSES)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    x = np.random.default_rng(1).uniform(0, 1, size=(BATCH, 3, RESOLUTION, RESOLUTION))
    plan = net.compile(input_hw=(RESOLUTION, RESOLUTION))
    plan_pr1 = net.compile(use_arena=False, fused_depthwise=False)  # PR-1 engine

    # Bit-exactness of both compiled generations vs. the int64 reference.
    ref_logits = net.forward(x)
    fast_logits = plan.run(x)
    assert np.array_equal(ref_logits, fast_logits), "compiled engine diverged from int64 reference"
    assert np.array_equal(ref_logits, plan_pr1.run(x))
    assert np.array_equal(fast_logits, plan.run_batched(x, batch_size=3))

    t_seed = _best_of(lambda: net.forward(x))
    t_plan = _best_of(lambda: plan.run(x))
    t_pr1 = _best_of(lambda: plan_pr1.run(x))
    speedup = t_seed / t_plan

    # Per-layer latency on the propagated intermediate codes: seed vs.
    # PR-1 im2col plan vs. arena/auto plan.
    rows = []
    codes = plan.quantize_input(x)
    arena = plan.arena_for((RESOLUTION, RESOLUTION))
    arena.ensure(BATCH)
    infos = {i.name: i for i in plan.layer_info()}
    for new_layer, pr1_layer, ref_layer in zip(plan.layers, plan_pr1.layers, net.conv_layers):
        t_l_seed = _best_of(lambda: ref_layer.forward(codes))
        t_l_pr1 = _best_of(lambda: pr1_layer(codes.copy()))
        t_l_new = _best_of(lambda: new_layer(codes, arena=arena, slot=0))
        info = infos[new_layer.name]
        dispatch = f"{info.backend}/{info.gemm_dtype}"
        if info.dw_mode:
            dispatch += f" dw:{info.dw_mode}"
        rows.append([
            new_layer.name,
            new_layer.kind,
            dispatch,
            round(t_l_seed * 1e3, 2),
            round(t_l_pr1 * 1e3, 2),
            round(t_l_new * 1e3, 2),
            round(t_l_seed / t_l_new, 1),
        ])
        codes = pr1_layer(codes)  # propagate via owned (non-arena) arrays
    rows.append([
        "TOTAL", "", "",
        round(t_seed * 1e3, 2), round(t_pr1 * 1e3, 2), round(t_plan * 1e3, 2),
        round(speedup, 1),
    ])

    report = render_table(
        ["Layer", "Kind", "Dispatch", "Seed ms", "PR-1 ms", "Arena ms", "Speedup"],
        rows,
        title=(
            f"E9 — MobileNetV1 {RESOLUTION}_{WIDTH} batch={BATCH}: "
            f"{BATCH / t_seed:.1f} -> {BATCH / t_plan:.1f} imgs/sec "
            f"({speedup:.1f}x vs seed, bit-exact; arena "
            f"{arena.planned_bytes(BATCH)} B planned)"
        ),
    )
    record_report("engine_throughput", report)

    assert speedup >= 5.0, f"compiled engine speedup {speedup:.2f}x below the 5x target"
    # The arena/auto plan must not regress the PR-1 engine end to end.
    # Generous headroom: best-of-3 on a shared machine jitters ~10-20%,
    # and this guard is for gross regressions, not single-digit drift.
    assert t_plan <= 1.3 * t_pr1, (
        f"arena plan {t_plan * 1e3:.1f} ms regressed vs PR-1 {t_pr1 * 1e3:.1f} ms"
    )


def test_benchmark_depthwise_fused_speedup(record_report):
    """E9a — depthwise-dominated regime (flagship 224_1.0 geometry).

    At this scale a depthwise layer's im2col column tensor is tens to
    hundreds of MB — far past cache — which is exactly the "depthwise
    layers are memory-bound" headroom the roadmap records.  The auto
    dispatch routes those layers to the fused stencil; they must beat
    the PR-1 im2col path >= 1.5x in aggregate, bit-exactly.
    """
    res, batch = 224, 6
    spec = mobilenet_v1_spec(res, 1.0, num_classes=NUM_CLASSES)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    x = np.random.default_rng(1).uniform(0, 1, size=(batch, 3, res, res))
    plan = net.compile(input_hw=(res, res))
    plan_pr1 = net.compile(use_arena=False, fused_depthwise=False)
    assert np.array_equal(plan.run(x), plan_pr1.run(x)), "fused/auto plan diverged"

    rows = []
    codes = plan.quantize_input(x)
    arena = plan.arena_for((res, res))
    arena.ensure(batch)
    t_stencil_new = t_stencil_pr1 = 0.0
    stencil_layers = 0
    for new_layer, pr1_layer in zip(plan.layers, plan_pr1.layers):
        if new_layer.kind == "dw":
            n, c, h, w = codes.shape
            oh = (h + 2 * new_layer.padding - new_layer.kh) // new_layer.stride + 1
            fused = depthwise_prefers_stencil(
                n, c, new_layer.kh, new_layer.kw, oh, oh,
                new_layer.gemm_itemsize, stride=new_layer.stride,
            )
            t_l_pr1 = _best_of(lambda: pr1_layer(codes))
            t_l_new = _best_of(lambda: new_layer(codes, arena=arena, slot=0))
            if fused:
                stencil_layers += 1
                t_stencil_new += t_l_new
                t_stencil_pr1 += t_l_pr1
            rows.append([
                new_layer.name,
                "stencil" if fused else "im2col",
                round(t_l_pr1 * 1e3, 2),
                round(t_l_new * 1e3, 2),
                round(t_l_pr1 / t_l_new, 2),
            ])
        codes = new_layer(codes)  # propagate without the arena (owned arrays)
    dw_speedup = t_stencil_pr1 / t_stencil_new

    report = render_table(
        ["Layer", "Auto path", "PR-1 im2col ms", "Arena/auto ms", "Speedup"],
        rows + [["STENCIL TOTAL", f"{stencil_layers} layers",
                 round(t_stencil_pr1 * 1e3, 2), round(t_stencil_new * 1e3, 2),
                 round(dw_speedup, 2)]],
        title=(
            f"E9a — MobileNetV1 {res}_1.0 batch={batch} depthwise layers: "
            f"fused stencil {dw_speedup:.2f}x over im2col on the "
            f"memory-bound layers (bit-exact)"
        ),
    )
    record_report("engine_depthwise_fused", report)

    assert stencil_layers >= 2, "auto dispatch engaged on too few dw layers"
    assert dw_speedup >= 1.5, (
        f"fused depthwise speedup {dw_speedup:.2f}x below the 1.5x target"
    )


def test_benchmark_batched_sweep_throughput(record_report):
    """E9b — streaming a sweep through run_batched sustains the compiled
    rate inside the compile-time activation-memory plan."""
    res = 96
    spec = mobilenet_v1_spec(res, 0.25, num_classes=NUM_CLASSES)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    plan = net.compile(input_hw=(res, res))
    sweep = np.random.default_rng(2).uniform(0, 1, size=(64, 3, res, res))

    t_sweep = _best_of(lambda: plan.run_batched(sweep, batch_size=8), reps=2)
    rate = sweep.shape[0] / t_sweep

    # Two-part bound (the whole point of the ping-pong scheme: batch >>
    # RAM never exceeds the planned peak).  The slabs themselves must be
    # exactly the compile-time plan, and a warm steady-state sweep must
    # not allocate more new memory on top of them than that plan.
    arena = plan.arena_for((res, res))
    planned = arena.planned_bytes(8)
    assert arena.allocated_bytes == planned, "arena slabs diverged from the plan"
    tracemalloc.start()
    plan.run_batched(sweep, batch_size=8)
    _, measured_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert measured_peak <= planned, (
        f"run_batched peak {measured_peak} B exceeded planned arena {planned} B"
    )

    report = render_table(
        ["Sweep images", "Tile", "Seconds", "imgs/sec", "Planned arena B", "Measured peak B"],
        [[sweep.shape[0], 8, round(t_sweep, 3), round(rate, 1), planned, measured_peak]],
        title="E9b — batched evaluation sweep through the arena-backed plan",
    )
    record_report("engine_sweep_throughput", report)
    assert rate > 0
