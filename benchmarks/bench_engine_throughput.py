"""E9 — throughput of the compiled inference engine vs. the seed
interpreted int64-einsum path on a MobileNetV1 deployment graph.

Four measurements:

* E9  — end-to-end + per-layer latency of the narrow-native arena plan
  against both the interpreted seed and the PR-1 im2col compiled plan,
  asserting bit-exactness and the headline speedup;
* E9a — the depthwise-dominated regime (the paper's flagship 224_1.0
  geometry, where the kh*kw-fold im2col copy blows the cache): the fused
  stencil layers must beat the im2col plan on the memory-bound layers,
  stride-1 and (new) stride-2;
* E9b — a streamed ``run_batched`` sweep whose measured peak allocation
  must stay inside the compile-time activation-arena plan reported by
  ``ExecutionPlan.describe()``;
* E9c — narrow-dtype-native execution vs. the legacy wide (int64-code,
  a-priori-dispatch) pipeline on a bandwidth-bound zoo config: container
  codes + chunked requant + refined-bound sgemm must deliver >= 1.3x
  end-to-end with a smaller planned arena and child-process peak RSS.

Run as a script for the CI smoke lane::

    python benchmarks/bench_engine_throughput.py --quick

which sweeps reduced-size parity checks (narrow / wide / int32 plans vs.
the interpreted int64 reference) and exits non-zero on any mismatch.
"""

import argparse
import sys
import time
import tracemalloc

import numpy as np

from repro.evaluation.tables import render_table
from repro.inference.kernels import depthwise_prefers_stencil
from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import CompileOptions, Session, SessionOptions

RESOLUTION = 128
WIDTH = 0.5
BATCH = 8
NUM_CLASSES = 100

# E9c: bandwidth-bound config where the narrow pipeline pays most (the
# deep 512/1024-channel pointwise stack dominated by GEMM + requant
# traffic).
NARROW_RES = 128
NARROW_WIDTH = 1.0
NARROW_BATCH = 8


def _best_of(fn, reps: int = 3) -> float:
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _pr1_compile(net):
    """The PR-1 engine: per-call im2col allocation, int64 codes,
    a-priori dispatch."""
    return net.compile(CompileOptions(use_arena=False, fused_depthwise=False,
                                      narrow=False, refined_bound=False))


def _pr2_compile(net, input_hw=None):
    """The PR-2 engine: arena + auto stencil, but int64 codes, in-place
    int64 requant and a-priori accumulator tiers."""
    return net.compile(CompileOptions(narrow=False, refined_bound=False,
                                      input_hw=input_hw))


def test_benchmark_engine_throughput(record_report):
    spec = mobilenet_v1_spec(RESOLUTION, WIDTH, num_classes=NUM_CLASSES)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    x = np.random.default_rng(1).uniform(0, 1, size=(BATCH, 3, RESOLUTION, RESOLUTION))
    plan = net.compile(CompileOptions(input_hw=(RESOLUTION, RESOLUTION)))
    plan_pr1 = _pr1_compile(net)

    # Bit-exactness of both compiled generations vs. the int64 reference.
    ref_logits = net.forward(x)
    fast_logits = plan.run(x)
    assert np.array_equal(ref_logits, fast_logits), "compiled engine diverged from int64 reference"
    assert np.array_equal(ref_logits, plan_pr1.run(x))
    assert np.array_equal(fast_logits, plan.run_batched(x, batch_size=3))

    t_seed = _best_of(lambda: net.forward(x))
    t_plan = _best_of(lambda: plan.run(x))
    t_pr1 = _best_of(lambda: plan_pr1.run(x))
    speedup = t_seed / t_plan

    # Per-layer latency on the propagated intermediate codes: seed vs.
    # PR-1 im2col plan vs. narrow arena/auto plan.
    rows = []
    codes = plan.quantize_input(x)
    codes_pr1 = plan_pr1.quantize_input(x)
    arena = plan.arena_for((RESOLUTION, RESOLUTION))
    arena.ensure(BATCH)
    infos = {i.name: i for i in plan.layer_info()}
    for i, (new_layer, pr1_layer, ref_layer) in enumerate(
            zip(plan.layers, plan_pr1.layers, net.conv_layers)):
        # Use the layer's true ping-pong slot: code slots are sized per
        # parity, so slot 0 need not fit an odd-index layer's output.
        t_l_seed = _best_of(lambda: ref_layer.forward(codes_pr1))
        t_l_pr1 = _best_of(lambda: pr1_layer(codes_pr1.copy()))
        t_l_new = _best_of(lambda: new_layer(codes, arena=arena, slot=i % 2))
        info = infos[new_layer.name]
        dispatch = f"{info.backend}/{info.gemm_dtype}->{info.container}"
        if info.dw_mode:
            dispatch += f" dw:{info.dw_mode}"
        rows.append([
            new_layer.name,
            new_layer.kind,
            dispatch,
            round(t_l_seed * 1e3, 2),
            round(t_l_pr1 * 1e3, 2),
            round(t_l_new * 1e3, 2),
            round(t_l_seed / t_l_new, 1),
        ])
        codes = new_layer(codes)      # propagate via owned (non-arena) arrays
        codes_pr1 = pr1_layer(codes_pr1)
    rows.append([
        "TOTAL", "", "",
        round(t_seed * 1e3, 2), round(t_pr1 * 1e3, 2), round(t_plan * 1e3, 2),
        round(speedup, 1),
    ])

    report = render_table(
        ["Layer", "Kind", "Dispatch", "Seed ms", "PR-1 ms", "Narrow ms", "Speedup"],
        rows,
        title=(
            f"E9 — MobileNetV1 {RESOLUTION}_{WIDTH} batch={BATCH}: "
            f"{BATCH / t_seed:.1f} -> {BATCH / t_plan:.1f} imgs/sec "
            f"({speedup:.1f}x vs seed, bit-exact; arena "
            f"{arena.planned_bytes(BATCH)} B planned, code pair "
            f"{arena.physical_code_bytes(1)} B physical == Eq.7 peak)"
        ),
    )
    record_report("engine_throughput", report)

    assert speedup >= 5.0, f"compiled engine speedup {speedup:.2f}x below the 5x target"
    # The narrow plan must not regress the PR-1 engine end to end.
    # Generous headroom: best-of-3 on a shared machine jitters ~10-20%,
    # and this guard is for gross regressions, not single-digit drift.
    assert t_plan <= 1.3 * t_pr1, (
        f"narrow plan {t_plan * 1e3:.1f} ms regressed vs PR-1 {t_pr1 * 1e3:.1f} ms"
    )


def test_benchmark_depthwise_fused_speedup(record_report):
    """E9a — depthwise-dominated regime (flagship 224_1.0 geometry).

    At this scale a depthwise layer's im2col column tensor is tens to
    hundreds of MB — far past cache — which is exactly the "depthwise
    layers are memory-bound" headroom the roadmap records.  The auto
    dispatch routes those layers to the fused stencil (stride-1, and
    stride-2 since the narrow-native refactor); stride-1 stencils must
    beat the PR-1 im2col path >= 1.5x in aggregate, stride-2 >= 1.1x,
    bit-exactly.
    """
    res, batch = 224, 6
    spec = mobilenet_v1_spec(res, 1.0, num_classes=NUM_CLASSES)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    x = np.random.default_rng(1).uniform(0, 1, size=(batch, 3, res, res))
    plan = net.compile(CompileOptions(input_hw=(res, res)))
    plan_pr1 = _pr1_compile(net)
    assert np.array_equal(plan.run(x), plan_pr1.run(x)), "fused/auto plan diverged"

    rows = []
    codes = plan.quantize_input(x)
    arena = plan.arena_for((res, res))
    arena.ensure(batch)
    totals = {1: [0.0, 0.0, 0], 2: [0.0, 0.0, 0]}  # stride -> [new, pr1, layers]
    for i, (new_layer, pr1_layer) in enumerate(zip(plan.layers, plan_pr1.layers)):
        if new_layer.kind == "dw":
            n, c, h, w = codes.shape
            oh = (h + 2 * new_layer.padding - new_layer.kh) // new_layer.stride + 1
            fused = depthwise_prefers_stencil(
                n, c, new_layer.kh, new_layer.kw, oh, oh,
                new_layer.gemm_itemsize, stride=new_layer.stride,
            )
            t_l_pr1 = _best_of(lambda: pr1_layer(codes))
            t_l_new = _best_of(lambda: new_layer(codes, arena=arena, slot=i % 2))
            if fused:
                agg = totals[new_layer.stride]
                agg[0] += t_l_new
                agg[1] += t_l_pr1
                agg[2] += 1
            rows.append([
                new_layer.name,
                f"s{new_layer.stride} " + ("stencil" if fused else "im2col"),
                round(t_l_pr1 * 1e3, 2),
                round(t_l_new * 1e3, 2),
                round(t_l_pr1 / t_l_new, 2),
            ])
        codes = new_layer(codes)  # propagate without the arena (owned arrays)
    s1_speedup = totals[1][1] / totals[1][0]
    s2_speedup = totals[2][1] / totals[2][0]

    report = render_table(
        ["Layer", "Auto path", "PR-1 im2col ms", "Narrow ms", "Speedup"],
        rows + [
            ["STENCIL s1 TOTAL", f"{totals[1][2]} layers",
             round(totals[1][1] * 1e3, 2), round(totals[1][0] * 1e3, 2),
             round(s1_speedup, 2)],
            ["STENCIL s2 TOTAL", f"{totals[2][2]} layers",
             round(totals[2][1] * 1e3, 2), round(totals[2][0] * 1e3, 2),
             round(s2_speedup, 2)],
        ],
        title=(
            f"E9a — MobileNetV1 {res}_1.0 batch={batch} depthwise layers: "
            f"fused stencil {s1_speedup:.2f}x (s1) / {s2_speedup:.2f}x (s2) "
            f"over im2col on the memory-bound layers (bit-exact)"
        ),
    )
    record_report("engine_depthwise_fused", report)

    assert totals[1][2] >= 2, "auto dispatch engaged on too few s1 dw layers"
    assert totals[2][2] >= 1, "auto dispatch engaged on no s2 dw layer"
    assert s1_speedup >= 1.5, (
        f"fused depthwise s1 speedup {s1_speedup:.2f}x below the 1.5x target"
    )
    assert s2_speedup >= 1.1, (
        f"fused depthwise s2 speedup {s2_speedup:.2f}x below the 1.1x target"
    )


def test_benchmark_batched_sweep_throughput(record_report):
    """E9b — streaming a sweep through the Session front door sustains
    the compiled rate inside the compile-time activation-memory plan."""
    res = 96
    spec = mobilenet_v1_spec(res, 0.25, num_classes=NUM_CLASSES)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    session = Session(net, options=SessionOptions(batch_size=8, input_hw=(res, res)))
    plan = session.plan
    sweep = np.random.default_rng(2).uniform(0, 1, size=(64, 3, res, res))

    t_sweep = _best_of(lambda: session.run_batched(sweep), reps=2)
    rate = sweep.shape[0] / t_sweep

    # Two-part bound (the whole point of the ping-pong scheme: batch >>
    # RAM never exceeds the planned peak).  The slabs themselves must be
    # exactly the compile-time plan, and a warm steady-state sweep must
    # not allocate more new memory on top of them than that plan.
    arena = plan.arena_for((res, res))
    planned = arena.planned_bytes(8)
    assert arena.allocated_bytes == planned, "arena slabs diverged from the plan"
    tracemalloc.start()
    session.run_batched(sweep)
    _, measured_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert measured_peak <= planned, (
        f"run_batched peak {measured_peak} B exceeded planned arena {planned} B"
    )

    report = render_table(
        ["Sweep images", "Tile", "Seconds", "imgs/sec", "Planned arena B", "Measured peak B"],
        [[sweep.shape[0], 8, round(t_sweep, 3), round(rate, 1), planned, measured_peak]],
        title="E9b — batched evaluation sweep through the arena-backed plan",
    )
    record_report("engine_sweep_throughput", report)
    assert rate > 0


_RSS_CHILD = """
import numpy as np
from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import CompileOptions

narrow = {narrow}
spec = mobilenet_v1_spec({res}, {width}, num_classes={classes})
net = integer_network_from_spec(spec, np.random.default_rng(0))
x = np.random.default_rng(1).uniform(0, 1, size=({sweep}, 3, {res}, {res}))
if narrow:
    plan = net.compile(CompileOptions(input_hw=({res}, {res})))
else:
    plan = net.compile(CompileOptions(narrow=False, refined_bound=False,
                                      input_hw=({res}, {res})))
plan.run_batched(x, batch_size={batch})
# VmHWM (not ru_maxrss): the rusage high-water mark is inherited across
# fork+exec on Linux, so a child of a large parent would report the
# parent's peak; /proc VmHWM is reset when the new image is exec'd.
with open("/proc/self/status") as f:
    for line in f:
        if line.startswith("VmHWM:"):
            print(int(line.split()[1]))
            break
"""


def _measure_peak_rss(narrow: bool) -> int:
    """Peak RSS (kB) of a fresh interpreter running one engine flavour."""
    import os
    import subprocess

    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
    code = _RSS_CHILD.format(
        narrow=narrow, res=NARROW_RES, width=NARROW_WIDTH,
        classes=NUM_CLASSES, sweep=2 * NARROW_BATCH, batch=NARROW_BATCH,
    )
    out = subprocess.run(
        [sys.executable, "-c", code], env=env, check=True,
        capture_output=True, text=True,
    )
    return int(out.stdout.strip().splitlines()[-1])


def test_benchmark_narrow_vs_wide(record_report):
    """E9c — narrow-dtype-native execution vs. the legacy wide pipeline.

    Same network, same arena/stencil machinery; the only differences are
    what this refactor added: container-width (uint8) code slabs, the
    chunked accumulator->container requantization, and the weight-data
    refined accumulator bound (sgemm on the wide pointwise stack).  On
    the bandwidth-bound 128_1.0 geometry the narrow plan must win
    >= 1.3x end to end, bit-exactly, with a smaller planned arena and a
    lower child-process peak RSS.
    """
    spec = mobilenet_v1_spec(NARROW_RES, NARROW_WIDTH, num_classes=NUM_CLASSES)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    x = np.random.default_rng(1).uniform(
        0, 1, size=(NARROW_BATCH, 3, NARROW_RES, NARROW_RES)
    )
    narrow = net.compile(CompileOptions(input_hw=(NARROW_RES, NARROW_RES)))
    wide = _pr2_compile(net, input_hw=(NARROW_RES, NARROW_RES))
    assert np.array_equal(narrow.run(x), wide.run(x)), "narrow plan diverged from wide"

    t_narrow = _best_of(lambda: narrow.run(x), reps=5)
    t_wide = _best_of(lambda: wide.run(x), reps=5)
    speedup = t_wide / t_narrow

    arena_n = narrow.arena_for((NARROW_RES, NARROW_RES))
    arena_w = wide.arena_for((NARROW_RES, NARROW_RES))
    rss_n = _measure_peak_rss(narrow=True)
    rss_w = _measure_peak_rss(narrow=False)

    f32_promoted = sum(
        1 for i in narrow.layer_info() if i.gemm_dtype == "float32" and i.k_reduction > 257
    )
    report = render_table(
        ["Pipeline", "e2e ms", "imgs/sec", "Planned arena B", "Code pair B", "Peak RSS kB"],
        [
            ["wide (PR-2: int64 codes, a-priori tiers)",
             round(t_wide * 1e3, 1), round(NARROW_BATCH / t_wide, 1),
             arena_w.planned_bytes(NARROW_BATCH),
             arena_w.physical_code_bytes(1), rss_w],
            ["narrow (uint8 codes, chunked requant, refined sgemm)",
             round(t_narrow * 1e3, 1), round(NARROW_BATCH / t_narrow, 1),
             arena_n.planned_bytes(NARROW_BATCH),
             arena_n.physical_code_bytes(1), rss_n],
        ],
        title=(
            f"E9c — MobileNetV1 {NARROW_RES}_{NARROW_WIDTH} batch={NARROW_BATCH}: "
            f"narrow-native {speedup:.2f}x over the wide pipeline "
            f"({f32_promoted} wide-k layers promoted to sgemm by the refined "
            f"bound; code pair {arena_w.physical_code_bytes(1)} -> "
            f"{arena_n.physical_code_bytes(1)} B == Eq.7 peak; bit-exact)"
        ),
    )
    record_report("engine_narrow_native", report)

    assert arena_n.physical_code_bytes(1) * 8 == arena_w.physical_code_bytes(1)
    assert arena_n.planned_bytes(NARROW_BATCH) < arena_w.planned_bytes(NARROW_BATCH)
    assert rss_n < rss_w, f"narrow RSS {rss_n} kB not below wide {rss_w} kB"
    # Checked-in results record the measured ~1.3-1.4x; the assert keeps
    # ~10% headroom for shared-machine jitter.
    assert speedup >= 1.2, (
        f"narrow-native speedup {speedup:.2f}x below target on the "
        f"bandwidth-bound config"
    )


# ----------------------------------------------------------------------
# CI smoke lane: `python benchmarks/bench_engine_throughput.py --quick`
# ----------------------------------------------------------------------
def _quick_parity_sweep() -> None:
    """Reduced-size bit-exactness sweep across engine flavours.

    Runs in seconds; any parity mismatch raises (non-zero exit), so perf
    PRs cannot silently break the bit-exactness contract the benchmarks
    rely on.
    """
    configs = [(32, 0.25, 8), (32, 0.5, 8), (64, 1.0, 8), (32, 0.25, 4), (32, 0.25, 2)]
    for res, width, bits in configs:
        spec = mobilenet_v1_spec(res, width, num_classes=10)
        net = integer_network_from_spec(
            spec, np.random.default_rng(res + int(width * 10) + bits),
            act_bits=bits, w_bits=bits,
        )
        x = np.random.default_rng(1).uniform(0, 1, size=(3, 3, res, res))
        ref = net.forward(x)
        flavours = {
            "narrow": net.compile(),
            "wide": _pr2_compile(net),
            "pr1": _pr1_compile(net),
            "int32": net.compile(CompileOptions(backend="int32")),
            "int64": net.compile(CompileOptions(backend="int64")),
            "stencil": net.compile(CompileOptions(fused_depthwise=True)),
        }
        for name, plan in flavours.items():
            got = plan.run(x)
            if not np.array_equal(ref, got):
                raise AssertionError(
                    f"{res}_{width} @ {bits}-bit: {name} plan diverged from "
                    f"the interpreted int64 reference"
                )
        batched = flavours["narrow"].run_batched(x, batch_size=2)
        if not np.array_equal(ref, batched):
            raise AssertionError(f"{res}_{width} @ {bits}-bit: run_batched diverged")
        # Session-artifact round trip: save -> load -> serve must stay
        # bit-identical with no reference to the original network.
        import tempfile

        with tempfile.TemporaryDirectory() as tmp:
            Session(net).save(tmp + "/artifact")
            if not np.array_equal(ref, Session.load(tmp + "/artifact").run(x)):
                raise AssertionError(
                    f"{res}_{width} @ {bits}-bit: artifact round trip diverged"
                )
        print(f"  parity ok: {res}_{width} @ {bits}-bit "
              f"({len(flavours)} engine flavours + artifact round trip, bit-exact)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="fast parity-only sweep (CI smoke job); no timing assertions",
    )
    args = parser.parse_args(argv)
    if args.quick:
        print("E9 quick parity sweep (narrow/wide/int32/int64/stencil)...")
        _quick_parity_sweep()
        print("OK — all engine flavours bit-exact against the reference")
        return 0
    # Full benchmark run without pytest: reuse the pytest entry points
    # with a local report writer.
    from pathlib import Path

    results = Path(__file__).parent / "results"
    results.mkdir(exist_ok=True)

    def record(name, text):
        path = results / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    test_benchmark_engine_throughput(record)
    test_benchmark_depthwise_fused_speedup(record)
    test_benchmark_batched_sweep_throughput(record)
    test_benchmark_narrow_vs_wide(record)
    return 0


if __name__ == "__main__":
    sys.exit(main())
