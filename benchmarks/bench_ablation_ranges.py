"""Ablation: weight-range estimators (min/max vs percentile vs MSE vs KL)
at 8/4/2 bit on MobileNet-like weight tensors, measured as quantization
SNR.  The paper uses min/max per channel; this bench quantifies how much
the more elaborate estimators of its related work ([18]) change the
picture once per-channel ranges are available."""

import numpy as np

from repro.core.range_estimators import RANGE_ESTIMATORS, quantization_snr_db
from repro.evaluation.tables import render_table


def _mobilenet_like_weights(rng, c_out=64, c_in=64):
    """Per-channel heterogeneous weights with occasional outliers."""
    scales = rng.uniform(0.02, 0.6, size=(c_out, 1, 1, 1))
    w = rng.normal(0, 1.0, size=(c_out, c_in, 1, 1)) * scales
    w.reshape(-1)[rng.integers(0, w.size, size=16)] *= 6.0
    return w


def test_benchmark_range_estimator_ablation(benchmark, record_report):
    rng = np.random.default_rng(3)
    w = _mobilenet_like_weights(rng)

    def run():
        out = {}
        for bits in (8, 4, 2):
            for name, estimator in RANGE_ESTIMATORS.items():
                out[(bits, name)] = quantization_snr_db(w.reshape(-1), bits, estimator)
        return out

    snrs = benchmark(run)

    rows = []
    for bits in (8, 4, 2):
        row = [bits] + [round(snrs[(bits, name)], 1) for name in RANGE_ESTIMATORS]
        rows.append(row)
    report = render_table(
        ["bits"] + list(RANGE_ESTIMATORS), rows,
        title="Ablation — per-tensor quantization SNR (dB) by range estimator",
    )
    record_report("ablation_range_estimators", report)

    # At very low precision clipping-based estimators beat plain min/max on
    # outlier-heavy tensors; at 8 bit everything is comfortably accurate.
    assert snrs[(2, "mse")] >= snrs[(2, "minmax")]
    assert snrs[(8, "minmax")] > 25.0
