"""Ablation benches for the design choices called out in DESIGN.md §5:

* the delta margin / smallest-index tie-break of Algorithm 2 versus a pure
  greedy largest-layer rule;
* the cost of the memory-driven search itself across the whole family;
* the M0 mantissa width (INT32 vs INT16) of the ICN fixed-point
  decomposition.
"""

import numpy as np

from repro.core.icn import mantissa_to_float, quantize_multiplier
from repro.core.memory_model import MemoryModel
from repro.core.mixed_precision import search_mixed_precision
from repro.core.policy import QuantMethod
from repro.evaluation.accuracy_model import AccuracyModel
from repro.evaluation.tables import render_table
from repro.mcu.device import KB, MB
from repro.models.model_zoo import all_mobilenet_configs, mobilenet_v1_spec


def test_benchmark_search_all_configs(benchmark):
    """Time of the full memory-driven search over the 16-config family."""

    def run():
        return [
            search_mixed_precision(spec, 2 * MB, 512 * KB, method=QuantMethod.PC_ICN)
            for spec in all_mobilenet_configs()
        ]

    policies = benchmark(run)
    assert len(policies) == 16 and all(p.feasible for p in policies)


def test_benchmark_ablation_delta_margin(benchmark, record_report):
    """Delta-margin ablation: compare the policies (and predicted accuracy)
    produced by delta = 0 (pure greedy), the default 0.05, and 0.3."""
    spec = mobilenet_v1_spec(224, 1.0)
    acc_model = AccuracyModel()

    def run():
        out = {}
        for delta in (0.0, 0.05, 0.3):
            policy = search_mixed_precision(
                spec, 2 * MB, 512 * KB, method=QuantMethod.PC_ICN, delta=delta
            )
            out[delta] = policy
        return out

    policies = benchmark(run)

    rows = []
    for delta, policy in policies.items():
        memory = MemoryModel(spec)
        cut = [i for i, lp in enumerate(policy.layers) if lp.q_w < 8]
        rows.append([
            delta,
            acc_model.predict_top1(spec, policy),
            round(memory.ro_bytes(policy) / MB, 3),
            len(cut),
            min(cut) if cut else "-",
        ])
    report = render_table(
        ["delta", "predicted Top-1", "RO (MB)", "# cut layers", "earliest cut"],
        rows,
        title="Ablation — Algorithm 2 delta margin on MobileNetV1 224_1.0 (2 MB budget)",
    )
    record_report("ablation_delta_margin", report)
    for policy in policies.values():
        assert MemoryModel(spec).ro_bytes(policy) <= 2 * MB


def test_benchmark_ablation_mantissa_width(benchmark, record_report):
    """M0 mantissa width ablation: relative error of the requantization
    multiplier when stored with 31, 15 or 7 fractional bits."""
    rng = np.random.default_rng(0)
    multipliers = rng.uniform(1e-5, 1e-1, size=4096)

    def run():
        out = {}
        for bits in (31, 15, 7):
            m0, n0 = quantize_multiplier(multipliers, frac_bits=bits)
            approx = mantissa_to_float(m0, frac_bits=bits) * np.exp2(n0.astype(float))
            out[bits] = float(np.max(np.abs(approx - multipliers) / multipliers))
        return out

    errors = benchmark(run)
    report = render_table(
        ["fractional bits", "max relative error"],
        [[b, f"{e:.2e}"] for b, e in errors.items()],
        title="Ablation — fixed-point mantissa width of the ICN multiplier",
    )
    record_report("ablation_mantissa_width", report)
    assert errors[31] < errors[15] < errors[7]
    assert errors[31] < 1e-8
