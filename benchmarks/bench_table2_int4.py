"""E2 — Table 2: integer-only MobileNetV1_224_1.0 under uniform INT8/INT4.

Reproduces the accuracy / weight-memory comparison of the quantization
strategies (surrogate accuracy, analytical footprint) and prints it next
to the paper's reported numbers.
"""

from repro.evaluation import experiments, paper_data
from repro.evaluation.tables import render_table


def test_benchmark_table2_quantization_strategies(benchmark, record_report):
    rows = benchmark(experiments.table2)

    table_rows = []
    for r in rows:
        ref = paper_data.TABLE2.get(r.label, {})
        table_rows.append([
            r.label,
            ref.get("top1", "-"),
            round(r.top1, 2),
            ref.get("weight_mb", "-"),
            round(r.weight_mb, 2),
        ])
    report = render_table(
        ["Strategy", "paper Top-1 (%)", "repro Top-1 (%)", "paper mem (MB)", "repro mem (MB)"],
        table_rows,
        title="Table 2 — Integer-only MobilenetV1_224_1.0 (paper vs reproduction)",
    )
    record_report("table2_int4", report)

    by_label = {r.label: r for r in rows}
    # The qualitative structure of Table 2 must hold.
    assert by_label["PL+FB INT4"].top1 < 5.0                       # training collapse
    assert by_label["PC+ICN INT4"].top1 > by_label["PL+ICN INT4"].top1
    assert by_label["PL+FB INT8"].top1 > 68.0
    assert by_label["PC+Thresholds INT4"].weight_mb > by_label["PC+ICN INT4"].weight_mb
