"""E7 — end-to-end ICN loss: measure (not surrogate) the accuracy of the
fake-quantized graph versus its integer-only ICN conversion on the
synthetic task.  This is the paper's claim that the ICN insertion is
near-lossless (Table 2: 0.05-0.3 % drop).

QAT training is run once per session (it is the expensive part); the
benchmark itself times the graph conversion plus integer inference, which
is the deployment-time cost a user pays repeatedly.
"""

import pytest

import repro
from repro.core.graph_convert import convert_to_integer_network
from repro.core.policy import QuantMethod, QuantPolicy
from repro.data import make_synthetic_classification
from repro.training import QATConfig, QATTrainer, TrainConfig, Trainer, evaluate_model, prepare_qat


@pytest.fixture(scope="module")
def trained_setup():
    dataset = make_synthetic_classification(
        num_classes=5, resolution=16, train_per_class=40, test_per_class=12, seed=1
    )
    model = repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5, seed=0)
    Trainer(model, TrainConfig(epochs=4, batch_size=32, lr=3e-3, seed=0)).fit(dataset)
    policy = QuantPolicy.uniform(model.spec, method=QuantMethod.PC_ICN, bits=4)
    prepare_qat(model, policy, calibration_data=dataset.x_train[:64])
    QATTrainer(model, QATConfig(epochs=3, batch_size=32, lr=1e-3, lr_schedule={2: 5e-4})).fit(
        dataset
    )
    model.eval()
    return model, dataset


def test_benchmark_icn_conversion_and_integer_inference(benchmark, trained_setup, record_report):
    model, dataset = trained_setup
    fq_acc = evaluate_model(model, dataset)

    def convert_and_infer():
        net = convert_to_integer_network(model, method=QuantMethod.PC_ICN)
        preds = net.predict(dataset.x_test)
        return net, float((preds == dataset.y_test).mean())

    net, int_acc = benchmark(convert_and_infer)

    thr_net = convert_to_integer_network(model, method=QuantMethod.PC_THRESHOLDS)
    thr_acc = float((thr_net.predict(dataset.x_test) == dataset.y_test).mean())

    report = (
        "E7 — measured fake-quantized vs integer-only accuracy (4-bit PC, tiny MobileNet)\n"
        f"  fake-quantized graph g(x) : {fq_acc * 100:6.2f} %\n"
        f"  integer-only PC+ICN g'(x) : {int_acc * 100:6.2f} %\n"
        f"  integer-only PC+Thresholds: {thr_acc * 100:6.2f} %\n"
        f"  ICN conversion loss       : {(fq_acc - int_acc) * 100:+.2f} points "
        "(paper reports 0.05-0.3 points on ImageNet)"
    )
    record_report("e2e_icn_loss", report)

    assert fq_acc > 0.6
    assert abs(fq_acc - int_acc) <= 0.08
    assert thr_acc == pytest.approx(int_acc)
