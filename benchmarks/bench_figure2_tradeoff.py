"""E3 — Figure 2: accuracy-latency trade-off of all 16 MobileNetV1
configurations deployed on the STM32H7 (2 MB / 512 kB) with MixQ-PL and
MixQ-PC-ICN.

The bench runs the full pipeline behind the figure: memory-driven search
per configuration and method, latency from the CMSIS-NN cycle model,
accuracy from the surrogate, and the Pareto frontier of the resulting 32
points.
"""

from repro.evaluation import experiments, paper_data
from repro.evaluation.tables import render_table


def test_benchmark_figure2_accuracy_latency(benchmark, record_report):
    fig = benchmark(experiments.figure2)

    rows = []
    for p in sorted(fig["points"], key=lambda p: (p.label, p.method)):
        rows.append([
            p.label, p.method, round(p.top1, 2), round(p.cycles / 1e6, 1),
            round(p.fps, 2), round(p.ro_bytes / (1024 * 1024), 2),
            round(p.rw_peak_bytes / 1024, 0),
        ])
    report = render_table(
        ["Config", "Method", "Top-1 (%)", "Mcycles", "fps", "RO (MB)", "RW peak (kB)"],
        rows,
        title="Figure 2 — accuracy-latency points on STM32H7 (MRO=2MB, MRW=512kB)",
    )
    frontier = "\nPareto frontier: " + ", ".join(
        f"{p.label}({p.top1:.1f}%)" for p in fig["pareto"]
    )
    anchors = paper_data.FIGURE2_ANCHORS
    fastest = min(fig["points"], key=lambda p: p.cycles)
    slowest_accurate = max(
        (p for p in fig["points"] if p.method == "MixQ-PC-ICN"), key=lambda p: p.top1
    )
    anchor_report = (
        f"\npaper anchors: fastest {anchors['fastest_config']} ~{anchors['fastest_fps']} fps, "
        f"most accurate {anchors['most_accurate_config']} ~{anchors['slowdown_most_accurate']}x slower"
        f"\nreproduced   : fastest {fastest.label} {fastest.fps:.1f} fps, most accurate "
        f"{slowest_accurate.label} {fastest.fps / slowest_accurate.fps:.1f}x slower"
    )
    record_report("figure2_tradeoff", report + frontier + anchor_report)

    assert fastest.label == anchors["fastest_config"]
    assert 0.5 * anchors["fastest_fps"] < fastest.fps < 1.6 * anchors["fastest_fps"]
    assert all(p.feasible for p in fig["points"])
