"""Serving-tier load generator: latency percentiles vs offered load,
with and without injected faults.

Two drive modes against a real in-process :class:`ServingServer` (real
sockets, real micro-batching, real executor thread):

* **closed loop** — K concurrent clients, each firing its next request
  the moment the previous one completes.  Measures the tier's saturated
  throughput and the latency cost of micro-batch tiling.
* **open loop** — requests launched on a fixed metronome at an offered
  QPS regardless of completions (the paper-standard way to expose queue
  buildup: a closed loop self-throttles and hides it).  Swept across
  several offered rates.

Each scenario runs twice — clean, and under a deterministic fault mix
(transient kernel faults + slow batches) — so the report quantifies what
the robustness layer (retry, degradation, shedding) costs in p50/p99.

A third section sweeps the **workers axis**: the same closed-loop drive
against a pooled server (``serve --workers N`` equivalent, artifact
mmap-shared across worker processes) for each requested pool width.
Throughput is *recorded*, never *gated* — CI runners are often 1-2
cores, where extra workers cannot speed anything up; the report carries
``cpu_count`` so readers can judge the numbers in context.

A fourth section drives the **fleet axis**: one server over a
three-config zoo registry (``serve --fleet`` equivalent) under a memory
budget that holds two of the three models, so the drive itself forces
LRU eviction and lazy reload.  Per-config rows record throughput, p99,
and peak RSS; registry counters (loads, evictions, resident bytes) ride
along so a residency regression shows up in the artifact diff.

Run as a script (CI smoke lane)::

    python benchmarks/bench_serving.py --quick

which publishes ``benchmarks/results/BENCH_serving.json`` and exits
non-zero if the server fails to serve, sheds everything, or shuts down
dirty.
"""

import argparse
import asyncio
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import Session, SessionOptions
from repro.serving import (
    FaultInjector,
    RetryPolicy,
    ServerOptions,
    ServingServer,
    predict,
)
from repro.serving.metrics import LatencyRecorder

RESULTS_DIR = Path(__file__).parent / "results"

# Small enough that a laptop-class CI runner saturates it quickly.
RESOLUTION = 32
WIDTH = 0.25

FAULT_MIX = "kernel:every=20;slow:every=15,delay=0.01"


def _make_session() -> Session:
    spec = mobilenet_v1_spec(RESOLUTION, WIDTH, num_classes=5)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    return Session(net, options=SessionOptions(input_hw=(RESOLUTION, RESOLUTION)))


def _image() -> np.ndarray:
    return np.random.default_rng(1).uniform(0, 1, size=(3, RESOLUTION, RESOLUTION))


async def _closed_loop(host, port, image, clients, requests_per_client,
                       deadline_ms):
    lat = LatencyRecorder()
    statuses = []

    async def worker():
        for _ in range(requests_per_client):
            t0 = time.perf_counter()
            status, _ = await predict(host, port, image, deadline_ms=deadline_ms)
            lat.observe(time.perf_counter() - t0)
            statuses.append(status)

    t0 = time.perf_counter()
    await asyncio.gather(*[worker() for _ in range(clients)])
    wall = time.perf_counter() - t0
    return lat, statuses, wall


async def _open_loop(host, port, image, qps, duration_s, deadline_ms):
    lat = LatencyRecorder()
    statuses = []

    async def one():
        t0 = time.perf_counter()
        status, _ = await predict(host, port, image, deadline_ms=deadline_ms)
        lat.observe(time.perf_counter() - t0)
        statuses.append(status)

    interval = 1.0 / qps
    n = max(1, int(duration_s * qps))
    t_start = time.perf_counter()
    tasks = []
    for i in range(n):
        target = t_start + i * interval
        delay = target - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        tasks.append(asyncio.create_task(one()))
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - t_start
    return lat, statuses, wall


def _tally(lat: LatencyRecorder, statuses, wall):
    counts = {}
    for s in statuses:
        counts[str(s)] = counts.get(str(s), 0) + 1
    summary = lat.summary()
    return {
        "requests": len(statuses),
        "status_counts": counts,
        "achieved_qps": round(len(statuses) / wall, 1) if wall > 0 else 0.0,
        "p50_ms": summary["p50_ms"],
        "p90_ms": summary["p90_ms"],
        "p99_ms": summary["p99_ms"],
    }


async def _run_profile(session, faults_spec, quick):
    faults = FaultInjector.parse(faults_spec) if faults_spec else None
    options = ServerOptions(
        port=0, max_batch=8, max_wait_ms=2.0, queue_depth=256,
        default_deadline_ms=0.0,  # measure latency, don't drop
        retry=RetryPolicy(attempts=2, base_delay_s=0.005),
    )
    server = ServingServer(session, options, faults=faults)
    host, port = await server.start()
    image = _image()
    out = {}
    try:
        clients = 4 if quick else 16
        per_client = 8 if quick else 32
        lat, statuses, wall = await _closed_loop(
            host, port, image, clients, per_client, deadline_ms=0)
        out["closed_loop"] = dict(_tally(lat, statuses, wall),
                                  clients=clients)

        sweep = [50, 100] if quick else [25, 50, 100, 200, 400]
        duration = 0.5 if quick else 2.0
        out["open_loop"] = []
        for qps in sweep:
            lat, statuses, wall = await _open_loop(
                host, port, image, qps, duration, deadline_ms=0)
            out["open_loop"].append(dict(_tally(lat, statuses, wall),
                                         offered_qps=qps))
        out["pending_at_stop"] = len(server.batcher)
        out["server_stats"] = server.stats.to_dict()
        if faults:
            out["fault_summary"] = faults.summary()
    finally:
        await server.stop()
    return out


async def _run_workers_point(session, artifact_path, workers, quick):
    """Closed-loop drive against a pooled server of the given width."""
    options = ServerOptions(
        port=0, max_batch=8, max_wait_ms=2.0, queue_depth=256,
        default_deadline_ms=0.0,
        retry=RetryPolicy(attempts=2, base_delay_s=0.005),
        workers=workers,
    )
    server = ServingServer(session, options, artifact_path=artifact_path)
    host, port = await server.start()
    image = _image()
    try:
        clients = 4 if quick else 16
        per_client = 8 if quick else 32
        lat, statuses, wall = await _closed_loop(
            host, port, image, clients, per_client, deadline_ms=0)
        point = dict(_tally(lat, statuses, wall),
                     workers=workers, clients=clients)
        if server.engine.pool is not None:
            pool_stats = server.engine.pool.stats()
            point["pool"] = {
                key: pool_stats[key]
                for key in ("alive", "restarts", "kills", "served",
                            "stolen", "inline_fallbacks", "mmap_weights")
            }
        point["pending_at_stop"] = len(server.batcher)
    finally:
        await server.stop()
    return point


FLEET_CONFIGS = [(32, 0.25), (64, 0.25), (96, 0.25)]


def _peak_rss_bytes() -> int:
    import resource

    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS bytes.
    return peak * 1024 if sys.platform != "darwin" else peak


async def _run_fleet_axis(fleet_dir, quick):
    """Mixed-model closed-loop drive through one fleet server whose
    budget holds two of the three configs: per-config latency rows plus
    the eviction/reload counters the residency policy must produce."""
    from repro.serving import ModelRegistry

    costs = {}
    with ModelRegistry.from_directory(fleet_dir) as probe:
        for name in probe.models:
            costs[name] = probe.entry(name).cost_bytes()
    ordered = sorted(costs.values())
    budget = ordered[-1] + ordered[-2] + 4096  # two of three resident

    registry = ModelRegistry.from_directory(fleet_dir,
                                            memory_budget_bytes=budget)
    options = ServerOptions(
        port=0, max_batch=8, max_wait_ms=2.0, queue_depth=256,
        default_deadline_ms=0.0,
        retry=RetryPolicy(attempts=2, base_delay_s=0.005),
    )
    server = ServingServer(registry=registry, options=options)
    host, port = await server.start()
    rounds = 4 if quick else 16
    images = {
        name: np.random.default_rng(1).uniform(
            0, 1, size=(3, int(name.split("x")[0]), int(name.split("x")[0]))
        )
        for name in registry.models
    }
    per_config = {
        name: {"lat": LatencyRecorder(), "statuses": []}
        for name in registry.models
    }
    rss_before = _peak_rss_bytes()
    try:
        t0 = time.perf_counter()
        for _ in range(rounds):
            # Round-robin across the fleet: every round touches all
            # three models, so the two-of-three budget must evict.
            for name in registry.models:
                t1 = time.perf_counter()
                status, _ = await predict(host, port, images[name],
                                          model=name, deadline_ms=0)
                per_config[name]["lat"].observe(time.perf_counter() - t1)
                per_config[name]["statuses"].append(status)
        wall = time.perf_counter() - t0
        registry_stats = registry.stats()
        out = {
            "budget_bytes": budget,
            "model_cost_bytes": costs,
            "rounds": rounds,
            "peak_rss_bytes": _peak_rss_bytes(),
            "peak_rss_delta_bytes": _peak_rss_bytes() - rss_before,
            "resident_bytes_at_stop": registry_stats["resident_bytes"],
            "loads": registry_stats["loads"],
            "evictions": registry_stats["evictions"],
            "per_config": [
                dict(
                    _tally(rec["lat"], rec["statuses"],
                           wall * len(rec["statuses"]) / max(1, rounds * 3)),
                    model=name,
                    loads=registry_stats["models"][name]["loads"],
                    evictions=registry_stats["models"][name]["evictions"],
                    cost_bytes=costs[name],
                )
                for name, rec in sorted(per_config.items())
            ],
            "pending_at_stop": len(server.batcher),
        }
    finally:
        await server.stop()
    return out


def _run_fleet_bench(quick):
    from repro.serving import materialize_fleet

    with tempfile.TemporaryDirectory(prefix="bench-fleet-") as tmp:
        materialize_fleet(Path(tmp), FLEET_CONFIGS, num_classes=5)
        return asyncio.run(_run_fleet_axis(Path(tmp), quick))


def _run_workers_axis(session, workers_list, quick):
    """Sweep pool widths over the same artifact (mmap-shared weights)."""
    with tempfile.TemporaryDirectory(prefix="bench-serving-") as tmp:
        artifact = Path(tmp) / "bench.artifact"
        session.save(artifact)
        points = []
        for workers in workers_list:
            points.append(asyncio.run(
                _run_workers_point(session, artifact, workers, quick)))
    return points


def run_bench(quick: bool, output: Path, workers_list) -> int:
    session = _make_session()
    report = {
        "bench": "serving",
        "model": f"mobilenet_v1_{RESOLUTION}_{WIDTH}",
        "mode": "quick" if quick else "full",
        "cpu_count": os.cpu_count(),
        "fault_mix": FAULT_MIX,
        "clean": asyncio.run(_run_profile(session, None, quick)),
        "faulted": asyncio.run(_run_profile(session, FAULT_MIX, quick)),
        "workers_axis": _run_workers_axis(session, workers_list, quick),
        "fleet_axis": _run_fleet_bench(quick),
    }

    RESULTS_DIR.mkdir(exist_ok=True)
    output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"[saved to {output}]")

    failures = []
    for label in ("clean", "faulted"):
        closed = report[label]["closed_loop"]
        ok = int(closed["status_counts"].get("200", 0))
        if ok == 0:
            failures.append(f"{label}: closed loop served nothing")
        if closed["p99_ms"] <= 0:
            failures.append(f"{label}: no latency samples")
        if report[label]["pending_at_stop"]:
            failures.append(f"{label}: dirty shutdown (requests left pending)")
    faulted = report["faulted"]
    if not any(v["fires"] for v in faulted.get("fault_summary", {}).values()):
        failures.append("faulted: fault mix never fired")
    if faulted["server_stats"]["batches"]["retries"] < 1:
        failures.append("faulted: kernel faults never exercised retry")
    # Workers axis is correctness-gated only (every request served, clean
    # shutdown, all workers alive).  Deliberately NO speedup gate: on a
    # 1-2 core runner extra workers add IPC cost and cannot pay it back.
    for point in report["workers_axis"]:
        w = point["workers"]
        if int(point["status_counts"].get("200", 0)) != point["requests"]:
            failures.append(f"workers={w}: not every request served")
        if point["pending_at_stop"]:
            failures.append(f"workers={w}: dirty shutdown")
        pool = point.get("pool")
        if pool is not None and pool["alive"] != w:
            failures.append(f"workers={w}: only {pool['alive']} workers alive")
    # Fleet axis: every config fully served, the budget actually forced
    # eviction + reload, and residency ended inside the budget.  Like
    # the workers axis, throughput itself is recorded, not gated.
    fleet = report["fleet_axis"]
    for point in fleet["per_config"]:
        if int(point["status_counts"].get("200", 0)) != point["requests"]:
            failures.append(f"fleet {point['model']}: not every request served")
    if fleet["evictions"] < 1:
        failures.append("fleet: the two-of-three budget never forced eviction")
    if fleet["loads"] <= len(fleet["per_config"]):
        failures.append("fleet: no lazy reload after eviction")
    if fleet["resident_bytes_at_stop"] > fleet["budget_bytes"]:
        failures.append("fleet: resident bytes ended above the budget")
    if fleet["pending_at_stop"]:
        failures.append("fleet: dirty shutdown")

    for label in ("clean", "faulted"):
        c = report[label]["closed_loop"]
        print(f"{label:>8}  closed-loop  {c['achieved_qps']:>7} qps   "
              f"p50 {c['p50_ms']:>7} ms   p99 {c['p99_ms']:>7} ms")
        for point in report[label]["open_loop"]:
            print(f"{label:>8}  open@{point['offered_qps']:<4}    "
                  f"{point['achieved_qps']:>7} qps   "
                  f"p50 {point['p50_ms']:>7} ms   p99 {point['p99_ms']:>7} ms")
    for point in report["workers_axis"]:
        print(f" workers={point['workers']:<2} closed-loop  "
              f"{point['achieved_qps']:>7} qps   "
              f"p50 {point['p50_ms']:>7} ms   p99 {point['p99_ms']:>7} ms")
    for point in fleet["per_config"]:
        print(f" fleet {point['model']:<9} "
              f"{point['achieved_qps']:>7} qps   "
              f"p50 {point['p50_ms']:>7} ms   p99 {point['p99_ms']:>7} ms   "
              f"loads {point['loads']}  evictions {point['evictions']}")
    print(f" fleet residency: {fleet['evictions']} evictions, "
          f"{fleet['loads']} loads, budget {fleet['budget_bytes']} B, "
          f"peak RSS {fleet['peak_rss_bytes']} B")

    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print("serving bench OK")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep for the CI smoke lane")
    parser.add_argument("--output", type=Path,
                        default=RESULTS_DIR / "BENCH_serving.json")
    parser.add_argument("--workers", type=str, default=None,
                        help="CSV of pool widths for the workers axis "
                             "(default: 1,2 quick / 1,2,4 full)")
    args = parser.parse_args(argv)
    if args.workers:
        workers_list = [int(w) for w in args.workers.split(",") if w.strip()]
    else:
        workers_list = [1, 2] if args.quick else [1, 2, 4]
    return run_bench(args.quick, args.output, workers_list)


if __name__ == "__main__":
    sys.exit(main())
