"""Shared benchmark helpers: result directory and paper-vs-reproduced
report writing.  Every bench regenerates one of the paper's tables or
figures and records the comparison under ``benchmarks/results/``."""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_report(results_dir):
    """Write a named plain-text report next to the benchmark results."""

    def _write(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {os.path.relpath(path)}]")
        return path

    return _write
