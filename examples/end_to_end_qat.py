"""End-to-end flow of Figure 1 at laptop scale:

    pretrained f(x)  ->  fake-quantized g(x)  ->  integer-only g'(x)

A tiny MobileNet-style network is trained in full precision on the
synthetic classification task, a memory-driven policy is computed for a
tight budget, the network is retrained quantization-aware with PACT
activation quantizers and per-channel weight ranges, converted to an
integer-only graph with ICN activation layers, and finally executed with
bit-accurate integer kernels.  The script reports the accuracy at each
stage and the deployed Flash footprint.

Run with:  python examples/end_to_end_qat.py

Set REPRO_EXAMPLE_EPOCHS to cap the training epochs (the CI examples
smoke lane runs with REPRO_EXAMPLE_EPOCHS=1).
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

import repro
from repro.core.graph_convert import convert_to_integer_network
from repro.core.memory_model import MemoryModel
from repro.core.policy import QuantMethod, QuantPolicy
from repro.data import make_synthetic_classification
from repro.inference.export import deployment_size_bytes
from repro.runtime import Session, SessionOptions
from repro.training import (
    QATConfig,
    QATTrainer,
    TrainConfig,
    Trainer,
    evaluate_model,
    prepare_qat,
)


def _epochs(default: int) -> int:
    """Training length, cappable via REPRO_EXAMPLE_EPOCHS for CI smoke."""
    cap = os.environ.get("REPRO_EXAMPLE_EPOCHS")
    return min(default, int(cap)) if cap else default


def main() -> None:
    # ------------------------------------------------------------------
    # Substitute dataset (ImageNet stand-in, see DESIGN.md) and model.
    # ------------------------------------------------------------------
    dataset = make_synthetic_classification(
        num_classes=5, resolution=16, train_per_class=60, test_per_class=20, seed=1
    )
    model = repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5, seed=0)

    # ------------------------------------------------------------------
    # Step 1 — full-precision pretraining: f(x).
    # ------------------------------------------------------------------
    print("1. full-precision pretraining")
    fp_result = Trainer(model, TrainConfig(epochs=_epochs(5), batch_size=32, lr=3e-3)).fit(dataset)
    print(f"   test accuracy: {fp_result.final_test_acc * 100:.1f} %")

    # ------------------------------------------------------------------
    # Step 2 — memory-driven mixed-precision policy for a tight budget.
    # ------------------------------------------------------------------
    spec = model.spec
    memory = MemoryModel(spec)
    full8 = memory.ro_bytes(QuantPolicy.uniform(spec, method=QuantMethod.PC_ICN, bits=8))
    ro_budget = int(full8 * 0.7)          # force sub-byte weight cuts
    rw_budget = 48 * 1024
    policy = repro.search_mixed_precision(
        spec, ro_budget, rw_budget, method=QuantMethod.PC_ICN
    )
    print("\n2. memory-driven mixed-precision policy "
          f"(RO budget {ro_budget / 1024:.0f} kB, RW budget {rw_budget / 1024:.0f} kB)")
    print(policy.summary())

    # ------------------------------------------------------------------
    # Step 3 — quantization-aware retraining: g(x).
    # ------------------------------------------------------------------
    print("\n3. quantization-aware retraining (PACT activations, PC weights)")
    prepare_qat(model, policy, calibration_data=dataset.x_train[:64])
    QATTrainer(model, QATConfig(epochs=_epochs(4), batch_size=32, lr=1e-3,
                                lr_schedule={2: 5e-4, 3: 1e-4})).fit(dataset)
    model.eval()
    fq_acc = evaluate_model(model, dataset)
    print(f"   fake-quantized accuracy: {fq_acc * 100:.1f} %")

    # ------------------------------------------------------------------
    # Step 4 — integer-only conversion with ICN layers: g'(x).
    # ------------------------------------------------------------------
    print("\n4. integer-only conversion (ICN activation layers)")
    net = convert_to_integer_network(model, method=QuantMethod.PC_ICN)
    sizes = deployment_size_bytes(net)

    # ------------------------------------------------------------------
    # Step 5 — serve through the runtime Session front door, and prove
    # the deployment artifact round-trips from disk bit-identically.
    # ------------------------------------------------------------------
    print("\n5. compile + serve through repro.runtime.Session")
    session = Session(net, options=SessionOptions(batch_size=64, input_hw=(16, 16)))
    int_acc = float((session.predict(dataset.x_test) == dataset.y_test).mean())
    print(f"   integer-only accuracy : {int_acc * 100:.1f} % "
          f"(ICN conversion loss {100 * (fq_acc - int_acc):+.2f} points)")
    print(f"   deployed Flash size   : {sizes['total'] / 1024:.1f} kB "
          f"({sizes['weights'] / 1024:.1f} kB weights + "
          f"{sizes['aux_params'] / 1024:.1f} kB ICN parameters)")
    print(f"   fits the RO budget    : {'yes' if sizes['total'] <= ro_budget else 'no'}")

    with tempfile.TemporaryDirectory() as tmp:
        path = session.save(tmp + "/model.artifact")
        restored = Session.load(path)
        same = np.array_equal(restored.run(dataset.x_test),
                              session.run(dataset.x_test))
    print(f"   artifact round trip   : saved, reloaded without the original "
          f"network, bit-identical logits: {'yes' if same else 'NO'}")


if __name__ == "__main__":
    main()
