"""Smart-sensor scenario: always-on keyword spotting on a low-power MCU.

The paper's introduction motivates deep inference on battery-powered
smart sensors.  This example models a keyword-spotting pipeline (the
workload of [25], "Hello Edge"): a small depthwise-separable CNN over
2-D time-frequency patches, deployed on a low-power STM32L4 (1 MB Flash,
128 kB RAM, 80 MHz).  The tighter budgets force the memory-driven search
to cut precision even for a small network, and the whole pipeline —
training, QAT, ICN conversion, integer inference and a duty-cycle energy
estimate — runs end to end.

Run with:  python examples/smart_sensor_keyword_spotting.py

Set REPRO_EXAMPLE_EPOCHS to cap the training epochs (the CI examples
smoke lane runs with REPRO_EXAMPLE_EPOCHS=1).
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

import repro
from repro.core.graph_convert import convert_to_integer_network
from repro.core.memory_model import MemoryModel
from repro.core.policy import QuantMethod
from repro.data import make_synthetic_classification
from repro.inference.export import deployment_size_bytes
from repro.mcu.latency import network_cycles
from repro.runtime import Session, SessionOptions
from repro.training import QATConfig, QATTrainer, TrainConfig, Trainer, evaluate_model, prepare_qat

#: Ten keyword classes ("yes", "no", ... plus silence/unknown), as in [25].
NUM_KEYWORDS = 10
#: Synthetic stand-in for 32x32 MFCC-style time-frequency patches.
PATCH_SIZE = 32


def _epochs(default: int) -> int:
    """Training length, cappable via REPRO_EXAMPLE_EPOCHS for CI smoke."""
    cap = os.environ.get("REPRO_EXAMPLE_EPOCHS")
    return min(default, int(cap)) if cap else default


def main() -> None:
    device = repro.STM32L4
    print(f"target device : {device.name} "
          f"({device.flash_mb:.0f} MB Flash, {device.ram_kb:.0f} kB RAM, "
          f"{device.clock_hz / 1e6:.0f} MHz)\n")

    # Synthetic spectrogram-like dataset (single channel).
    dataset = make_synthetic_classification(
        num_classes=NUM_KEYWORDS, resolution=PATCH_SIZE, channels=1,
        train_per_class=40, test_per_class=10, noise=0.2, seed=7,
    )
    model = repro.build_tiny_mobilenet(
        resolution=PATCH_SIZE, width=8, num_classes=NUM_KEYWORDS, in_channels=1, seed=3
    )

    print("training the keyword-spotting network in full precision ...")
    fp = Trainer(model, TrainConfig(epochs=_epochs(6), batch_size=32, lr=3e-3)).fit(dataset)
    print(f"  full-precision accuracy: {fp.final_test_acc * 100:.1f} %\n")

    # Memory-driven policy for the L4's budgets, scaled to the tiny model:
    # pretend the Flash/RAM share available to the model is 24 kB / 20 kB
    # (the rest of the firmware owns the remainder).
    ro_budget, rw_budget = 24 * 1024, 20 * 1024
    spec = model.spec
    policy = repro.search_mixed_precision(
        spec, ro_budget, rw_budget, method=QuantMethod.PC_ICN, strict=False
    )
    print(f"mixed-precision policy for {ro_budget // 1024} kB Flash / "
          f"{rw_budget // 1024} kB RAM (feasible={policy.feasible})")
    print(policy.summary())

    print("\nquantization-aware retraining ...")
    prepare_qat(model, policy, calibration_data=dataset.x_train[:64])
    QATTrainer(model, QATConfig(epochs=_epochs(4), batch_size=32, lr=1e-3,
                                lr_schedule={2: 5e-4})).fit(dataset)
    model.eval()
    fq_acc = evaluate_model(model, dataset)

    net = convert_to_integer_network(model, method=QuantMethod.PC_ICN)
    # Serve through the runtime front door: the Session compiles the
    # integer graph once and streams the test sweep through the arena.
    session = Session(net, options=SessionOptions(
        batch_size=64, input_hw=(PATCH_SIZE, PATCH_SIZE)))
    int_acc = float((session.predict(dataset.x_test) == dataset.y_test).mean())
    sizes = deployment_size_bytes(net)

    # The deployable unit is the saved artifact: reload it from disk (no
    # original network object) and check it serves identically.
    with tempfile.TemporaryDirectory() as tmp:
        restored = Session.load(session.save(tmp + "/kws.artifact"))
        assert np.array_equal(restored.run(dataset.x_test),
                              session.run(dataset.x_test))
    memory = MemoryModel(spec)

    latency = network_cycles(spec, policy)
    latency_ms = 1000.0 * latency.total_cycles / device.clock_hz
    # Duty-cycled energy estimate: one inference per second at ~15 mW active.
    active_power_mw = 15.0
    energy_per_inference_mj = active_power_mw * latency_ms / 1000.0

    print("\nkeyword-spotting deployment summary")
    print(f"  fake-quantized accuracy : {fq_acc * 100:5.1f} %")
    print(f"  integer-only accuracy   : {int_acc * 100:5.1f} %")
    print(f"  Flash footprint         : {sizes['total'] / 1024:5.1f} kB "
          f"(budget {ro_budget / 1024:.0f} kB)")
    print(f"  RAM peak (activations)  : {memory.rw_peak_bytes(policy) / 1024:5.1f} kB "
          f"(budget {rw_budget / 1024:.0f} kB)")
    print(f"  latency on {device.name:<10s}: {latency_ms:6.1f} ms per inference")
    print(f"  energy per inference    : {energy_per_inference_mj:6.2f} mJ "
          f"(~{active_power_mw} mW active)")
    print("  session artifact        : save/load round trip bit-identical")


if __name__ == "__main__":
    main()
