"""Quickstart: pick a MobileNetV1 configuration, run the memory-driven
mixed-precision search for an STM32H7, inspect the deployment report,
and serve the deployment through the `repro.runtime` Session front door.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

import repro
from repro.core.memory_model import MemoryModel
from repro.evaluation.accuracy_model import AccuracyModel


def main() -> None:
    # 1. Describe the network architecture (no weights are instantiated --
    #    the search only needs layer shapes).
    spec = repro.mobilenet_v1_spec(resolution=192, width_multiplier=0.75)
    print(f"network          : {spec.name}")
    print(f"quantized layers : {len(spec)}")
    print(f"MACs             : {spec.total_macs / 1e6:.1f} M")
    print(f"weights          : {spec.total_weights / 1e6:.2f} M parameters")

    # 2. Target device: the paper's STM32H7 (2 MB Flash, 512 kB RAM, 400 MHz).
    device = repro.STM32H7
    print(f"\ndevice           : {device.name} "
          f"({device.flash_mb:.0f} MB Flash, {device.ram_kb:.0f} kB RAM)")

    # 3. Memory-driven mixed-precision search (Algorithms 1 and 2).
    policy = repro.search_mixed_precision(
        spec, ro_budget=device.flash_bytes, rw_budget=device.ram_bytes,
        method=repro.QuantMethod.PC_ICN,
    )
    print("\nper-layer bit assignment (weights / activations):")
    print(policy.summary())

    # 4. Check the memory constraints and estimate latency on the device.
    report = repro.deploy(spec, device, policy=policy)
    print("\n" + report.summary())

    # 5. Predicted ImageNet Top-1 from the calibrated surrogate.
    top1 = AccuracyModel().predict_top1(spec, policy)
    memory = MemoryModel(spec)
    print(f"\npredicted Top-1  : {top1:.1f} % "
          f"(full precision baseline {AccuracyModel().full_precision_top1(spec):.1f} %)")
    print(f"read-only memory : {memory.ro_bytes(policy) / 1024 / 1024:.2f} MB")
    print(f"read-write peak  : {memory.rw_peak_bytes(policy) / 1024:.0f} kB")

    # 6. Serve it: pipeline() materialises the mixed-precision deployment,
    #    compiles it and asserts the activation arena fits the device —
    #    one call from spec + policy + device to a running Session.
    session = repro.pipeline(spec, policy=policy, device=device)
    images = np.random.default_rng(0).uniform(
        0.0, 1.0, size=(4, 3, spec.resolution, spec.resolution)
    )
    labels = session.predict(images)
    print(f"\nserved a batch of {images.shape[0]} images "
          f"-> predictions {labels.tolist()}")
    print("\n" + "\n".join(session.describe(batch_size=4).splitlines()[-4:]))
    print("\n(save/reload this deployment with session.save(path) and "
          "repro.Session.load(path), or from the shell: "
          "repro-mcu deploy --save-artifact)")


if __name__ == "__main__":
    main()
