"""Battery-life planning for a duty-cycled visual smart sensor.

The paper's motivation is multi-year battery life under a tens-of-mW power
envelope.  This example combines the mixed-precision search, the latency
model and the energy model to answer a deployment question: *which
MobileNetV1 configuration should a battery-powered camera node use if it
classifies a frame every five minutes and must last at least a year on a
1000 mWh cell?*

Run with:  python examples/battery_life_planning.py [--inferences-per-hour 12]

Set REPRO_EXAMPLE_MAX_CONFIGS to cap how many family configurations are
swept (the CI examples smoke lane uses a small cap).
"""

from __future__ import annotations

import argparse
import os

import numpy as np

import repro
from repro.evaluation.accuracy_model import AccuracyModel
from repro.evaluation.tables import render_table
from repro.mcu.energy import STM32H7_POWER, duty_cycle_report
from repro.mcu.latency import network_cycles


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--inferences-per-hour", type=float, default=12.0)
    parser.add_argument("--battery-mwh", type=float, default=1000.0)
    parser.add_argument("--min-days", type=float, default=365.0,
                        help="required battery life in days")
    args = parser.parse_args()

    device = repro.STM32H7
    acc_model = AccuracyModel()
    rows = []
    candidates = []
    configs = repro.all_mobilenet_configs()
    max_configs = os.environ.get("REPRO_EXAMPLE_MAX_CONFIGS")
    if max_configs:
        configs = configs[: int(max_configs)]
    for spec in configs:
        policy = repro.search_mixed_precision(
            spec, device.flash_bytes, device.ram_bytes,
            method=repro.QuantMethod.PC_ICN, strict=False,
        )
        if not policy.feasible:
            continue
        cycles = network_cycles(spec, policy).total_cycles
        report = duty_cycle_report(
            cycles, args.inferences_per_hour, device, STM32H7_POWER, args.battery_mwh
        )
        top1 = acc_model.predict_top1(spec, policy)
        meets = report.battery_life_days >= args.min_days
        rows.append([
            spec.label, round(top1, 1), round(report.latency_ms, 0),
            round(report.energy_per_inference_mj, 1),
            round(report.average_power_mw, 3), round(report.battery_life_days, 0),
            "yes" if meets else "no",
        ])
        if meets:
            candidates.append((top1, spec.label, report))

    print(render_table(
        ["Config", "Top-1 (%)", "latency (ms)", "mJ/inf", "avg mW", "battery (days)", "meets target"],
        rows,
        title=(f"Duty-cycled deployment on {device.name}: "
               f"{args.inferences_per_hour:g} inferences/hour, "
               f"{args.battery_mwh:g} mWh battery"),
    ))

    if candidates:
        best = max(candidates)
        print(f"\nrecommended configuration: {best[1]} — {best[0]:.1f} % Top-1, "
              f"{best[2].battery_life_days:.0f} days of battery life")
        # Materialise + compile the recommended deployment through the
        # Session front door and classify one frame, as the sensor would.
        resolution, width = best[1].split("_")
        spec = repro.mobilenet_v1_spec(int(resolution), float(width))
        session = repro.pipeline(spec, device=device)
        frame = np.random.default_rng(0).uniform(
            0.0, 1.0, size=(1, 3, spec.resolution, spec.resolution)
        )
        print(f"serving check: one frame classified as "
              f"class {int(session.predict(frame)[0])} "
              f"(arena peak "
              f"{session.plan.arena_for((spec.resolution, spec.resolution)).logical_rw_peak_bytes / 1024:.0f} kB)")
    else:
        print("\nno configuration meets the battery-life target; "
              "reduce the inference rate or pick a lower-power device")


if __name__ == "__main__":
    main()
