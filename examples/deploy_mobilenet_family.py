"""Deploy the whole MobileNetV1 family on a microcontroller (Figure 2).

Sweeps all 16 <resolution>_<width multiplier> configurations under the
STM32H7 memory budgets with both deployment strategies of the paper
(MixQ-PL and MixQ-PC-ICN), prints the accuracy-latency table and the
Pareto-optimal configurations, reports the headline result — the most
accurate network that fits 2 MB of Flash and 512 kB of RAM — and then
actually serves that winner through the `repro.runtime` Session front
door as an end-to-end sanity check.

Run with:  python examples/deploy_mobilenet_family.py [--flash-mb 2] [--ram-kb 512]
"""

from __future__ import annotations

import argparse

import numpy as np

import repro
from repro.evaluation import experiments
from repro.evaluation.tables import render_table
from repro.mcu.device import KB, MB


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flash-mb", type=float, default=2.0,
                        help="read-only memory budget in MB (default: 2)")
    parser.add_argument("--ram-kb", type=int, default=512,
                        help="read-write memory budget in kB (default: 512)")
    args = parser.parse_args()

    device = repro.STM32H7.with_budgets(
        flash_bytes=int(args.flash_mb * MB), ram_bytes=args.ram_kb * KB
    )
    print(f"target: {device.name} with {args.flash_mb} MB Flash / {args.ram_kb} kB RAM\n")

    fig = experiments.figure2(device=device)
    rows = []
    for p in sorted(fig["points"], key=lambda p: p.cycles):
        rows.append([
            p.label, p.method, round(p.top1, 2), round(p.fps, 2),
            round(p.ro_bytes / MB, 2), round(p.rw_peak_bytes / KB, 0),
            "yes" if p.feasible else "no",
        ])
    print(render_table(
        ["Config", "Method", "Top-1 (%)", "fps", "Flash (MB)", "RAM peak (kB)", "fits"],
        rows, title="Accuracy-latency trade-off (Figure 2)"))

    print("\nPareto-optimal configurations (fastest to most accurate):")
    for p in fig["pareto"]:
        print(f"  {p.label:<24s} {p.top1:5.1f} %  {p.latency_cycles / 1e6:8.1f} Mcycles")

    feasible = [p for p in fig["points"] if p.feasible]
    best = max(feasible, key=lambda p: p.top1)
    fastest = min(feasible, key=lambda p: p.cycles)
    print(f"\nmost accurate deployment : {best.label} [{best.method}] "
          f"{best.top1:.1f} % Top-1 at {best.fps:.2f} fps")
    print(f"fastest deployment       : {fastest.label} [{fastest.method}] "
          f"{fastest.top1:.1f} % Top-1 at {fastest.fps:.2f} fps")

    # Serve the winner: one pipeline() call runs the search again for the
    # device, materialises the mixed-precision network, compiles it, and
    # asserts the activation arena fits the RAM budget.
    resolution, width = best.label.split("_")
    spec = repro.mobilenet_v1_spec(int(resolution), float(width))
    session = repro.pipeline(spec, device=device)
    images = np.random.default_rng(0).uniform(
        0.0, 1.0, size=(2, 3, spec.resolution, spec.resolution)
    )
    print(f"\nserving check for {best.label}: "
          f"predictions {session.predict(images).tolist()}")
    print("\n".join(session.describe(batch_size=2).splitlines()[-4:]))


if __name__ == "__main__":
    main()
