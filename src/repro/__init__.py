"""repro — reproduction of "Memory-Driven Mixed Low Precision Quantization
For Enabling Deep Network Inference On Microcontrollers" (Rusci,
Capotondi, Benini — MLSYS 2020).

The public serving API lives in :mod:`repro.runtime` (the canonical
reference) and is re-exported here — one front door from spec to a
running, saveable session:

    spec    = repro.mobilenet_v1_spec(192, 0.5)
    session = repro.pipeline(spec, device=repro.STM32H7)
    labels  = session.predict(images)
    session.save("model.artifact")
    session = repro.Session.load("model.artifact")

The analytical workflow of the paper remains alongside it:

    policy = repro.search_mixed_precision(spec, ro_budget, rw_budget)
    report = repro.deploy(spec, repro.STM32H7)

The heavier machinery (QAT, ICN conversion, integer kernels) lives in
the subpackages ``repro.core``, ``repro.nn``, ``repro.training``,
``repro.inference``, ``repro.mcu``, ``repro.runtime`` and
``repro.evaluation``.
"""

from repro.core.policy import QuantMethod, QuantPolicy
from repro.core.memory_model import MemoryModel
from repro.core.mixed_precision import (
    MemoryInfeasibleError,
    search_mixed_precision,
)
from repro.core.graph_convert import convert_to_integer_network
from repro.models.model_zoo import (
    all_mobilenet_configs,
    mobilenet_v1_spec,
    NetworkSpec,
)
from repro.models.small_cnn import build_small_cnn, build_tiny_mobilenet
from repro.mcu.device import MCUDevice, STM32H7, STM32F7, STM32F4, STM32L4
from repro.mcu.deploy import deploy, DeploymentReport
from repro.training.qat import prepare_qat, QATConfig, QATTrainer
from repro.evaluation.accuracy_model import AccuracyModel
from repro.runtime import (
    ArtifactError,
    ArtifactNotFoundError,
    CompileOptions,
    InvalidInputError,
    Session,
    SessionOptions,
    pipeline,
)

__version__ = "1.1.0"

__all__ = [
    # quantize: search + policies
    "QuantMethod",
    "QuantPolicy",
    "MemoryModel",
    "MemoryInfeasibleError",
    "search_mixed_precision",
    "convert_to_integer_network",
    # model zoo
    "all_mobilenet_configs",
    "mobilenet_v1_spec",
    "NetworkSpec",
    "build_small_cnn",
    "build_tiny_mobilenet",
    # devices + analytical deployment
    "MCUDevice",
    "STM32H7",
    "STM32F7",
    "STM32F4",
    "STM32L4",
    "deploy",
    "DeploymentReport",
    # QAT
    "prepare_qat",
    "QATConfig",
    "QATTrainer",
    "AccuracyModel",
    # serving front door (repro.runtime)
    "CompileOptions",
    "SessionOptions",
    "Session",
    "pipeline",
    "ArtifactError",
    "ArtifactNotFoundError",
    "InvalidInputError",
    "__version__",
]
