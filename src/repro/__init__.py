"""repro — reproduction of "Memory-Driven Mixed Low Precision Quantization
For Enabling Deep Network Inference On Microcontrollers" (Rusci,
Capotondi, Benini — MLSYS 2020).

Top-level convenience imports expose the main workflow:

    spec   = repro.mobilenet_v1_spec(192, 0.5)
    policy = repro.search_mixed_precision(spec, ro_budget, rw_budget)
    report = repro.deploy(spec, repro.STM32H7)

The heavier machinery (QAT, ICN conversion, integer inference) lives in
the subpackages ``repro.core``, ``repro.nn``, ``repro.training``,
``repro.inference``, ``repro.mcu`` and ``repro.evaluation``.
"""

from repro.core.policy import LayerPolicy, QuantMethod, QuantPolicy
from repro.core.memory_model import MemoryModel
from repro.core.mixed_precision import (
    MemoryInfeasibleError,
    search_mixed_precision,
)
from repro.core.graph_convert import convert_to_integer_network
from repro.models.model_zoo import (
    all_mobilenet_configs,
    mobilenet_v1_spec,
    NetworkSpec,
    LayerSpec,
)
from repro.models.mobilenet_v1 import build_mobilenet_v1
from repro.models.small_cnn import build_small_cnn, build_tiny_mobilenet
from repro.mcu.device import MCUDevice, STM32H7, STM32F7, STM32F4, STM32L4
from repro.mcu.deploy import deploy, DeploymentReport
from repro.training.qat import prepare_qat, QATConfig, QATTrainer
from repro.evaluation.accuracy_model import AccuracyModel

__version__ = "1.0.0"

__all__ = [
    "LayerPolicy",
    "QuantMethod",
    "QuantPolicy",
    "MemoryModel",
    "MemoryInfeasibleError",
    "search_mixed_precision",
    "convert_to_integer_network",
    "all_mobilenet_configs",
    "mobilenet_v1_spec",
    "NetworkSpec",
    "LayerSpec",
    "build_mobilenet_v1",
    "build_small_cnn",
    "build_tiny_mobilenet",
    "MCUDevice",
    "STM32H7",
    "STM32F7",
    "STM32F4",
    "STM32L4",
    "deploy",
    "DeploymentReport",
    "prepare_qat",
    "QATConfig",
    "QATTrainer",
    "AccuracyModel",
    "__version__",
]
