"""Sub-byte bit packing of UINT2 / UINT4 / UINT8 tensors.

The MCU stores weight (and activation) tensors bit-packed: four 2-bit or
two 4-bit values per byte, little-end first within each byte, matching the
layout the extended CMSIS-NN kernels of the paper unpack in their inner
loop.  The functions here are used both by the deployment-size accounting
and by tests that round-trip tensors through the packed representation.
"""

from __future__ import annotations

import math

import numpy as np

SUPPORTED_BITS = (2, 4, 8)


def packed_size_bytes(count: int, bits: int) -> int:
    """Number of bytes needed to store ``count`` values of ``bits`` bits."""
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
    if count < 0:
        raise ValueError("count must be non-negative")
    return math.ceil(count * bits / 8)


def pack_subbyte(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack an array of unsigned integer codes into a uint8 byte stream.

    Values are flattened in C order; within one byte the first value
    occupies the least-significant bits.
    """
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
    flat = np.asarray(values).reshape(-1)
    if flat.size and (flat.min() < 0 or flat.max() > 2 ** bits - 1):
        raise ValueError(f"values out of range for {bits}-bit packing")
    flat = flat.astype(np.uint8)
    if bits == 8:
        return flat.copy()
    per_byte = 8 // bits
    padded_len = math.ceil(flat.size / per_byte) * per_byte
    padded = np.zeros(padded_len, dtype=np.uint8)
    padded[: flat.size] = flat
    groups = padded.reshape(-1, per_byte)
    shifts = (np.arange(per_byte) * bits).astype(np.uint8)
    packed = np.bitwise_or.reduce(groups.astype(np.uint16) << shifts, axis=1)
    return packed.astype(np.uint8)


def unpack_subbyte(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_subbyte`; returns ``count`` values as int64."""
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
    packed = np.asarray(packed, dtype=np.uint8).reshape(-1)
    if bits == 8:
        if count > packed.size:
            raise ValueError("not enough packed bytes")
        return packed[:count].astype(np.int64)
    per_byte = 8 // bits
    if count > packed.size * per_byte:
        raise ValueError("not enough packed bytes")
    shifts = (np.arange(per_byte) * bits).astype(np.uint8)
    mask = np.uint16(2 ** bits - 1)
    expanded = (packed[:, None].astype(np.uint16) >> shifts) & mask
    return expanded.reshape(-1)[:count].astype(np.int64)
