"""Sub-byte bit packing of UINT2 / UINT4 / UINT8 tensors and the
narrow *container* dtypes codes live in while at rest on the host.

The MCU stores weight (and activation) tensors bit-packed: four 2-bit or
two 4-bit values per byte, little-end first within each byte, matching the
layout the extended CMSIS-NN kernels of the paper unpack in their inner
loop.  The functions here are used both by the deployment-size accounting
and by tests that round-trip tensors through the packed representation.

On the host, codes are held in the smallest numpy integer dtype that can
represent them — the tensor's *container dtype* — rather than int64:

* unpacked UINT-Q codes (Q <= 8) live in ``uint8`` (:func:`container_dtype`);
* zero-point-shifted operands ``x - Z`` span ``[-(2^Q - 1), 2^Q - 1]`` and
  live in ``int8``/``int16`` (:func:`shifted_container_dtype`).

Sub-byte tensors stay bit-packed at rest and are unpacked once (at compile
or load time) into their container, never into int64.
"""

from __future__ import annotations

import math

import numpy as np

SUPPORTED_BITS = (2, 4, 8)


def container_dtype(bits: int, signed: bool = False) -> np.dtype:
    """Smallest integer dtype that holds ``bits``-bit codes.

    Unsigned codes span ``[0, 2^Q - 1]``; signed codes (INT-Q) span
    ``[-2^(Q-1), 2^(Q-1) - 1]``.  This is the dtype quantized tensors are
    *stored* in on the host — the physical width the activation arena and
    the deployment blobs account for.
    """
    if bits < 1 or bits > 64:
        raise ValueError(f"unsupported bit width {bits}")
    if signed:
        for dt in (np.int8, np.int16, np.int32, np.int64):
            if bits <= np.iinfo(dt).bits:
                return np.dtype(dt)
    for dt in (np.uint8, np.uint16, np.uint32):
        if bits <= np.iinfo(dt).bits:
            return np.dtype(dt)
    return np.dtype(np.int64)


def shifted_container_dtype(bits: int) -> np.dtype:
    """Smallest signed dtype holding zero-point-shifted ``bits``-bit codes.

    A shifted operand ``x - Z`` with codes and zero point both in
    ``[0, 2^Q - 1]`` spans ``[-(2^Q - 1), 2^Q - 1]``, which needs one bit
    more than the code itself: int8 through Q=7, int16 through Q=15, ...
    """
    if bits < 1 or bits > 63:
        raise ValueError(f"unsupported bit width {bits}")
    for dt in (np.int8, np.int16, np.int32):
        if bits < np.iinfo(dt).bits:
            return np.dtype(dt)
    return np.dtype(np.int64)


def packed_size_bytes(count: int, bits: int) -> int:
    """Number of bytes needed to store ``count`` values of ``bits`` bits."""
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
    if count < 0:
        raise ValueError("count must be non-negative")
    return math.ceil(count * bits / 8)


def pack_subbyte(values: np.ndarray, bits: int) -> np.ndarray:
    """Pack an array of unsigned integer codes into a uint8 byte stream.

    Values are flattened in C order; within one byte the first value
    occupies the least-significant bits.
    """
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
    flat = np.asarray(values).reshape(-1)
    if flat.size and (flat.min() < 0 or flat.max() > 2 ** bits - 1):
        raise ValueError(f"values out of range for {bits}-bit packing")
    flat = flat.astype(np.uint8)
    if bits == 8:
        return flat.copy()
    per_byte = 8 // bits
    padded_len = math.ceil(flat.size / per_byte) * per_byte
    padded = np.zeros(padded_len, dtype=np.uint8)
    padded[: flat.size] = flat
    groups = padded.reshape(-1, per_byte)
    shifts = (np.arange(per_byte) * bits).astype(np.uint8)
    packed = np.bitwise_or.reduce(groups.astype(np.uint16) << shifts, axis=1)
    return packed.astype(np.uint8)


def unpack_subbyte(packed: np.ndarray, bits: int, count: int,
                   dtype=None) -> np.ndarray:
    """Inverse of :func:`pack_subbyte`.

    Returns ``count`` values in ``dtype``; by default the narrow
    :func:`container_dtype` of ``bits`` (uint8 for every paper width) —
    unpacking never inflates codes back to int64 unless asked to.
    """
    if bits not in SUPPORTED_BITS:
        raise ValueError(f"bits must be one of {SUPPORTED_BITS}, got {bits}")
    if dtype is None:
        dtype = container_dtype(bits)
    packed = np.asarray(packed, dtype=np.uint8).reshape(-1)
    if bits == 8:
        if count > packed.size:
            raise ValueError("not enough packed bytes")
        # copy=False keeps 8-bit codes as a view of the packed buffer —
        # for an mmap-loaded artifact the weights stay on shared pages.
        return packed[:count].astype(dtype, copy=False)
    per_byte = 8 // bits
    if count > packed.size * per_byte:
        raise ValueError("not enough packed bytes")
    shifts = (np.arange(per_byte) * bits).astype(np.uint8)
    mask = np.uint16(2 ** bits - 1)
    expanded = (packed[:, None].astype(np.uint16) >> shifts) & mask
    return expanded.reshape(-1)[:count].astype(dtype)
