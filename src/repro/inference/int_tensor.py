"""Quantized tensor container used at the boundary of the integer engine."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inference.packing import pack_subbyte, packed_size_bytes, unpack_subbyte


@dataclass
class QuantizedTensor:
    """An integer-coded tensor plus its affine quantization parameters.

    ``data`` holds the integer codes (int64 for convenience; the value
    range is that of UINT-Q).  ``scale`` and ``zero_point`` give the
    mapping back to real values via ``real = scale * (code - zero_point)``.
    """

    data: np.ndarray
    scale: float
    zero_point: int
    bits: int

    def __post_init__(self):
        self.data = np.asarray(self.data, dtype=np.int64)
        qmax = 2 ** self.bits - 1
        if self.data.size and (self.data.min() < 0 or self.data.max() > qmax):
            raise ValueError(
                f"codes out of the UINT{self.bits} range [0, {qmax}]"
            )

    @property
    def shape(self):
        return self.data.shape

    def dequantize(self) -> np.ndarray:
        """Real-valued view of the tensor."""
        return self.scale * (self.data.astype(np.float64) - self.zero_point)

    def packed_bytes(self) -> np.ndarray:
        """Bit-packed byte stream (what would live in the MCU memory)."""
        return pack_subbyte(self.data, self.bits)

    def storage_bytes(self) -> int:
        return packed_size_bytes(self.data.size, self.bits)

    @classmethod
    def from_real(cls, real: np.ndarray, scale: float, zero_point: int, bits: int,
                  rounding: str = "floor") -> "QuantizedTensor":
        """Quantize a real tensor (activations use floor, paper §3)."""
        q = np.asarray(real, dtype=np.float64) / scale
        q = np.floor(q) if rounding == "floor" else np.round(q)
        q = np.clip(q + zero_point, 0, 2 ** bits - 1)
        return cls(q.astype(np.int64), scale, zero_point, bits)

    @classmethod
    def from_packed(cls, packed: np.ndarray, shape, scale: float, zero_point: int,
                    bits: int) -> "QuantizedTensor":
        count = int(np.prod(shape))
        data = unpack_subbyte(packed, bits, count).reshape(shape)
        return cls(data, scale, zero_point, bits)
