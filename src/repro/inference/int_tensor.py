"""Quantized tensor container used at the boundary of the integer engine."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.inference.packing import (
    container_dtype,
    pack_subbyte,
    packed_size_bytes,
    unpack_subbyte,
)


@dataclass
class QuantizedTensor:
    """An integer-coded tensor plus its affine quantization parameters.

    ``data`` holds the integer codes in the tensor's narrow *container
    dtype* (uint8 for every UINT-Q width the paper deploys; the value
    range is that of UINT-Q).  ``scale`` and ``zero_point`` give the
    mapping back to real values via ``real = scale * (code - zero_point)``.
    Sub-byte tensors additionally round-trip through the bit-packed
    at-rest representation via :meth:`packed_bytes` / :meth:`from_packed`.
    """

    data: np.ndarray
    scale: float
    zero_point: int
    bits: int

    def __post_init__(self):
        codes = np.asarray(self.data, dtype=np.int64)
        qmax = 2 ** self.bits - 1
        if codes.size and (codes.min() < 0 or codes.max() > qmax):
            raise ValueError(
                f"codes out of the UINT{self.bits} range [0, {qmax}]"
            )
        self.data = codes.astype(self.container_dtype)

    @property
    def shape(self):
        return self.data.shape

    @property
    def container_dtype(self) -> np.dtype:
        """Physical storage dtype of the codes (uint8 for Q <= 8)."""
        return container_dtype(self.bits)

    def container_bytes(self) -> int:
        """Host bytes of the unpacked codes at container width."""
        return int(self.data.size) * self.container_dtype.itemsize

    def dequantize(self) -> np.ndarray:
        """Real-valued view of the tensor."""
        return self.scale * (self.data.astype(np.float64) - self.zero_point)

    def packed_bytes(self) -> np.ndarray:
        """Bit-packed byte stream (what would live in the MCU memory)."""
        return pack_subbyte(self.data, self.bits)

    def storage_bytes(self) -> int:
        return packed_size_bytes(self.data.size, self.bits)

    @classmethod
    def from_real(cls, real: np.ndarray, scale: float, zero_point: int, bits: int,
                  rounding: str = "floor") -> "QuantizedTensor":
        """Quantize a real tensor (activations use floor, paper §3)."""
        q = np.asarray(real, dtype=np.float64) / scale
        q = np.floor(q) if rounding == "floor" else np.round(q)
        q = np.clip(q + zero_point, 0, 2 ** bits - 1)
        return cls(q.astype(np.int64), scale, zero_point, bits)

    @classmethod
    def from_packed(cls, packed: np.ndarray, shape, scale: float, zero_point: int,
                    bits: int) -> "QuantizedTensor":
        count = int(np.prod(shape))
        data = unpack_subbyte(packed, bits, count).reshape(shape)
        return cls(data, scale, zero_point, bits)
