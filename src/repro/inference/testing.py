"""Synthetic :class:`IntegerNetwork` builders shared by tests and benchmarks.

Training a QAT model just to obtain an integer deployment graph is slow;
these helpers materialise random-but-well-formed integer layers directly
(codes in range, requantization multipliers scaled so the outputs spread
over the UINT-Q levels instead of saturating), including full MobileNetV1
topologies driven by a :class:`~repro.models.model_zoo.NetworkSpec`.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.icn import (
    FoldedBNParams,
    ICNParams,
    compute_thresholds,
    quantize_multiplier,
)
from repro.inference.engine import (
    IntegerAvgPool,
    IntegerConvLayer,
    IntegerLinearLayer,
    IntegerNetwork,
)
from repro.inference.packing import container_dtype
from repro.models.model_zoo import NetworkSpec
from repro.nn.functional import conv_output_size


def _target_multiplier(k_reduction: int, in_bits: int, out_bits: int, w_bits: int) -> float:
    """A multiplier magnitude that maps typical accumulators onto the
    output code range (uniform codes give |Phi| ~ sqrt(k) * qx*qw/4)."""
    phi_typical = np.sqrt(k_reduction) * (2 ** in_bits / 4.0) * (2 ** w_bits / 4.0)
    return (2 ** out_bits - 1) / max(phi_typical, 1.0)


def random_conv_layer(
    rng: np.random.Generator,
    kind: str,
    c_in: int,
    c_out: int,
    kernel: int = 3,
    stride: int = 1,
    padding: int = 1,
    in_bits: int = 8,
    out_bits: int = 8,
    w_bits: int = 8,
    per_channel: bool = True,
    strategy: str = "icn",
    name: str = "layer",
) -> IntegerConvLayer:
    """One random integer conv layer (``kind`` in {"conv", "pw", "dw"}).

    ``strategy`` selects the requantization parameters: ``"icn"``,
    ``"folded"`` (PL+FB, forces per-layer) or ``"thr"`` (thresholds).
    """
    if kind == "dw":
        c_out = c_in
        w_shape = (c_out, 1, kernel, kernel)
        k_reduction = kernel * kernel
    else:
        w_shape = (c_out, c_in, kernel, kernel)
        k_reduction = c_in * kernel * kernel
    # Weight codes live in their narrow container (uint8 for <= 8 bits),
    # like the quantizer emits them — the engines never see int64 weights.
    weights_q = rng.integers(0, 2 ** w_bits, size=w_shape, dtype=container_dtype(w_bits))
    z_x = int(rng.integers(0, 2 ** in_bits))
    z_y = 2 ** (out_bits - 1)
    m_target = _target_multiplier(k_reduction, in_bits, out_bits, w_bits)

    if strategy == "folded":
        z_w = int(rng.integers(0, 2 ** w_bits))
        m0, n0 = quantize_multiplier(np.array([m_target]))
        params: object = FoldedBNParams(
            weights_q=weights_q,
            z_w=z_w,
            z_x=z_x,
            z_y=z_y,
            bq=rng.integers(-(2 ** 10), 2 ** 10, size=c_out, dtype=np.int64),
            m0=int(m0[0]),
            n0=int(n0[0]),
            out_bits=out_bits,
            w_bits=w_bits,
        )
    else:
        if per_channel:
            z_w_arr = rng.integers(0, 2 ** w_bits, size=c_out, dtype=np.int64)
        else:
            z_w_arr = np.array([int(rng.integers(0, 2 ** w_bits))], dtype=np.int64)
        # Spread multipliers over ~2 octaves; flip a few channels negative
        # to exercise the decreasing-threshold branch (negative BN gamma).
        m = m_target * np.exp2(rng.uniform(-1.0, 1.0, size=c_out))
        m *= np.where(rng.random(c_out) < 0.1, -1.0, 1.0)
        m0, n0 = quantize_multiplier(m)
        icn = ICNParams(
            weights_q=weights_q,
            z_w=z_w_arr,
            z_x=z_x,
            z_y=z_y,
            bq=rng.integers(-(2 ** 10), 2 ** 10, size=c_out, dtype=np.int64),
            m0=m0,
            n0=n0,
            out_bits=out_bits,
            w_bits=w_bits,
            per_channel=per_channel,
        )
        params = compute_thresholds(icn) if strategy == "thr" else icn

    return IntegerConvLayer(
        name=name,
        kind=kind,
        stride=stride,
        padding=padding,
        params=params,
        in_bits=in_bits,
        out_bits=out_bits,
        in_scale=0.05,
        out_scale=0.05,
    )


def random_linear_layer(
    rng: np.random.Generator,
    in_features: int,
    out_features: int,
    in_bits: int = 8,
    w_bits: int = 8,
    per_channel: bool = True,
    name: str = "classifier",
) -> IntegerLinearLayer:
    size = out_features if per_channel else 1
    return IntegerLinearLayer(
        name=name,
        weights_q=rng.integers(0, 2 ** w_bits, size=(out_features, in_features),
                               dtype=container_dtype(w_bits)),
        z_w=rng.integers(0, 2 ** w_bits, size=size, dtype=np.int64),
        s_w=rng.uniform(1e-3, 2e-2, size=size),
        z_x=int(rng.integers(0, 2 ** in_bits)),
        s_in=0.05,
        bias=rng.normal(0.0, 0.1, size=out_features),
        in_bits=in_bits,
        w_bits=w_bits,
    )


def random_network(
    rng: np.random.Generator,
    resolution: int = 12,
    in_channels: int = 3,
    max_layers: int = 4,
    act_bits: int = 8,
    w_bits: int = 8,
    num_classes: int = 4,
    strategy: str = "mixed",
    per_channel: bool = True,
) -> IntegerNetwork:
    """A random-*topology* integer network (not just random weights).

    Layer kinds (conv/dw/pw), kernel sizes, strides, paddings and channel
    counts are all drawn at random, with strides/paddings constrained so
    the spatial size never collapses below 1x1 at the given
    ``resolution``.  ``strategy="mixed"`` additionally draws the
    requantization strategy per layer (ICN / folded-BN / thresholds), so
    a single network exercises every compiled requant path.  This is the
    adversarial counterpart of :func:`integer_network_from_spec` used by
    the arena-safety property tests.
    """
    layers = []
    h = int(resolution)
    c_in = int(in_channels)
    n_layers = int(rng.integers(1, max_layers + 1))
    for i in range(n_layers):
        kind = str(rng.choice(["conv", "dw", "pw"]))
        if kind == "pw":
            kernel, padding = 1, 0
        else:
            kernel = int(rng.choice([1, 3, 5]))
            padding = int(rng.integers(0, kernel // 2 + 1))
        stride = int(rng.choice([1, 2]))
        if conv_output_size(h, kernel, stride, padding) < 1:
            stride = 1
            padding = max(padding, (kernel - h + 1) // 2)
        if conv_output_size(h, kernel, stride, padding) < 1:
            kernel, padding = 1, 0
        c_out = c_in if kind == "dw" else int(rng.choice([3, 5, 8]))
        layer_strategy = (
            str(rng.choice(["icn", "folded", "thr"])) if strategy == "mixed"
            else strategy
        )
        layers.append(
            random_conv_layer(
                rng,
                kind=kind,
                c_in=c_in,
                c_out=c_out,
                kernel=kernel,
                stride=stride,
                padding=padding,
                in_bits=act_bits,
                out_bits=act_bits,
                w_bits=w_bits,
                per_channel=per_channel and layer_strategy != "folded",
                strategy=layer_strategy,
                name=f"L{i}_{kind}",
            )
        )
        h = conv_output_size(h, kernel, stride, padding)
        c_in = c_out if kind != "dw" else c_in
    return IntegerNetwork(
        conv_layers=layers,
        pool=IntegerAvgPool(),
        classifier=random_linear_layer(
            rng, c_in, num_classes,
            in_bits=act_bits, w_bits=w_bits, per_channel=per_channel,
        ),
        input_scale=1.0 / 255.0,
        input_zero_point=0,
        input_bits=act_bits,
    )


def integer_network_from_spec(
    spec: NetworkSpec,
    rng: Optional[np.random.Generator] = None,
    act_bits: int = 8,
    w_bits: int = 8,
    per_channel: bool = True,
    strategy: str = "icn",
    policy=None,
) -> IntegerNetwork:
    """Random integer deployment of an entire :class:`NetworkSpec`.

    Layer shapes (channels, kernels, strides, paddings) follow the spec;
    weights and requantization parameters are synthetic.  Useful wherever
    a full-size deployment graph is needed without running QAT first.

    ``policy`` (a :class:`~repro.core.policy.QuantPolicy` aligned with
    ``spec.layers``) overrides the uniform ``act_bits``/``w_bits`` with
    the per-layer ``q_w``/``q_in``/``q_out`` assignment the
    mixed-precision search produced — the materialisation step
    :func:`repro.runtime.pipeline` uses to turn a search result into a
    runnable mixed-precision deployment.
    """
    rng = rng or np.random.default_rng(0)
    if policy is not None and len(policy) != len(spec.layers):
        raise ValueError(
            f"policy has {len(policy)} layers but spec {spec.name!r} "
            f"has {len(spec.layers)}"
        )
    conv_layers = []
    classifier = None
    for i, layer in enumerate(spec.layers):
        lp = policy[i] if policy is not None else None
        l_in = lp.q_in if lp is not None else act_bits
        l_out = lp.q_out if lp is not None else act_bits
        l_w = lp.q_w if lp is not None else w_bits
        if layer.kind == "fc":
            classifier = random_linear_layer(
                rng, layer.in_channels, layer.out_channels,
                in_bits=l_in, w_bits=l_w, per_channel=per_channel,
            )
            continue
        conv_layers.append(
            random_conv_layer(
                rng,
                kind=layer.kind,
                c_in=layer.in_channels,
                c_out=layer.out_channels,
                kernel=layer.kernel_size,
                stride=layer.stride,
                padding=layer.padding,
                in_bits=l_in,
                out_bits=l_out,
                w_bits=l_w,
                per_channel=per_channel,
                strategy=strategy,
                name=layer.name,
            )
        )
    input_bits = policy[0].q_in if policy is not None and len(policy) else act_bits
    return IntegerNetwork(
        conv_layers=conv_layers,
        pool=IntegerAvgPool(),
        classifier=classifier,
        input_scale=1.0 / 255.0,
        input_zero_point=0,
        input_bits=input_bits,
    )
