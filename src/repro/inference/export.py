"""Deployment export: serialise an integer network into a flat dictionary
and account for its on-device (Flash) size.

The export format mirrors what a firmware image would embed: packed weight
blobs plus the per-layer static parameter vectors of Table 1.  It is used
by the end-to-end examples and by tests that check the deployment size
matches the analytical memory model.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.icn import FoldedBNParams, ICNParams, ThresholdParams
from repro.inference.arena import (
    ActivationArena,
    LayerGeometry,
    logical_rw_peak_bytes,
    plan_activations,
)
from repro.inference.engine import (
    IntegerAvgPool,
    IntegerConvLayer,
    IntegerLinearLayer,
    IntegerNetwork,
)
from repro.inference.kernels import gemm_reduction_length, resolve_gemm_backend
from repro.inference.packing import (
    container_dtype,
    pack_subbyte,
    packed_size_bytes,
    unpack_subbyte,
)

# Byte widths of the auxiliary arrays (§4.1 of the paper).
_BYTES = {"bq": 4, "m0": 4, "n0": 1, "thr": 4, "z_scalar": 1, "z_pc": 2}


def _layer_aux_bytes(params) -> int:
    """Static-parameter bytes of one layer, by requantization strategy."""
    if isinstance(params, ICNParams):
        c_o = params.out_channels
        zw_bytes = c_o * _BYTES["z_pc"] if params.per_channel else _BYTES["z_scalar"]
        return (
            2 * _BYTES["z_scalar"]  # Zx, Zy
            + zw_bytes
            + c_o * (_BYTES["bq"] + _BYTES["m0"] + _BYTES["n0"])
        )
    if isinstance(params, FoldedBNParams):
        c_o = params.bq.shape[0]
        return (
            2 * _BYTES["z_scalar"]
            + _BYTES["z_scalar"]
            + c_o * _BYTES["bq"]
            + _BYTES["m0"]
            + _BYTES["n0"]
        )
    if isinstance(params, ThresholdParams):
        c_o = params.thresholds.shape[0]
        return (
            2 * _BYTES["z_scalar"]
            + c_o * _BYTES["z_pc"]
            + params.thresholds.size * _BYTES["thr"]
        )
    raise TypeError(f"unsupported params type {type(params)!r}")


def _network_geometries(net: IntegerNetwork) -> List[LayerGeometry]:
    """Activation-planning geometries of the deployment graph, matching
    what ``net.compile()`` defaults would plan: auto GEMM dispatch, and
    ``fused_depthwise=False`` for planning purposes — the "auto" stencil
    dispatch keeps the conservative im2col-sized scratch plan, exactly
    like ``ExecutionPlan._geometries`` for a default-compiled plan."""
    geoms = [
        LayerGeometry.from_weights(
            name=layer.name, kind=layer.kind,
            weight_shape=layer.params.weights_q.shape,
            stride=layer.stride, padding=layer.padding,
            in_bits=layer.in_bits, w_bits=layer.params.w_bits,
            out_bits=layer.out_bits,
            fused_depthwise=False,
            requant_kind=(
                "thr" if isinstance(layer.params, ThresholdParams) else "fixed"
            ),
        )
        for layer in net.conv_layers
    ]
    if net.classifier is not None:
        cl = net.classifier
        geoms.append(
            LayerGeometry.from_weights(
                name=cl.name, kind="fc", weight_shape=cl.weights_q.shape,
                stride=1, padding=0, in_bits=cl.in_bits, w_bits=cl.w_bits,
                out_bits=cl.in_bits,
            )
        )
    return geoms


def _requant_state(params) -> Dict:
    """Full requantization parameters of one layer, keyed for re-import.

    Everything :func:`import_network` needs to rebuild the params
    dataclass bit-identically, minus what the entry itself already
    carries (``w_bits``, ``out_bits``, the packed weights).
    """
    if isinstance(params, ICNParams):
        return {
            "z_w": np.asarray(params.z_w),
            "z_x": int(params.z_x),
            "z_y": int(params.z_y),
            "bq": np.asarray(params.bq),
            "m0": np.asarray(params.m0),
            "n0": np.asarray(params.n0),
            "per_channel": bool(params.per_channel),
        }
    if isinstance(params, FoldedBNParams):
        return {
            "z_w": int(params.z_w),
            "z_x": int(params.z_x),
            "z_y": int(params.z_y),
            "bq": np.asarray(params.bq),
            "m0": int(params.m0),
            "n0": int(params.n0),
        }
    if isinstance(params, ThresholdParams):
        return {
            "z_w": np.asarray(params.z_w),
            "z_x": int(params.z_x),
            "thresholds": np.asarray(params.thresholds),
            "direction": np.asarray(params.direction),
        }
    raise TypeError(f"unsupported params type {type(params)!r}")


def export_network(net: IntegerNetwork, input_hw: Optional[Tuple[int, int]] = None) -> Dict:
    """Serialise the network into a nested dict of plain arrays/ints.

    The export is *complete*: besides the packed weight blobs and the
    Table 1 size accounting it carries every requantization parameter
    and boundary scale, so :func:`import_network` can rebuild a
    bit-identical :class:`IntegerNetwork` with no reference to the
    original — the round trip the ``repro.runtime`` session artifact is
    built on.

    With ``input_hw`` the export also carries the runtime activation
    plan: per-layer activation element counts plus the Eq. 7 RW peak, so
    a deployment can assert ``arena["rw_peak_bytes"] <= device RAM``
    without re-deriving the geometry cascade.
    """
    layers = []
    for layer in net.conv_layers:
        p = layer.params
        w_shape = p.weights_q.shape
        k_reduction = gemm_reduction_length(layer.kind, w_shape)
        entry = {
            "name": layer.name,
            "kind": layer.kind,
            "stride": layer.stride,
            "padding": layer.padding,
            "w_bits": p.w_bits,
            "out_bits": p.out_bits,
            "in_bits": layer.in_bits,
            "in_scale": float(layer.in_scale),
            "out_scale": float(layer.out_scale),
            "weight_shape": list(w_shape),
            "weights_packed": pack_subbyte(p.weights_q, p.w_bits),
            "weight_bytes": packed_size_bytes(int(p.weights_q.size), p.w_bits),
            # Narrow container the packed blob unpacks into on the host
            # (uint8 for every paper width — never int64).
            "container_dtype": container_dtype(p.w_bits).name,
            "weights_crc32": zlib.crc32(pack_subbyte(p.weights_q, p.w_bits).tobytes()),
            "aux_bytes": _layer_aux_bytes(p),
            "strategy": type(p).__name__,
            "requant": _requant_state(p),
            # Host-emulation dispatch decision (recorded so a firmware
            # image and the emulator agree on the accumulator contract).
            "k_reduction": int(k_reduction),
            "gemm_backend": resolve_gemm_backend("auto", k_reduction, layer.in_bits, p.w_bits),
        }
        layers.append(entry)
    out = {"conv_layers": layers}
    if net.classifier is not None:
        cl = net.classifier
        out["classifier"] = {
            "name": cl.name,
            "w_bits": cl.w_bits,
            "in_bits": cl.in_bits,
            "k_reduction": gemm_reduction_length("fc", cl.weights_q.shape),
            "gemm_backend": resolve_gemm_backend(
                "auto", gemm_reduction_length("fc", cl.weights_q.shape), cl.in_bits, cl.w_bits
            ),
            "weight_shape": list(cl.weights_q.shape),
            "weights_packed": pack_subbyte(cl.weights_q, cl.w_bits),
            "weight_bytes": packed_size_bytes(int(cl.weights_q.size), cl.w_bits),
            "container_dtype": container_dtype(cl.w_bits).name,
            "weights_crc32": zlib.crc32(pack_subbyte(cl.weights_q, cl.w_bits).tobytes()),
            "aux_bytes": int(np.asarray(cl.s_w).size) * (_BYTES["bq"] + _BYTES["z_pc"])
            + (0 if cl.bias is None else cl.bias.size * 4),
            "strategy": "linear",
            "z_w": np.asarray(cl.z_w),
            "s_w": np.asarray(cl.s_w, dtype=np.float64),
            "z_x": int(cl.z_x),
            "s_in": float(cl.s_in),
            "bias": None if cl.bias is None else np.asarray(cl.bias, dtype=np.float64),
        }
    out["pool"] = net.pool is not None
    out["input"] = {
        "scale": net.input_scale,
        "zero_point": net.input_zero_point,
        "bits": net.input_bits,
    }
    if input_hw is not None:
        plans = plan_activations(_network_geometries(net), input_hw)
        conv_plans = [p for p in plans if p.kind != "fc"]
        for entry, p in zip(layers, conv_plans):
            entry["activations"] = {
                "in_shape": list(p.in_shape),
                "out_shape": list(p.out_shape),
                "rw_bytes": p.rw_bytes,
                "physical_out_bytes": p.physical_out_bytes,
            }
        # Physical bytes of the container-width ping-pong pair a
        # narrow-native runtime allocates for this geometry (equals the
        # Eq. 7 peak for pure 8-bit networks, >= it for sub-byte).
        # ActivationArena.__init__ only sizes slabs (no allocation), so
        # the runtime's own slot-sizing rule is the single source of truth.
        physical = ActivationArena(plans).physical_code_bytes(1)
        out["arena"] = {
            "input_hw": [int(input_hw[0]), int(input_hw[1])],
            "rw_peak_bytes": logical_rw_peak_bytes(plans),
            "physical_code_bytes": physical,
            "per_layer_rw_bytes": [p.rw_bytes for p in plans],
        }
    return out


def validate_export(exported: Dict) -> Dict[str, int]:
    """Validate the packed narrow weight blobs of an exported network.

    For every conv layer and the classifier: the packed blob must have
    exactly the byte length the Table 1 accounting predicts, match its
    recorded CRC32 (packing masks codes into range by construction, so a
    checksum — not a range scan — is what detects a corrupted blob),
    unpack into its declared narrow container dtype, and contain one
    code per weight element.  Returns summary counts (``layers``,
    ``weight_bytes``); raises ``ValueError`` on the first violation —
    the deployment-side integrity check a firmware loader would run
    before committing the image to Flash.
    """
    entries = list(exported["conv_layers"])
    if "classifier" in exported:
        entries.append(exported["classifier"])
    total = 0
    for entry in entries:
        name = entry["name"]
        bits = int(entry["w_bits"])
        count = int(np.prod(entry["weight_shape"]))
        blob = np.asarray(entry["weights_packed"], dtype=np.uint8)
        expected = packed_size_bytes(count, bits)
        if blob.size != expected or entry["weight_bytes"] != expected:
            raise ValueError(
                f"{name}: packed blob is {blob.size} B, expected {expected} B "
                f"for {count} UINT{bits} codes"
            )
        # CRC straight off the array's buffer: tobytes() would briefly
        # duplicate every weight blob, defeating the mmap load path.
        crc = zlib.crc32(np.ascontiguousarray(blob).data)
        if crc != int(entry["weights_crc32"]):
            raise ValueError(
                f"{name}: packed blob checksum {crc:#010x} does not match the "
                f"recorded CRC32 {int(entry['weights_crc32']):#010x}"
            )
        codes = unpack_subbyte(blob, bits, count)
        declared = np.dtype(entry["container_dtype"])
        if codes.dtype != declared or codes.dtype != container_dtype(bits):
            raise ValueError(
                f"{name}: blob unpacks to {codes.dtype}, declared container "
                f"is {declared}"
            )
        total += expected
    return {"layers": len(entries), "weight_bytes": total}


def _unpack_entry_weights(entry: Dict) -> np.ndarray:
    """Unpack one export entry's weight blob back into container codes."""
    bits = int(entry["w_bits"])
    shape = tuple(int(d) for d in entry["weight_shape"])
    count = int(np.prod(shape)) if shape else 1
    codes = unpack_subbyte(
        np.asarray(entry["weights_packed"], dtype=np.uint8), bits, count
    )
    return codes.reshape(shape)


def _import_requant(entry: Dict):
    """Rebuild the requantization params dataclass of one export entry."""
    if "requant" not in entry:
        raise ValueError(
            f"{entry.get('name', '<layer>')}: export carries no 'requant' "
            f"section — re-export the network with export_network() to get "
            f"a round-trippable dict"
        )
    r = entry["requant"]
    w = _unpack_entry_weights(entry)
    strategy = entry["strategy"]
    if strategy == "ICNParams":
        return ICNParams(
            weights_q=w,
            z_w=np.asarray(r["z_w"]),
            z_x=int(r["z_x"]),
            z_y=int(r["z_y"]),
            bq=np.asarray(r["bq"]),
            m0=np.asarray(r["m0"]),
            n0=np.asarray(r["n0"]),
            out_bits=int(entry["out_bits"]),
            w_bits=int(entry["w_bits"]),
            per_channel=bool(r["per_channel"]),
        )
    if strategy == "FoldedBNParams":
        return FoldedBNParams(
            weights_q=w,
            z_w=int(r["z_w"]),
            z_x=int(r["z_x"]),
            z_y=int(r["z_y"]),
            bq=np.asarray(r["bq"]),
            m0=int(r["m0"]),
            n0=int(r["n0"]),
            out_bits=int(entry["out_bits"]),
            w_bits=int(entry["w_bits"]),
        )
    if strategy == "ThresholdParams":
        return ThresholdParams(
            weights_q=w,
            z_w=np.asarray(r["z_w"]),
            z_x=int(r["z_x"]),
            thresholds=np.asarray(r["thresholds"]),
            direction=np.asarray(r["direction"]),
            out_bits=int(entry["out_bits"]),
            w_bits=int(entry["w_bits"]),
        )
    raise ValueError(f"unknown requantization strategy {strategy!r}")


def import_network(exported: Dict) -> IntegerNetwork:
    """Rebuild an :class:`IntegerNetwork` from an :func:`export_network` dict.

    The inverse of :func:`export_network`: weights are unpacked from the
    narrow blobs into their container dtype and every requantization
    parameter is restored exactly, so the imported network's
    ``forward``/``compile`` are bit-identical to the original's.  Run
    :func:`validate_export` first when the dict crossed a disk or
    network boundary — import itself trusts the blobs.
    """
    conv_layers = []
    for entry in exported["conv_layers"]:
        conv_layers.append(
            IntegerConvLayer(
                name=str(entry["name"]),
                kind=str(entry["kind"]),
                stride=int(entry["stride"]),
                padding=int(entry["padding"]),
                params=_import_requant(entry),
                in_bits=int(entry["in_bits"]),
                out_bits=int(entry["out_bits"]),
                in_scale=float(entry.get("in_scale", 0.0)),
                out_scale=float(entry.get("out_scale", 0.0)),
            )
        )
    classifier = None
    if "classifier" in exported:
        cl = exported["classifier"]
        if "s_w" not in cl:
            raise ValueError(
                "classifier entry carries no dequantization state — "
                "re-export the network with export_network()"
            )
        bias = cl.get("bias")
        classifier = IntegerLinearLayer(
            name=str(cl["name"]),
            weights_q=_unpack_entry_weights(cl),
            z_w=np.asarray(cl["z_w"]),
            s_w=np.asarray(cl["s_w"], dtype=np.float64),
            z_x=int(cl["z_x"]),
            s_in=float(cl["s_in"]),
            bias=None if bias is None else np.asarray(bias, dtype=np.float64),
            in_bits=int(cl["in_bits"]),
            w_bits=int(cl["w_bits"]),
        )
    inp = exported["input"]
    return IntegerNetwork(
        conv_layers=conv_layers,
        pool=IntegerAvgPool() if exported.get("pool", True) else None,
        classifier=classifier,
        input_scale=float(inp["scale"]),
        input_zero_point=int(inp["zero_point"]),
        input_bits=int(inp["bits"]),
    )


def deployment_size_bytes(net: IntegerNetwork) -> Dict[str, int]:
    """Flash footprint of the exported network, split by contribution."""
    exported = export_network(net)
    weight_bytes = sum(l["weight_bytes"] for l in exported["conv_layers"])
    aux_bytes = sum(l["aux_bytes"] for l in exported["conv_layers"])
    if "classifier" in exported:
        weight_bytes += exported["classifier"]["weight_bytes"]
        aux_bytes += exported["classifier"]["aux_bytes"]
    return {
        "weights": int(weight_bytes),
        "aux_params": int(aux_bytes),
        "total": int(weight_bytes + aux_bytes),
    }
