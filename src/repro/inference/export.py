"""Deployment export: serialise an integer network into a flat dictionary
and account for its on-device (Flash) size.

The export format mirrors what a firmware image would embed: packed weight
blobs plus the per-layer static parameter vectors of Table 1.  It is used
by the end-to-end examples and by tests that check the deployment size
matches the analytical memory model.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.icn import FoldedBNParams, ICNParams, ThresholdParams
from repro.inference.arena import (
    ActivationArena,
    LayerGeometry,
    logical_rw_peak_bytes,
    plan_activations,
)
from repro.inference.engine import IntegerNetwork
from repro.inference.kernels import gemm_reduction_length, resolve_gemm_backend
from repro.inference.packing import (
    container_dtype,
    pack_subbyte,
    packed_size_bytes,
    unpack_subbyte,
)

# Byte widths of the auxiliary arrays (§4.1 of the paper).
_BYTES = {"bq": 4, "m0": 4, "n0": 1, "thr": 4, "z_scalar": 1, "z_pc": 2}


def _layer_aux_bytes(params) -> int:
    """Static-parameter bytes of one layer, by requantization strategy."""
    if isinstance(params, ICNParams):
        c_o = params.out_channels
        zw_bytes = c_o * _BYTES["z_pc"] if params.per_channel else _BYTES["z_scalar"]
        return (
            2 * _BYTES["z_scalar"]  # Zx, Zy
            + zw_bytes
            + c_o * (_BYTES["bq"] + _BYTES["m0"] + _BYTES["n0"])
        )
    if isinstance(params, FoldedBNParams):
        c_o = params.bq.shape[0]
        return (
            2 * _BYTES["z_scalar"]
            + _BYTES["z_scalar"]
            + c_o * _BYTES["bq"]
            + _BYTES["m0"]
            + _BYTES["n0"]
        )
    if isinstance(params, ThresholdParams):
        c_o = params.thresholds.shape[0]
        return (
            2 * _BYTES["z_scalar"]
            + c_o * _BYTES["z_pc"]
            + params.thresholds.size * _BYTES["thr"]
        )
    raise TypeError(f"unsupported params type {type(params)!r}")


def _network_geometries(net: IntegerNetwork) -> List[LayerGeometry]:
    """Activation-planning geometries of the deployment graph, matching
    what ``net.compile()`` defaults would plan: auto GEMM dispatch, and
    ``fused_depthwise=False`` for planning purposes — the "auto" stencil
    dispatch keeps the conservative im2col-sized scratch plan, exactly
    like ``ExecutionPlan._geometries`` for a default-compiled plan."""
    geoms = [
        LayerGeometry.from_weights(
            name=layer.name, kind=layer.kind,
            weight_shape=layer.params.weights_q.shape,
            stride=layer.stride, padding=layer.padding,
            in_bits=layer.in_bits, w_bits=layer.params.w_bits,
            out_bits=layer.out_bits,
            fused_depthwise=False,
            requant_kind=(
                "thr" if isinstance(layer.params, ThresholdParams) else "fixed"
            ),
        )
        for layer in net.conv_layers
    ]
    if net.classifier is not None:
        cl = net.classifier
        geoms.append(
            LayerGeometry.from_weights(
                name=cl.name, kind="fc", weight_shape=cl.weights_q.shape,
                stride=1, padding=0, in_bits=cl.in_bits, w_bits=cl.w_bits,
                out_bits=cl.in_bits,
            )
        )
    return geoms


def export_network(net: IntegerNetwork, input_hw: Optional[Tuple[int, int]] = None) -> Dict:
    """Serialise the network into a nested dict of plain arrays/ints.

    With ``input_hw`` the export also carries the runtime activation
    plan: per-layer activation element counts plus the Eq. 7 RW peak, so
    a deployment can assert ``arena["rw_peak_bytes"] <= device RAM``
    without re-deriving the geometry cascade.
    """
    layers = []
    for layer in net.conv_layers:
        p = layer.params
        w_shape = p.weights_q.shape
        k_reduction = gemm_reduction_length(layer.kind, w_shape)
        entry = {
            "name": layer.name,
            "kind": layer.kind,
            "stride": layer.stride,
            "padding": layer.padding,
            "w_bits": p.w_bits,
            "out_bits": p.out_bits,
            "in_bits": layer.in_bits,
            "weight_shape": list(w_shape),
            "weights_packed": pack_subbyte(p.weights_q, p.w_bits),
            "weight_bytes": packed_size_bytes(int(p.weights_q.size), p.w_bits),
            # Narrow container the packed blob unpacks into on the host
            # (uint8 for every paper width — never int64).
            "container_dtype": container_dtype(p.w_bits).name,
            "weights_crc32": zlib.crc32(pack_subbyte(p.weights_q, p.w_bits).tobytes()),
            "aux_bytes": _layer_aux_bytes(p),
            "strategy": type(p).__name__,
            # Host-emulation dispatch decision (recorded so a firmware
            # image and the emulator agree on the accumulator contract).
            "k_reduction": int(k_reduction),
            "gemm_backend": resolve_gemm_backend("auto", k_reduction, layer.in_bits, p.w_bits),
        }
        layers.append(entry)
    out = {"conv_layers": layers}
    if net.classifier is not None:
        cl = net.classifier
        out["classifier"] = {
            "name": cl.name,
            "w_bits": cl.w_bits,
            "k_reduction": gemm_reduction_length("fc", cl.weights_q.shape),
            "gemm_backend": resolve_gemm_backend(
                "auto", gemm_reduction_length("fc", cl.weights_q.shape), cl.in_bits, cl.w_bits
            ),
            "weight_shape": list(cl.weights_q.shape),
            "weights_packed": pack_subbyte(cl.weights_q, cl.w_bits),
            "weight_bytes": packed_size_bytes(int(cl.weights_q.size), cl.w_bits),
            "container_dtype": container_dtype(cl.w_bits).name,
            "weights_crc32": zlib.crc32(pack_subbyte(cl.weights_q, cl.w_bits).tobytes()),
            "aux_bytes": int(np.asarray(cl.s_w).size) * (_BYTES["bq"] + _BYTES["z_pc"])
            + (0 if cl.bias is None else cl.bias.size * 4),
            "strategy": "linear",
        }
    out["input"] = {
        "scale": net.input_scale,
        "zero_point": net.input_zero_point,
        "bits": net.input_bits,
    }
    if input_hw is not None:
        plans = plan_activations(_network_geometries(net), input_hw)
        conv_plans = [p for p in plans if p.kind != "fc"]
        for entry, p in zip(layers, conv_plans):
            entry["activations"] = {
                "in_shape": list(p.in_shape),
                "out_shape": list(p.out_shape),
                "rw_bytes": p.rw_bytes,
                "physical_out_bytes": p.physical_out_bytes,
            }
        # Physical bytes of the container-width ping-pong pair a
        # narrow-native runtime allocates for this geometry (equals the
        # Eq. 7 peak for pure 8-bit networks, >= it for sub-byte).
        # ActivationArena.__init__ only sizes slabs (no allocation), so
        # the runtime's own slot-sizing rule is the single source of truth.
        physical = ActivationArena(plans).physical_code_bytes(1)
        out["arena"] = {
            "input_hw": [int(input_hw[0]), int(input_hw[1])],
            "rw_peak_bytes": logical_rw_peak_bytes(plans),
            "physical_code_bytes": physical,
            "per_layer_rw_bytes": [p.rw_bytes for p in plans],
        }
    return out


def validate_export(exported: Dict) -> Dict[str, int]:
    """Validate the packed narrow weight blobs of an exported network.

    For every conv layer and the classifier: the packed blob must have
    exactly the byte length the Table 1 accounting predicts, match its
    recorded CRC32 (packing masks codes into range by construction, so a
    checksum — not a range scan — is what detects a corrupted blob),
    unpack into its declared narrow container dtype, and contain one
    code per weight element.  Returns summary counts (``layers``,
    ``weight_bytes``); raises ``ValueError`` on the first violation —
    the deployment-side integrity check a firmware loader would run
    before committing the image to Flash.
    """
    entries = list(exported["conv_layers"])
    if "classifier" in exported:
        entries.append(exported["classifier"])
    total = 0
    for entry in entries:
        name = entry["name"]
        bits = int(entry["w_bits"])
        count = int(np.prod(entry["weight_shape"]))
        blob = np.asarray(entry["weights_packed"], dtype=np.uint8)
        expected = packed_size_bytes(count, bits)
        if blob.size != expected or entry["weight_bytes"] != expected:
            raise ValueError(
                f"{name}: packed blob is {blob.size} B, expected {expected} B "
                f"for {count} UINT{bits} codes"
            )
        crc = zlib.crc32(blob.tobytes())
        if crc != int(entry["weights_crc32"]):
            raise ValueError(
                f"{name}: packed blob checksum {crc:#010x} does not match the "
                f"recorded CRC32 {int(entry['weights_crc32']):#010x}"
            )
        codes = unpack_subbyte(blob, bits, count)
        declared = np.dtype(entry["container_dtype"])
        if codes.dtype != declared or codes.dtype != container_dtype(bits):
            raise ValueError(
                f"{name}: blob unpacks to {codes.dtype}, declared container "
                f"is {declared}"
            )
        total += expected
    return {"layers": len(entries), "weight_bytes": total}


def deployment_size_bytes(net: IntegerNetwork) -> Dict[str, int]:
    """Flash footprint of the exported network, split by contribution."""
    exported = export_network(net)
    weight_bytes = sum(l["weight_bytes"] for l in exported["conv_layers"])
    aux_bytes = sum(l["aux_bytes"] for l in exported["conv_layers"])
    if "classifier" in exported:
        weight_bytes += exported["classifier"]["weight_bytes"]
        aux_bytes += exported["classifier"]["aux_bytes"]
    return {
        "weights": int(weight_bytes),
        "aux_params": int(aux_bytes),
        "total": int(weight_bytes + aux_bytes),
    }
