"""Compile-then-execute inference: the :class:`ExecutionPlan` subsystem.

``IntegerNetwork.compile()`` walks the deployment graph once and hoists
everything that does not depend on the input batch out of the
per-inference path:

* weight tensors are zero-point-shifted and reshaped to GEMM form once
  (the interpreted engine re-shifts and re-reshapes them on every call);
* each layer's GEMM backend is fixed up front using the *weight-data
  refined* accumulator bound ``max_o sum_k |W_ok - Z_w| * max|X - Z_x|``
  (:func:`repro.inference.kernels.refined_max_abs_accumulator`): float32
  BLAS when that bound fits the 24-bit significand (2x the throughput of
  float64 — most wide pointwise layers clear it even though the a-priori
  corner-case bound does not), float64 BLAS below ``2^53``, and the
  K-tiled int64 einsum as the unbounded reference fallback; forcing
  ``backend="int32"`` runs the narrow MCU-style integer path (int32
  accumulators) wherever the ``2^31`` bound allows;
* depthwise layers take a fused stencil path that never materialises the
  im2col column tensor (per-tap strided multiply-adds, same exactness
  dispatch, stride-1 and stride-2 — see
  :func:`repro.inference.kernels.depthwise_stencil_accumulate`);
* requantization constants (``m0``/``n0``/``bq``, threshold tables) are
  pre-reshaped for the flat ``(N, C, L)`` accumulator layout and the
  fixed-point shift is split into its divisor / left-shift parts;
* range validation runs once at the network boundary (``validate=True``
  by default there) instead of per layer inside the hot loop;
* activation codes live at their *container width* end to end
  (``narrow=True``, the default): uint8 slabs for every <=8-bit
  activation, requantized accumulators streamed through a small
  cache-blocked int64 scratch straight into the narrow code slab — the
  arena's physical code bytes match the paper's Eq. 7 accounting for
  8-bit networks instead of inflating 8x through int64.  ``narrow=False``
  restores the legacy int64-code pipeline for A/B comparisons;
* activation and scratch buffers come from a static
  :class:`~repro.inference.arena.ActivationArena` sized at plan time, so
  steady-state inference performs no per-layer allocations and peak host
  activation memory equals the compile-time plan (``use_arena=False``
  restores per-call allocation for A/B tests).

The plan executes bit-identically to ``IntegerNetwork.forward`` — the
tests assert equality against the int64 einsum reference — and
``run_batched`` streams large evaluation sweeps through the arena in
fixed-size tiles, writing into a preallocated result, so activation
memory stays bounded by one tile regardless of the sweep size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.icn import (
    M0_FRACTIONAL_BITS,
    FoldedBNParams,
    ICNParams,
    ThresholdParams,
)
from repro.inference.arena import (
    ActivationArena,
    LayerGeometry,
    plan_activations,
    requant_scratch_bytes,
)
from repro.inference.kernels import (
    FLOAT32_EXACT_BITS,
    INT32_EXACT_BITS,
    check_codes,
    depthwise_prefers_stencil,
    depthwise_stencil_accumulate,
    exact_gemm_dtype_for_bound,
    gemm_reduction_length,
    int_avg_pool_global,
    int_einsum_gemm,
    max_abs_accumulator,
    quantize_input_codes,
    refined_max_abs_accumulator,
    shift_weights,
)
from repro.inference.packing import container_dtype
from repro.nn.functional import conv_output_size, im2col

_INT64 = np.dtype(np.int64)

#: Most K-chunks a split-K sgemm layer may use.  Each chunk is one sgemm
#: call plus one accumulate pass; past a few chunks the float64 GEMM is
#: the better deal again.
_SPLIT_K_MAX_CHUNKS = 4


def _split_k_chunks(w_shift: np.ndarray, z_x: int, x_bits: int):
    """Greedy K-partition whose per-chunk refined bounds fit float32.

    A float64-tier GEMM whose refined bound only just exceeds ``2^24``
    can run as a few float32 GEMMs over reduction chunks: every partial
    sum inside one chunk is bounded by that chunk's refined bound (sound
    per output channel, any summation order), so each sgemm is exact,
    and the chunk results — exact integers — are summed exactly in
    float64.  Returns the chunk boundaries, or None when a single chunk
    suffices (plain sgemm) or more than ``_SPLIT_K_MAX_CHUNKS`` would be
    needed (float64 stays the better deal).
    """
    x_mag = max(int(z_x), 2 ** x_bits - 1 - int(z_x))
    contrib = np.abs(w_shift.reshape(w_shift.shape[0], -1)).astype(np.int64) * x_mag
    k = contrib.shape[1]
    limit = 1 << FLOAT32_EXACT_BITS
    chunks = []
    start = 0
    run = np.zeros(contrib.shape[0], dtype=np.int64)
    for j in range(k):
        run += contrib[:, j]
        if int(run.max()) >= limit and j > start:
            chunks.append((start, j))
            start = j
            run = contrib[:, j].copy()
        if len(chunks) >= _SPLIT_K_MAX_CHUNKS:
            return None
    chunks.append((start, k))
    if len(chunks) < 2:
        return None
    # Soundness guard (a single column can never exceed the limit for
    # the paper's bit widths, but refuse rather than split unsoundly).
    for k0, k1 in chunks:
        if int(contrib[:, k0:k1].sum(axis=1).max()) >= limit:
            return None
    return chunks


def _resolve_compiled_backend(backend: str, bound: int, k: int,
                              x_bits: int, w_bits: int) -> Tuple[str, np.dtype]:
    """Backend + accumulator dtype for one compiled layer.

    ``bound`` is the refined (weight-data) worst-case ``|Phi|``; it is
    never larger than the a-priori ``k * (2^Qx-1) * (2^Qw-1)`` corner
    case, so layers whose corner case overflows float32 often still get
    the exact sgemm tier here.
    """
    float_dtype = exact_gemm_dtype_for_bound(bound)
    if backend == "auto":
        if float_dtype is not None:
            return "blas", np.dtype(float_dtype)
        return "int64", _INT64
    if backend == "blas":
        if float_dtype is None:
            raise ValueError(
                f"float GEMM is not exact: refined worst-case |Phi| = {bound} "
                f">= 2^53 (k={k}, Qx={x_bits}, Qw={w_bits})"
            )
        return "blas", np.dtype(float_dtype)
    if backend == "int32":
        if bound >= (1 << INT32_EXACT_BITS):
            raise ValueError(
                f"int32 accumulation overflows: refined worst-case |Phi| = "
                f"{bound} >= 2^{INT32_EXACT_BITS} (k={k}, Qx={x_bits}, Qw={w_bits})"
            )
        return "int32", np.dtype(np.int32)
    if backend == "int64":
        return "int64", _INT64
    raise ValueError(
        f"unknown GEMM backend {backend!r}; expected one of "
        "('auto', 'blas', 'int32', 'int64')"
    )


# ----------------------------------------------------------------------
# Compiled requantization (bit-identical to repro.core.icn on (N, C, L))
# ----------------------------------------------------------------------
class _CompiledFixedPointRequant:
    """Eq. 5 with constants pre-broadcast for the (N, C, L) accumulator.

    Serves both ICN (per-channel ``bq``/``m0``/``n0``) and folded-BN
    (per-channel ``bq``, scalar multiplier) — they share the identical
    fixed-point hot loop.  The divide of ``icn._fixed_point_scale`` is a
    floor division by ``2^pos``, which over int64 equals an arithmetic
    right shift — several times faster than ``floor_divide``.

    Two entry points, bit-identical by construction (and by test):

    ``__call__(phi)``
        The legacy wide path: every step runs in place on the
        caller-owned int64 accumulator.
    ``store(phi, out, scratch)``
        The narrow path: the accumulator (float32/float64/int32/int64)
        is tiled through the small int64 ``scratch`` in cache-resident
        chunks — Eq. 5's Q31 multiply needs 64-bit intermediates — and
        each requantized chunk is stored straight into the
        container-width ``out`` codes, so the full-size int64 round trip
        of the wide path never touches memory.
    """

    kind = "fixed"

    def __init__(self, bq: np.ndarray, m0, n0, z_y: int, out_bits: int):
        self.bq = bq
        self.m0 = m0
        shift = M0_FRACTIONAL_BITS - n0
        # Same guard as icn._fixed_point_scale: divisor shift clamped to
        # [0, 62], residual negative shift applied as a left shift.
        self.rshift = np.minimum(np.maximum(shift, 0), 62)
        self.lshift = np.maximum(-shift, 0)
        self.z_y = int(z_y)
        self.qmax = 2 ** out_bits - 1

    # hot
    def _steps(self, phi: np.ndarray) -> np.ndarray:
        phi += self.bq
        phi *= self.m0
        np.right_shift(phi, self.rshift, out=phi)
        np.left_shift(phi, self.lshift, out=phi)
        phi += self.z_y
        np.clip(phi, 0, self.qmax, out=phi)
        return phi

    def __call__(self, phi: np.ndarray) -> np.ndarray:
        # ``phi`` is owned by the caller's layer and safe to mutate.
        return self._steps(phi)

    # hot
    def store(self, phi: np.ndarray, out: np.ndarray, scratch: np.ndarray) -> np.ndarray:
        n, c, l = phi.shape
        lc = max(1, min(l, scratch.size // max(c, 1)))
        for b in range(n):
            for l0 in range(0, l, lc):
                l1 = min(l0 + lc, l)
                s = scratch[: c * (l1 - l0)].reshape(1, c, l1 - l0)
                np.copyto(s, phi[b:b + 1, :, l0:l1], casting="unsafe")
                self._steps(s)
                np.copyto(out[b:b + 1, :, l0:l1], s, casting="unsafe")
        return out


def _compile_icn_requant(params: ICNParams) -> _CompiledFixedPointRequant:
    c_o = params.out_channels
    return _CompiledFixedPointRequant(
        bq=params.bq.reshape(1, c_o, 1),
        m0=params.m0.reshape(1, c_o, 1),
        n0=params.n0.reshape(1, c_o, 1),
        z_y=params.z_y,
        out_bits=params.out_bits,
    )


def _compile_folded_requant(params: FoldedBNParams) -> _CompiledFixedPointRequant:
    return _CompiledFixedPointRequant(
        bq=params.bq.reshape(1, -1, 1),
        m0=np.int64(params.m0),
        n0=np.int64(params.n0),
        z_y=params.z_y,
        out_bits=params.out_bits,
    )


class _CompiledThresholdRequant:
    """Per-channel threshold tables pre-sliced/pre-reversed for searchsorted.

    ``__call__`` requantizes an int64 accumulator in place (legacy wide
    path); ``store`` consumes the accumulator one image at a time through
    the int64 scratch — ``searchsorted`` compares in the integer domain —
    and writes the clipped levels into the container-width code slab.
    """

    kind = "thr"

    def __init__(self, params: ThresholdParams):
        self.levels = 2 ** params.out_bits
        self.tables: List[tuple] = []
        for c in range(params.thresholds.shape[0]):
            th = params.thresholds[c, 1:]
            if params.direction[c] > 0:
                self.tables.append((np.ascontiguousarray(th), 1))
            else:
                self.tables.append((np.ascontiguousarray(th[::-1]), -1))

    def _levels_for(self, vals: np.ndarray, table: np.ndarray, direction: int) -> np.ndarray:
        if direction > 0:
            y = np.searchsorted(table, vals, side="right")
        else:
            y = self.levels - 1 - np.searchsorted(table, vals, side="left")
        return y

    def __call__(self, phi: np.ndarray) -> np.ndarray:
        for c, (table, direction) in enumerate(self.tables):
            vals = phi[:, c, :]
            y = self._levels_for(vals, table, direction)
            np.clip(y, 0, self.levels - 1, out=vals)
        return phi

    # hot
    def store(self, phi: np.ndarray, out: np.ndarray, scratch: np.ndarray) -> np.ndarray:
        n, c, l = phi.shape
        for b in range(n):
            s = scratch[: c * l].reshape(c, l)
            np.copyto(s, phi[b], casting="unsafe")
            for ch, (table, direction) in enumerate(self.tables):
                y = self._levels_for(s[ch], table, direction)
                np.clip(y, 0, self.levels - 1, out=y)
                np.copyto(out[b, ch], y, casting="unsafe")
        return out


def _compile_requant(params):
    if isinstance(params, ICNParams):
        return _compile_icn_requant(params)
    if isinstance(params, FoldedBNParams):
        return _compile_folded_requant(params)
    if isinstance(params, ThresholdParams):
        return _CompiledThresholdRequant(params)
    raise TypeError(f"unsupported requantization parameters {type(params)!r}")


# ----------------------------------------------------------------------
# Compiled layers
# ----------------------------------------------------------------------
class CompiledConvLayer:
    """One conv/depthwise layer with all static state precomputed.

    ``validate`` range-checks the weight codes once at compile time —
    the same guard the interpreted engine applies on every forward, at
    zero per-inference cost (and required for the float exactness bound,
    which assumes codes within [0, 2^Q - 1]).

    ``fused_depthwise`` (depthwise only) selects the im2col-free stencil
    path: ``True`` forces it, ``False`` forces the unfold+matmul path,
    and ``"auto"`` (default) picks per call — stencil exactly when the
    batch's im2col column tensor would blow the cache threshold and turn
    the layer memory-bound (:func:`~repro.inference.kernels.depthwise_prefers_stencil`).

    ``narrow`` stores the output codes at container width (uint8 for
    <=8-bit activations) and requantizes through the chunked scratch;
    ``narrow=False`` keeps the legacy int64 code pipeline.

    Called with an :class:`~repro.inference.arena.ActivationArena`, the
    layer computes entirely inside preallocated slab views and returns a
    view into the arena's code slot ``slot``; called without, it keeps
    the fresh-allocation behaviour (the reference for the arena tests).
    """

    def __init__(self, layer, backend: str = "auto", validate: bool = True,
                 fused_depthwise="auto", narrow: bool = True,
                 refined_bound: bool = True):
        p = layer.params
        self.name = layer.name
        self.kind = layer.kind
        self.stride = int(layer.stride)
        self.padding = int(layer.padding)
        self.in_bits = int(layer.in_bits)
        self.out_bits = int(layer.out_bits)
        self.w_bits = int(p.w_bits)
        self.narrow = bool(narrow)
        w = p.weights_q
        if validate:
            check_codes(f"{self.name} weight", w, self.w_bits)
        self.kh, self.kw = int(w.shape[2]), int(w.shape[3])
        self.out_channels = int(w.shape[0])
        self.in_channels = self.out_channels if self.kind == "dw" else int(w.shape[1])
        self.k_reduction = gemm_reduction_length(self.kind, w.shape)
        self.z_x = int(p.z_x)
        w_shift = shift_weights(w, p.z_w, self.out_channels)
        # Refined accumulator bound: the actual shifted weights are in
        # hand, so dispatch on max_o sum_k |W'| * max|X - Zx| instead of
        # the a-priori corner case (exact for codes within range, which
        # compile()/boundary validation guarantees).  ``refined_bound=False``
        # (or disabling validation, which voids the range guarantee the
        # refinement relies on) restores the a-priori corner-case tiering.
        self.acc_bound = max_abs_accumulator(self.k_reduction, self.in_bits, self.w_bits)
        if refined_bound and validate:
            self.acc_bound = min(
                self.acc_bound,
                refined_max_abs_accumulator(w_shift, self.z_x, self.in_bits),
            )
        self.backend, gemm_dtype = _resolve_compiled_backend(
            backend, self.acc_bound, self.k_reduction, self.in_bits, self.w_bits
        )
        self.gemm_dtype = gemm_dtype
        self.acc_dtype = gemm_dtype
        # Split-K sgemm: a float64-tier pointwise layer whose reduction
        # can be partitioned into a few chunks each individually under
        # the float32 bound runs as chunked sgemms (2x dgemm throughput)
        # summed exactly in float64.
        self.split_k = None
        if (
            self.backend == "blas" and gemm_dtype == np.float64
            and refined_bound and validate
            and self.kind == "pw" and self.kh == 1 and self.kw == 1
            and self.stride == 1 and self.padding == 0
        ):
            self.split_k = _split_k_chunks(w_shift, self.z_x, self.in_bits)
            if self.split_k is not None:
                self.gemm_dtype = np.dtype(np.float32)
                self.acc_dtype = np.dtype(np.float64)
        self.out_dtype = (
            container_dtype(self.out_bits) if self.narrow else _INT64
        )
        if fused_depthwise is True:
            mode = "always"
        elif fused_depthwise is False:
            mode = "never"
        elif fused_depthwise == "auto":
            mode = "auto"
        else:
            raise ValueError(
                f"fused_depthwise must be True, False or 'auto', got {fused_depthwise!r}"
            )
        self.dw_mode = mode if self.kind == "dw" else ""
        # "Always" is what the arena planner treats as fused (it shrinks
        # the cols slab to the tap temporary); "auto" keeps the
        # conservative im2col-sized plan since either path may run.
        self.fused = self.dw_mode == "always"
        w2 = np.ascontiguousarray(
            w_shift.reshape(self.out_channels, -1).astype(self.gemm_dtype)
        )
        self.w2 = w2
        self.w2_chunks = (
            None if self.split_k is None
            else [np.ascontiguousarray(w2[:, k0:k1]) for k0, k1 in self.split_k]
        )
        self.gemm_itemsize = self.gemm_dtype.itemsize
        if self.kind == "dw":
            self.w_cols = self.w2  # (C, kh*kw) stencil form
            if self.backend == "blas" and self.dw_mode != "always":
                # (C, 1, kh*kw) batched-matmul form for the im2col path
                # (the integer einsum contraction keeps the flat form).
                self.w2 = np.ascontiguousarray(self.w2[:, None, :])
        self.requant = _compile_requant(p)
        self.requant_kind = self.requant.kind

    def _accumulate_int(self, cols: np.ndarray, out=None) -> np.ndarray:
        """Integer einsum contraction (int64 reference / forced int32)."""
        if self.kind == "dw":
            return np.einsum("ck,nckl->ncl", self.w2, cols, optimize=True, out=out)
        return int_einsum_gemm(self.w2, cols, out=out)

    # hot
    def _shift_pad(self, x_codes: np.ndarray, dtype, arena) -> np.ndarray:
        """Zero-point shift and zero-pad in a single (or zero) allocation.

        Writing ``x - Z_x`` straight into the interior of the padded
        buffer fuses what the interpreted path does in two full-tensor
        passes (``subtract`` then ``np.pad``).  The subtraction loop is
        pinned to the GEMM dtype so narrow (uint8) input containers are
        widened on the fly, never wrapped.
        """
        p = self.padding
        n, c, h, w = x_codes.shape
        if p == 0:
            if arena is not None:
                out = arena.pad(dtype, (n, c, h, w))
                return np.subtract(x_codes, self.z_x, out=out, dtype=dtype)
            return np.subtract(x_codes, self.z_x, dtype=dtype)
        shape = (n, c, h + 2 * p, w + 2 * p)
        if arena is not None:
            out = arena.pad(dtype, shape)
            out.fill(0)
        else:
            out = np.zeros(shape, dtype=dtype)  # analysis: ignore[hot-alloc] — arena-less fallback
        np.subtract(x_codes, self.z_x, out=out[:, :, p:-p, p:-p], dtype=dtype)
        return out

    # hot
    def _unfold(self, x_shift: np.ndarray, arena, n: int, l_out: int) -> np.ndarray:
        """im2col columns — a pure view for 1x1/s1, an arena slab otherwise."""
        if self.kh == 1 and self.kw == 1 and self.stride == 1:
            return x_shift.reshape(n, self.in_channels, l_out)
        shape = (n, self.in_channels * self.kh * self.kw, l_out)
        if arena is not None:
            return im2col(x_shift, self.kh, self.kw, self.stride, 0,
                          out=arena.cols(x_shift.dtype, shape))
        return im2col(x_shift, self.kh, self.kw, self.stride, 0, contiguous=False)

    # hot
    def _requant_scratch(self, n: int, l_out: int, arena) -> np.ndarray:
        if arena is not None:
            return arena.requant_scratch()
        # Same sizing rule as the arena planner (single source of truth).
        nbytes = requant_scratch_bytes(
            self.kind, self.requant_kind, self.out_channels,
            self.out_channels * l_out, np.dtype(self.out_dtype).itemsize,
        )
        return np.empty(max(1, nbytes // 8), dtype=np.int64)  # analysis: ignore[hot-alloc] — arena-less fallback

    # hot
    def __call__(self, x_codes: np.ndarray, arena: Optional[ActivationArena] = None,
                 slot: int = 0) -> np.ndarray:
        n, c, h, w = x_codes.shape
        oh = conv_output_size(h, self.kh, self.stride, self.padding)
        ow = conv_output_size(w, self.kw, self.stride, self.padding)
        l_out = oh * ow
        out_shape = (n, self.out_channels, l_out)
        fused = self.kind == "dw" and (
            self.dw_mode == "always"
            or (self.dw_mode == "auto" and depthwise_prefers_stencil(
                n, c, self.kh, self.kw, oh, ow, self.gemm_itemsize,
                stride=self.stride))
        )
        # Narrow layers always accumulate into the acc slab (the codes
        # slab is too narrow for the accumulator); wide int64 layers keep
        # the legacy shortcut of contracting straight into the int64
        # codes slab.
        acc_in_codes = (not self.narrow) and self.gemm_dtype == _INT64
        x_shift = self._shift_pad(x_codes, self.gemm_dtype, arena)
        if fused:
            # Per-tap strided stencil; the cols slab serves as the tap
            # temporary (it is never used for columns on this path).
            if arena is None:
                acc = None
            elif acc_in_codes:
                acc = arena.codes(slot, (n, c, oh, ow))
            else:
                acc = arena.acc(self.gemm_dtype, (n, c, oh, ow))
            tmp = (arena.cols(self.gemm_dtype, (n, c, oh, ow))
                   if arena is not None and self.k_reduction > 1 else None)
            phi = depthwise_stencil_accumulate(
                x_shift, self.w_cols, self.kh, self.kw, self.stride, out=acc, tmp=tmp
            ).reshape(n, c, l_out)
        elif self.backend == "blas":
            cols = self._unfold(x_shift, arena, n, l_out)
            if self.split_k is not None:
                # Chunked sgemm over the K-partition, each chunk exact in
                # float32, summed exactly in the float64 accumulator.
                if arena is not None:
                    acc = arena.acc(np.float64, out_shape)
                    tmp = arena.cols(self.gemm_dtype, out_shape)
                else:
                    acc = np.empty(out_shape, dtype=np.float64)  # analysis: ignore[hot-alloc] — arena-less fallback
                    tmp = np.empty(out_shape, dtype=self.gemm_dtype)  # analysis: ignore[hot-alloc] — arena-less fallback
                (k0, k1), *rest = self.split_k
                np.matmul(self.w2_chunks[0], cols[:, k0:k1, :], out=tmp)
                np.copyto(acc, tmp)
                for (k0, k1), w2c in zip(rest, self.w2_chunks[1:]):
                    np.matmul(w2c, cols[:, k0:k1, :], out=tmp)
                    acc += tmp
                phi = acc
            elif self.kind == "dw":
                cols = cols.reshape(n, c, self.k_reduction, l_out)
                acc = arena.acc(self.gemm_dtype, (n, c, 1, l_out)) if arena is not None else None
                phi = np.matmul(self.w2, cols, out=acc).reshape(n, c, l_out)
            else:
                acc = arena.acc(self.gemm_dtype, out_shape) if arena is not None else None
                phi = np.matmul(self.w2, cols, out=acc)
        else:
            cols = self._unfold(x_shift, arena, n, l_out)
            if self.kind == "dw":
                cols = cols.reshape(n, c, self.k_reduction, l_out)
            if arena is None:
                acc = None
            elif acc_in_codes:
                # Wide: the int64 contraction writes straight into the
                # output code slab — no separate accumulator, no copy.
                acc = arena.codes(slot, out_shape)
            else:
                acc = arena.acc(self.gemm_dtype, out_shape)
            phi = self._accumulate_int(cols, out=acc)
        phi = phi.reshape(out_shape)
        if self.narrow:
            # Chunked requantization: accumulator -> int64 scratch tiles
            # -> container-width codes.  Exact: every accumulator value
            # is an integer below the refined bound by construction.
            if arena is not None:
                out = arena.codes(slot, out_shape, self.out_dtype)
            else:
                out = np.empty(out_shape, dtype=self.out_dtype)  # analysis: ignore[hot-alloc] — arena-less fallback
            self.requant.store(phi, out, self._requant_scratch(n, l_out, arena))
            return out.reshape(n, self.out_channels, oh, ow)
        # Legacy wide path: int64 codes, requantized in place.
        if phi.dtype == np.int64:
            phi64 = phi
        elif arena is not None:
            phi64 = arena.codes(slot, out_shape)
            np.copyto(phi64, phi, casting="unsafe")
        else:
            phi64 = phi.astype(np.int64)  # analysis: ignore[hot-alloc] — arena-less fallback
        return self.requant(phi64).reshape(n, self.out_channels, oh, ow)


class CompiledLinear:
    """Compiled integer classifier: shifted/transposed weights and the
    dequantization scale (``s_in * s_w``) are materialised once.  The
    accumulator dtype uses the same refined weight-data bound as the
    conv layers (sgemm on most classifier widths)."""

    def __init__(self, layer, backend: str = "auto", validate: bool = True,
                 refined_bound: bool = True):
        self.name = layer.name
        self.kind = "fc"
        self.in_bits = int(layer.in_bits)
        self.w_bits = int(layer.w_bits)
        if validate:
            check_codes(f"{self.name} weight", layer.weights_q, self.w_bits)
        self.k_reduction = gemm_reduction_length("fc", layer.weights_q.shape)
        self.out_channels = int(layer.weights_q.shape[0])
        self.z_x = int(layer.z_x)
        w_shift = shift_weights(layer.weights_q, layer.z_w, self.out_channels)
        self.acc_bound = max_abs_accumulator(self.k_reduction, self.in_bits, self.w_bits)
        if refined_bound and validate:
            self.acc_bound = min(
                self.acc_bound,
                refined_max_abs_accumulator(w_shift, self.z_x, self.in_bits),
            )
        self.backend, self.gemm_dtype = _resolve_compiled_backend(
            backend, self.acc_bound, self.k_reduction, self.in_bits, self.w_bits
        )
        self.w_t = np.ascontiguousarray(w_shift.T.astype(self.gemm_dtype))
        s_w = np.asarray(layer.s_w, dtype=np.float64).reshape(-1)
        # Match IntegerLinearLayer.forward exactly: s_in * s_w is evaluated
        # first there too (left-to-right), so hoisting it preserves ulps.
        if s_w.size == 1:
            self.scale = layer.s_in * float(s_w[0])
        else:
            self.scale = layer.s_in * s_w.reshape(1, -1)
        self.bias = None if layer.bias is None else np.asarray(layer.bias, dtype=np.float64)

    def __call__(self, x_codes: np.ndarray) -> np.ndarray:
        phi = np.subtract(x_codes, self.z_x, dtype=self.gemm_dtype) @ self.w_t
        phi = phi.astype(np.float64)
        logits = self.scale * phi
        if self.bias is not None:
            logits = logits + self.bias
        return logits


# ----------------------------------------------------------------------
# Execution plan
# ----------------------------------------------------------------------
@dataclass
class LayerPlanInfo:
    """Static description of one compiled layer (for reports/export)."""

    name: str
    kind: str
    backend: str
    gemm_dtype: str
    k_reduction: int
    out_channels: int
    in_bits: int
    w_bits: int
    #: Depthwise dispatch mode ("always"/"never"/"auto"); "" for non-dw.
    dw_mode: str = ""
    #: Container dtype the output codes are stored at ("-" for fc logits).
    container: str = "-"
    #: Refined worst-case |Phi| the accumulator dtype was picked for.
    acc_bound: int = 0


class ExecutionPlan:
    """Compiled form of an :class:`~repro.inference.engine.IntegerNetwork`.

    Construction is driven by a single
    :class:`~repro.runtime.options.CompileOptions` value (the loose
    keyword arguments of earlier revisions survive only through the
    deprecated ``IntegerNetwork.compile(**kwargs)`` shim):

    ``options.validate`` controls the boundary range check on incoming
    codes and a one-time weight-code check at compile time; the per-call
    per-layer scans of the interpreted engine never run inside the plan.
    ``options.use_arena`` routes all activation/scratch traffic through
    a static :class:`~repro.inference.arena.ActivationArena` (planned
    lazily per input geometry, or eagerly when ``options.input_hw`` is
    given).  ``options.fused_depthwise`` selects the stencil depthwise
    kernel: ``"auto"`` (default) per-call by the cache-threshold rule,
    ``True`` always, ``False`` never.  ``options.narrow`` (default)
    keeps activation codes at container width end to end;
    ``narrow=False`` plus ``use_arena=False`` plus
    ``fused_depthwise=False`` restores the PR-1 int64 im2col behaviour
    for A/B comparisons and tests.
    """

    def __init__(self, network, options=None):
        from repro.runtime.options import CompileOptions

        if options is None:
            options = CompileOptions()
        elif not isinstance(options, CompileOptions):
            raise TypeError(
                f"options must be a repro.runtime.CompileOptions, got "
                f"{type(options).__name__!r} — the loose-kwargs form only "
                f"survives through IntegerNetwork.compile(**kwargs)"
            )
        self.options = options
        self.validate = bool(options.validate)
        self.use_arena = bool(options.use_arena)
        self.narrow = bool(options.narrow)
        self.layers: List[CompiledConvLayer] = [
            CompiledConvLayer(l, backend=options.backend, validate=self.validate,
                              fused_depthwise=options.fused_depthwise,
                              narrow=self.narrow,
                              refined_bound=options.refined_bound)
            for l in network.conv_layers
        ]
        self.input_scale = float(network.input_scale)
        self.input_zero_point = int(network.input_zero_point)
        self.input_bits = int(network.input_bits)
        self.has_pool = network.pool is not None
        self.classifier: Optional[CompiledLinear] = (
            None if network.classifier is None
            else CompiledLinear(network.classifier, backend=options.backend,
                                validate=self.validate,
                                refined_bound=options.refined_bound)
        )
        self._arenas: Dict[Tuple[int, int], ActivationArena] = {}
        # Shape-polymorphic plans size one arena for the declared max
        # geometry; every smaller geometry adopts its slabs (arena_for).
        self._max_arena: Optional[ActivationArena] = None
        if options.max_input_hw is not None:
            self._max_arena = self.arena_for(options.max_input_hw)
        if options.input_hw is not None:
            self.arena_for(options.input_hw)

    # -- input boundary ------------------------------------------------
    def quantize_input(self, x_real: np.ndarray) -> np.ndarray:
        """Quantize a real NCHW image batch into input codes (same
        boundary quantizer as the interpreted engine, stored at the
        input's container width under the narrow plan)."""
        dtype = container_dtype(self.input_bits) if self.narrow else np.int64
        return quantize_input_codes(
            x_real, self.input_scale, self.input_zero_point, self.input_bits,
            dtype=dtype,
        )

    # -- activation memory planning ------------------------------------
    def _geometries(self) -> List[LayerGeometry]:
        geoms = [LayerGeometry.from_compiled(l) for l in self.layers]
        if self.classifier is not None:
            c = self.classifier
            geoms.append(LayerGeometry(
                name=c.name, kind="fc",
                in_channels=c.k_reduction, out_channels=c.out_channels,
                kh=1, kw=1, stride=1, padding=0,
                in_bits=c.in_bits,
                # Logits leave the integer domain; for the Eq. 7 model the
                # classifier output is accounted at the activation width.
                out_bits=c.in_bits,
                gemm_itemsize=np.dtype(c.gemm_dtype).itemsize,
                fused=False,
                out_itemsize=container_dtype(c.in_bits).itemsize,
                requant_kind="",
            ))
        return geoms

    def arena_for(self, input_hw: Tuple[int, int]) -> ActivationArena:
        """The static activation arena planned for one input geometry.

        Planned once per ``(H, W)`` and cached; its slabs grow to the
        largest batch seen (``planned_bytes(batch)`` is exact for any
        batch).  This is also the introspection entry point: the arena
        carries the per-layer :class:`LayerActivationPlan` list, the
        Eq. 7 ``logical_rw_peak_bytes`` the deploy path checks against a
        device's RW budget, and the container-width
        ``physical_code_bytes`` that must equal it for 8-bit networks.

        Under ``options.max_input_hw`` the plan is *shape-polymorphic*:
        the max-geometry arena owns the slabs, any smaller ``(H, W)``
        gets a per-geometry plan that adopts them (exact Eq. 7
        accounting, zero extra slab bytes), and a geometry exceeding the
        declared max in either dimension raises ``ValueError``.
        """
        key = (int(input_hw[0]), int(input_hw[1]))
        arena = self._arenas.get(key)
        if arena is None:
            donor = None
            max_hw = self.options.max_input_hw
            if self._max_arena is not None and key != max_hw:
                if key[0] > max_hw[0] or key[1] > max_hw[1]:
                    raise ValueError(
                        f"input geometry {key[0]}x{key[1]} exceeds the "
                        f"plan's declared max geometry "
                        f"{max_hw[0]}x{max_hw[1]}"
                    )
                donor = self._max_arena
            arena = ActivationArena(
                plan_activations(self._geometries(), key), slabs_from=donor
            )
            self._arenas[key] = arena
        return arena

    # -- execution -----------------------------------------------------
    def _trunk(self, x_codes: np.ndarray) -> Tuple[np.ndarray, bool]:
        """Run the conv trunk; returns (codes, codes_are_an_arena_view)."""
        n = x_codes.shape[0]
        if not (self.use_arena and self.layers and n > 0):
            for layer in self.layers:
                x_codes = layer(x_codes)
            return x_codes, False
        arena = self.arena_for((x_codes.shape[2], x_codes.shape[3]))
        arena.ensure(n)
        for i, layer in enumerate(self.layers):
            x_codes = layer(x_codes, arena=arena, slot=i % 2)
        return x_codes, True

    def run_codes(self, x_codes: np.ndarray, validate: Optional[bool] = None) -> np.ndarray:
        """Run the convolutional trunk on integer codes; returns codes
        the caller owns (never a live view into the arena)."""
        if self.validate if validate is None else validate:
            check_codes("input activation", x_codes, self.input_bits)
        codes, is_view = self._trunk(x_codes)
        return codes.copy() if is_view else codes

    def run(self, x_real: np.ndarray) -> np.ndarray:
        """End-to-end inference from a real image batch to real logits."""
        codes = self.quantize_input(x_real)
        # quantize_input clips into range, so the boundary check is moot
        # here; pool/classifier consume the trunk's arena view before any
        # subsequent call reuses the slabs, so no defensive copy either.
        codes, _ = self._trunk(codes)
        if self.has_pool:
            codes = int_avg_pool_global(codes)
        if self.classifier is not None:
            return self.classifier(codes)
        return codes.astype(np.float64)

    def output_spec(self, input_shape: Sequence[int]) -> Tuple[Tuple[int, ...], np.dtype]:
        """Per-image output shape and dtype of :meth:`run` — without running.

        ``input_shape`` is the per-image ``(C, H, W)``.  Logits (and the
        pool-less code passthrough) are always float64; the shape cascade
        is the same geometry walk the arena planner performs.
        """
        dtype = np.dtype(np.float64)
        if self.classifier is not None:
            return (self.classifier.out_channels,), dtype
        c, h, w = (int(d) for d in input_shape)
        for layer in self.layers:
            h = conv_output_size(h, layer.kh, layer.stride, layer.padding)
            w = conv_output_size(w, layer.kw, layer.stride, layer.padding)
            c = layer.out_channels
        if self.has_pool:
            return (c,), dtype
        return (c, h, w), dtype

    def run_batched(self, x_real: np.ndarray, batch_size: int = 32) -> np.ndarray:
        """Stream a large sweep through the plan in fixed-size tiles.

        Every tile reuses the same activation arena, and results are
        written into one preallocated output, so peak activation memory
        is the compile-time ``arena_for(hw).planned_bytes(batch_size)``
        regardless of the sweep size — sweeps far larger than RAM would
        allow for whole-sweep activations stream through unchanged.

        Degenerate sweeps take the cheap path: an empty batch returns an
        empty, correctly-shaped result without touching the kernels, and
        a sweep no larger than one tile (including batch-of-1) runs
        single-shot with no intermediate result copy.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        x_real = np.asarray(x_real)
        n = x_real.shape[0]
        if n == 0:
            shape, dtype = self.output_spec(x_real.shape[1:])
            return np.empty((0,) + shape, dtype=dtype)
        if n <= batch_size:
            return self.run(x_real)
        shape, dtype = self.output_spec(x_real.shape[1:])
        out = np.empty((n,) + shape, dtype=dtype)
        for i in range(0, n, batch_size):
            out[i:i + batch_size] = self.run(x_real[i:i + batch_size])
        return out

    def predict(self, x_real: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Class predictions for a real image batch (optionally tiled)."""
        if batch_size is None:
            return np.argmax(self.run(x_real), axis=1)
        return np.argmax(self.run_batched(x_real, batch_size=batch_size), axis=1)

    # -- introspection -------------------------------------------------
    def layer_info(self) -> Sequence[LayerPlanInfo]:
        infos = [
            LayerPlanInfo(l.name, l.kind, l.backend, np.dtype(l.gemm_dtype).name,
                          l.k_reduction, l.out_channels, l.in_bits, l.w_bits,
                          l.dw_mode, np.dtype(l.out_dtype).name, l.acc_bound)
            for l in self.layers
        ]
        if self.classifier is not None:
            c = self.classifier
            infos.append(
                LayerPlanInfo(c.name, c.kind, c.backend, np.dtype(c.gemm_dtype).name,
                              c.k_reduction, c.out_channels, c.in_bits, c.w_bits,
                              acc_bound=c.acc_bound)
            )
        return infos

    def describe(self, input_hw: Optional[Tuple[int, int]] = None,
                 batch_size: int = 1) -> str:
        """Human-readable per-layer dispatch summary.

        With ``input_hw`` (or after the plan has already executed on some
        geometry) the summary ends with the activation-arena plan: the
        host slab bytes for ``batch_size`` images, the physical
        (container-width) bytes of the ping-pong code pair, and the
        paper-model (Eq. 7) logical RW peak for packed codes — physical
        and logical agree exactly for pure 8-bit networks.
        """
        lines = [f"{'layer':<16} {'kind':<5} {'backend':<7} {'acc':<8} "
                 f"{'codes':<6} {'k':>6} {'c_out':>6}  {'path'}"]
        paths = {"always": "fused-stencil", "never": "im2col", "auto": "auto-stencil"}
        for info in self.layer_info():
            path = paths.get(info.dw_mode, "im2col")
            lines.append(
                f"{info.name:<16} {info.kind:<5} {info.backend:<7} {info.gemm_dtype:<8} "
                f"{info.container:<6} {info.k_reduction:>6} {info.out_channels:>6}  {path}"
            )
        arena: Optional[ActivationArena] = None
        if input_hw is not None:
            arena = self.arena_for(input_hw)
        elif self._arenas:
            (input_hw, arena), = list(self._arenas.items())[:1]
        if arena is not None:
            h, w = input_hw
            lines += [
                "",
                f"activation arena (input {h}x{w}):",
                f"  planned host peak  : {arena.planned_bytes(batch_size)} bytes"
                f" (batch {batch_size}, {arena.bytes_per_image()} per image"
                f" + {arena.fixed_bytes} requant scratch)",
                f"  physical code pair : {arena.physical_code_bytes(1)} bytes"
                f" (container-width ping-pong, batch 1)",
                f"  logical RW peak    : {arena.logical_rw_peak_bytes} bytes"
                f" (paper Eq. 7, packed codes)",
            ]
        return "\n".join(lines)
