"""Compile-then-execute inference: the :class:`ExecutionPlan` subsystem.

``IntegerNetwork.compile()`` walks the deployment graph once and hoists
everything that does not depend on the input batch out of the
per-inference path:

* weight tensors are zero-point-shifted and reshaped to GEMM form once
  (the interpreted engine re-shifts and re-reshapes them on every call);
* each layer's GEMM backend is fixed up front: float64 BLAS whenever the
  exactness bound ``k * (2^Qx - 1) * (2^Qw - 1) < 2^53`` holds (always
  true for the UINT2/4/8 networks of the paper), int64 einsum otherwise,
  with the einsum contraction path resolved once and cached;
* requantization constants (``m0``/``n0``/``bq``, threshold tables) are
  pre-reshaped for the flat ``(N, C, L)`` accumulator layout and the
  fixed-point shift is split into its divisor / left-shift parts;
* range validation runs once at the network boundary (``validate=True``
  by default there) instead of per layer inside the hot loop.

The plan executes bit-identically to ``IntegerNetwork.forward`` — the
tests assert equality against the int64 einsum reference — and
``run_batched`` streams large evaluation sweeps through the engine in
fixed-size tiles so memory stays bounded by the batch, not the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.icn import (
    M0_FRACTIONAL_BITS,
    FoldedBNParams,
    ICNParams,
    ThresholdParams,
)
from repro.inference.kernels import (
    blas_gemm_dtype,
    check_codes,
    gemm_reduction_length,
    int_avg_pool_global,
    quantize_input_codes,
    resolve_gemm_backend,
    shift_weights,
)
from repro.nn.functional import conv_output_size, im2col


# ----------------------------------------------------------------------
# Compiled requantization (bit-identical to repro.core.icn on (N, C, L))
# ----------------------------------------------------------------------
class _CompiledFixedPointRequant:
    """Eq. 5 with constants pre-broadcast for the (N, C, L) accumulator.

    Serves both ICN (per-channel ``bq``/``m0``/``n0``) and folded-BN
    (per-channel ``bq``, scalar multiplier) — they share the identical
    fixed-point hot loop.  The divide of ``icn._fixed_point_scale`` is a
    floor division by ``2^pos``, which over int64 equals an arithmetic
    right shift — several times faster than ``floor_divide`` — and every
    step runs in place on the freshly allocated accumulator, so
    requantization adds no allocations to the hot loop.  Bit-identical to
    :func:`repro.core.icn.icn_requantize` / ``folded_requantize`` by
    construction (and by test).
    """

    def __init__(self, bq: np.ndarray, m0, n0, z_y: int, out_bits: int):
        self.bq = bq
        self.m0 = m0
        shift = M0_FRACTIONAL_BITS - n0
        # Same guard as icn._fixed_point_scale: divisor shift clamped to
        # [0, 62], residual negative shift applied as a left shift.
        self.rshift = np.minimum(np.maximum(shift, 0), 62)
        self.lshift = np.maximum(-shift, 0)
        self.z_y = int(z_y)
        self.qmax = 2 ** out_bits - 1

    def __call__(self, phi: np.ndarray) -> np.ndarray:
        # ``phi`` is owned by the caller's layer and safe to mutate.
        phi += self.bq
        phi *= self.m0
        np.right_shift(phi, self.rshift, out=phi)
        np.left_shift(phi, self.lshift, out=phi)
        phi += self.z_y
        np.clip(phi, 0, self.qmax, out=phi)
        return phi


def _compile_icn_requant(params: ICNParams) -> _CompiledFixedPointRequant:
    c_o = params.out_channels
    return _CompiledFixedPointRequant(
        bq=params.bq.reshape(1, c_o, 1),
        m0=params.m0.reshape(1, c_o, 1),
        n0=params.n0.reshape(1, c_o, 1),
        z_y=params.z_y,
        out_bits=params.out_bits,
    )


def _compile_folded_requant(params: FoldedBNParams) -> _CompiledFixedPointRequant:
    return _CompiledFixedPointRequant(
        bq=params.bq.reshape(1, -1, 1),
        m0=np.int64(params.m0),
        n0=np.int64(params.n0),
        z_y=params.z_y,
        out_bits=params.out_bits,
    )


class _CompiledThresholdRequant:
    """Per-channel threshold tables pre-sliced/pre-reversed for searchsorted."""

    def __init__(self, params: ThresholdParams):
        self.levels = 2 ** params.out_bits
        self.tables: List[tuple] = []
        for c in range(params.thresholds.shape[0]):
            th = params.thresholds[c, 1:]
            if params.direction[c] > 0:
                self.tables.append((np.ascontiguousarray(th), 1))
            else:
                self.tables.append((np.ascontiguousarray(th[::-1]), -1))

    def __call__(self, phi: np.ndarray) -> np.ndarray:
        out = np.empty_like(phi)
        for c, (table, direction) in enumerate(self.tables):
            vals = phi[:, c, :]
            if direction > 0:
                y = np.searchsorted(table, vals, side="right")
            else:
                y = self.levels - 1 - np.searchsorted(table, vals, side="left")
            out[:, c, :] = np.clip(y, 0, self.levels - 1)
        return out


def _compile_requant(params):
    if isinstance(params, ICNParams):
        return _compile_icn_requant(params)
    if isinstance(params, FoldedBNParams):
        return _compile_folded_requant(params)
    if isinstance(params, ThresholdParams):
        return _CompiledThresholdRequant(params)
    raise TypeError(f"unsupported requantization parameters {type(params)!r}")


# ----------------------------------------------------------------------
# Compiled layers
# ----------------------------------------------------------------------
class CompiledConvLayer:
    """One conv/depthwise layer with all static state precomputed.

    ``validate`` range-checks the weight codes once at compile time —
    the same guard the interpreted engine applies on every forward, at
    zero per-inference cost (and required for the float exactness bound,
    which assumes codes within [0, 2^Q - 1]).
    """

    def __init__(self, layer, backend: str = "auto", validate: bool = True):
        p = layer.params
        self.name = layer.name
        self.kind = layer.kind
        self.stride = int(layer.stride)
        self.padding = int(layer.padding)
        self.in_bits = int(layer.in_bits)
        self.out_bits = int(layer.out_bits)
        self.w_bits = int(p.w_bits)
        w = p.weights_q
        if validate:
            check_codes(f"{self.name} weight", w, self.w_bits)
        self.kh, self.kw = int(w.shape[2]), int(w.shape[3])
        self.out_channels = int(w.shape[0])
        self.k_reduction = gemm_reduction_length(self.kind, w.shape)
        self.backend = resolve_gemm_backend(
            backend, self.k_reduction, self.in_bits, self.w_bits
        )
        self.z_x = int(p.z_x)
        w2 = np.ascontiguousarray(
            shift_weights(w, p.z_w, self.out_channels).reshape(self.out_channels, -1)
        )
        if self.backend == "blas":
            self.gemm_dtype = blas_gemm_dtype(self.k_reduction, self.in_bits, self.w_bits)
            self.w2 = w2.astype(self.gemm_dtype)
            if self.kind == "dw":
                self.w2 = np.ascontiguousarray(self.w2[:, None, :])  # (C, 1, kh*kw)
        else:
            self.gemm_dtype = np.int64
            self.w2 = w2
        self._einsum_path = None
        self.requant = _compile_requant(p)

    def _accumulate_int64(self, cols: np.ndarray) -> np.ndarray:
        expr = "ck,nckl->ncl" if self.kind == "dw" else "ok,nkl->nol"
        if self._einsum_path is None:
            self._einsum_path = np.einsum_path(expr, self.w2, cols, optimize="optimal")[0]
        return np.einsum(expr, self.w2, cols, optimize=self._einsum_path)

    def _shift_pad(self, x_codes: np.ndarray, dtype) -> np.ndarray:
        """Zero-point shift and zero-pad in a single allocation.

        Writing ``x - Z_x`` straight into the interior of the padded
        buffer fuses what the interpreted path does in two full-tensor
        passes (``subtract`` then ``np.pad``).
        """
        p = self.padding
        if p == 0:
            return np.subtract(x_codes, self.z_x, dtype=dtype)
        n, c, h, w = x_codes.shape
        out = np.zeros((n, c, h + 2 * p, w + 2 * p), dtype=dtype)
        np.subtract(x_codes, self.z_x, out=out[:, :, p:-p, p:-p])
        return out

    def __call__(self, x_codes: np.ndarray) -> np.ndarray:
        n, c, h, w = x_codes.shape
        oh = conv_output_size(h, self.kh, self.stride, self.padding)
        ow = conv_output_size(w, self.kw, self.stride, self.padding)
        if self.backend == "blas":
            x_shift = self._shift_pad(x_codes, self.gemm_dtype)
            cols = im2col(x_shift, self.kh, self.kw, self.stride, 0, contiguous=False)
            if self.kind == "dw":
                cols = cols.reshape(n, c, self.k_reduction, oh * ow)
                phi = np.matmul(self.w2, cols).reshape(n, c, oh * ow)
            else:
                phi = np.matmul(self.w2, cols)
            phi = phi.astype(np.int64)
        else:
            x_shift = self._shift_pad(x_codes, np.int64)
            cols = im2col(x_shift, self.kh, self.kw, self.stride, 0, contiguous=False)
            if self.kind == "dw":
                cols = cols.reshape(n, c, self.k_reduction, oh * ow)
            phi = self._accumulate_int64(cols)
        return self.requant(phi).reshape(n, self.out_channels, oh, ow)


class CompiledLinear:
    """Compiled integer classifier: shifted/transposed weights and the
    dequantization scale (``s_in * s_w``) are materialised once."""

    def __init__(self, layer, backend: str = "auto", validate: bool = True):
        self.name = layer.name
        self.kind = "fc"
        self.in_bits = int(layer.in_bits)
        self.w_bits = int(layer.w_bits)
        if validate:
            check_codes(f"{self.name} weight", layer.weights_q, self.w_bits)
        self.k_reduction = gemm_reduction_length("fc", layer.weights_q.shape)
        self.out_channels = int(layer.weights_q.shape[0])
        self.backend = resolve_gemm_backend(
            backend, self.k_reduction, self.in_bits, self.w_bits
        )
        self.z_x = int(layer.z_x)
        w_t = shift_weights(layer.weights_q, layer.z_w, self.out_channels).T
        if self.backend == "blas":
            self.gemm_dtype = blas_gemm_dtype(self.k_reduction, self.in_bits, self.w_bits)
            self.w_t = np.ascontiguousarray(w_t.astype(self.gemm_dtype))
        else:
            self.gemm_dtype = np.int64
            self.w_t = np.ascontiguousarray(w_t)
        s_w = np.asarray(layer.s_w, dtype=np.float64).reshape(-1)
        # Match IntegerLinearLayer.forward exactly: s_in * s_w is evaluated
        # first there too (left-to-right), so hoisting it preserves ulps.
        if s_w.size == 1:
            self.scale = layer.s_in * float(s_w[0])
        else:
            self.scale = layer.s_in * s_w.reshape(1, -1)
        self.bias = None if layer.bias is None else np.asarray(layer.bias, dtype=np.float64)

    def __call__(self, x_codes: np.ndarray) -> np.ndarray:
        if self.backend == "blas":
            phi = np.subtract(x_codes, self.z_x, dtype=self.gemm_dtype) @ self.w_t
            phi = phi.astype(np.float64)
        else:
            phi = (np.subtract(x_codes, self.z_x, dtype=np.int64) @ self.w_t).astype(np.float64)
        logits = self.scale * phi
        if self.bias is not None:
            logits = logits + self.bias
        return logits


# ----------------------------------------------------------------------
# Execution plan
# ----------------------------------------------------------------------
@dataclass
class LayerPlanInfo:
    """Static description of one compiled layer (for reports/export)."""

    name: str
    kind: str
    backend: str
    gemm_dtype: str
    k_reduction: int
    out_channels: int
    in_bits: int
    w_bits: int


class ExecutionPlan:
    """Compiled form of an :class:`~repro.inference.engine.IntegerNetwork`.

    ``validate`` controls the boundary range check on incoming codes and
    a one-time weight-code check at compile time; the per-call per-layer
    scans of the interpreted engine never run inside the plan.
    """

    def __init__(self, network, backend: str = "auto", validate: bool = True):
        self.validate = bool(validate)
        self.input_scale = float(network.input_scale)
        self.input_zero_point = int(network.input_zero_point)
        self.input_bits = int(network.input_bits)
        self.layers: List[CompiledConvLayer] = [
            CompiledConvLayer(l, backend=backend, validate=self.validate)
            for l in network.conv_layers
        ]
        self.has_pool = network.pool is not None
        self.classifier: Optional[CompiledLinear] = (
            None if network.classifier is None
            else CompiledLinear(network.classifier, backend=backend, validate=self.validate)
        )

    # -- input boundary ------------------------------------------------
    def quantize_input(self, x_real: np.ndarray) -> np.ndarray:
        """Quantize a real NCHW image batch into input codes (same
        boundary quantizer as the interpreted engine)."""
        return quantize_input_codes(
            x_real, self.input_scale, self.input_zero_point, self.input_bits
        )

    # -- execution -----------------------------------------------------
    def run_codes(self, x_codes: np.ndarray, validate: Optional[bool] = None) -> np.ndarray:
        """Run the convolutional trunk on integer codes; returns codes."""
        if self.validate if validate is None else validate:
            check_codes("input activation", x_codes, self.input_bits)
        for layer in self.layers:
            x_codes = layer(x_codes)
        return x_codes

    def run(self, x_real: np.ndarray) -> np.ndarray:
        """End-to-end inference from a real image batch to real logits."""
        codes = self.quantize_input(x_real)
        # quantize_input clips into range, so the boundary check is moot here.
        codes = self.run_codes(codes, validate=False)
        if self.has_pool:
            codes = int_avg_pool_global(codes)
        if self.classifier is not None:
            return self.classifier(codes)
        return codes.astype(np.float64)

    def run_batched(self, x_real: np.ndarray, batch_size: int = 32) -> np.ndarray:
        """Stream a large sweep through the plan in fixed-size tiles.

        Peak memory is bounded by one tile's activations instead of the
        whole sweep's, which is what the evaluation entry points use for
        dataset-sized inputs.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        x_real = np.asarray(x_real)
        n = x_real.shape[0]
        if n <= batch_size:
            return self.run(x_real)
        outs = [self.run(x_real[i:i + batch_size]) for i in range(0, n, batch_size)]
        return np.concatenate(outs, axis=0)

    def predict(self, x_real: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Class predictions for a real image batch (optionally tiled)."""
        if batch_size is None:
            return np.argmax(self.run(x_real), axis=1)
        return np.argmax(self.run_batched(x_real, batch_size=batch_size), axis=1)

    # -- introspection -------------------------------------------------
    def layer_info(self) -> Sequence[LayerPlanInfo]:
        infos = [
            LayerPlanInfo(l.name, l.kind, l.backend, np.dtype(l.gemm_dtype).name,
                          l.k_reduction, l.out_channels, l.in_bits, l.w_bits)
            for l in self.layers
        ]
        if self.classifier is not None:
            c = self.classifier
            infos.append(
                LayerPlanInfo(c.name, c.kind, c.backend, np.dtype(c.gemm_dtype).name,
                              c.k_reduction, c.out_channels, c.in_bits, c.w_bits)
            )
        return infos

    def describe(self) -> str:
        """Human-readable per-layer dispatch summary."""
        lines = [f"{'layer':<16} {'kind':<5} {'backend':<7} {'dtype':<8} {'k':>6} {'c_out':>6}"]
        for info in self.layer_info():
            lines.append(
                f"{info.name:<16} {info.kind:<5} {info.backend:<7} {info.gemm_dtype:<8} "
                f"{info.k_reduction:>6} {info.out_channels:>6}"
            )
        return "\n".join(lines)
