"""Compile-then-execute inference: the :class:`ExecutionPlan` subsystem.

``IntegerNetwork.compile()`` walks the deployment graph once and hoists
everything that does not depend on the input batch out of the
per-inference path:

* weight tensors are zero-point-shifted and reshaped to GEMM form once
  (the interpreted engine re-shifts and re-reshapes them on every call);
* each layer's GEMM backend is fixed up front: float64 BLAS whenever the
  exactness bound ``k * (2^Qx - 1) * (2^Qw - 1) < 2^53`` holds (always
  true for the UINT2/4/8 networks of the paper), int64 einsum otherwise,
  with the einsum contraction path resolved once and cached;
* depthwise layers take a fused stencil path that never materialises the
  im2col column tensor (per-tap strided multiply-adds, same exactness
  dispatch — see :func:`repro.inference.kernels.depthwise_stencil_accumulate`);
* requantization constants (``m0``/``n0``/``bq``, threshold tables) are
  pre-reshaped for the flat ``(N, C, L)`` accumulator layout and the
  fixed-point shift is split into its divisor / left-shift parts;
* range validation runs once at the network boundary (``validate=True``
  by default there) instead of per layer inside the hot loop;
* activation and scratch buffers come from a static
  :class:`~repro.inference.arena.ActivationArena` — a ping-pong int64
  code pair plus pad/cols/acc slabs sized at plan time — so steady-state
  inference performs no per-layer allocations and peak host activation
  memory equals the compile-time plan, mirroring the paper's Eq. 7 RW
  model (``use_arena=False`` restores per-call allocation for A/B tests).

The plan executes bit-identically to ``IntegerNetwork.forward`` — the
tests assert equality against the int64 einsum reference — and
``run_batched`` streams large evaluation sweeps through the arena in
fixed-size tiles, writing into a preallocated result, so activation
memory stays bounded by one tile regardless of the sweep size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.icn import (
    M0_FRACTIONAL_BITS,
    FoldedBNParams,
    ICNParams,
    ThresholdParams,
)
from repro.inference.arena import (
    ActivationArena,
    LayerGeometry,
    plan_activations,
)
from repro.inference.kernels import (
    blas_gemm_dtype,
    check_codes,
    depthwise_prefers_stencil,
    depthwise_stencil_accumulate,
    gemm_reduction_length,
    int_avg_pool_global,
    quantize_input_codes,
    resolve_gemm_backend,
    shift_weights,
)
from repro.nn.functional import conv_output_size, im2col


# ----------------------------------------------------------------------
# Compiled requantization (bit-identical to repro.core.icn on (N, C, L))
# ----------------------------------------------------------------------
class _CompiledFixedPointRequant:
    """Eq. 5 with constants pre-broadcast for the (N, C, L) accumulator.

    Serves both ICN (per-channel ``bq``/``m0``/``n0``) and folded-BN
    (per-channel ``bq``, scalar multiplier) — they share the identical
    fixed-point hot loop.  The divide of ``icn._fixed_point_scale`` is a
    floor division by ``2^pos``, which over int64 equals an arithmetic
    right shift — several times faster than ``floor_divide`` — and every
    step runs in place on the caller-owned accumulator, so requantization
    adds no allocations to the hot loop.  Bit-identical to
    :func:`repro.core.icn.icn_requantize` / ``folded_requantize`` by
    construction (and by test).
    """

    def __init__(self, bq: np.ndarray, m0, n0, z_y: int, out_bits: int):
        self.bq = bq
        self.m0 = m0
        shift = M0_FRACTIONAL_BITS - n0
        # Same guard as icn._fixed_point_scale: divisor shift clamped to
        # [0, 62], residual negative shift applied as a left shift.
        self.rshift = np.minimum(np.maximum(shift, 0), 62)
        self.lshift = np.maximum(-shift, 0)
        self.z_y = int(z_y)
        self.qmax = 2 ** out_bits - 1

    def __call__(self, phi: np.ndarray) -> np.ndarray:
        # ``phi`` is owned by the caller's layer and safe to mutate.
        phi += self.bq
        phi *= self.m0
        np.right_shift(phi, self.rshift, out=phi)
        np.left_shift(phi, self.lshift, out=phi)
        phi += self.z_y
        np.clip(phi, 0, self.qmax, out=phi)
        return phi


def _compile_icn_requant(params: ICNParams) -> _CompiledFixedPointRequant:
    c_o = params.out_channels
    return _CompiledFixedPointRequant(
        bq=params.bq.reshape(1, c_o, 1),
        m0=params.m0.reshape(1, c_o, 1),
        n0=params.n0.reshape(1, c_o, 1),
        z_y=params.z_y,
        out_bits=params.out_bits,
    )


def _compile_folded_requant(params: FoldedBNParams) -> _CompiledFixedPointRequant:
    return _CompiledFixedPointRequant(
        bq=params.bq.reshape(1, -1, 1),
        m0=np.int64(params.m0),
        n0=np.int64(params.n0),
        z_y=params.z_y,
        out_bits=params.out_bits,
    )


class _CompiledThresholdRequant:
    """Per-channel threshold tables pre-sliced/pre-reversed for searchsorted.

    Requantizes in place: each channel of ``phi`` is fully consumed by
    ``searchsorted`` before the clipped result is written back over it,
    so the threshold path needs no output allocation either (the arena's
    code slab doubles as the output buffer, like the fixed-point path).
    """

    def __init__(self, params: ThresholdParams):
        self.levels = 2 ** params.out_bits
        self.tables: List[tuple] = []
        for c in range(params.thresholds.shape[0]):
            th = params.thresholds[c, 1:]
            if params.direction[c] > 0:
                self.tables.append((np.ascontiguousarray(th), 1))
            else:
                self.tables.append((np.ascontiguousarray(th[::-1]), -1))

    def __call__(self, phi: np.ndarray) -> np.ndarray:
        for c, (table, direction) in enumerate(self.tables):
            vals = phi[:, c, :]
            if direction > 0:
                y = np.searchsorted(table, vals, side="right")
            else:
                y = self.levels - 1 - np.searchsorted(table, vals, side="left")
            np.clip(y, 0, self.levels - 1, out=vals)
        return phi


def _compile_requant(params):
    if isinstance(params, ICNParams):
        return _compile_icn_requant(params)
    if isinstance(params, FoldedBNParams):
        return _compile_folded_requant(params)
    if isinstance(params, ThresholdParams):
        return _CompiledThresholdRequant(params)
    raise TypeError(f"unsupported requantization parameters {type(params)!r}")


# ----------------------------------------------------------------------
# Compiled layers
# ----------------------------------------------------------------------
class CompiledConvLayer:
    """One conv/depthwise layer with all static state precomputed.

    ``validate`` range-checks the weight codes once at compile time —
    the same guard the interpreted engine applies on every forward, at
    zero per-inference cost (and required for the float exactness bound,
    which assumes codes within [0, 2^Q - 1]).

    ``fused_depthwise`` (depthwise only) selects the im2col-free stencil
    path: ``True`` forces it, ``False`` forces the unfold+matmul path,
    and ``"auto"`` (default) picks per call — stencil exactly when the
    batch's im2col column tensor would blow the cache threshold and turn
    the layer memory-bound (:func:`~repro.inference.kernels.depthwise_prefers_stencil`).
    Called with an :class:`~repro.inference.arena.ActivationArena`, the
    layer computes entirely inside preallocated slab views and returns a
    view into the arena's code slot ``slot``; called without, it keeps
    the fresh-allocation behaviour (the reference for the arena tests).
    """

    def __init__(self, layer, backend: str = "auto", validate: bool = True,
                 fused_depthwise="auto"):
        p = layer.params
        self.name = layer.name
        self.kind = layer.kind
        self.stride = int(layer.stride)
        self.padding = int(layer.padding)
        self.in_bits = int(layer.in_bits)
        self.out_bits = int(layer.out_bits)
        self.w_bits = int(p.w_bits)
        w = p.weights_q
        if validate:
            check_codes(f"{self.name} weight", w, self.w_bits)
        self.kh, self.kw = int(w.shape[2]), int(w.shape[3])
        self.out_channels = int(w.shape[0])
        self.in_channels = self.out_channels if self.kind == "dw" else int(w.shape[1])
        self.k_reduction = gemm_reduction_length(self.kind, w.shape)
        self.backend = resolve_gemm_backend(
            backend, self.k_reduction, self.in_bits, self.w_bits
        )
        if fused_depthwise is True:
            mode = "always"
        elif fused_depthwise is False:
            mode = "never"
        elif fused_depthwise == "auto":
            mode = "auto"
        else:
            raise ValueError(
                f"fused_depthwise must be True, False or 'auto', got {fused_depthwise!r}"
            )
        self.dw_mode = mode if self.kind == "dw" else ""
        # "Always" is what the arena planner treats as fused (it shrinks
        # the cols slab to the tap temporary); "auto" keeps the
        # conservative im2col-sized plan since either path may run.
        self.fused = self.dw_mode == "always"
        self.z_x = int(p.z_x)
        w2 = np.ascontiguousarray(
            shift_weights(w, p.z_w, self.out_channels).reshape(self.out_channels, -1)
        )
        if self.backend == "blas":
            self.gemm_dtype = blas_gemm_dtype(self.k_reduction, self.in_bits, self.w_bits)
            self.w2 = w2.astype(self.gemm_dtype)
        else:
            self.gemm_dtype = np.int64
            self.w2 = w2
        self.gemm_itemsize = np.dtype(self.gemm_dtype).itemsize
        if self.kind == "dw":
            self.w_cols = self.w2  # (C, kh*kw) stencil form
            if self.backend == "blas" and self.dw_mode != "always":
                # (C, 1, kh*kw) batched-matmul form for the im2col path
                # (the int64 einsum contraction keeps the flat form).
                self.w2 = np.ascontiguousarray(self.w2[:, None, :])
        self._einsum_path = None
        self.requant = _compile_requant(p)

    def _accumulate_int64(self, cols: np.ndarray, out=None) -> np.ndarray:
        expr = "ck,nckl->ncl" if self.kind == "dw" else "ok,nkl->nol"
        if self._einsum_path is None:
            self._einsum_path = np.einsum_path(expr, self.w2, cols, optimize="optimal")[0]
        return np.einsum(expr, self.w2, cols, optimize=self._einsum_path, out=out)

    def _shift_pad(self, x_codes: np.ndarray, dtype, arena) -> np.ndarray:
        """Zero-point shift and zero-pad in a single (or zero) allocation.

        Writing ``x - Z_x`` straight into the interior of the padded
        buffer fuses what the interpreted path does in two full-tensor
        passes (``subtract`` then ``np.pad``).
        """
        p = self.padding
        n, c, h, w = x_codes.shape
        if p == 0:
            if arena is not None:
                out = arena.pad(dtype, (n, c, h, w))
                return np.subtract(x_codes, self.z_x, out=out)
            return np.subtract(x_codes, self.z_x, dtype=dtype)
        shape = (n, c, h + 2 * p, w + 2 * p)
        if arena is not None:
            out = arena.pad(dtype, shape)
            out.fill(0)
        else:
            out = np.zeros(shape, dtype=dtype)
        np.subtract(x_codes, self.z_x, out=out[:, :, p:-p, p:-p])
        return out

    def _unfold(self, x_shift: np.ndarray, arena, n: int, l_out: int) -> np.ndarray:
        """im2col columns — a pure view for 1x1/s1, an arena slab otherwise."""
        if self.kh == 1 and self.kw == 1 and self.stride == 1:
            return x_shift.reshape(n, self.in_channels, l_out)
        shape = (n, self.in_channels * self.kh * self.kw, l_out)
        if arena is not None:
            return im2col(x_shift, self.kh, self.kw, self.stride, 0,
                          out=arena.cols(x_shift.dtype, shape))
        return im2col(x_shift, self.kh, self.kw, self.stride, 0, contiguous=False)

    def __call__(self, x_codes: np.ndarray, arena: Optional[ActivationArena] = None,
                 slot: int = 0) -> np.ndarray:
        n, c, h, w = x_codes.shape
        oh = conv_output_size(h, self.kh, self.stride, self.padding)
        ow = conv_output_size(w, self.kw, self.stride, self.padding)
        l_out = oh * ow
        out_shape = (n, self.out_channels, l_out)
        fused = self.kind == "dw" and (
            self.dw_mode == "always"
            or (self.dw_mode == "auto" and depthwise_prefers_stencil(
                n, c, self.kh, self.kw, oh, ow, self.gemm_itemsize,
                stride=self.stride))
        )
        x_shift = self._shift_pad(x_codes, self.gemm_dtype, arena)
        if fused:
            # Per-tap strided stencil; the cols slab serves as the tap
            # temporary (it is never used for columns on this path).
            if self.backend == "blas":
                acc = arena.acc(self.gemm_dtype, (n, c, oh, ow)) if arena is not None else None
            else:
                acc = arena.codes(slot, (n, c, oh, ow)) if arena is not None else None
            tmp = (arena.cols(self.gemm_dtype, (n, c, oh, ow))
                   if arena is not None and self.k_reduction > 1 else None)
            phi = depthwise_stencil_accumulate(
                x_shift, self.w_cols, self.kh, self.kw, self.stride, out=acc, tmp=tmp
            ).reshape(n, c, l_out)
        elif self.backend == "blas":
            cols = self._unfold(x_shift, arena, n, l_out)
            if self.kind == "dw":
                cols = cols.reshape(n, c, self.k_reduction, l_out)
                acc = arena.acc(self.gemm_dtype, (n, c, 1, l_out)) if arena is not None else None
                phi = np.matmul(self.w2, cols, out=acc).reshape(n, c, l_out)
            else:
                acc = arena.acc(self.gemm_dtype, out_shape) if arena is not None else None
                phi = np.matmul(self.w2, cols, out=acc)
        else:
            cols = self._unfold(x_shift, arena, n, l_out)
            if self.kind == "dw":
                cols = cols.reshape(n, c, self.k_reduction, l_out)
            # The int64 contraction writes straight into the output code
            # slab — no float accumulator, no extra copy.
            acc = arena.codes(slot, out_shape) if arena is not None else None
            phi = self._accumulate_int64(cols, out=acc)
        # Integer accumulator -> int64 codes buffer (exact: every float
        # value is an integer below the significand bound by construction).
        if phi.dtype == np.int64:
            phi64 = phi
        elif arena is not None:
            phi64 = arena.codes(slot, out_shape)
            np.copyto(phi64, phi.reshape(out_shape), casting="unsafe")
        else:
            phi64 = phi.reshape(out_shape).astype(np.int64)
        return self.requant(phi64.reshape(out_shape)).reshape(
            n, self.out_channels, oh, ow
        )


class CompiledLinear:
    """Compiled integer classifier: shifted/transposed weights and the
    dequantization scale (``s_in * s_w``) are materialised once."""

    def __init__(self, layer, backend: str = "auto", validate: bool = True):
        self.name = layer.name
        self.kind = "fc"
        self.in_bits = int(layer.in_bits)
        self.w_bits = int(layer.w_bits)
        if validate:
            check_codes(f"{self.name} weight", layer.weights_q, self.w_bits)
        self.k_reduction = gemm_reduction_length("fc", layer.weights_q.shape)
        self.out_channels = int(layer.weights_q.shape[0])
        self.backend = resolve_gemm_backend(
            backend, self.k_reduction, self.in_bits, self.w_bits
        )
        self.z_x = int(layer.z_x)
        w_t = shift_weights(layer.weights_q, layer.z_w, self.out_channels).T
        if self.backend == "blas":
            self.gemm_dtype = blas_gemm_dtype(self.k_reduction, self.in_bits, self.w_bits)
            self.w_t = np.ascontiguousarray(w_t.astype(self.gemm_dtype))
        else:
            self.gemm_dtype = np.int64
            self.w_t = np.ascontiguousarray(w_t)
        s_w = np.asarray(layer.s_w, dtype=np.float64).reshape(-1)
        # Match IntegerLinearLayer.forward exactly: s_in * s_w is evaluated
        # first there too (left-to-right), so hoisting it preserves ulps.
        if s_w.size == 1:
            self.scale = layer.s_in * float(s_w[0])
        else:
            self.scale = layer.s_in * s_w.reshape(1, -1)
        self.bias = None if layer.bias is None else np.asarray(layer.bias, dtype=np.float64)

    def __call__(self, x_codes: np.ndarray) -> np.ndarray:
        if self.backend == "blas":
            phi = np.subtract(x_codes, self.z_x, dtype=self.gemm_dtype) @ self.w_t
            phi = phi.astype(np.float64)
        else:
            phi = (np.subtract(x_codes, self.z_x, dtype=np.int64) @ self.w_t).astype(np.float64)
        logits = self.scale * phi
        if self.bias is not None:
            logits = logits + self.bias
        return logits


# ----------------------------------------------------------------------
# Execution plan
# ----------------------------------------------------------------------
@dataclass
class LayerPlanInfo:
    """Static description of one compiled layer (for reports/export)."""

    name: str
    kind: str
    backend: str
    gemm_dtype: str
    k_reduction: int
    out_channels: int
    in_bits: int
    w_bits: int
    #: Depthwise dispatch mode ("always"/"never"/"auto"); "" for non-dw.
    dw_mode: str = ""


class ExecutionPlan:
    """Compiled form of an :class:`~repro.inference.engine.IntegerNetwork`.

    ``validate`` controls the boundary range check on incoming codes and
    a one-time weight-code check at compile time; the per-call per-layer
    scans of the interpreted engine never run inside the plan.

    ``use_arena`` routes all activation/scratch traffic through a static
    :class:`~repro.inference.arena.ActivationArena` (planned lazily per
    input geometry, or eagerly when ``input_hw`` is given).
    ``fused_depthwise`` selects the stencil depthwise kernel: ``"auto"``
    (default) per-call by the cache-threshold rule, ``True`` always,
    ``False`` never.  ``use_arena=False`` plus ``fused_depthwise=False``
    restores the PR-1 per-call-allocation im2col behaviour for A/B
    comparisons and tests.
    """

    def __init__(self, network, backend: str = "auto", validate: bool = True,
                 use_arena: bool = True, fused_depthwise="auto",
                 input_hw: Optional[Tuple[int, int]] = None):
        self.validate = bool(validate)
        self.use_arena = bool(use_arena)
        self.input_scale = float(network.input_scale)
        self.input_zero_point = int(network.input_zero_point)
        self.input_bits = int(network.input_bits)
        self.layers: List[CompiledConvLayer] = [
            CompiledConvLayer(l, backend=backend, validate=self.validate,
                              fused_depthwise=fused_depthwise)
            for l in network.conv_layers
        ]
        self.has_pool = network.pool is not None
        self.classifier: Optional[CompiledLinear] = (
            None if network.classifier is None
            else CompiledLinear(network.classifier, backend=backend, validate=self.validate)
        )
        self._arenas: Dict[Tuple[int, int], ActivationArena] = {}
        if input_hw is not None:
            self.arena_for(input_hw)

    # -- input boundary ------------------------------------------------
    def quantize_input(self, x_real: np.ndarray) -> np.ndarray:
        """Quantize a real NCHW image batch into input codes (same
        boundary quantizer as the interpreted engine)."""
        return quantize_input_codes(
            x_real, self.input_scale, self.input_zero_point, self.input_bits
        )

    # -- activation memory planning ------------------------------------
    def _geometries(self) -> List[LayerGeometry]:
        geoms = [LayerGeometry.from_compiled(l) for l in self.layers]
        if self.classifier is not None:
            c = self.classifier
            geoms.append(LayerGeometry(
                name=c.name, kind="fc",
                in_channels=c.k_reduction, out_channels=c.out_channels,
                kh=1, kw=1, stride=1, padding=0,
                in_bits=c.in_bits,
                # Logits leave the integer domain; for the Eq. 7 model the
                # classifier output is accounted at the activation width.
                out_bits=c.in_bits,
                gemm_itemsize=np.dtype(c.gemm_dtype).itemsize,
                fused=False,
            ))
        return geoms

    def arena_for(self, input_hw: Tuple[int, int]) -> ActivationArena:
        """The static activation arena planned for one input geometry.

        Planned once per ``(H, W)`` and cached; its slabs grow to the
        largest batch seen (``planned_bytes(batch)`` is exact for any
        batch).  This is also the introspection entry point: the arena
        carries the per-layer :class:`LayerActivationPlan` list and the
        Eq. 7 ``logical_rw_peak_bytes`` the deploy path checks against a
        device's RW budget.
        """
        key = (int(input_hw[0]), int(input_hw[1]))
        arena = self._arenas.get(key)
        if arena is None:
            arena = ActivationArena(plan_activations(self._geometries(), key))
            self._arenas[key] = arena
        return arena

    # -- execution -----------------------------------------------------
    def _trunk(self, x_codes: np.ndarray) -> Tuple[np.ndarray, bool]:
        """Run the conv trunk; returns (codes, codes_are_an_arena_view)."""
        n = x_codes.shape[0]
        if not (self.use_arena and self.layers and n > 0):
            for layer in self.layers:
                x_codes = layer(x_codes)
            return x_codes, False
        arena = self.arena_for((x_codes.shape[2], x_codes.shape[3]))
        arena.ensure(n)
        for i, layer in enumerate(self.layers):
            x_codes = layer(x_codes, arena=arena, slot=i % 2)
        return x_codes, True

    def run_codes(self, x_codes: np.ndarray, validate: Optional[bool] = None) -> np.ndarray:
        """Run the convolutional trunk on integer codes; returns codes
        the caller owns (never a live view into the arena)."""
        if self.validate if validate is None else validate:
            check_codes("input activation", x_codes, self.input_bits)
        codes, is_view = self._trunk(x_codes)
        return codes.copy() if is_view else codes

    def run(self, x_real: np.ndarray) -> np.ndarray:
        """End-to-end inference from a real image batch to real logits."""
        codes = self.quantize_input(x_real)
        # quantize_input clips into range, so the boundary check is moot
        # here; pool/classifier consume the trunk's arena view before any
        # subsequent call reuses the slabs, so no defensive copy either.
        codes, _ = self._trunk(codes)
        if self.has_pool:
            codes = int_avg_pool_global(codes)
        if self.classifier is not None:
            return self.classifier(codes)
        return codes.astype(np.float64)

    def run_batched(self, x_real: np.ndarray, batch_size: int = 32) -> np.ndarray:
        """Stream a large sweep through the plan in fixed-size tiles.

        Every tile reuses the same activation arena, and results are
        written into one preallocated output, so peak activation memory
        is the compile-time ``arena_for(hw).planned_bytes(batch_size)``
        regardless of the sweep size — sweeps far larger than RAM would
        allow for whole-sweep activations stream through unchanged.
        """
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        x_real = np.asarray(x_real)
        n = x_real.shape[0]
        if n <= batch_size:
            return self.run(x_real)
        first = self.run(x_real[:batch_size])
        out = np.empty((n,) + first.shape[1:], dtype=first.dtype)
        out[:batch_size] = first
        for i in range(batch_size, n, batch_size):
            out[i:i + batch_size] = self.run(x_real[i:i + batch_size])
        return out

    def predict(self, x_real: np.ndarray, batch_size: Optional[int] = None) -> np.ndarray:
        """Class predictions for a real image batch (optionally tiled)."""
        if batch_size is None:
            return np.argmax(self.run(x_real), axis=1)
        return np.argmax(self.run_batched(x_real, batch_size=batch_size), axis=1)

    # -- introspection -------------------------------------------------
    def layer_info(self) -> Sequence[LayerPlanInfo]:
        infos = [
            LayerPlanInfo(l.name, l.kind, l.backend, np.dtype(l.gemm_dtype).name,
                          l.k_reduction, l.out_channels, l.in_bits, l.w_bits,
                          l.dw_mode)
            for l in self.layers
        ]
        if self.classifier is not None:
            c = self.classifier
            infos.append(
                LayerPlanInfo(c.name, c.kind, c.backend, np.dtype(c.gemm_dtype).name,
                              c.k_reduction, c.out_channels, c.in_bits, c.w_bits)
            )
        return infos

    def describe(self, input_hw: Optional[Tuple[int, int]] = None,
                 batch_size: int = 1) -> str:
        """Human-readable per-layer dispatch summary.

        With ``input_hw`` (or after the plan has already executed on some
        geometry) the summary ends with the activation-arena plan: the
        host slab bytes for ``batch_size`` images and the paper-model
        (Eq. 7) logical RW peak for packed codes.
        """
        lines = [f"{'layer':<16} {'kind':<5} {'backend':<7} {'dtype':<8} "
                 f"{'k':>6} {'c_out':>6}  {'path'}"]
        paths = {"always": "fused-stencil", "never": "im2col", "auto": "auto-stencil"}
        for info in self.layer_info():
            path = paths.get(info.dw_mode, "im2col")
            lines.append(
                f"{info.name:<16} {info.kind:<5} {info.backend:<7} {info.gemm_dtype:<8} "
                f"{info.k_reduction:>6} {info.out_channels:>6}  {path}"
            )
        arena: Optional[ActivationArena] = None
        if input_hw is not None:
            arena = self.arena_for(input_hw)
        elif self._arenas:
            (input_hw, arena), = list(self._arenas.items())[:1]
        if arena is not None:
            h, w = input_hw
            lines += [
                "",
                f"activation arena (input {h}x{w}):",
                f"  planned host peak  : {arena.planned_bytes(batch_size)} bytes"
                f" (batch {batch_size}, {arena.bytes_per_image()} per image)",
                f"  logical RW peak    : {arena.logical_rw_peak_bytes} bytes"
                f" (paper Eq. 7, packed codes)",
            ]
        return "\n".join(lines)
