"""Integer-only network executor (deployment graph g'(x), paper Fig. 1).

The engine mirrors what the MCU runtime executes: every convolutional
layer consumes and produces UINT-Q activation codes, requantized by one of
the three strategies of the paper (ICN, folded batch-norm, integer
thresholds).  The only floating-point operation in the whole network is
the final classifier dequantization used to produce real-valued logits.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Union

import numpy as np

from repro.core.icn import (
    FoldedBNParams,
    ICNParams,
    ThresholdParams,
    folded_requantize,
    icn_requantize,
    threshold_requantize,
)
from repro.inference.kernels import (
    blas_gemm_dtype,
    gemm_reduction_length,
    int_avg_pool_global,
    int_conv2d,
    int_depthwise_conv2d,
    int_linear,
    quantize_input_codes,
    resolve_gemm_backend,
    shift_weights,
)
from repro.inference.packing import packed_size_bytes

RequantParams = Union[ICNParams, FoldedBNParams, ThresholdParams]


def _gemm_weight_dtype(backend: str, k: int, x_bits: int, w_bits: int):
    """Operand dtype the kernel's resolved backend will contract in
    (None for the int64 path) — lets a layer hand the kernel weights
    already cast to the GEMM dtype, so repeated forwards skip both the
    per-call zero-point shift *and* the per-call dtype cast."""
    resolved = resolve_gemm_backend(backend, k, x_bits, w_bits)
    if resolved == "blas":
        return blas_gemm_dtype(k, x_bits, w_bits)
    if resolved == "int32":
        return np.int32
    return None


def _shift_cache_lookup(cache, weights_q: np.ndarray, z_w, dtype):
    """Shared single-shift/single-cast weight cache for the interpreted
    layers.

    ``cache`` is ``(weights_q identity, {dtype: shifted/cast array})`` or
    ``None``; keyed on the identity of ``weights_q``, so swapping in a
    new weight tensor recomputes while repeated forwards reuse both the
    zero-point shift and any GEMM-dtype cast.  (In-place mutation of the
    same array is not tracked — replace the tensor to requantize.)
    Returns ``(cache, weights)``.
    """
    if cache is None or cache[0] is not weights_q:
        cache = (weights_q, {})
    key = np.dtype(np.int64 if dtype is None else dtype)
    weights = cache[1].get(key)
    if weights is None:
        base = cache[1].get(np.dtype(np.int64))
        if base is None:
            base = shift_weights(weights_q, z_w, int(weights_q.shape[0]))
            cache[1][np.dtype(np.int64)] = base
        weights = base if key == np.int64 else base.astype(key)
        cache[1][key] = weights
    return cache, weights


@dataclass
class IntegerConvLayer:
    """One integer-only quantized convolutional layer.

    ``kind`` is ``"conv"``, ``"dw"`` or ``"pw"`` (pointwise uses the
    standard conv kernel).  ``in_bits``/``out_bits`` are the activation
    precisions Q_x / Q_y; ``in_scale``/``out_scale`` the activation scales
    used only at the network boundary and for diagnostics.
    """

    name: str
    kind: str
    stride: int
    padding: int
    params: RequantParams
    in_bits: int
    out_bits: int
    in_scale: float
    out_scale: float
    _w_shift_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _shifted_weights(self, dtype=None) -> np.ndarray:
        """Zero-point-shifted (and GEMM-dtype-cast) weights, computed
        once per weight tensor — the seed engine re-ran ``w - Z_w`` (and
        the BLAS float cast) inside the kernel on every forward; see
        :func:`_shift_cache_lookup` for the invalidation contract."""
        p = self.params
        self._w_shift_cache, weights = _shift_cache_lookup(
            self._w_shift_cache, p.weights_q, p.z_w, dtype
        )
        return weights

    def forward(
        self, x_codes: np.ndarray, validate: bool = True, backend: str = "int64"
    ) -> np.ndarray:
        """Interpreted (reference) forward.

        Defaults to the int64 einsum backend so this path stays the
        ground truth the compiled :class:`~repro.inference.plan.ExecutionPlan`
        is verified against; pass ``backend="auto"`` to allow the BLAS
        fast path here too.
        """
        p = self.params
        dtype = _gemm_weight_dtype(
            backend, gemm_reduction_length(self.kind, p.weights_q.shape),
            self.in_bits, p.w_bits,
        )
        if self.kind == "dw":
            phi = int_depthwise_conv2d(
                x_codes, p.weights_q, p.z_x, p.z_w,
                stride=self.stride, padding=self.padding,
                x_bits=self.in_bits, w_bits=p.w_bits,
                validate=validate, backend=backend,
                w_shift=self._shifted_weights(dtype),
            )
        else:
            phi = int_conv2d(
                x_codes, p.weights_q, p.z_x, p.z_w,
                stride=self.stride, padding=self.padding,
                x_bits=self.in_bits, w_bits=p.w_bits,
                validate=validate, backend=backend,
                w_shift=self._shifted_weights(dtype),
            )
        if isinstance(p, ICNParams):
            return icn_requantize(phi, p)
        if isinstance(p, FoldedBNParams):
            return folded_requantize(phi, p)
        if isinstance(p, ThresholdParams):
            return threshold_requantize(phi, p)
        raise TypeError(f"unsupported requantization parameters {type(p)!r}")

    def weight_storage_bytes(self) -> int:
        return packed_size_bytes(int(self.params.weights_q.size), self.params.w_bits)


@dataclass
class IntegerLinearLayer:
    """Integer fully connected classifier producing real-valued logits.

    The weights are integer codes (per-layer or per-channel scales); the
    accumulator is dequantized with ``s_in * s_w`` and the full-precision
    bias is added, which is the last step before the argmax on the MCU.
    """

    name: str
    weights_q: np.ndarray
    z_w: np.ndarray
    s_w: np.ndarray
    z_x: int
    s_in: float
    bias: Optional[np.ndarray]
    in_bits: int
    w_bits: int
    _w_shift_cache: Optional[tuple] = field(
        default=None, init=False, repr=False, compare=False
    )

    def _shifted_weights(self, dtype=None) -> np.ndarray:
        """Shifted (and GEMM-dtype-cast) classifier weights — same
        single-shift/single-cast contract as :class:`IntegerConvLayer`
        (see :func:`_shift_cache_lookup`)."""
        self._w_shift_cache, weights = _shift_cache_lookup(
            self._w_shift_cache, self.weights_q, self.z_w, dtype
        )
        return weights

    def forward(
        self, x_codes: np.ndarray, validate: bool = True, backend: str = "int64"
    ) -> np.ndarray:
        dtype = _gemm_weight_dtype(
            backend, int(self.weights_q.shape[1]), self.in_bits, self.w_bits
        )
        phi = int_linear(x_codes, self.weights_q, self.z_x, self.z_w,
                         x_bits=self.in_bits, w_bits=self.w_bits,
                         validate=validate, backend=backend,
                         w_shift=self._shifted_weights(dtype))
        s_w = np.asarray(self.s_w, dtype=np.float64).reshape(-1)
        if s_w.size == 1:
            logits = self.s_in * float(s_w[0]) * phi.astype(np.float64)
        else:
            logits = self.s_in * s_w.reshape(1, -1) * phi.astype(np.float64)
        if self.bias is not None:
            logits = logits + np.asarray(self.bias, dtype=np.float64)
        return logits

    def weight_storage_bytes(self) -> int:
        return packed_size_bytes(int(self.weights_q.size), self.w_bits)


@dataclass
class IntegerAvgPool:
    """Global average pooling in the integer domain (floor rounding)."""

    name: str = "global_avg_pool"

    def forward(self, x_codes: np.ndarray) -> np.ndarray:
        return int_avg_pool_global(x_codes)


@dataclass
class IntegerNetwork:
    """Whole integer-only deployment graph.

    ``input_scale`` / ``input_zero_point`` / ``input_bits`` describe how a
    real-valued image is quantized at the network boundary (the paper
    fixes Q_x^0 = 8).
    """

    conv_layers: List[IntegerConvLayer] = field(default_factory=list)
    pool: Optional[IntegerAvgPool] = None
    classifier: Optional[IntegerLinearLayer] = None
    input_scale: float = 1.0 / 255.0
    input_zero_point: int = 0
    input_bits: int = 8

    def quantize_input(self, x_real: np.ndarray) -> np.ndarray:
        """Quantize a real NCHW image batch into input codes."""
        return quantize_input_codes(
            x_real, self.input_scale, self.input_zero_point, self.input_bits
        )

    def forward_codes(self, x_codes: np.ndarray) -> np.ndarray:
        """Run the convolutional trunk on integer codes; returns codes."""
        for layer in self.conv_layers:
            x_codes = layer.forward(x_codes)
        return x_codes

    def forward(self, x_real: np.ndarray) -> np.ndarray:
        """End-to-end inference from a real image batch to real logits."""
        codes = self.quantize_input(x_real)
        codes = self.forward_codes(codes)
        if self.pool is not None:
            codes = self.pool.forward(codes)
        if self.classifier is not None:
            return self.classifier.forward(codes)
        return codes.astype(np.float64)

    def predict(self, x_real: np.ndarray) -> np.ndarray:
        """Class predictions for a real image batch."""
        return np.argmax(self.forward(x_real), axis=1)

    def compile(self, options=None, **legacy_kwargs):
        """Compile the graph into an :class:`~repro.inference.plan.ExecutionPlan`.

        ``options`` is a :class:`repro.runtime.CompileOptions`; ``None``
        compiles with the production defaults.  The plan precomputes
        per-layer GEMM-form weights, requantization constants and
        backend dispatch (narrowest exact accumulator under the
        weight-data refined bound), runs range validation only at the
        network boundary, routes depthwise layers through the fused
        stencil kernel, stores activation codes at container width
        (``narrow=True``; uint8 for the paper's networks), executes
        inside a static activation arena (planned eagerly when
        ``options.input_hw`` is given), and exposes a tiled
        ``run_batched`` for large sweeps.  Outputs are bit-identical to
        this interpreted engine.

        .. deprecated::
            The historical loose keyword form
            (``compile(backend=..., narrow=..., ...)``) still works but
            emits a ``DeprecationWarning``; it builds the identical
            ``CompileOptions`` and forwards.
        """
        from repro.inference.plan import ExecutionPlan

        if isinstance(options, str):
            # Legacy positional form: compile("int32") bound the string
            # to the old leading `backend` parameter.
            if "backend" in legacy_kwargs:
                raise TypeError(
                    "compile() got multiple values for argument 'backend'"
                )
            legacy_kwargs = {"backend": options, **legacy_kwargs}
            options = None
        if legacy_kwargs:
            if options is not None:
                raise TypeError(
                    "pass either options=CompileOptions(...) or the legacy "
                    "keyword arguments, not both"
                )
            from repro.runtime.options import CompileOptions

            warnings.warn(
                "IntegerNetwork.compile(**kwargs) with loose keyword options "
                "is deprecated; pass repro.runtime.CompileOptions instead, "
                "e.g. net.compile(CompileOptions(narrow=False))",
                DeprecationWarning,
                stacklevel=2,
            )
            options = CompileOptions.from_legacy_kwargs(**legacy_kwargs)
        return ExecutionPlan(self, options)

    def weight_storage_bytes(self) -> int:
        total = sum(l.weight_storage_bytes() for l in self.conv_layers)
        if self.classifier is not None:
            total += self.classifier.weight_storage_bytes()
        return total
