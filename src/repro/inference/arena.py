"""Static activation memory arena for the compiled :class:`ExecutionPlan`.

The paper's RW-memory model (Table 1, Eq. 7) assumes an output-stationary
dataflow: while one layer executes, exactly one input/output activation
pair is alive, and the binding RAM term is the *maximum over layers* of
that pair's packed size.  The seed engine (and the PR-1 compiled plan)
instead allocated fresh activation and scratch buffers on every layer of
every call, so host peak memory tracked allocator behaviour rather than
the model.

This module plans that behaviour statically, at compile time:

* :func:`plan_activations` cascades the input geometry through the layer
  stack once and records, per layer, the activation shapes plus every
  scratch buffer the compiled kernels need (padded/shifted input, im2col
  columns or fused-stencil tap temporary, GEMM accumulator);
* :class:`ActivationArena` turns that plan into four preallocated slabs —
  a ping-pong pair of int64 code buffers (the Eq. 7 input/output pair)
  and pad/cols/acc scratch — each sized to the worst layer, reused by
  every subsequent call;
* :func:`logical_rw_peak_bytes` evaluates the *paper's* Eq. 7 over the
  same per-layer plan, using the identical packed-tensor formula as
  :mod:`repro.core.memory_model` (imported, not reimplemented), so the
  arena and the analytical model cannot drift — the tests assert the two
  agree layer for layer on every model-zoo spec.

Buffers are raw ``uint8`` slabs viewed at the per-layer GEMM dtype, so a
float32-tier depthwise layer and a float64 pointwise layer share the same
storage.  ``ensure(batch)`` grows the slabs monotonically; the planned
peak for a given tile size is exact and is what ``run_batched`` is
bounded by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.memory_model import activation_rw_bytes
from repro.inference.kernels import (
    blas_gemm_dtype,
    blas_gemm_is_exact,
    gemm_reduction_length,
)
from repro.nn.functional import conv_output_size

_INT64_BYTES = np.dtype(np.int64).itemsize


@dataclass(frozen=True)
class LayerGeometry:
    """Static geometry of one layer, as needed for activation planning.

    Decoupled from the compiled layer objects so the deployment export
    can plan activations for a serialised network without compiling it.
    """

    name: str
    kind: str  # "conv" | "pw" | "dw" | "fc"
    in_channels: int
    out_channels: int
    kh: int
    kw: int
    stride: int
    padding: int
    in_bits: int
    out_bits: int
    gemm_itemsize: int  # bytes per scratch element (float32/float64/int64)
    fused: bool  # depthwise stencil path (no im2col columns)

    @classmethod
    def from_compiled(cls, layer) -> "LayerGeometry":
        """Geometry of a compiled conv/dw/pw layer (plan.CompiledConvLayer)."""
        return cls(
            name=layer.name,
            kind=layer.kind,
            in_channels=layer.in_channels,
            out_channels=layer.out_channels,
            kh=layer.kh,
            kw=layer.kw,
            stride=layer.stride,
            padding=layer.padding,
            in_bits=layer.in_bits,
            out_bits=layer.out_bits,
            gemm_itemsize=np.dtype(layer.gemm_dtype).itemsize,
            fused=getattr(layer, "fused", False),
        )

    @classmethod
    def from_weights(
        cls,
        name: str,
        kind: str,
        weight_shape: Sequence[int],
        stride: int,
        padding: int,
        in_bits: int,
        w_bits: int,
        out_bits: int,
        fused_depthwise: bool = True,
    ) -> "LayerGeometry":
        """Geometry from a raw weight shape, using the auto GEMM dispatch
        (what a fresh ``compile()`` of the network would pick)."""
        if kind == "fc":
            c_in, c_out = int(weight_shape[1]), int(weight_shape[0])
            kh = kw = 1
        elif kind == "dw":
            c_in = c_out = int(weight_shape[0])
            kh, kw = int(weight_shape[2]), int(weight_shape[3])
        else:
            c_out, c_in = int(weight_shape[0]), int(weight_shape[1])
            kh, kw = int(weight_shape[2]), int(weight_shape[3])
        k = gemm_reduction_length(kind, weight_shape)
        if blas_gemm_is_exact(k, in_bits, w_bits):
            itemsize = np.dtype(blas_gemm_dtype(k, in_bits, w_bits)).itemsize
        else:
            itemsize = _INT64_BYTES
        return cls(
            name=name,
            kind=kind,
            in_channels=c_in,
            out_channels=c_out,
            kh=kh,
            kw=kw,
            stride=int(stride),
            padding=int(padding),
            in_bits=int(in_bits),
            out_bits=int(out_bits),
            gemm_itemsize=itemsize,
            fused=fused_depthwise and kind == "dw",
        )


@dataclass(frozen=True)
class LayerActivationPlan:
    """Resolved per-layer activation/scratch footprint (per batch element).

    ``pad_elems``/``cols_elems``/``acc_elems`` are the host scratch
    buffers of the compiled kernels; ``in_shape``/``out_shape`` are the
    logical activation tensors of the paper's Eq. 7.
    """

    name: str
    kind: str
    in_shape: Tuple[int, int, int]  # (C, H, W)
    out_shape: Tuple[int, int, int]
    in_bits: int
    out_bits: int
    pad_elems: int
    cols_elems: int
    acc_elems: int
    gemm_itemsize: int

    @property
    def in_elems(self) -> int:
        c, h, w = self.in_shape
        return c * h * w

    @property
    def out_elems(self) -> int:
        c, h, w = self.out_shape
        return c * h * w

    @property
    def rw_bytes(self) -> int:
        """Eq. 7 RW term of this layer: packed input + output activations."""
        return activation_rw_bytes(
            self.in_elems, self.in_bits, self.out_elems, self.out_bits
        )


def plan_activations(
    geometries: Sequence[LayerGeometry], input_hw: Tuple[int, int]
) -> List[LayerActivationPlan]:
    """Cascade ``input_hw`` through the layer stack and size every buffer.

    The trailing ``"fc"`` geometry (if any) is planned after an implicit
    global average pool, i.e. at spatial size 1x1 — matching both the
    deployment graph and the model-zoo :class:`LayerSpec` convention.
    """
    h, w = int(input_hw[0]), int(input_hw[1])
    plans: List[LayerActivationPlan] = []
    for g in geometries:
        if g.kind == "fc":
            plans.append(
                LayerActivationPlan(
                    name=g.name,
                    kind="fc",
                    in_shape=(g.in_channels, 1, 1),
                    out_shape=(g.out_channels, 1, 1),
                    in_bits=g.in_bits,
                    out_bits=g.out_bits,
                    pad_elems=0,
                    cols_elems=0,
                    acc_elems=0,
                    gemm_itemsize=g.gemm_itemsize,
                )
            )
            continue
        oh = conv_output_size(h, g.kh, g.stride, g.padding)
        ow = conv_output_size(w, g.kw, g.stride, g.padding)
        if oh < 1 or ow < 1:
            raise ValueError(
                f"layer {g.name!r}: input {h}x{w} collapses to {oh}x{ow}"
            )
        hp, wp = h + 2 * g.padding, w + 2 * g.padding
        out_elems = g.out_channels * oh * ow
        if g.fused:
            # The stencil needs one output-sized tap temporary; it shares
            # the cols slab, which the fused path never uses for columns.
            cols_elems = out_elems
        elif g.kh == 1 and g.kw == 1 and g.stride == 1:
            cols_elems = 0  # im2col of a 1x1/s1 kernel is a pure view
        else:
            cols_elems = g.in_channels * g.kh * g.kw * oh * ow
        plans.append(
            LayerActivationPlan(
                name=g.name,
                kind=g.kind,
                in_shape=(g.in_channels, h, w),
                out_shape=(g.out_channels, oh, ow),
                in_bits=g.in_bits,
                out_bits=g.out_bits,
                pad_elems=g.in_channels * hp * wp,
                cols_elems=cols_elems,
                acc_elems=out_elems,
                gemm_itemsize=g.gemm_itemsize,
            )
        )
        h, w = oh, ow
    return plans


def logical_rw_peak_bytes(plans: Sequence[LayerActivationPlan]) -> int:
    """Binding term of the paper's Eq. 7 over a planned layer stack.

    Max over layers of the packed input+output activation pair — the
    quantity the MCU deploy path checks against the device RW budget, and
    the quantity the tests cross-check against
    :func:`repro.core.memory_model.network_rw_peak_bytes`.
    """
    if not plans:
        return 0
    return max(p.rw_bytes for p in plans)


class ActivationArena:
    """Preallocated ping-pong + scratch slabs for one input geometry.

    Four raw ``uint8`` slabs, each sized per batch element at plan time:

    ``codes`` (x2)
        The ping-pong int64 activation-code pair.  Layer ``i`` reads its
        input codes from slot ``(i-1) % 2`` and writes its requantized
        output into slot ``i % 2`` — the host mirror of the paper's
        output-stationary input/output activation pair.
    ``pad``
        Zero-point-shifted (and zero-padded) input in the layer's GEMM
        dtype.
    ``cols``
        im2col columns — or, for the fused depthwise path, the
        output-sized tap temporary.
    ``acc``
        The float GEMM accumulator (unused by int64-backend layers,
        which contract straight into the codes slab).

    ``ensure`` grows capacity monotonically; views are handed out per
    call, sliced to the live batch, so a smaller batch reuses the same
    storage.
    """

    def __init__(self, plans: Sequence[LayerActivationPlan]):
        self.plans: List[LayerActivationPlan] = list(plans)
        conv = [p for p in self.plans if p.kind != "fc"]
        self.code_bytes_per_image = max(
            (p.out_elems for p in conv), default=0
        ) * _INT64_BYTES
        self.pad_bytes_per_image = max(
            (p.pad_elems * p.gemm_itemsize for p in conv), default=0
        )
        self.cols_bytes_per_image = max(
            (p.cols_elems * p.gemm_itemsize for p in conv), default=0
        )
        self.acc_bytes_per_image = max(
            (p.acc_elems * p.gemm_itemsize for p in conv), default=0
        )
        self.capacity = 0
        self._codes: List[Optional[np.ndarray]] = [None, None]
        self._pad: Optional[np.ndarray] = None
        self._cols: Optional[np.ndarray] = None
        self._acc: Optional[np.ndarray] = None

    # -- sizing --------------------------------------------------------
    def bytes_per_image(self) -> int:
        """Planned host bytes per batch element, all slabs included."""
        return (
            2 * self.code_bytes_per_image
            + self.pad_bytes_per_image
            + self.cols_bytes_per_image
            + self.acc_bytes_per_image
        )

    def planned_bytes(self, batch_size: int) -> int:
        """Compile-time peak host activation bytes for a given tile size."""
        return self.bytes_per_image() * int(batch_size)

    @property
    def allocated_bytes(self) -> int:
        """Bytes actually held right now (== planned at current capacity)."""
        return self.planned_bytes(self.capacity)

    @property
    def logical_rw_peak_bytes(self) -> int:
        """Paper Eq. 7 peak for this geometry (batch-1, packed codes)."""
        return logical_rw_peak_bytes(self.plans)

    # -- allocation ----------------------------------------------------
    def ensure(self, batch_size: int) -> None:
        """Grow the slabs to hold ``batch_size`` images (never shrinks)."""
        n = int(batch_size)
        if n <= self.capacity:
            return
        self._codes = [
            np.empty(n * self.code_bytes_per_image, dtype=np.uint8),
            np.empty(n * self.code_bytes_per_image, dtype=np.uint8),
        ]
        self._pad = np.empty(n * self.pad_bytes_per_image, dtype=np.uint8)
        self._cols = np.empty(n * self.cols_bytes_per_image, dtype=np.uint8)
        self._acc = np.empty(n * self.acc_bytes_per_image, dtype=np.uint8)
        self.capacity = n

    @staticmethod
    def _view(slab: np.ndarray, dtype, shape: Tuple[int, ...]) -> np.ndarray:
        count = int(np.prod(shape))
        nbytes = count * np.dtype(dtype).itemsize
        if nbytes > slab.nbytes:
            raise ValueError(
                f"arena slab overflow: need {nbytes} bytes, slab holds {slab.nbytes}"
            )
        return slab[:nbytes].view(dtype).reshape(shape)

    # -- per-call views ------------------------------------------------
    def codes(self, slot: int, shape: Tuple[int, ...]) -> np.ndarray:
        return self._view(self._codes[slot % 2], np.int64, shape)

    def pad(self, dtype, shape: Tuple[int, ...]) -> np.ndarray:
        return self._view(self._pad, dtype, shape)

    def cols(self, dtype, shape: Tuple[int, ...]) -> np.ndarray:
        return self._view(self._cols, dtype, shape)

    def acc(self, dtype, shape: Tuple[int, ...]) -> np.ndarray:
        return self._view(self._acc, dtype, shape)
