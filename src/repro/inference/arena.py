"""Static activation memory arena for the compiled :class:`ExecutionPlan`.

The paper's RW-memory model (Table 1, Eq. 7) assumes an output-stationary
dataflow: while one layer executes, exactly one input/output activation
pair is alive, and the binding RAM term is the *maximum over layers* of
that pair's packed size.  The seed engine (and the PR-1 compiled plan)
instead allocated fresh activation and scratch buffers on every layer of
every call, so host peak memory tracked allocator behaviour rather than
the model — and held every code in int64, 8x the container width the
model accounts for.

This module plans that behaviour statically, at compile time:

* :func:`plan_activations` cascades the input geometry through the layer
  stack once and records, per layer, the activation shapes plus every
  scratch buffer the compiled kernels need (padded/shifted input, im2col
  columns or fused-stencil tap temporary, GEMM accumulator, requantization
  scratch);
* :class:`ActivationArena` turns that plan into preallocated slabs: a
  ping-pong pair of *container-width* code slabs (uint8 for every <=8-bit
  activation — the Eq. 7 input/output pair at its true physical width,
  sized per slot), pad/cols/acc scratch sized to the worst layer, and a
  small fixed requantization scratch; every slab is reused by every
  subsequent call;
* :func:`logical_rw_peak_bytes` evaluates the *paper's* Eq. 7 over the
  same per-layer plan, using the identical packed-tensor formula as
  :mod:`repro.core.memory_model` (imported, not reimplemented), so the
  arena and the analytical model cannot drift — the tests assert the two
  agree layer for layer on every model-zoo spec, and that for a pure
  8-bit network the ping-pong pair's *physical* bytes equal the Eq. 7
  peak exactly (:meth:`ActivationArena.physical_code_bytes`).

Buffers are raw ``uint8`` slabs viewed at the per-layer dtype, so a
float32-tier depthwise layer and a float64 pointwise layer share the same
storage.  ``ensure(batch)`` grows the slabs monotonically; the planned
peak for a given tile size is exact and is what ``run_batched`` is
bounded by.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.memory_model import activation_rw_bytes
from repro.inference.kernels import (
    blas_gemm_dtype,
    blas_gemm_is_exact,
    gemm_reduction_length,
)
from repro.inference.packing import container_dtype
from repro.nn.functional import conv_output_size

_INT64_BYTES = np.dtype(np.int64).itemsize

#: Target size of one requantization tile.  The narrow-native plan
#: requantizes the accumulator in cache-blocked chunks through a small
#: int64 scratch (Eq. 5 needs 64-bit intermediates for the Q31 multiply)
#: and stores straight into the container-width code slab — instead of
#: round-tripping the whole layer through an out-sized int64 buffer.
REQUANT_SCRATCH_BYTES = 512 << 10


@dataclass(frozen=True)
class LayerGeometry:
    """Static geometry of one layer, as needed for activation planning.

    Decoupled from the compiled layer objects so the deployment export
    can plan activations for a serialised network without compiling it.
    ``gemm_itemsize`` is the byte width of the layer's GEMM operands and
    accumulator (float32/float64/int32/int64 depending on dispatch);
    ``out_itemsize`` the container width its output codes are stored at
    (1 for every <=8-bit activation under the narrow-native plan, 8 for
    the legacy wide plan); ``requant_kind`` selects the requantization
    scratch requirement (``"fixed"`` fixed-point Eq. 5, ``"thr"``
    thresholds, ``""`` for fc).
    """

    name: str
    kind: str  # "conv" | "pw" | "dw" | "fc"
    in_channels: int
    out_channels: int
    kh: int
    kw: int
    stride: int
    padding: int
    in_bits: int
    out_bits: int
    gemm_itemsize: int  # bytes per scratch element (float32/float64/int32/int64)
    fused: bool  # depthwise stencil path (no im2col columns)
    out_itemsize: int = 1  # container bytes per output code
    requant_kind: str = "fixed"
    #: Split-K sgemm layer: needs an output-sized float32 chunk buffer in
    #: the cols slab (its 1x1 unfold is otherwise a pure view).
    split_k: bool = False

    @classmethod
    def from_compiled(cls, layer) -> "LayerGeometry":
        """Geometry of a compiled conv/dw/pw layer (plan.CompiledConvLayer)."""
        return cls(
            name=layer.name,
            kind=layer.kind,
            in_channels=layer.in_channels,
            out_channels=layer.out_channels,
            kh=layer.kh,
            kw=layer.kw,
            stride=layer.stride,
            padding=layer.padding,
            in_bits=layer.in_bits,
            out_bits=layer.out_bits,
            # Slabs are sized at the wider of the operand and accumulator
            # dtypes (they differ only for split-K sgemm layers).
            gemm_itemsize=max(
                np.dtype(layer.gemm_dtype).itemsize,
                np.dtype(getattr(layer, "acc_dtype", layer.gemm_dtype)).itemsize,
            ),
            fused=getattr(layer, "fused", False),
            out_itemsize=np.dtype(layer.out_dtype).itemsize,
            requant_kind=getattr(layer, "requant_kind", "fixed"),
            split_k=getattr(layer, "split_k", None) is not None,
        )

    @classmethod
    def from_weights(
        cls,
        name: str,
        kind: str,
        weight_shape: Sequence[int],
        stride: int,
        padding: int,
        in_bits: int,
        w_bits: int,
        out_bits: int,
        fused_depthwise: bool = True,
        requant_kind: str = "fixed",
    ) -> "LayerGeometry":
        """Geometry from a raw weight shape, using the a-priori GEMM
        dispatch (what a fresh ``compile()`` of the network would pick
        before the weight-data bound refinement, which needs the codes)."""
        if kind == "fc":
            c_in, c_out = int(weight_shape[1]), int(weight_shape[0])
            kh = kw = 1
        elif kind == "dw":
            c_in = c_out = int(weight_shape[0])
            kh, kw = int(weight_shape[2]), int(weight_shape[3])
        else:
            c_out, c_in = int(weight_shape[0]), int(weight_shape[1])
            kh, kw = int(weight_shape[2]), int(weight_shape[3])
        k = gemm_reduction_length(kind, weight_shape)
        if blas_gemm_is_exact(k, in_bits, w_bits):
            itemsize = np.dtype(blas_gemm_dtype(k, in_bits, w_bits)).itemsize
        else:
            itemsize = _INT64_BYTES
        return cls(
            name=name,
            kind=kind,
            in_channels=c_in,
            out_channels=c_out,
            kh=kh,
            kw=kw,
            stride=int(stride),
            padding=int(padding),
            in_bits=int(in_bits),
            out_bits=int(out_bits),
            gemm_itemsize=itemsize,
            fused=fused_depthwise and kind == "dw",
            out_itemsize=container_dtype(int(out_bits)).itemsize,
            requant_kind=requant_kind,
        )


@dataclass(frozen=True)
class LayerActivationPlan:
    """Resolved per-layer activation/scratch footprint (per batch element).

    ``pad_elems``/``cols_elems``/``acc_elems`` are the host scratch
    buffers of the compiled kernels; ``in_shape``/``out_shape`` are the
    logical activation tensors of the paper's Eq. 7.  ``out_itemsize``
    is the container width of the layer's output codes (what the
    ping-pong slab physically stores), ``requant_bytes`` the fixed
    (batch-independent) int64 requantization scratch this layer needs.
    """

    name: str
    kind: str
    in_shape: Tuple[int, int, int]  # (C, H, W)
    out_shape: Tuple[int, int, int]
    in_bits: int
    out_bits: int
    pad_elems: int
    cols_elems: int
    acc_elems: int
    gemm_itemsize: int
    out_itemsize: int = 1
    requant_bytes: int = 0

    @property
    def in_elems(self) -> int:
        c, h, w = self.in_shape
        return c * h * w

    @property
    def out_elems(self) -> int:
        c, h, w = self.out_shape
        return c * h * w

    @property
    def rw_bytes(self) -> int:
        """Eq. 7 RW term of this layer: packed input + output activations."""
        return activation_rw_bytes(
            self.in_elems, self.in_bits, self.out_elems, self.out_bits
        )

    @property
    def physical_out_bytes(self) -> int:
        """Host bytes of the output codes at their container width."""
        return self.out_elems * self.out_itemsize


def requant_scratch_bytes(kind: str, requant_kind: str, c_out: int,
                           out_elems: int, out_itemsize: int) -> int:
    """Fixed int64 scratch one layer's chunked requantization needs.

    Fixed-point layers tile the accumulator into ~``REQUANT_SCRATCH_BYTES``
    chunks (never smaller than one (C, 1) column so the per-channel
    constants broadcast); threshold layers consume one whole image at a
    time (per-channel ``searchsorted`` wants contiguous rows).  Legacy
    wide layers (int64 containers) requantize in place and need none.
    """
    if kind == "fc" or out_itemsize >= _INT64_BYTES:
        return 0
    if requant_kind == "thr":
        return out_elems * _INT64_BYTES
    return max(c_out * _INT64_BYTES,
               min(out_elems * _INT64_BYTES, REQUANT_SCRATCH_BYTES))


def plan_activations(
    geometries: Sequence[LayerGeometry], input_hw: Tuple[int, int]
) -> List[LayerActivationPlan]:
    """Cascade ``input_hw`` through the layer stack and size every buffer.

    The trailing ``"fc"`` geometry (if any) is planned after an implicit
    global average pool, i.e. at spatial size 1x1 — matching both the
    deployment graph and the model-zoo :class:`LayerSpec` convention.
    """
    h, w = int(input_hw[0]), int(input_hw[1])
    plans: List[LayerActivationPlan] = []
    for g in geometries:
        if g.kind == "fc":
            plans.append(
                LayerActivationPlan(
                    name=g.name,
                    kind="fc",
                    in_shape=(g.in_channels, 1, 1),
                    out_shape=(g.out_channels, 1, 1),
                    in_bits=g.in_bits,
                    out_bits=g.out_bits,
                    pad_elems=0,
                    cols_elems=0,
                    acc_elems=0,
                    gemm_itemsize=g.gemm_itemsize,
                    out_itemsize=g.out_itemsize,
                    requant_bytes=0,
                )
            )
            continue
        oh = conv_output_size(h, g.kh, g.stride, g.padding)
        ow = conv_output_size(w, g.kw, g.stride, g.padding)
        if oh < 1 or ow < 1:
            raise ValueError(
                f"layer {g.name!r}: input {h}x{w} collapses to {oh}x{ow}"
            )
        hp, wp = h + 2 * g.padding, w + 2 * g.padding
        out_elems = g.out_channels * oh * ow
        if g.fused:
            # The stencil needs one output-sized tap temporary; it shares
            # the cols slab, which the fused path never uses for columns.
            cols_elems = out_elems
        elif g.kh == 1 and g.kw == 1 and g.stride == 1:
            # im2col of a 1x1/s1 kernel is a pure view; split-K layers
            # repurpose the cols slab as their sgemm chunk buffer.
            cols_elems = out_elems if g.split_k else 0
        else:
            cols_elems = g.in_channels * g.kh * g.kw * oh * ow
        plans.append(
            LayerActivationPlan(
                name=g.name,
                kind=g.kind,
                in_shape=(g.in_channels, h, w),
                out_shape=(g.out_channels, oh, ow),
                in_bits=g.in_bits,
                out_bits=g.out_bits,
                pad_elems=g.in_channels * hp * wp,
                cols_elems=cols_elems,
                acc_elems=out_elems,
                gemm_itemsize=g.gemm_itemsize,
                out_itemsize=g.out_itemsize,
                requant_bytes=requant_scratch_bytes(
                    g.kind, g.requant_kind, g.out_channels, out_elems,
                    g.out_itemsize,
                ),
            )
        )
        h, w = oh, ow
    return plans


def logical_rw_peak_bytes(plans: Sequence[LayerActivationPlan]) -> int:
    """Binding term of the paper's Eq. 7 over a planned layer stack.

    Max over layers of the packed input+output activation pair — the
    quantity the MCU deploy path checks against the device RW budget, and
    the quantity the tests cross-check against
    :func:`repro.core.memory_model.network_rw_peak_bytes`.
    """
    if not plans:
        return 0
    return max(p.rw_bytes for p in plans)


class ActivationArena:
    """Preallocated ping-pong + scratch slabs for one input geometry.

    Raw ``uint8`` slabs, sized per batch element at plan time:

    ``codes`` (x2)
        The ping-pong activation-code pair at *container width*: slot
        ``s`` is sized to the largest output (uint8 codes for <=8-bit
        activations) among the layers that write it (layer ``i`` reads
        its input codes from slot ``(i-1) % 2`` and writes its
        requantized output into slot ``i % 2``) — the host mirror of the
        paper's output-stationary input/output activation pair.  For a
        pure 8-bit chain the pair's physical bytes equal the Eq. 7 peak
        exactly (no int64 inflation); sub-byte activations keep the
        one-byte container, so physical >= logical there.
    ``pad``
        Zero-point-shifted (and zero-padded) input in the layer's GEMM
        dtype.
    ``cols``
        im2col columns — or, for the fused depthwise path, the
        output-sized tap temporary.
    ``acc``
        The GEMM accumulator (float tier, int32, or int64 depending on
        the layer's dispatch).
    ``requant scratch``
        A small *fixed-size* int64 buffer the chunked requantization
        tiles the accumulator through (batch-independent).

    ``ensure`` grows capacity monotonically; views are handed out per
    call, sliced to the live batch, so a smaller batch reuses the same
    storage.

    **Shape polymorphism** (``slabs_from``): an arena may *adopt* the
    slabs of a donor arena planned for a larger (max) geometry instead
    of allocating its own.  Every per-image slab requirement is monotone
    non-decreasing in the input ``(H, W)`` (``conv_output_size`` is
    monotone, and every pad/cols/acc/requant formula scales with the
    layer element counts), so an arena planned for any geometry at or
    below the donor's fits inside the donor's slabs; the per-call views
    slice only the prefix they need.  The child keeps its *own* per-layer
    plan list — so Eq. 7 accounting, ``describe`` and the physical-bytes
    checks stay exact for its geometry — while ``ensure`` delegates all
    storage to the donor.  This is what lets one
    :class:`~repro.inference.plan.ExecutionPlan` serve every input
    geometry up to a declared maximum without per-resolution slab
    explosion.
    """

    def __init__(self, plans: Sequence[LayerActivationPlan],
                 slabs_from: Optional["ActivationArena"] = None):
        self.plans: List[LayerActivationPlan] = list(plans)
        conv = [p for p in self.plans if p.kind != "fc"]
        self.code_slot_bytes_per_image = [
            max((p.physical_out_bytes for p in conv[s::2]), default=0)
            for s in (0, 1)
        ]
        self.pad_bytes_per_image = max(
            (p.pad_elems * p.gemm_itemsize for p in conv), default=0
        )
        self.cols_bytes_per_image = max(
            (p.cols_elems * p.gemm_itemsize for p in conv), default=0
        )
        self.acc_bytes_per_image = max(
            (p.acc_elems * p.gemm_itemsize for p in conv), default=0
        )
        self.requant_scratch_bytes = max(
            (p.requant_bytes for p in conv), default=0
        )
        self.capacity = 0
        self._codes: List[Optional[np.ndarray]] = [None, None]
        self._pad: Optional[np.ndarray] = None
        self._cols: Optional[np.ndarray] = None
        self._acc: Optional[np.ndarray] = None
        self._requant: Optional[np.ndarray] = None
        self._donor = slabs_from
        if slabs_from is not None:
            self._check_fits_donor(slabs_from)

    def _check_fits_donor(self, donor: "ActivationArena") -> None:
        """Every per-image byte need must fit the donor's slab sizing —
        guaranteed by monotonicity when the donor was planned for a
        geometry at least as large, asserted here so a violation fails
        loudly at plan time rather than corrupting a slab at run time."""
        pairs = [
            ("code slot 0", self.code_slot_bytes_per_image[0],
             donor.code_slot_bytes_per_image[0]),
            ("code slot 1", self.code_slot_bytes_per_image[1],
             donor.code_slot_bytes_per_image[1]),
            ("pad", self.pad_bytes_per_image, donor.pad_bytes_per_image),
            ("cols", self.cols_bytes_per_image, donor.cols_bytes_per_image),
            ("acc", self.acc_bytes_per_image, donor.acc_bytes_per_image),
            ("requant", self.requant_scratch_bytes,
             donor.requant_scratch_bytes),
        ]
        for label, need, have in pairs:
            if need > have:
                raise ValueError(
                    f"arena cannot share slabs: {label} needs {need} B/image "
                    f"but the donor arena only provisions {have} B/image"
                )

    # -- sizing --------------------------------------------------------
    def bytes_per_image(self) -> int:
        """Planned host bytes per batch element, all growing slabs."""
        return (
            sum(self.code_slot_bytes_per_image)
            + self.pad_bytes_per_image
            + self.cols_bytes_per_image
            + self.acc_bytes_per_image
        )

    @property
    def fixed_bytes(self) -> int:
        """Batch-independent slab bytes (the requantization scratch)."""
        return self.requant_scratch_bytes

    def planned_bytes(self, batch_size: int) -> int:
        """Compile-time peak host activation bytes for a given tile size."""
        return self.bytes_per_image() * int(batch_size) + self.fixed_bytes

    def physical_code_bytes(self, batch_size: int = 1) -> int:
        """Physical bytes of the ping-pong code pair at container width.

        The runtime counterpart of Eq. 7's input/output activation pair:
        for a pure 8-bit network this equals
        :attr:`logical_rw_peak_bytes` exactly (asserted by the tests and
        by :func:`repro.mcu.deploy.assert_arena_fits`).
        """
        return sum(self.code_slot_bytes_per_image) * int(batch_size)

    @property
    def shares_slabs(self) -> bool:
        """Whether this arena executes inside a donor arena's slabs."""
        return self._donor is not None

    @property
    def donor(self) -> Optional["ActivationArena"]:
        """The max-geometry arena whose slabs this one adopts (or None)."""
        return self._donor

    @property
    def allocated_bytes(self) -> int:
        """Bytes actually held right now (== planned at current capacity).

        A slab-sharing arena owns nothing — its storage is accounted to
        the donor, so summing ``allocated_bytes`` over a plan's arenas
        never double-counts."""
        if self._donor is not None:
            return 0
        return self.planned_bytes(self.capacity) if self.capacity else 0

    @property
    def logical_rw_peak_bytes(self) -> int:
        """Paper Eq. 7 peak for this geometry (batch-1, packed codes)."""
        return logical_rw_peak_bytes(self.plans)

    # -- allocation ----------------------------------------------------
    def ensure(self, batch_size: int) -> None:
        """Grow the slabs to hold ``batch_size`` images (never shrinks).

        A slab-sharing arena grows the *donor* instead (at the donor's
        larger per-image sizes) and adopts its slabs — the donor's
        capacity for ``n`` images is sufficient for any smaller geometry
        by the monotonicity argument checked at construction."""
        n = int(batch_size)
        if self._donor is not None:
            self._donor.ensure(n)
            self._codes = list(self._donor._codes)
            self._pad = self._donor._pad
            self._cols = self._donor._cols
            self._acc = self._donor._acc
            self._requant = self._donor._requant
            self.capacity = self._donor.capacity
            return
        if n <= self.capacity:
            return
        self._codes = [
            np.empty(n * self.code_slot_bytes_per_image[0], dtype=np.uint8),
            np.empty(n * self.code_slot_bytes_per_image[1], dtype=np.uint8),
        ]
        self._pad = np.empty(n * self.pad_bytes_per_image, dtype=np.uint8)
        self._cols = np.empty(n * self.cols_bytes_per_image, dtype=np.uint8)
        self._acc = np.empty(n * self.acc_bytes_per_image, dtype=np.uint8)
        if self._requant is None and self.requant_scratch_bytes:
            self._requant = np.empty(
                self.requant_scratch_bytes // _INT64_BYTES, dtype=np.int64
            )
        self.capacity = n

    @staticmethod
    def _view(slab: np.ndarray, dtype, shape: Tuple[int, ...]) -> np.ndarray:
        count = int(np.prod(shape))
        nbytes = count * np.dtype(dtype).itemsize
        if nbytes > slab.nbytes:
            raise ValueError(
                f"arena slab overflow: need {nbytes} bytes, slab holds {slab.nbytes}"
            )
        return slab[:nbytes].view(dtype).reshape(shape)

    # -- per-call views ------------------------------------------------
    def codes(self, slot: int, shape: Tuple[int, ...], dtype=np.int64) -> np.ndarray:
        return self._view(self._codes[slot % 2], dtype, shape)

    def pad(self, dtype, shape: Tuple[int, ...]) -> np.ndarray:
        return self._view(self._pad, dtype, shape)

    def cols(self, dtype, shape: Tuple[int, ...]) -> np.ndarray:
        return self._view(self._cols, dtype, shape)

    def acc(self, dtype, shape: Tuple[int, ...]) -> np.ndarray:
        return self._view(self._acc, dtype, shape)

    def requant_scratch(self) -> np.ndarray:
        """The flat int64 requantization scratch (fixed size per arena)."""
        if self._requant is None:
            raise ValueError("arena was planned without requantization scratch")
        return self._requant
