"""Integer-only inference engine: bit-accurate emulation of the extended
CMSIS-NN kernels the paper deploys on the STM32H7."""

from repro.inference.packing import pack_subbyte, unpack_subbyte, packed_size_bytes
from repro.inference.int_tensor import QuantizedTensor
from repro.inference.kernels import (
    blas_gemm_is_exact,
    depthwise_stencil_accumulate,
    int_conv2d,
    int_depthwise_conv2d,
    int_depthwise_conv2d_fused,
    int_linear,
    max_abs_accumulator,
    resolve_gemm_backend,
)
from repro.inference.engine import (
    IntegerConvLayer,
    IntegerLinearLayer,
    IntegerAvgPool,
    IntegerNetwork,
)
from repro.inference.arena import (
    ActivationArena,
    LayerActivationPlan,
    LayerGeometry,
    logical_rw_peak_bytes,
    plan_activations,
)
from repro.inference.plan import ExecutionPlan, LayerPlanInfo
from repro.inference.export import (
    deployment_size_bytes,
    export_network,
    import_network,
    validate_export,
)

__all__ = [
    "pack_subbyte",
    "unpack_subbyte",
    "packed_size_bytes",
    "QuantizedTensor",
    "blas_gemm_is_exact",
    "max_abs_accumulator",
    "resolve_gemm_backend",
    "depthwise_stencil_accumulate",
    "int_conv2d",
    "int_depthwise_conv2d",
    "int_depthwise_conv2d_fused",
    "int_linear",
    "IntegerConvLayer",
    "IntegerLinearLayer",
    "IntegerAvgPool",
    "IntegerNetwork",
    "ActivationArena",
    "LayerActivationPlan",
    "LayerGeometry",
    "logical_rw_peak_bytes",
    "plan_activations",
    "ExecutionPlan",
    "LayerPlanInfo",
    "export_network",
    "import_network",
    "validate_export",
    "deployment_size_bytes",
]
