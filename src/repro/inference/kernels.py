"""Integer convolution / linear kernels (bit-accurate CMSIS-NN emulation).

Each kernel computes the integer accumulator

    Phi = sum (X - Z_x) (W - Z_w)

with exact integer arithmetic over UINT-Q operand codes — the same
quantity the extended CMSIS-NN kernels accumulate in their MAC loop — and
leaves the requantization (ICN, folded-BN or thresholds) to the caller.

Two GEMM backends produce the identical accumulator:

``"blas"``
    The operands are zero-point-shifted into float64 and the contraction
    runs through ``np.matmul`` so it dispatches to BLAS.  Every operand is
    an exact small integer and every partial sum is an integer bounded by
    ``k * (2^Qx - 1) * (2^Qw - 1)``; whenever that bound is below ``2^53``
    (the float64 significand) every intermediate value is exactly
    representable and the result equals the integer accumulator
    bit-for-bit, regardless of the summation order BLAS picks.  This holds
    for every UINT2/4/8 network the paper deploys.
``"int64"``
    The original int64 ``einsum`` contraction.  Never dispatches to BLAS
    (10-50x slower) but has no magnitude restriction; it is kept as the
    guarded fallback and as the ground-truth reference the fast path is
    tested against.

``backend="auto"`` (the default) picks ``"blas"`` exactly when the bound
holds.  Range validation of the operand codes is opt-in via ``validate``
so a compiled execution plan can hoist it to the network boundary.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import conv_output_size, im2col

#: Bits of the float64 significand: integer values of magnitude strictly
#: below ``2^53`` are exactly representable, so a float64 GEMM over such
#: integers is exact.
FLOAT64_EXACT_BITS = 53

#: Same bound for float32 (24-bit significand).  Depthwise reductions
#: (k = kh*kw) and narrow pointwise layers fit it even at 8x8 bits, and
#: sgemm doubles the throughput / halves the traffic of dgemm.
FLOAT32_EXACT_BITS = 24

GEMM_BACKENDS = ("auto", "blas", "int64")


def max_abs_accumulator(k_reduction: int, x_bits: int, w_bits: int) -> int:
    """Worst-case ``|Phi|`` of a length-``k_reduction`` MAC reduction.

    Assumes codes and zero points both lie in ``[0, 2^Q - 1]``, so each
    shifted operand is bounded by ``2^Q - 1`` in magnitude.
    """
    return k_reduction * (2 ** x_bits - 1) * (2 ** w_bits - 1)


def blas_gemm_is_exact(k_reduction: int, x_bits: int, w_bits: int) -> bool:
    """Whether a float64 BLAS GEMM reproduces the integer accumulator exactly."""
    return max_abs_accumulator(k_reduction, x_bits, w_bits) < (1 << FLOAT64_EXACT_BITS)


def blas_gemm_dtype(k_reduction: int, x_bits: int, w_bits: int):
    """Narrowest float dtype whose significand holds every partial sum.

    float32 whenever the worst-case accumulator fits 24 bits (sgemm is
    ~2x dgemm), float64 otherwise; the caller must already have checked
    :func:`blas_gemm_is_exact`.
    """
    if max_abs_accumulator(k_reduction, x_bits, w_bits) < (1 << FLOAT32_EXACT_BITS):
        return np.float32
    return np.float64


def resolve_gemm_backend(backend: str, k_reduction: int, x_bits: int, w_bits: int) -> str:
    """Resolve ``"auto"`` to a concrete backend; reject an unsound choice."""
    if backend not in GEMM_BACKENDS:
        raise ValueError(f"unknown GEMM backend {backend!r}; expected one of {GEMM_BACKENDS}")
    exact = blas_gemm_is_exact(k_reduction, x_bits, w_bits)
    if backend == "auto":
        return "blas" if exact else "int64"
    if backend == "blas" and not exact:
        raise ValueError(
            f"float64 GEMM is not exact for k={k_reduction}, Qx={x_bits}, Qw={w_bits}: "
            f"worst-case |Phi| = {max_abs_accumulator(k_reduction, x_bits, w_bits)} "
            f">= 2^{FLOAT64_EXACT_BITS}"
        )
    return backend


def check_codes(name: str, arr: np.ndarray, bits: int) -> None:
    """Validate that ``arr`` holds UINT-``bits`` codes (full min/max scan)."""
    qmax = 2 ** bits - 1
    if arr.size and (arr.min() < 0 or arr.max() > qmax):
        raise ValueError(f"{name} codes out of UINT{bits} range [0, {qmax}]")


# Backwards-compatible alias (pre-compile-engine name).
_check_codes = check_codes


def quantize_input_codes(
    x_real: np.ndarray, scale: float, zero_point: int, bits: int
) -> np.ndarray:
    """Quantize real network inputs into UINT-``bits`` codes.

    The single boundary quantizer shared by the interpreted engine and
    the compiled plan, so their bit-exactness contract cannot drift.
    """
    q = np.floor(np.asarray(x_real, dtype=np.float64) / scale)
    q = q + zero_point
    return np.clip(q, 0, 2 ** bits - 1).astype(np.int64)


def gemm_reduction_length(kind: str, weight_shape) -> int:
    """MAC-reduction length k of one layer's GEMM, from its weight shape.

    ``kind`` is ``"conv"``/``"pw"`` (k = c_in*kh*kw), ``"dw"`` (k = kh*kw)
    or ``"fc"`` (k = in_features) — the single source of truth shared by
    the compiled plan and the deployment export.
    """
    if kind == "dw":
        return int(weight_shape[2]) * int(weight_shape[3])
    if kind == "fc":
        return int(weight_shape[1])
    return int(weight_shape[1]) * int(weight_shape[2]) * int(weight_shape[3])


def shift_weights(w_codes: np.ndarray, z_w: np.ndarray | int, c_out: int) -> np.ndarray:
    """Zero-point-shifted int64 weights; ``z_w`` scalar or per-channel."""
    z_w_arr = np.asarray(z_w, dtype=np.int64).reshape(-1)
    if z_w_arr.size == 1:
        return np.subtract(w_codes, z_w_arr[0], dtype=np.int64)
    if z_w_arr.size != c_out:
        raise ValueError("per-channel z_w must have one entry per output channel")
    return np.subtract(w_codes, z_w_arr.reshape((-1,) + (1,) * (w_codes.ndim - 1)), dtype=np.int64)


#: Route a depthwise layer through the fused stencil when materialising
#: its im2col column tensor would exceed this many bytes.  While the
#: unfold stays near cache-resident the batched BLAS contraction is the
#: faster path; once the kh*kw-fold copy clearly exceeds the last-level
#: cache the layer turns memory-bound and the stencil (which never
#: materialises the columns) wins ~1.5-2x.  Sized at ~1.5x a typical
#: 32 MB L3 — measured: a ~29 MB unfold still favours im2col, a ~58 MB
#: unfold favours the stencil.
DW_IM2COL_BYTES_THRESHOLD = 48 << 20

#: Batch-blocking target of the stencil: taps iterate inside blocks whose
#: out/tmp/window working set stays around this size, so the accumulator
#: churns in cache instead of streaming from DRAM on every tap.
DW_STENCIL_BLOCK_BYTES = 2 << 20


def depthwise_prefers_stencil(
    n: int, c: int, kh: int, kw: int, oh: int, ow: int, itemsize: int,
    stride: int = 1,
) -> bool:
    """Whether the fused stencil beats materialised im2col for this shape
    (the ``fused_depthwise="auto"`` dispatch rule of the compiled plan).

    Strided stencils read non-contiguous windows (SIMD-hostile), while
    strided im2col shrinks its columns to the output size — so the
    stencil is only preferred for stride-1 layers whose unfold exceeds
    the cache threshold.
    """
    if stride != 1:
        return False
    return n * c * kh * kw * oh * ow * itemsize > DW_IM2COL_BYTES_THRESHOLD


def depthwise_stencil_accumulate(
    x_shift: np.ndarray,
    w_cols: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    """Fused depthwise accumulation: per-tap strided stencil, no im2col.

    ``x_shift`` is the zero-point-shifted, already zero-padded input
    ``(N, C, HP, WP)`` and ``w_cols`` the shifted weights ``(C, kh*kw)``
    in the *same* dtype.  Instead of materialising the unfolded
    ``(N, C, kh*kw, OH*OW)`` column tensor (a ``kh*kw``-fold copy of the
    input — what makes large depthwise layers memory-bound), the kernel
    makes one multiply-add pass per kernel tap over a strided window view
    of the input, accumulating straight into the output-sized buffer.
    Taps run innermost over batch blocks of ~``DW_STENCIL_BLOCK_BYTES``
    so the accumulator stays cache-resident across the tap sweep.

    Exactness matches the GEMM backends: every tap product is bounded by
    ``(2^Qx - 1) * (2^Qw - 1)`` and every partial sum by
    ``k * (2^Qx - 1) * (2^Qw - 1)``, so whenever that bound fits the
    float significand (the same 2^24 / 2^53 dispatch as
    :func:`blas_gemm_dtype`) every float intermediate is an exact
    integer; over int64 it is exact unconditionally.

    ``out`` and ``tmp`` are optional preallocated ``(N, C, OH, OW)``
    buffers (activation-arena slabs); ``out`` must not alias ``x_shift``.
    """
    n, c, hp, wp = x_shift.shape
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    if out is None:
        out = np.empty((n, c, oh, ow), dtype=x_shift.dtype)
    if tmp is None and kh * kw > 1:
        tmp = np.empty((n, c, oh, ow), dtype=x_shift.dtype)
    itemsize = x_shift.dtype.itemsize
    per_channel = 3 * oh * ow * itemsize
    c_block = max(1, DW_STENCIL_BLOCK_BYTES // max(per_channel, 1))
    if c_block >= c:
        # Whole channel ranges fit the target: block over the batch.
        c_block = c
        n_block = max(1, DW_STENCIL_BLOCK_BYTES // max(per_channel * c, 1))
    else:
        n_block = 1
    i_stops = [
        (i, j, i + stride * (oh - 1) + 1, j + stride * (ow - 1) + 1)
        for i, j in (divmod(idx, kw) for idx in range(kh * kw))
    ]
    for b0 in range(0, n, n_block):
        b1 = min(b0 + n_block, n)
        for c0 in range(0, c, c_block):
            c1 = min(c0 + c_block, c)
            x_b = x_shift[b0:b1, c0:c1]
            out_b = out[b0:b1, c0:c1]
            tmp_b = None if tmp is None else tmp[b0:b1, c0:c1]
            for idx, (i, j, i_stop, j_stop) in enumerate(i_stops):
                window = x_b[:, :, i:i_stop:stride, j:j_stop:stride]
                tap = w_cols[c0:c1, idx].reshape(1, c1 - c0, 1, 1)
                if idx == 0:
                    np.multiply(window, tap, out=out_b)
                else:
                    np.multiply(window, tap, out=tmp_b)
                    out_b += tmp_b
    return out


def int_conv2d(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    stride: int = 1,
    padding: int = 0,
    x_bits: int = 8,
    w_bits: int = 8,
    validate: bool = True,
    backend: str = "auto",
    w_shift: np.ndarray | None = None,
) -> np.ndarray:
    """Integer accumulator of a standard convolution.

    ``x_codes``: (N, C_in, H, W) unsigned codes; ``w_codes``: (C_out, C_in,
    kh, kw).  ``z_w`` may be a scalar (per-layer) or a per-output-channel
    vector (per-channel).  Zero padding pads with the code ``z_x`` so that
    the padded positions represent the real value 0, as the MCU kernel
    does.  ``w_shift`` optionally supplies the pre-shifted int64 weights
    (``w_codes - z_w``) so callers that run repeatedly can hoist the
    shift out of the per-inference path.
    """
    if validate:
        check_codes("activation", x_codes, x_bits)
        check_codes("weight", w_codes, w_bits)
    n, c_in, h, w = x_codes.shape
    c_out, _, kh, kw = w_codes.shape
    backend = resolve_gemm_backend(backend, c_in * kh * kw, x_bits, w_bits)
    if w_shift is None:
        w_shift = shift_weights(w_codes, z_w, c_out)
    w2 = w_shift.reshape(c_out, -1)
    # Shift activations by Z_x before im2col so zero padding contributes 0.
    if backend == "blas":
        dtype = blas_gemm_dtype(c_in * kh * kw, x_bits, w_bits)
        x_shift = np.subtract(x_codes, int(z_x), dtype=dtype)
        cols = im2col(x_shift, kh, kw, stride, padding, contiguous=False)
        # copy=False: a no-op when the caller supplied pre-cast w_shift.
        phi = np.matmul(w2.astype(dtype, copy=False), cols).astype(np.int64)
    else:
        x_shift = np.subtract(x_codes, int(z_x), dtype=np.int64)
        cols = im2col(x_shift, kh, kw, stride, padding, contiguous=False)
        phi = np.einsum("ok,nkl->nol", w2, cols, optimize=True)
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    return phi.reshape(n, c_out, oh, ow)


def int_depthwise_conv2d(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    stride: int = 1,
    padding: int = 0,
    x_bits: int = 8,
    w_bits: int = 8,
    validate: bool = True,
    backend: str = "auto",
    w_shift: np.ndarray | None = None,
) -> np.ndarray:
    """Integer accumulator of a depthwise convolution (im2col reference).

    ``w_codes`` has shape (C, 1, kh, kw); the per-channel ``z_w`` vector
    has one entry per channel.  This is the unfold-then-contract ground
    truth the fused stencil path (:func:`int_depthwise_conv2d_fused`) is
    property-tested against.
    """
    if validate:
        check_codes("activation", x_codes, x_bits)
        check_codes("weight", w_codes, w_bits)
    n, c, h, w = x_codes.shape
    kh, kw = w_codes.shape[2], w_codes.shape[3]
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    backend = resolve_gemm_backend(backend, kh * kw, x_bits, w_bits)
    if w_shift is None:
        try:
            w_shift = shift_weights(w_codes, z_w, c)
        except ValueError:
            raise ValueError("per-channel z_w must have one entry per channel") from None
    w2 = w_shift.reshape(c, kh * kw)
    if backend == "blas":
        dtype = blas_gemm_dtype(kh * kw, x_bits, w_bits)
        x_shift = np.subtract(x_codes, int(z_x), dtype=dtype)
        cols = im2col(x_shift, kh, kw, stride, padding, contiguous=False)
        cols = cols.reshape(n, c, kh * kw, oh * ow)
        # (C, 1, kh*kw) @ (N, C, kh*kw, L) -> (N, C, 1, L), batched over N, C.
        phi = np.matmul(w2.astype(dtype, copy=False)[:, None, :], cols)
        phi = phi.astype(np.int64).reshape(n, c, oh * ow)
    else:
        x_shift = np.subtract(x_codes, int(z_x), dtype=np.int64)
        cols = im2col(x_shift, kh, kw, stride, padding, contiguous=False)
        cols = cols.reshape(n, c, kh * kw, oh * ow)
        phi = np.einsum("ck,nckl->ncl", w2, cols, optimize=True)
    return phi.reshape(n, c, oh, ow)


def int_depthwise_conv2d_fused(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    stride: int = 1,
    padding: int = 0,
    x_bits: int = 8,
    w_bits: int = 8,
    validate: bool = True,
    backend: str = "auto",
    w_shift: np.ndarray | None = None,
) -> np.ndarray:
    """Integer accumulator of a depthwise convolution, fused stencil path.

    Same contract (and bit-identical result, by property test) as
    :func:`int_depthwise_conv2d`, but the ``kh*kw``-fold im2col copy is
    never materialised: the accumulation runs as per-tap strided
    multiply-adds via :func:`depthwise_stencil_accumulate`.  Backend
    dispatch follows the same exactness bounds — float32/float64 when the
    worst-case accumulator fits the significand, int64 otherwise.
    """
    if validate:
        check_codes("activation", x_codes, x_bits)
        check_codes("weight", w_codes, w_bits)
    n, c, h, w = x_codes.shape
    kh, kw = w_codes.shape[2], w_codes.shape[3]
    backend = resolve_gemm_backend(backend, kh * kw, x_bits, w_bits)
    if w_shift is None:
        try:
            w_shift = shift_weights(w_codes, z_w, c)
        except ValueError:
            raise ValueError("per-channel z_w must have one entry per channel") from None
    dtype = blas_gemm_dtype(kh * kw, x_bits, w_bits) if backend == "blas" else np.int64
    w_cols = w_shift.reshape(c, kh * kw).astype(dtype, copy=False)
    if padding > 0:
        x_shift = np.zeros(
            (n, c, h + 2 * padding, w + 2 * padding), dtype=dtype
        )
        np.subtract(
            x_codes, int(z_x), out=x_shift[:, :, padding:-padding, padding:-padding]
        )
    else:
        x_shift = np.subtract(x_codes, int(z_x), dtype=dtype)
    phi = depthwise_stencil_accumulate(x_shift, w_cols, kh, kw, stride)
    if phi.dtype != np.int64:
        phi = phi.astype(np.int64)
    return phi


def int_linear(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    x_bits: int = 8,
    w_bits: int = 8,
    validate: bool = True,
    backend: str = "auto",
    w_shift: np.ndarray | None = None,
) -> np.ndarray:
    """Integer accumulator of a fully connected layer.

    ``x_codes``: (N, in_features); ``w_codes``: (out_features, in_features).
    """
    if validate:
        check_codes("activation", x_codes, x_bits)
        check_codes("weight", w_codes, w_bits)
    backend = resolve_gemm_backend(backend, w_codes.shape[1], x_bits, w_bits)
    if w_shift is None:
        try:
            w_shift = shift_weights(w_codes, z_w, w_codes.shape[0])
        except ValueError:
            raise ValueError("per-channel z_w must have one entry per output feature") from None
    if backend == "blas":
        dtype = blas_gemm_dtype(w_codes.shape[1], x_bits, w_bits)
        x_shift = np.subtract(x_codes, int(z_x), dtype=dtype)
        return (x_shift @ w_shift.T.astype(dtype, copy=False)).astype(np.int64)
    x_shift = np.subtract(x_codes, int(z_x), dtype=np.int64)
    return x_shift @ w_shift.T


def int_avg_pool_global(x_codes: np.ndarray) -> np.ndarray:
    """Integer global average pooling with floor rounding.

    CMSIS-NN pools in the integer domain; the result keeps the input's
    scale and zero point (averaging is affine-invariant up to the floor).
    """
    n, c, h, w = x_codes.shape
    total = x_codes.astype(np.int64, copy=False).sum(axis=(2, 3), dtype=np.int64)
    return np.floor_divide(total, h * w).reshape(n, c)
