"""Integer convolution / linear kernels (bit-accurate CMSIS-NN emulation).

Each kernel computes the integer accumulator

    Phi = sum (X - Z_x) (W - Z_w)

with int64 arithmetic over UINT-Q operand codes — the same quantity the
extended CMSIS-NN kernels accumulate in their MAC loop — and leaves the
requantization (ICN, folded-BN or thresholds) to the caller.  The kernels
use im2col + matrix products so large feature maps stay fast in numpy
while remaining exactly integer-valued.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import conv_output_size, im2col


def _check_codes(name: str, arr: np.ndarray, bits: int) -> None:
    qmax = 2 ** bits - 1
    if arr.size and (arr.min() < 0 or arr.max() > qmax):
        raise ValueError(f"{name} codes out of UINT{bits} range [0, {qmax}]")


def int_conv2d(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    stride: int = 1,
    padding: int = 0,
    x_bits: int = 8,
    w_bits: int = 8,
) -> np.ndarray:
    """Integer accumulator of a standard convolution.

    ``x_codes``: (N, C_in, H, W) unsigned codes; ``w_codes``: (C_out, C_in,
    kh, kw).  ``z_w`` may be a scalar (per-layer) or a per-output-channel
    vector (per-channel).  Zero padding pads with the code ``z_x`` so that
    the padded positions represent the real value 0, as the MCU kernel
    does.
    """
    _check_codes("activation", x_codes, x_bits)
    _check_codes("weight", w_codes, w_bits)
    n, c_in, h, w = x_codes.shape
    c_out = w_codes.shape[0]
    # Shift activations by Z_x before im2col so zero padding contributes 0.
    x_shift = x_codes.astype(np.int64) - int(z_x)
    cols = im2col(x_shift, w_codes.shape[2], w_codes.shape[3], stride, padding)
    z_w_arr = np.asarray(z_w, dtype=np.int64).reshape(-1)
    if z_w_arr.size == 1:
        w_shift = w_codes.astype(np.int64) - z_w_arr[0]
    else:
        if z_w_arr.size != c_out:
            raise ValueError("per-channel z_w must have one entry per output channel")
        w_shift = w_codes.astype(np.int64) - z_w_arr.reshape(-1, 1, 1, 1)
    w2 = w_shift.reshape(c_out, -1)
    phi = np.einsum("ok,nkl->nol", w2, cols, optimize=True)
    oh = conv_output_size(h, w_codes.shape[2], stride, padding)
    ow = conv_output_size(w, w_codes.shape[3], stride, padding)
    return phi.reshape(n, c_out, oh, ow)


def int_depthwise_conv2d(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    stride: int = 1,
    padding: int = 0,
    x_bits: int = 8,
    w_bits: int = 8,
) -> np.ndarray:
    """Integer accumulator of a depthwise convolution.

    ``w_codes`` has shape (C, 1, kh, kw); the per-channel ``z_w`` vector
    has one entry per channel.
    """
    _check_codes("activation", x_codes, x_bits)
    _check_codes("weight", w_codes, w_bits)
    n, c, h, w = x_codes.shape
    kh, kw = w_codes.shape[2], w_codes.shape[3]
    x_shift = x_codes.astype(np.int64) - int(z_x)
    cols = im2col(x_shift, kh, kw, stride, padding).reshape(n, c, kh * kw, -1)
    z_w_arr = np.asarray(z_w, dtype=np.int64).reshape(-1)
    if z_w_arr.size == 1:
        w_shift = w_codes.astype(np.int64) - z_w_arr[0]
    else:
        if z_w_arr.size != c:
            raise ValueError("per-channel z_w must have one entry per channel")
        w_shift = w_codes.astype(np.int64) - z_w_arr.reshape(-1, 1, 1, 1)
    w2 = w_shift.reshape(c, kh * kw)
    phi = np.einsum("ck,nckl->ncl", w2, cols, optimize=True)
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    return phi.reshape(n, c, oh, ow)


def int_linear(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    x_bits: int = 8,
    w_bits: int = 8,
) -> np.ndarray:
    """Integer accumulator of a fully connected layer.

    ``x_codes``: (N, in_features); ``w_codes``: (out_features, in_features).
    """
    _check_codes("activation", x_codes, x_bits)
    _check_codes("weight", w_codes, w_bits)
    x_shift = x_codes.astype(np.int64) - int(z_x)
    z_w_arr = np.asarray(z_w, dtype=np.int64).reshape(-1)
    if z_w_arr.size == 1:
        w_shift = w_codes.astype(np.int64) - z_w_arr[0]
    else:
        if z_w_arr.size != w_codes.shape[0]:
            raise ValueError("per-channel z_w must have one entry per output feature")
        w_shift = w_codes.astype(np.int64) - z_w_arr.reshape(-1, 1)
    return x_shift @ w_shift.T


def int_avg_pool_global(x_codes: np.ndarray) -> np.ndarray:
    """Integer global average pooling with floor rounding.

    CMSIS-NN pools in the integer domain; the result keeps the input's
    scale and zero point (averaging is affine-invariant up to the floor).
    """
    n, c, h, w = x_codes.shape
    total = x_codes.astype(np.int64).sum(axis=(2, 3))
    return np.floor_divide(total, h * w).reshape(n, c)
