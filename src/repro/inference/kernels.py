"""Integer convolution / linear kernels (bit-accurate CMSIS-NN emulation).

Each kernel computes the integer accumulator

    Phi = sum (X - Z_x) (W - Z_w)

with exact integer arithmetic over UINT-Q operand codes — the same
quantity the extended CMSIS-NN kernels accumulate in their MAC loop — and
leaves the requantization (ICN, folded-BN or thresholds) to the caller.

Two GEMM backends produce the identical accumulator:

``"blas"``
    The operands are zero-point-shifted into float64 and the contraction
    runs through ``np.matmul`` so it dispatches to BLAS.  Every operand is
    an exact small integer and every partial sum is an integer bounded by
    ``k * (2^Qx - 1) * (2^Qw - 1)``; whenever that bound is below ``2^53``
    (the float64 significand) every intermediate value is exactly
    representable and the result equals the integer accumulator
    bit-for-bit, regardless of the summation order BLAS picks.  This holds
    for every UINT2/4/8 network the paper deploys.
``"int32"``
    Narrow-integer contraction with int32 accumulators — the dtype the
    extended CMSIS-NN kernels accumulate in on the MCU.  Exact whenever
    ``bits_w + bits_a + log2(k)`` keeps the worst-case accumulator below
    ``2^31``; rejected otherwise.  Operands are shifted into int32 and the
    contraction (K-tiled einsum, or the depthwise stencil) runs natively
    in int32 — no float detour, half the traffic of the int64 reference.

``"int64"``
    The original int64 ``einsum`` contraction.  Never dispatches to BLAS
    (10-50x slower) but has no magnitude restriction; it is kept as the
    guarded fallback and as the ground-truth reference the fast path is
    tested against.  Large-K contractions are cache-blocked over the
    reduction axis (:func:`int_einsum_gemm`) so the exact-reference path
    does not thrash on wide pointwise layers.

``backend="auto"`` (the default) picks ``"blas"`` exactly when the bound
holds.  Range validation of the operand codes is opt-in via ``validate``
so a compiled execution plan can hoist it to the network boundary.

The a-priori bound ``k * (2^Qx - 1) * (2^Qw - 1)`` assumes every weight
sits at the corner of its code range.  At compile time the actual shifted
weights are known, and :func:`refined_max_abs_accumulator` tightens the
bound to ``max_o sum_k |W_ok - Z_w| * max|X - Z_x|`` — every partial sum
of any BLAS summation order is bounded by it, per output channel, so a
layer whose a-priori bound demands float64 often drops to the 2x-faster
float32 tier once its real weights are inspected.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import conv_output_size, im2col

#: Bits of the float64 significand: integer values of magnitude strictly
#: below ``2^53`` are exactly representable, so a float64 GEMM over such
#: integers is exact.
FLOAT64_EXACT_BITS = 53

#: Same bound for float32 (24-bit significand).  Depthwise reductions
#: (k = kh*kw) and narrow pointwise layers fit it even at 8x8 bits, and
#: sgemm doubles the throughput / halves the traffic of dgemm.
FLOAT32_EXACT_BITS = 24

#: Same bound for the int32 accumulator of the MCU kernels: exact while
#: ``bits_w + bits_a + log2(k)`` stays below 31 (signed).
INT32_EXACT_BITS = 31

GEMM_BACKENDS = ("auto", "blas", "int32", "int64")


def max_abs_accumulator(k_reduction: int, x_bits: int, w_bits: int) -> int:
    """Worst-case ``|Phi|`` of a length-``k_reduction`` MAC reduction.

    Assumes codes and zero points both lie in ``[0, 2^Q - 1]``, so each
    shifted operand is bounded by ``2^Q - 1`` in magnitude.
    """
    return k_reduction * (2 ** x_bits - 1) * (2 ** w_bits - 1)


def refined_max_abs_accumulator(w_shift: np.ndarray, z_x: int, x_bits: int) -> int:
    """Data-dependent worst-case ``|Phi|`` given the actual shifted weights.

    Every partial sum of ``sum_k (X_k - Z_x) W'_ok`` — under *any*
    summation order and over any subset of terms — is bounded by
    ``sum_k |W'_ok| * max|X - Z_x|``.  Output channels never mix inside
    one GEMM row, so the max over channels is a sound per-layer bound,
    usually far below the a-priori :func:`max_abs_accumulator` corner
    case.  The compiled plan uses it to pick the narrowest exact
    accumulator dtype per layer.
    """
    x_mag = max(int(z_x), 2 ** x_bits - 1 - int(z_x))
    w2 = np.asarray(w_shift, dtype=np.int64).reshape(w_shift.shape[0], -1)
    if w2.size == 0:
        return 0
    row = np.abs(w2).sum(axis=1, dtype=np.int64)
    return int(row.max()) * x_mag


def exact_gemm_dtype_for_bound(bound: int):
    """Narrowest float dtype whose significand holds every partial sum of
    a reduction with worst-case magnitude ``bound`` (None: no float dtype
    is exact and the integer fallback must run)."""
    if bound < (1 << FLOAT32_EXACT_BITS):
        return np.float32
    if bound < (1 << FLOAT64_EXACT_BITS):
        return np.float64
    return None


def blas_gemm_is_exact(k_reduction: int, x_bits: int, w_bits: int) -> bool:
    """Whether a float64 BLAS GEMM reproduces the integer accumulator exactly."""
    return max_abs_accumulator(k_reduction, x_bits, w_bits) < (1 << FLOAT64_EXACT_BITS)


def int32_gemm_is_exact(k_reduction: int, x_bits: int, w_bits: int) -> bool:
    """Whether an int32-accumulator contraction is overflow-free: the
    ``bits_w + bits_a + log2(k) < 31`` bound of the CMSIS-NN MAC loop."""
    return max_abs_accumulator(k_reduction, x_bits, w_bits) < (1 << INT32_EXACT_BITS)


def blas_gemm_dtype(k_reduction: int, x_bits: int, w_bits: int):
    """Narrowest float dtype whose significand holds every partial sum.

    float32 whenever the worst-case accumulator fits 24 bits (sgemm is
    ~2x dgemm), float64 otherwise; the caller must already have checked
    :func:`blas_gemm_is_exact`.
    """
    if max_abs_accumulator(k_reduction, x_bits, w_bits) < (1 << FLOAT32_EXACT_BITS):
        return np.float32
    return np.float64


def resolve_gemm_backend(backend: str, k_reduction: int, x_bits: int, w_bits: int) -> str:
    """Resolve ``"auto"`` to a concrete backend; reject an unsound choice."""
    if backend not in GEMM_BACKENDS:
        raise ValueError(f"unknown GEMM backend {backend!r}; expected one of {GEMM_BACKENDS}")
    exact = blas_gemm_is_exact(k_reduction, x_bits, w_bits)
    if backend == "auto":
        return "blas" if exact else "int64"
    if backend == "blas" and not exact:
        raise ValueError(
            f"float64 GEMM is not exact for k={k_reduction}, Qx={x_bits}, Qw={w_bits}: "
            f"worst-case |Phi| = {max_abs_accumulator(k_reduction, x_bits, w_bits)} "
            f">= 2^{FLOAT64_EXACT_BITS}"
        )
    if backend == "int32" and not int32_gemm_is_exact(k_reduction, x_bits, w_bits):
        raise ValueError(
            f"int32 accumulation overflows for k={k_reduction}, Qx={x_bits}, "
            f"Qw={w_bits}: worst-case |Phi| = "
            f"{max_abs_accumulator(k_reduction, x_bits, w_bits)} >= 2^{INT32_EXACT_BITS}"
        )
    return backend


def check_codes(name: str, arr: np.ndarray, bits: int) -> None:
    """Validate that ``arr`` holds UINT-``bits`` codes (full min/max scan)."""
    qmax = 2 ** bits - 1
    if arr.size and (arr.min() < 0 or arr.max() > qmax):
        raise ValueError(f"{name} codes out of UINT{bits} range [0, {qmax}]")


# Backwards-compatible alias (pre-compile-engine name).
_check_codes = check_codes


def quantize_input_codes(
    x_real: np.ndarray, scale: float, zero_point: int, bits: int, dtype=np.int64
) -> np.ndarray:
    """Quantize real network inputs into UINT-``bits`` codes.

    The single boundary quantizer shared by the interpreted engine and
    the compiled plan, so their bit-exactness contract cannot drift.
    ``dtype`` selects the code container: the interpreted reference keeps
    int64, the narrow-native plan passes the uint8 container.
    """
    q = np.floor(np.asarray(x_real, dtype=np.float64) / scale)
    q = q + zero_point
    return np.clip(q, 0, 2 ** bits - 1).astype(dtype)


def gemm_reduction_length(kind: str, weight_shape) -> int:
    """MAC-reduction length k of one layer's GEMM, from its weight shape.

    ``kind`` is ``"conv"``/``"pw"`` (k = c_in*kh*kw), ``"dw"`` (k = kh*kw)
    or ``"fc"`` (k = in_features) — the single source of truth shared by
    the compiled plan and the deployment export.
    """
    if kind == "dw":
        return int(weight_shape[2]) * int(weight_shape[3])
    if kind == "fc":
        return int(weight_shape[1])
    return int(weight_shape[1]) * int(weight_shape[2]) * int(weight_shape[3])


def shift_weights(w_codes: np.ndarray, z_w: np.ndarray | int, c_out: int) -> np.ndarray:
    """Zero-point-shifted int64 weights; ``z_w`` scalar or per-channel."""
    z_w_arr = np.asarray(z_w, dtype=np.int64).reshape(-1)
    if z_w_arr.size == 1:
        return np.subtract(w_codes, z_w_arr[0], dtype=np.int64)
    if z_w_arr.size != c_out:
        raise ValueError("per-channel z_w must have one entry per output channel")
    return np.subtract(w_codes, z_w_arr.reshape((-1,) + (1,) * (w_codes.ndim - 1)), dtype=np.int64)


#: Reduction-axis tile of the integer einsum GEMM.  A plain
#: ``ok,nkl->nol`` einsum re-streams the whole (K, L) operand from DRAM
#: for every output row once K*L leaves the last-level cache; tiling K
#: keeps each (k_block, L) slab hot across all O rows.  Integer addition
#: is associative, so any tiling is bit-exact.  Measured ~1.5x on a
#: K=4608 int64 contraction.
INT_GEMM_K_BLOCK = 512


# hot
def int_einsum_gemm(
    w2: np.ndarray,
    cols: np.ndarray,
    out: np.ndarray | None = None,
    k_block: int = INT_GEMM_K_BLOCK,
) -> np.ndarray:
    """Exact integer GEMM ``(O, K) @ (N, K, L) -> (N, O, L)``, K-tiled.

    The contraction dtype is the operands' (int64 for the reference
    backend, int32 for the narrow MCU-accumulator backend).  Reductions
    with ``K <= k_block`` run as one einsum; larger K accumulates
    per-tile partials so the exact-reference path stops thrashing on the
    wide pointwise layers (K = c_in up to 1024 in the model zoo).

    The tiled path allocates one output-sized partial per call — the
    zero-steady-state-allocation contract of the activation arena covers
    the default (auto/BLAS) plan; forced integer backends over wide
    reductions trade that guarantee for the tiling win.
    """
    n, k, l = cols.shape
    if k <= k_block:
        return np.einsum("ok,nkl->nol", w2, cols, optimize=True, out=out)
    if out is None:
        out = np.empty((n, w2.shape[0], l), dtype=np.result_type(w2, cols))  # analysis: ignore[hot-alloc] — arena-less fallback
    np.einsum("ok,nkl->nol", w2[:, :k_block], cols[:, :k_block], optimize=True, out=out)
    partial = np.empty_like(out)  # analysis: ignore[hot-alloc] — documented tiling tradeoff
    for k0 in range(k_block, k, k_block):
        k1 = min(k0 + k_block, k)
        np.einsum("ok,nkl->nol", w2[:, k0:k1], cols[:, k0:k1], optimize=True, out=partial)
        out += partial
    return out


#: Route a stride-1 depthwise layer through the fused stencil when
#: materialising its im2col column tensor would exceed this many bytes.
#: While the unfold stays near cache-resident the batched BLAS
#: contraction is the faster path; once the kh*kw-fold copy clearly
#: exceeds the last-level cache the layer turns memory-bound and the
#: stencil (which never materialises the columns) wins ~1.5-2x.  Sized at
#: ~1.5x a typical 32 MB L3 — measured: a ~29 MB unfold still favours
#: im2col, a ~58 MB unfold favours the stencil.
DW_IM2COL_BYTES_THRESHOLD = 48 << 20

#: Stride-2 stencil threshold.  A strided stencil reads every other
#: element of each input row (half of every cache line is wasted), but a
#: stride-2 im2col pays the same wasteful gather *and* materialises the
#: kh*kw-fold column tensor on top, so the stencil's crossover sits
#: lower than stride-1: measured on the MobileNetV1 224_1.0 s2 layers, a
#: ~43 MB unfold favours the stencil ~1.3x while small unfolds still
#: favour the batched matmul.
DW_IM2COL_S2_BYTES_THRESHOLD = 24 << 20

#: Batch-blocking target of the stencil: taps iterate inside blocks whose
#: out/tmp/window working set stays around this size, so the accumulator
#: churns in cache instead of streaming from DRAM on every tap.
DW_STENCIL_BLOCK_BYTES = 2 << 20


def depthwise_prefers_stencil(
    n: int, c: int, kh: int, kw: int, oh: int, ow: int, itemsize: int,
    stride: int = 1,
) -> bool:
    """Whether the fused stencil beats materialised im2col for this shape
    (the ``fused_depthwise="auto"`` dispatch rule of the compiled plan).

    Stride-1 and stride-2 layers dispatch on the size their im2col column
    tensor would reach, each with its own cache threshold (the strided
    window reads of a stride-2 stencil are dearer, but so is a stride-2
    unfold).  Larger strides always take the im2col path.
    """
    if stride == 1:
        threshold = DW_IM2COL_BYTES_THRESHOLD
    elif stride == 2:
        threshold = DW_IM2COL_S2_BYTES_THRESHOLD
    else:
        return False
    return n * c * kh * kw * oh * ow * itemsize > threshold


# hot
def depthwise_stencil_accumulate(
    x_shift: np.ndarray,
    w_cols: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
) -> np.ndarray:
    """Fused depthwise accumulation: per-tap strided stencil, no im2col.

    ``x_shift`` is the zero-point-shifted, already zero-padded input
    ``(N, C, HP, WP)`` and ``w_cols`` the shifted weights ``(C, kh*kw)``
    in the *same* dtype.  Instead of materialising the unfolded
    ``(N, C, kh*kw, OH*OW)`` column tensor (a ``kh*kw``-fold copy of the
    input — what makes large depthwise layers memory-bound), the kernel
    makes one multiply-add pass per kernel tap over a strided window view
    of the input, accumulating straight into the output-sized buffer.
    Taps run innermost over batch blocks of ~``DW_STENCIL_BLOCK_BYTES``
    so the accumulator stays cache-resident across the tap sweep.

    Exactness matches the GEMM backends: every tap product is bounded by
    ``(2^Qx - 1) * (2^Qw - 1)`` and every partial sum by
    ``k * (2^Qx - 1) * (2^Qw - 1)``, so whenever that bound fits the
    float significand (the same 2^24 / 2^53 dispatch as
    :func:`blas_gemm_dtype`) every float intermediate is an exact
    integer; over int64 it is exact unconditionally.

    ``out`` and ``tmp`` are optional preallocated ``(N, C, OH, OW)``
    buffers (activation-arena slabs); ``out`` must not alias ``x_shift``.
    """
    n, c, hp, wp = x_shift.shape
    oh = (hp - kh) // stride + 1
    ow = (wp - kw) // stride + 1
    if out is None:
        out = np.empty((n, c, oh, ow), dtype=x_shift.dtype)  # analysis: ignore[hot-alloc] — arena-less fallback
    if tmp is None and kh * kw > 1:
        tmp = np.empty((n, c, oh, ow), dtype=x_shift.dtype)  # analysis: ignore[hot-alloc] — arena-less fallback
    itemsize = x_shift.dtype.itemsize
    per_channel = 3 * oh * ow * itemsize
    c_block = max(1, DW_STENCIL_BLOCK_BYTES // max(per_channel, 1))
    if c_block >= c:
        # Whole channel ranges fit the target: block over the batch.
        c_block = c
        n_block = max(1, DW_STENCIL_BLOCK_BYTES // max(per_channel * c, 1))
    else:
        n_block = 1
    i_stops = [
        (i, j, i + stride * (oh - 1) + 1, j + stride * (ow - 1) + 1)
        for i, j in (divmod(idx, kw) for idx in range(kh * kw))
    ]
    for b0 in range(0, n, n_block):
        b1 = min(b0 + n_block, n)
        for c0 in range(0, c, c_block):
            c1 = min(c0 + c_block, c)
            x_b = x_shift[b0:b1, c0:c1]
            out_b = out[b0:b1, c0:c1]
            tmp_b = None if tmp is None else tmp[b0:b1, c0:c1]
            for idx, (i, j, i_stop, j_stop) in enumerate(i_stops):
                window = x_b[:, :, i:i_stop:stride, j:j_stop:stride]
                tap = w_cols[c0:c1, idx].reshape(1, c1 - c0, 1, 1)
                if idx == 0:
                    np.multiply(window, tap, out=out_b)
                else:
                    np.multiply(window, tap, out=tmp_b)
                    out_b += tmp_b
    return out


def int_conv2d(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    stride: int = 1,
    padding: int = 0,
    x_bits: int = 8,
    w_bits: int = 8,
    validate: bool = True,
    backend: str = "auto",
    w_shift: np.ndarray | None = None,
) -> np.ndarray:
    """Integer accumulator of a standard convolution.

    ``x_codes``: (N, C_in, H, W) unsigned codes; ``w_codes``: (C_out, C_in,
    kh, kw).  ``z_w`` may be a scalar (per-layer) or a per-output-channel
    vector (per-channel).  Zero padding pads with the code ``z_x`` so that
    the padded positions represent the real value 0, as the MCU kernel
    does.  ``w_shift`` optionally supplies the pre-shifted int64 weights
    (``w_codes - z_w``) so callers that run repeatedly can hoist the
    shift out of the per-inference path.
    """
    if validate:
        check_codes("activation", x_codes, x_bits)
        check_codes("weight", w_codes, w_bits)
    n, c_in, h, w = x_codes.shape
    c_out, _, kh, kw = w_codes.shape
    backend = resolve_gemm_backend(backend, c_in * kh * kw, x_bits, w_bits)
    if w_shift is None:
        w_shift = shift_weights(w_codes, z_w, c_out)
    w2 = w_shift.reshape(c_out, -1)
    # Shift activations by Z_x before im2col so zero padding contributes 0.
    if backend == "blas":
        dtype = blas_gemm_dtype(c_in * kh * kw, x_bits, w_bits)
        x_shift = np.subtract(x_codes, int(z_x), dtype=dtype)
        cols = im2col(x_shift, kh, kw, stride, padding, contiguous=False)
        # copy=False: a no-op when the caller supplied pre-cast w_shift.
        phi = np.matmul(w2.astype(dtype, copy=False), cols).astype(np.int64)
    else:
        idtype = np.int32 if backend == "int32" else np.int64
        x_shift = np.subtract(x_codes, int(z_x), dtype=idtype)
        cols = im2col(x_shift, kh, kw, stride, padding, contiguous=False)
        phi = int_einsum_gemm(w2.astype(idtype, copy=False), cols)
        if phi.dtype != np.int64:
            phi = phi.astype(np.int64)
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    return phi.reshape(n, c_out, oh, ow)


def int_depthwise_conv2d(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    stride: int = 1,
    padding: int = 0,
    x_bits: int = 8,
    w_bits: int = 8,
    validate: bool = True,
    backend: str = "auto",
    w_shift: np.ndarray | None = None,
) -> np.ndarray:
    """Integer accumulator of a depthwise convolution (im2col reference).

    ``w_codes`` has shape (C, 1, kh, kw); the per-channel ``z_w`` vector
    has one entry per channel.  This is the unfold-then-contract ground
    truth the fused stencil path (:func:`int_depthwise_conv2d_fused`) is
    property-tested against.
    """
    if validate:
        check_codes("activation", x_codes, x_bits)
        check_codes("weight", w_codes, w_bits)
    n, c, h, w = x_codes.shape
    kh, kw = w_codes.shape[2], w_codes.shape[3]
    oh = conv_output_size(h, kh, stride, padding)
    ow = conv_output_size(w, kw, stride, padding)
    backend = resolve_gemm_backend(backend, kh * kw, x_bits, w_bits)
    if w_shift is None:
        try:
            w_shift = shift_weights(w_codes, z_w, c)
        except ValueError:
            raise ValueError("per-channel z_w must have one entry per channel") from None
    w2 = w_shift.reshape(c, kh * kw)
    if backend == "blas":
        dtype = blas_gemm_dtype(kh * kw, x_bits, w_bits)
        x_shift = np.subtract(x_codes, int(z_x), dtype=dtype)
        cols = im2col(x_shift, kh, kw, stride, padding, contiguous=False)
        cols = cols.reshape(n, c, kh * kw, oh * ow)
        # (C, 1, kh*kw) @ (N, C, kh*kw, L) -> (N, C, 1, L), batched over N, C.
        phi = np.matmul(w2.astype(dtype, copy=False)[:, None, :], cols)
        phi = phi.astype(np.int64).reshape(n, c, oh * ow)
    else:
        idtype = np.int32 if backend == "int32" else np.int64
        x_shift = np.subtract(x_codes, int(z_x), dtype=idtype)
        cols = im2col(x_shift, kh, kw, stride, padding, contiguous=False)
        cols = cols.reshape(n, c, kh * kw, oh * ow)
        phi = np.einsum("ck,nckl->ncl", w2.astype(idtype, copy=False), cols, optimize=True)
        if phi.dtype != np.int64:
            phi = phi.astype(np.int64)
    return phi.reshape(n, c, oh, ow)


def int_depthwise_conv2d_fused(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    stride: int = 1,
    padding: int = 0,
    x_bits: int = 8,
    w_bits: int = 8,
    validate: bool = True,
    backend: str = "auto",
    w_shift: np.ndarray | None = None,
) -> np.ndarray:
    """Integer accumulator of a depthwise convolution, fused stencil path.

    Same contract (and bit-identical result, by property test) as
    :func:`int_depthwise_conv2d`, but the ``kh*kw``-fold im2col copy is
    never materialised: the accumulation runs as per-tap strided
    multiply-adds via :func:`depthwise_stencil_accumulate`.  Backend
    dispatch follows the same exactness bounds — float32/float64 when the
    worst-case accumulator fits the significand, int64 otherwise.
    """
    if validate:
        check_codes("activation", x_codes, x_bits)
        check_codes("weight", w_codes, w_bits)
    n, c, h, w = x_codes.shape
    kh, kw = w_codes.shape[2], w_codes.shape[3]
    backend = resolve_gemm_backend(backend, kh * kw, x_bits, w_bits)
    if w_shift is None:
        try:
            w_shift = shift_weights(w_codes, z_w, c)
        except ValueError:
            raise ValueError("per-channel z_w must have one entry per channel") from None
    if backend == "blas":
        dtype = blas_gemm_dtype(kh * kw, x_bits, w_bits)
    elif backend == "int32":
        dtype = np.int32
    else:
        dtype = np.int64
    w_cols = w_shift.reshape(c, kh * kw).astype(dtype, copy=False)
    if padding > 0:
        x_shift = np.zeros(
            (n, c, h + 2 * padding, w + 2 * padding), dtype=dtype
        )
        # dtype= pins the subtract loop so narrow (uint8) code containers
        # widen instead of wrapping below z_x.
        np.subtract(
            x_codes, int(z_x), out=x_shift[:, :, padding:-padding, padding:-padding],
            dtype=dtype,
        )
    else:
        x_shift = np.subtract(x_codes, int(z_x), dtype=dtype)
    phi = depthwise_stencil_accumulate(x_shift, w_cols, kh, kw, stride)
    if phi.dtype != np.int64:
        phi = phi.astype(np.int64)
    return phi


def int_linear(
    x_codes: np.ndarray,
    w_codes: np.ndarray,
    z_x: int,
    z_w: np.ndarray | int,
    x_bits: int = 8,
    w_bits: int = 8,
    validate: bool = True,
    backend: str = "auto",
    w_shift: np.ndarray | None = None,
) -> np.ndarray:
    """Integer accumulator of a fully connected layer.

    ``x_codes``: (N, in_features); ``w_codes``: (out_features, in_features).
    """
    if validate:
        check_codes("activation", x_codes, x_bits)
        check_codes("weight", w_codes, w_bits)
    backend = resolve_gemm_backend(backend, w_codes.shape[1], x_bits, w_bits)
    if w_shift is None:
        try:
            w_shift = shift_weights(w_codes, z_w, w_codes.shape[0])
        except ValueError:
            raise ValueError("per-channel z_w must have one entry per output feature") from None
    if backend == "blas":
        dtype = blas_gemm_dtype(w_codes.shape[1], x_bits, w_bits)
        x_shift = np.subtract(x_codes, int(z_x), dtype=dtype)
        return (x_shift @ w_shift.T.astype(dtype, copy=False)).astype(np.int64)
    idtype = np.int32 if backend == "int32" else np.int64
    x_shift = np.subtract(x_codes, int(z_x), dtype=idtype)
    phi = x_shift @ w_shift.T.astype(idtype, copy=False)
    return phi if phi.dtype == np.int64 else phi.astype(np.int64)


# hot
def int_avg_pool_global(x_codes: np.ndarray) -> np.ndarray:
    """Integer global average pooling with floor rounding.

    CMSIS-NN pools in the integer domain; the result keeps the input's
    scale and zero point (averaging is affine-invariant up to the floor).
    """
    n, c, h, w = x_codes.shape
    total = x_codes.astype(np.int64, copy=False).sum(axis=(2, 3), dtype=np.int64)
    return np.floor_divide(total, h * w).reshape(n, c)
