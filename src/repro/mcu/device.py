"""Microcontroller device descriptions.

The paper's target is an STM32H7 (2 MB Flash for read-only parameters,
512 kB of contiguous RAM for activations, Cortex-M7 at 400 MHz).  A few
other common STM32 parts are included as presets so the memory-driven
search and the latency model can be exercised against different budgets
(Table 3 uses a 1 MB read-only constraint).
"""

from __future__ import annotations

from dataclasses import dataclass

KB = 1024
MB = 1024 * 1024


@dataclass(frozen=True)
class MCUDevice:
    """Static description of a microcontroller target.

    ``flash_bytes`` bounds the read-only memory (Eq. 6); ``ram_bytes``
    bounds the read-write activation memory (Eq. 7); ``clock_hz`` converts
    cycle counts into latency; ``simd_macs_per_cycle`` is the peak 8-bit
    MAC throughput of the DSP-extension datapath.
    """

    name: str
    flash_bytes: int
    ram_bytes: int
    clock_hz: int
    core: str = "cortex-m7"
    simd_macs_per_cycle: float = 2.0

    @property
    def flash_mb(self) -> float:
        return self.flash_bytes / MB

    @property
    def ram_kb(self) -> float:
        return self.ram_bytes / KB

    def cycles_to_seconds(self, cycles: float) -> float:
        return cycles / self.clock_hz

    def cycles_to_fps(self, cycles: float) -> float:
        return self.clock_hz / cycles if cycles > 0 else float("inf")

    def with_budgets(self, flash_bytes: int | None = None, ram_bytes: int | None = None) -> "MCUDevice":
        """A copy of the device with overridden memory budgets (Table 3)."""
        return MCUDevice(
            name=self.name,
            flash_bytes=flash_bytes if flash_bytes is not None else self.flash_bytes,
            ram_bytes=ram_bytes if ram_bytes is not None else self.ram_bytes,
            clock_hz=self.clock_hz,
            core=self.core,
            simd_macs_per_cycle=self.simd_macs_per_cycle,
        )


#: The paper's evaluation platform (§6): 2 MB Flash, 512 kB RAM, 400 MHz.
STM32H7 = MCUDevice("STM32H743", flash_bytes=2 * MB, ram_bytes=512 * KB, clock_hz=400_000_000)

#: Cortex-M7 at 216 MHz with half the memory.
STM32F7 = MCUDevice("STM32F746", flash_bytes=1 * MB, ram_bytes=320 * KB, clock_hz=216_000_000,
                    core="cortex-m7")

#: Cortex-M4 class device.
STM32F4 = MCUDevice("STM32F469", flash_bytes=2 * MB, ram_bytes=384 * KB, clock_hz=180_000_000,
                    core="cortex-m4", simd_macs_per_cycle=1.0)

#: Low-power Cortex-M4.
STM32L4 = MCUDevice("STM32L476", flash_bytes=1 * MB, ram_bytes=128 * KB, clock_hz=80_000_000,
                    core="cortex-m4", simd_macs_per_cycle=1.0)
