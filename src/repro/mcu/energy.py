"""Energy model for duty-cycled smart-sensor deployments.

The paper's introduction frames the whole effort around battery-powered
smart sensors with a power envelope of a few tens of mW and multi-year
lifetimes.  This module provides the simple energy accounting needed to
turn the latency model's cycle counts into battery-lifetime estimates for
such duty-cycled deployments: the MCU runs one inference, then sleeps
until the next sensor event.

The default power numbers correspond to an STM32H7-class device at 400 MHz
(active) and its Stop mode (sleep); they can be overridden per deployment.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mcu.device import MCUDevice, STM32H7


@dataclass(frozen=True)
class PowerProfile:
    """Static power characteristics of a deployment target.

    ``active_mw`` is the power drawn while executing the network,
    ``sleep_uw`` the deep-sleep power between inferences, and
    ``wakeup_overhead_ms`` the time spent waking the core and restoring
    clocks before useful work starts.
    """

    active_mw: float = 60.0
    sleep_uw: float = 30.0
    wakeup_overhead_ms: float = 0.5

    def __post_init__(self):
        if self.active_mw <= 0 or self.sleep_uw < 0 or self.wakeup_overhead_ms < 0:
            raise ValueError("power profile values must be positive")


#: Representative profiles for the device presets of :mod:`repro.mcu.device`.
STM32H7_POWER = PowerProfile(active_mw=60.0, sleep_uw=32.0, wakeup_overhead_ms=0.4)
STM32L4_POWER = PowerProfile(active_mw=12.0, sleep_uw=1.5, wakeup_overhead_ms=0.3)


@dataclass
class EnergyReport:
    """Energy accounting of a duty-cycled deployment."""

    device: str
    latency_ms: float
    inferences_per_hour: float
    energy_per_inference_mj: float
    average_power_mw: float
    battery_life_days: float

    def summary(self) -> str:
        return (
            f"{self.device}: {self.latency_ms:.1f} ms/inference, "
            f"{self.energy_per_inference_mj:.2f} mJ/inference, "
            f"avg {self.average_power_mw:.3f} mW, "
            f"~{self.battery_life_days:.0f} days on the given battery"
        )


def energy_per_inference_mj(
    total_cycles: float,
    device: MCUDevice = STM32H7,
    power: PowerProfile = STM32H7_POWER,
) -> float:
    """Energy of one inference in millijoules (active phase only)."""
    if total_cycles < 0:
        raise ValueError("cycle count must be non-negative")
    active_s = total_cycles / device.clock_hz + power.wakeup_overhead_ms / 1000.0
    return power.active_mw * active_s


def duty_cycle_report(
    total_cycles: float,
    inferences_per_hour: float,
    device: MCUDevice = STM32H7,
    power: PowerProfile = STM32H7_POWER,
    battery_mwh: float = 1000.0,
) -> EnergyReport:
    """Average power and battery life for a periodic-inference deployment.

    Parameters
    ----------
    total_cycles:
        Cycles of one inference (from :func:`repro.mcu.latency.network_cycles`).
    inferences_per_hour:
        How often the sensor wakes up to classify.
    battery_mwh:
        Battery capacity in milliwatt-hours (1000 mWh ~ a small LiPo cell).
    """
    if inferences_per_hour <= 0:
        raise ValueError("inferences_per_hour must be positive")
    if battery_mwh <= 0:
        raise ValueError("battery capacity must be positive")
    latency_s = total_cycles / device.clock_hz
    active_s = latency_s + power.wakeup_overhead_ms / 1000.0
    e_inf_mj = power.active_mw * active_s

    period_s = 3600.0 / inferences_per_hour
    sleep_s = max(period_s - active_s, 0.0)
    # Average power in mW: (active energy + sleep energy) / period.
    e_sleep_mj = (power.sleep_uw / 1000.0) * sleep_s
    avg_power_mw = (e_inf_mj + e_sleep_mj) / period_s

    battery_mj = battery_mwh * 3.6  # 1 mWh = 3.6 J = 3600 mJ / 1000
    battery_life_hours = battery_mwh / avg_power_mw if avg_power_mw > 0 else float("inf")
    del battery_mj  # capacity is consumed through the mWh/mW ratio above

    return EnergyReport(
        device=device.name,
        latency_ms=1000.0 * latency_s,
        inferences_per_hour=inferences_per_hour,
        energy_per_inference_mj=e_inf_mj,
        average_power_mw=avg_power_mw,
        battery_life_days=battery_life_hours / 24.0,
    )
