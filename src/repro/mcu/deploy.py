"""Deployment reporting: does a quantized network fit a device, and how
fast does it run there (paper §5–6)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.memory_model import MemoryModel
from repro.core.mixed_precision import search_mixed_precision
from repro.core.policy import QuantMethod, QuantPolicy
from repro.mcu.device import MCUDevice
from repro.mcu.latency import CMSISNNCostModel, DEFAULT_COST_MODEL, network_cycles
from repro.models.model_zoo import NetworkSpec


@dataclass
class DeploymentReport:
    """Summary of deploying one network configuration on one device."""

    network: str
    device: str
    method: QuantMethod
    policy: QuantPolicy
    ro_bytes: int
    rw_peak_bytes: int
    fits: bool
    total_cycles: float
    latency_ms: float
    fps: float

    def summary(self) -> str:
        lines = [
            f"{self.network} on {self.device} [{self.method.value}]",
            f"  read-only memory : {self.ro_bytes / 1024 / 1024:6.2f} MB",
            f"  read-write peak  : {self.rw_peak_bytes / 1024:6.1f} kB",
            f"  fits budgets     : {'yes' if self.fits else 'NO'}",
            f"  latency          : {self.latency_ms:8.1f} ms  ({self.fps:5.2f} fps, "
            f"{self.total_cycles / 1e6:.1f} Mcycles)",
        ]
        return "\n".join(lines)


def check_fit(spec: NetworkSpec, policy: QuantPolicy, device: MCUDevice) -> bool:
    """Whether the policy satisfies the device's Flash and RAM budgets."""
    return MemoryModel(spec).fits(policy, device.flash_bytes, device.ram_bytes)


def assert_arena_fits(plan, device: MCUDevice, input_hw,
                      check_physical: bool = True) -> int:
    """Assert a *compiled* plan's activation peak fits the device RAM.

    ``plan`` is an :class:`~repro.inference.plan.ExecutionPlan` (a
    :class:`repro.runtime.Session` is accepted too and unwrapped); the
    check uses the arena's logical (Eq. 7, packed-code) RW peak — the
    runtime counterpart of :func:`check_fit`'s analytical term, derived
    from the actual compiled layer stack instead of a
    :class:`NetworkSpec`.

    With ``check_physical`` (default), a pure 8-bit narrow-native plan
    must additionally allocate its container-width ping-pong code pair
    within the Eq. 7 peak — the runtime's physical activation bytes are
    asserted not to exceed the paper's accounting (they agree *exactly*
    on every model-zoo pyramid, which the tests pin down), so a
    regression back to inflated (e.g. int64) containers cannot pass the
    deployment gate.  Sub-byte activations keep the one-byte container
    (physical >= logical by design) and are not checked.  Disable for
    exotic topologies where the ping-pong schedule is legitimately
    looser than the per-layer pair bound.

    Returns the logical peak in bytes; raises ``ValueError`` when it
    exceeds the device's RW budget or the physical check fails.
    """
    from repro.runtime.session import Session

    if isinstance(plan, Session):
        plan = plan.plan
    arena = plan.arena_for(input_hw)
    peak = arena.logical_rw_peak_bytes
    if peak > device.ram_bytes:
        raise ValueError(
            f"activation arena peak {peak} B exceeds {device.name} "
            f"RW budget {device.ram_bytes} B for input "
            f"{int(input_hw[0])}x{int(input_hw[1])}"
        )
    conv = [p for p in arena.plans if p.kind != "fc"]
    pure_8bit = bool(conv) and all(
        p.in_bits == 8 and p.out_bits == 8 and p.out_itemsize == 1
        for p in conv
    )
    if check_physical and getattr(plan, "narrow", False) and pure_8bit:
        physical = arena.physical_code_bytes(1)
        if physical > peak:
            raise ValueError(
                f"physical code slabs ({physical} B at container width) "
                f"exceed the Eq. 7 RW peak ({peak} B) for a pure 8-bit "
                f"network — the arena no longer mirrors the paper's "
                f"memory model"
            )
    return peak


def deploy(
    spec: NetworkSpec,
    device: MCUDevice,
    method: QuantMethod = QuantMethod.PC_ICN,
    policy: Optional[QuantPolicy] = None,
    cost_model: CMSISNNCostModel = DEFAULT_COST_MODEL,
    strict: bool = False,
) -> DeploymentReport:
    """Run the memory-driven search (unless a policy is supplied) and
    produce the deployment report for ``spec`` on ``device``."""
    if policy is None:
        policy = search_mixed_precision(
            spec, device.flash_bytes, device.ram_bytes, method=method, strict=strict
        )
    memory = MemoryModel(spec)
    ro = memory.ro_bytes(policy)
    rw = memory.rw_peak_bytes(policy)
    latency = network_cycles(spec, policy, cost_model)
    total = latency.total_cycles
    return DeploymentReport(
        network=spec.name,
        device=device.name,
        method=policy.method,
        policy=policy,
        ro_bytes=ro,
        rw_peak_bytes=rw,
        fits=ro <= device.flash_bytes and rw <= device.ram_bytes,
        total_cycles=total,
        latency_ms=1000.0 * total / device.clock_hz,
        fps=device.clock_hz / total if total else float("inf"),
    )
