"""Latency model of the extended CMSIS-NN kernels (paper §6).

The paper benchmarks the integer-only networks on an STM32H7 at 400 MHz
with an extended CMSIS-NN library (output-stationary dataflow, support for
sub-byte operands and per-channel zero points) and reports latency in
clock cycles.  This module provides an analytical cycle model of those
kernels, parameterised from the data points the paper gives:

* the fastest configuration (128_0.25, homogeneous 8 bit) runs at ~10 fps,
  i.e. ~40 M cycles for ~14 M MACs — about 2.8 cycles/MAC end to end;
* the most accurate configuration (224_0.75, PC+ICN) is about 20x slower;
* per-channel (PC) quantization adds ~20 % latency because the weight
  zero-point subtraction moves into the inner MAC loop;
* sub-byte operands must be unpacked before the SIMD MAC, adding a
  per-element overhead that grows as the precision shrinks.

The model is not cycle-exact, but it preserves the relative ordering and
the magnitude of the latency axis of Figure 2, which is what the
accuracy-latency trade-off study needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.policy import QuantMethod, QuantPolicy
from repro.models.model_zoo import LayerSpec, NetworkSpec


@dataclass(frozen=True)
class CMSISNNCostModel:
    """Cycle-cost parameters of the extended CMSIS-NN kernels.

    ``cycles_per_mac`` is the base cost of one multiply-accumulate in the
    8-bit per-layer configuration, per kernel type.  Depthwise kernels pay
    more per MAC because they cannot amortise the im2col patch over many
    output channels.  The remaining fields are multiplicative or additive
    overheads described in the class docstring.
    """

    cycles_per_mac: Dict[str, float] = field(
        default_factory=lambda: {"conv": 2.6, "pw": 2.5, "dw": 4.6, "fc": 2.5}
    )
    #: Extra per-MAC factor when weights are stored below 8 bit (unpacking).
    weight_unpack_factor: Dict[int, float] = field(
        default_factory=lambda: {8: 1.0, 4: 1.15, 2: 1.30}
    )
    #: Extra per-MAC factor when input activations are below 8 bit.
    act_unpack_factor: Dict[int, float] = field(
        default_factory=lambda: {8: 1.0, 4: 1.10, 2: 1.20}
    )
    #: Inner-loop overhead of per-channel weight zero-points (paper: ~20 %).
    per_channel_factor: float = 1.20
    #: Requantization cost per output element (ICN multiply + shift + clamp).
    requant_cycles_per_output: float = 4.0
    #: Folded-BN requantization is marginally cheaper (scalar multiplier).
    requant_cycles_per_output_folded: float = 3.0
    #: Threshold requantization: binary search over 2^Q thresholds.
    requant_cycles_per_output_threshold_base: float = 6.0
    #: im2col / buffer management cost per input element loaded.
    im2col_cycles_per_element: float = 0.7
    #: Fixed per-layer call overhead (function call, loop setup, DMA/config).
    layer_overhead_cycles: float = 3000.0


DEFAULT_COST_MODEL = CMSISNNCostModel()


def _requant_cycles(
    layer: LayerSpec, method: QuantMethod, q_out: int, model: CMSISNNCostModel
) -> float:
    outputs = layer.output_activation_count
    if method is QuantMethod.PL_FB:
        return outputs * model.requant_cycles_per_output_folded
    if method is QuantMethod.PC_THRESHOLDS:
        # Binary search over 2^Q thresholds: ~Q comparisons per output.
        return outputs * (model.requant_cycles_per_output_threshold_base + q_out)
    return outputs * model.requant_cycles_per_output


def layer_cycles(
    layer: LayerSpec,
    q_w: int,
    q_in: int,
    q_out: int,
    method: QuantMethod = QuantMethod.PC_ICN,
    model: CMSISNNCostModel = DEFAULT_COST_MODEL,
) -> float:
    """Estimated cycles of one quantized convolutional layer."""
    base = model.cycles_per_mac.get(layer.kind)
    if base is None:
        raise ValueError(f"unknown layer kind {layer.kind!r}")
    per_mac = (
        base
        * model.weight_unpack_factor[q_w]
        * model.act_unpack_factor[q_in]
    )
    if method.per_channel:
        per_mac *= model.per_channel_factor
    mac_cycles = layer.macs * per_mac
    im2col_cycles = (
        layer.input_activation_count * model.im2col_cycles_per_element
        if layer.kind in ("conv", "dw")
        else 0.0
    )
    return (
        mac_cycles
        + im2col_cycles
        + _requant_cycles(layer, method, q_out, model)
        + model.layer_overhead_cycles
    )


@dataclass
class LatencyBreakdown:
    """Per-layer and total cycle counts of one network under one policy."""

    network: str
    method: QuantMethod
    per_layer_cycles: List[float]
    layer_names: List[str]

    @property
    def total_cycles(self) -> float:
        return float(sum(self.per_layer_cycles))

    def latency_seconds(self, clock_hz: int) -> float:
        return self.total_cycles / clock_hz

    def fps(self, clock_hz: int) -> float:
        total = self.total_cycles
        return clock_hz / total if total > 0 else float("inf")

    def top_layers(self, k: int = 5) -> List[tuple]:
        """The ``k`` most expensive layers as (name, cycles) pairs."""
        pairs = sorted(
            zip(self.layer_names, self.per_layer_cycles), key=lambda t: -t[1]
        )
        return pairs[:k]


def network_cycles(
    spec: NetworkSpec,
    policy: QuantPolicy,
    model: CMSISNNCostModel = DEFAULT_COST_MODEL,
) -> LatencyBreakdown:
    """Estimated cycles of a full network under a quantization policy."""
    if len(spec) != len(policy):
        raise ValueError("policy and spec layer counts differ")
    cycles = [
        layer_cycles(layer, lp.q_w, lp.q_in, lp.q_out, policy.method, model)
        for layer, lp in zip(spec.layers, policy.layers)
    ]
    return LatencyBreakdown(
        network=spec.name,
        method=policy.method,
        per_layer_cycles=cycles,
        layer_names=[l.name for l in spec.layers],
    )
