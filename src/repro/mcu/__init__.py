"""Microcontroller deployment model: device presets, CMSIS-NN-style
latency model and memory-fit / deployment reporting."""

from repro.mcu.device import MCUDevice, STM32H7, STM32F7, STM32F4, STM32L4
from repro.mcu.latency import CMSISNNCostModel, layer_cycles, network_cycles, LatencyBreakdown
from repro.mcu.deploy import DeploymentReport, deploy, check_fit
from repro.mcu.energy import (
    PowerProfile,
    EnergyReport,
    STM32H7_POWER,
    STM32L4_POWER,
    energy_per_inference_mj,
    duty_cycle_report,
)

__all__ = [
    "MCUDevice",
    "STM32H7",
    "STM32F7",
    "STM32F4",
    "STM32L4",
    "CMSISNNCostModel",
    "layer_cycles",
    "network_cycles",
    "LatencyBreakdown",
    "DeploymentReport",
    "deploy",
    "check_fit",
    "PowerProfile",
    "EnergyReport",
    "STM32H7_POWER",
    "STM32L4_POWER",
    "energy_per_inference_mj",
    "duty_cycle_report",
]
