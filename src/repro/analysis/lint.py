"""AST-based repo lint: concurrency and hot-path discipline as code.

Rules (each diagnostic carries its rule name; a trailing
``# analysis: ignore[rule]`` — or a bare ``# analysis: ignore`` — on the
flagged line exempts it):

``async-blocking``
    No blocking calls inside ``async def`` in ``repro/serving/``:
    ``time.sleep``, synchronous socket/file I/O (``socket.*``, builtin
    ``open``, ``requests``/``urllib``/``subprocess``), and
    ``...().result()`` — a blocked event loop stalls every request.
``hot-alloc``
    No allocation-shaped numpy calls inside hot-path functions (a
    ``# hot`` marker on or directly above the ``def``) of
    ``kernels.py``/``plan.py``: ``np.zeros``/``np.empty``/
    ``np.concatenate``/friends, ``.astype`` without ``copy=False``, and
    bare ``.copy()`` — the arena exists so steady-state inference
    allocates nothing.
``except-swallow``
    No bare ``except:`` and no ``except Exception``/``BaseException``
    whose body neither re-raises, nor logs, nor does anything at all
    (``pass``/``continue``/docstring only) — silent swallows hide real
    faults; narrow the type or record the drop.
``lock-order``
    Lock-acquisition-order consistency: if one function nests
    ``with a: with b:`` and another nests ``with b: with a:``, the two
    orders deadlock under contention.  Re-acquiring the same lock
    object inside itself is flagged too.
``unused-import``
    Module-level imports that are never referenced.
``mutable-default``
    Mutable default arguments (list/dict/set literals or constructors).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

__all__ = ["LintViolation", "lint_file", "lint_package", "lint_paths"]

_IGNORE_RE = re.compile(r"#\s*analysis:\s*ignore(?:\[([a-z0-9_,\- ]+)\])?")
_HOT_RE = re.compile(r"#\s*hot\b")
_LOCK_NAME_RE = re.compile(r"(?i)(lock|cond|mutex)")

#: Call roots that block the event loop when awaited around (async rule).
_BLOCKING_ROOTS = ("socket", "requests", "subprocess", "urllib")

#: numpy allocators that materialise fresh buffers (hot-path rule).
_NP_ALLOCATORS = {
    "zeros", "empty", "ones", "full", "zeros_like", "empty_like",
    "ones_like", "full_like", "concatenate", "stack", "vstack", "hstack",
    "pad", "copy", "array", "ascontiguousarray", "asfortranarray",
    "arange", "tile", "repeat",
}


@dataclass(frozen=True)
class LintViolation:
    """One lint finding, pinned to a rule, file and line."""

    rule: str
    path: str
    line: int
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _ignored_rules(source_lines: Sequence[str], lineno: int) -> Optional[Set[str]]:
    """Rules exempted on ``lineno`` (1-based); ``set()`` means all rules."""
    if not 1 <= lineno <= len(source_lines):
        return None
    m = _IGNORE_RE.search(source_lines[lineno - 1])
    if m is None:
        return None
    if m.group(1) is None:
        return set()  # bare ignore: everything
    return {r.strip() for r in m.group(1).split(",") if r.strip()}


def _call_root(node: ast.expr) -> Optional[str]:
    """Leftmost name of a dotted call target (``a.b.c()`` -> ``a``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dotted(node: ast.expr) -> Optional[str]:
    """Full dotted name of a call target (``a.b.c()`` -> ``"a.b.c"``)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _FileLinter:
    def __init__(self, path: Path, source: str, rel: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.violations: List[LintViolation] = []
        self.in_serving = "serving" in Path(rel).parts
        self.hot_eligible = Path(rel).name in ("kernels.py", "plan.py")

    def flag(self, rule: str, node: ast.AST, message: str) -> None:
        lineno = getattr(node, "lineno", 1)
        ignored = _ignored_rules(self.lines, lineno)
        if ignored is not None and (not ignored or rule in ignored):
            return
        self.violations.append(LintViolation(rule, self.rel, lineno, message))

    def run(self) -> List[LintViolation]:
        self.check_imports()
        self.check_mutable_defaults()
        self.check_except_swallow()
        if self.in_serving:
            self.check_async_blocking()
        if self.hot_eligible:
            self.check_hot_alloc()
        self.check_lock_order()
        return self.violations

    # -- unused-import -------------------------------------------------
    def check_imports(self) -> None:
        if Path(self.rel).name == "__init__.py":
            return  # re-export surface: imports are the point
        imported: Dict[str, ast.stmt] = {}
        for node in self.tree.body:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".")[0]
                    imported[name] = node
            elif isinstance(node, ast.ImportFrom):
                if node.module == "__future__":
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imported[alias.asname or alias.name] = node
        if not imported:
            return
        used: Set[str] = set()
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Name):
                used.add(node.id)
            elif isinstance(node, ast.Attribute):
                root = _call_root(node)
                if root:
                    used.add(root)
        # Names re-exported via __all__ count as used.
        for node in self.tree.body:
            if (isinstance(node, ast.Assign)
                    and any(isinstance(t, ast.Name) and t.id == "__all__"
                            for t in node.targets)
                    and isinstance(node.value, (ast.List, ast.Tuple))):
                for elt in node.value.elts:
                    if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                        used.add(elt.value)
        for name, node in imported.items():
            if name not in used:
                self.flag("unused-import", node,
                          f"imported name {name!r} is never used")

    # -- mutable-default -----------------------------------------------
    def check_mutable_defaults(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                bad = isinstance(default, (ast.List, ast.Dict, ast.Set))
                if (isinstance(default, ast.Call)
                        and isinstance(default.func, ast.Name)
                        and default.func.id in ("list", "dict", "set")):
                    bad = True
                if bad:
                    self.flag(
                        "mutable-default", default,
                        f"mutable default argument in {node.name}() is "
                        "shared across calls",
                    )

    # -- except-swallow ------------------------------------------------
    def _handler_is_broad(self, handler: ast.ExceptHandler) -> Optional[str]:
        if handler.type is None:
            return "bare except:"
        names: List[str] = []
        types = (handler.type.elts
                 if isinstance(handler.type, ast.Tuple) else [handler.type])
        for t in types:
            dotted = _dotted(t)
            if dotted in ("Exception", "BaseException"):
                names.append(dotted)
        return f"except {names[0]}" if names else None

    def _body_swallows(self, handler: ast.ExceptHandler) -> bool:
        """True when the handler body does nothing observable at all."""
        for stmt in handler.body:
            if isinstance(stmt, ast.Pass) or isinstance(stmt, ast.Continue):
                continue
            if (isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)):
                continue  # docstring / ellipsis
            return False
        return True

    def check_except_swallow(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = self._handler_is_broad(node)
            if broad is None:
                continue
            if self._body_swallows(node):
                self.flag(
                    "except-swallow", node,
                    f"{broad} swallows the error without re-raising, "
                    "logging or counting it — narrow the type or record "
                    "the drop",
                )

    # -- async-blocking ------------------------------------------------
    def _blocking_reason(self, call: ast.Call) -> Optional[str]:
        dotted = _dotted(call.func)
        if dotted == "time.sleep":
            return "time.sleep() blocks the event loop (use asyncio.sleep)"
        if dotted == "open" or dotted == "io.open":
            return "synchronous file I/O blocks the event loop"
        root = _call_root(call.func)
        if root in _BLOCKING_ROOTS:
            return f"synchronous {root}.* call blocks the event loop"
        if (isinstance(call.func, ast.Attribute)
                and call.func.attr == "result"
                and not call.args and not call.keywords):
            return (".result() blocks the event loop until the future "
                    "resolves (await it instead)")
        return None

    def check_async_blocking(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.AsyncFunctionDef):
                continue
            # Nodes inside nested *sync* defs run off-loop (executor
            # targets, helpers) — exclude their whole subtrees.
            off_loop: Set[int] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.FunctionDef):
                    off_loop.update(id(x) for x in ast.walk(sub))
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call) or id(sub) in off_loop:
                    continue
                reason = self._blocking_reason(sub)
                if reason is not None:
                    self.flag(
                        "async-blocking", sub,
                        f"in async {node.name}(): {reason}",
                    )

    # -- hot-alloc -----------------------------------------------------
    def _is_hot(self, node: ast.AST) -> bool:
        lineno = getattr(node, "lineno", 0)
        for ln in (lineno, lineno - 1):
            if 1 <= ln <= len(self.lines) and _HOT_RE.search(self.lines[ln - 1]):
                return True
        return False

    def check_hot_alloc(self) -> None:
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._is_hot(node):
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                dotted = _dotted(sub.func)
                if dotted is not None and "." in dotted:
                    root, _, tail = dotted.partition(".")
                    if root in ("np", "numpy") and tail in _NP_ALLOCATORS:
                        self.flag(
                            "hot-alloc", sub,
                            f"{dotted}() allocates inside hot function "
                            f"{node.name}() — route it through the arena",
                        )
                        continue
                if isinstance(sub.func, ast.Attribute):
                    if sub.func.attr == "astype":
                        copy_false = any(
                            kw.arg == "copy"
                            and isinstance(kw.value, ast.Constant)
                            and kw.value.value is False
                            for kw in sub.keywords
                        )
                        if not copy_false:
                            self.flag(
                                "hot-alloc", sub,
                                f".astype(...) without copy=False allocates "
                                f"inside hot function {node.name}()",
                            )
                    elif (sub.func.attr == "copy"
                          and not sub.args and not sub.keywords):
                        self.flag(
                            "hot-alloc", sub,
                            f".copy() allocates inside hot function "
                            f"{node.name}()",
                        )

    # -- lock-order ----------------------------------------------------
    def _lock_name(self, node: ast.expr) -> Optional[str]:
        """Identify a lock-ish with-item by its final attribute/name."""
        target = node
        if isinstance(target, ast.Call):
            return None  # with lock_factory(): not a named lock
        dotted = _dotted(target)
        if dotted is None:
            return None
        final = dotted.rsplit(".", 1)[-1]
        if _LOCK_NAME_RE.search(final):
            return dotted
        return None

    def _with_lock_edges(self) -> List[Tuple[str, str, ast.AST]]:
        """(outer, inner, node) pairs of nested lock acquisitions."""
        edges: List[Tuple[str, str, ast.AST]] = []

        def visit(node: ast.AST, held: List[str]) -> None:
            acquired: List[str] = []
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    name = self._lock_name(item.context_expr)
                    if name is not None:
                        for outer in held + acquired:
                            edges.append((outer, name, node))
                        acquired.append(name)
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    visit(child, [])
                else:
                    visit(child, held + acquired)

        visit(self.tree, [])
        return edges

    def check_lock_order(self) -> None:
        edges = self._with_lock_edges()
        seen: Dict[Tuple[str, str], ast.AST] = {}
        for outer, inner, node in edges:
            if outer == inner:
                self.flag(
                    "lock-order", node,
                    f"re-acquires lock {outer!r} while already holding it",
                )
                continue
            seen.setdefault((outer, inner), node)
        for (outer, inner), node in seen.items():
            if (inner, outer) in seen:
                self.flag(
                    "lock-order", node,
                    f"inconsistent acquisition order: {outer!r} -> {inner!r} "
                    f"here but {inner!r} -> {outer!r} elsewhere — deadlock "
                    "under contention",
                )


def lint_file(path: Union[str, Path], rel: Optional[str] = None) -> List[LintViolation]:
    """Lint one Python source file; returns its violations."""
    p = Path(path)
    rel = rel if rel is not None else p.name
    try:
        source = p.read_text()
    except (OSError, UnicodeDecodeError) as exc:
        return [LintViolation("structure", str(rel), 0, f"unreadable: {exc}")]
    try:
        return _FileLinter(p, source, str(rel)).run()
    except SyntaxError as exc:
        return [LintViolation("structure", str(rel), exc.lineno or 0,
                              f"syntax error: {exc.msg}")]


def lint_paths(paths: Sequence[Union[str, Path]],
               root: Optional[Path] = None) -> List[LintViolation]:
    """Lint a list of files/directories (directories walked recursively)."""
    violations: List[LintViolation] = []
    for entry in paths:
        p = Path(entry)
        files = sorted(p.rglob("*.py")) if p.is_dir() else [p]
        for f in files:
            base = root if root is not None else (p if p.is_dir() else p.parent)
            try:
                rel = str(f.relative_to(base))
            except ValueError:
                rel = str(f)
            violations.extend(lint_file(f, rel=rel))
    return violations


def lint_package(root: Optional[Union[str, Path]] = None) -> List[LintViolation]:
    """Lint the installed ``repro`` package tree (the ``--self`` mode)."""
    if root is None:
        import repro

        root = Path(repro.__file__).parent
    root = Path(root)
    return lint_paths([root], root=root.parent)
