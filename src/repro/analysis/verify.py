"""Static plan verifier: prove a compiled plan safe without executing it.

The compiled :class:`~repro.inference.plan.ExecutionPlan` rests on a
stack of hand-maintained invariants — accumulator-overflow bounds that
gate the sgemm/int32 dispatch, sub-byte container-dtype rules across
quantizer → packing → arena, requantization shift ranges, and the
ping-pong slab lifetime discipline of the activation arena.  Runtime
tests only exercise these on the inputs they happen to run;
:func:`verify_plan` re-derives each invariant symbolically from the
compiled state and fails with a layer-named diagnostic when any is
violated, so *every* plan (including one rebuilt from a saved artifact)
can be proven safe before its first inference.

Four rule families (the rule name appears in every diagnostic):

``acc-bound``
    Per-layer worst-case ``|Phi|`` recomputed from the actual shifted
    weights (a-priori corner case *and* the refined weight-data bound,
    plus split-K per-chunk bounds) must fit the dispatched backend:
    float32 < 2^24, int32 < 2^31, float64 < 2^53, int64 unconditional.
``container-dtype``
    Output codes must land in exactly the container
    :func:`~repro.inference.packing.container_dtype` prescribes for
    their bit width (never a wider slab), requantization clamps must
    match ``2^bits - 1``, and the bit/channel chain across layers must
    be consistent.
``requant-shift``
    Fixed-point shift split into ``[0, 62]`` right / non-negative left
    parts, ``|m0| < 2^31`` (Q31 multiplier), ``z_y`` within the output
    code range, and the full Eq. 5 pipeline free of int64 overflow at
    the layer's accumulator bound; threshold tables sized ``2^bits - 1``
    and sorted.
``slab-aliasing``
    Walk the ping-pong schedule and prove no two simultaneously-live
    tensors share slab bytes and every read happens inside its
    producer's live range: each layer's input slot must have been
    written last by its predecessor (no stale reads), cover at least the
    bytes read, and differ from the layer's output slot; every per-layer
    slab view must fit its slab (no silent overflow at run time).

Structural inconsistencies discovered on the way (shape mismatches,
non-integral weights, broken metadata cross-checks) are reported under
``structure``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.inference.arena import requant_scratch_bytes
from repro.inference.kernels import (
    FLOAT32_EXACT_BITS,
    FLOAT64_EXACT_BITS,
    INT32_EXACT_BITS,
    max_abs_accumulator,
    resolve_gemm_backend,
)
from repro.inference.packing import container_dtype
from repro.nn.functional import conv_output_size

__all__ = [
    "PlanVerificationError",
    "VerificationReport",
    "Violation",
    "verify_artifact",
    "verify_plan",
]

_INT64 = np.dtype(np.int64)

#: Maximum right-shift the compiled fixed-point requantization applies
#: (same clamp as ``icn._fixed_point_scale`` / ``_CompiledFixedPointRequant``).
_MAX_RSHIFT = 62


@dataclass(frozen=True)
class Violation:
    """One failed static check, pinned to a rule and a layer."""

    rule: str
    layer: str
    message: str

    def __str__(self) -> str:
        return f"[{self.rule}] {self.layer}: {self.message}"


class PlanVerificationError(ValueError):
    """A compiled plan failed static verification.

    Carries the full list of :class:`Violation` diagnostics (each naming
    its rule and layer), not just the first one, so a corrupted artifact
    reports every broken invariant in one pass.
    """

    def __init__(self, violations: Sequence[Violation]):
        self.violations: List[Violation] = list(violations)
        lines = [f"plan verification failed ({len(self.violations)} violation(s)):"]
        lines += [f"  {v}" for v in self.violations]
        super().__init__("\n".join(lines))

    @property
    def layers(self) -> List[str]:
        return [v.layer for v in self.violations]

    @property
    def rules(self) -> List[str]:
        return [v.rule for v in self.violations]


@dataclass
class VerificationReport:
    """Outcome of one verification pass: per-rule check counts + violations."""

    checks: Dict[str, int] = field(default_factory=dict)
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def count(self, rule: str) -> int:
        return self.checks.get(rule, 0)

    def passed(self, rule: str, n: int = 1) -> None:
        self.checks[rule] = self.checks.get(rule, 0) + n

    def fail(self, rule: str, layer: str, message: str) -> None:
        self.checks[rule] = self.checks.get(rule, 0) + 1
        self.violations.append(Violation(rule, layer, message))

    def raise_if_failed(self) -> None:
        if self.violations:
            raise PlanVerificationError(self.violations)

    def summary(self) -> str:
        total = sum(self.checks.values())
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        per_rule = ", ".join(
            f"{rule}={n}" for rule, n in sorted(self.checks.items())
        )
        return f"verified {total} checks ({per_rule}): {status}"


# ----------------------------------------------------------------------
# Per-layer helpers
# ----------------------------------------------------------------------
def _recover_int_weights(layer, report: VerificationReport) -> Optional[np.ndarray]:
    """The layer's shifted weights back in exact int64 ``(O, K)`` form.

    The compiled plan stores them at the GEMM dtype (float32/float64/
    int32/int64); a float-stored weight that is not an exact integer can
    never have come from integer codes and is reported as a ``structure``
    violation.
    """
    if getattr(layer, "kind", "") == "fc":
        w = np.asarray(layer.w_t).T  # stored (K, O)
    elif getattr(layer, "kind", "") == "dw":
        w = np.asarray(layer.w_cols)  # (C, kh*kw) flat stencil form
    else:
        w = np.asarray(layer.w2)
    w = w.reshape(w.shape[0], -1)
    if w.dtype.kind == "f":
        rounded = np.rint(w)
        if not np.array_equal(rounded, w):
            report.fail(
                "structure", layer.name,
                f"float-stored weights are not exact integers (dtype {w.dtype})",
            )
            return None
        w = rounded
    return w.astype(np.int64)


def _x_magnitude(z_x: int, x_bits: int) -> int:
    """Worst-case ``max|X - Z_x|`` over in-range input codes."""
    return max(int(z_x), 2 ** x_bits - 1 - int(z_x))


def _check_acc_bound(layer, plan_validate: bool, refined: bool,
                     report: VerificationReport) -> None:
    """Accumulator-overflow safety of one compiled layer's dispatch."""
    name = layer.name
    w = _recover_int_weights(layer, report)
    if w is None:
        return
    k = int(layer.k_reduction)
    if w.shape[1] != k:
        report.fail(
            "structure", name,
            f"weight reduction width {w.shape[1]} != declared k_reduction {k}",
        )
        return
    w_limit = 2 ** layer.w_bits - 1
    w_max = int(np.abs(w).max()) if w.size else 0
    if w_max > w_limit:
        report.fail(
            "acc-bound", name,
            f"shifted weight magnitude {w_max} exceeds 2^{layer.w_bits}-1 = "
            f"{w_limit} — weight codes were out of range",
        )
        return
    apriori = max_abs_accumulator(k, layer.in_bits, layer.w_bits)
    x_mag = _x_magnitude(layer.z_x, layer.in_bits)
    per_channel = (
        np.abs(w).sum(axis=1, dtype=np.int64) * x_mag
        if w.size else np.zeros(w.shape[0], dtype=np.int64)
    )
    refined_bound = int(per_channel.max()) if per_channel.size else 0
    # The refinement is only sound when boundary validation guarantees
    # in-range codes; mirror the compiler's gating exactly.
    bound = min(apriori, refined_bound) if (refined and plan_validate) else apriori
    recorded = int(layer.acc_bound)
    if recorded < bound:
        report.fail(
            "acc-bound", name,
            f"recorded acc_bound {recorded} understates the recomputed "
            f"worst-case |Phi| {bound}",
        )
        return
    backend = layer.backend
    gemm = np.dtype(layer.gemm_dtype)
    split_k = getattr(layer, "split_k", None)
    if split_k is not None:
        _check_split_k(layer, w, x_mag, report)
        # The chunk sums accumulate exactly in float64; the whole-layer
        # bound must still fit the float64 significand.
        limit, limit_desc = 1 << FLOAT64_EXACT_BITS, "2^53 (split-K float64 acc)"
    elif backend == "blas" and gemm == np.float32:
        limit, limit_desc = 1 << FLOAT32_EXACT_BITS, "2^24 (float32 significand)"
    elif backend == "blas" and gemm == np.float64:
        limit, limit_desc = 1 << FLOAT64_EXACT_BITS, "2^53 (float64 significand)"
    elif backend == "int32" and gemm == np.int32:
        limit, limit_desc = 1 << INT32_EXACT_BITS, "2^31 (int32 accumulator)"
    elif backend == "int64" and gemm == _INT64:
        report.passed("acc-bound")
        return  # unbounded reference path
    else:
        report.fail(
            "acc-bound", name,
            f"unknown backend/dtype combination ({backend!r}, {gemm.name})",
        )
        return
    if bound >= limit:
        report.fail(
            "acc-bound", name,
            f"worst-case |Phi| = {bound} >= {limit_desc} for backend "
            f"{backend!r}/{gemm.name} (k={k}, Qx={layer.in_bits}, "
            f"Qw={layer.w_bits})",
        )
        return
    report.passed("acc-bound")


def _check_split_k(layer, w: np.ndarray, x_mag: int,
                   report: VerificationReport) -> None:
    """Split-K soundness: chunk partition + per-chunk float32 bounds."""
    name = layer.name
    chunks = list(layer.split_k)
    ok = True
    if not (layer.backend == "blas"
            and np.dtype(layer.gemm_dtype) == np.float32
            and np.dtype(layer.acc_dtype) == np.float64):
        report.fail(
            "acc-bound", name,
            f"split-K layer must run float32 sgemm chunks into a float64 "
            f"accumulator, got {layer.backend!r}/"
            f"{np.dtype(layer.gemm_dtype).name}/{np.dtype(layer.acc_dtype).name}",
        )
        ok = False
    if not (layer.kind == "pw" and layer.kh == 1 and layer.kw == 1
            and layer.stride == 1 and layer.padding == 0):
        report.fail(
            "acc-bound", name,
            "split-K is only sound for 1x1 stride-1 unpadded pointwise "
            f"layers, got kind={layer.kind!r} {layer.kh}x{layer.kw} "
            f"s{layer.stride} p{layer.padding}",
        )
        ok = False
    k = int(layer.k_reduction)
    starts = [c[0] for c in chunks]
    ends = [c[1] for c in chunks]
    if (starts[0] != 0 or ends[-1] != k
            or any(ends[i] != starts[i + 1] for i in range(len(chunks) - 1))
            or any(e <= s for s, e in chunks)):
        report.fail(
            "acc-bound", name,
            f"split-K chunks {chunks} do not partition [0, {k}) contiguously",
        )
        return
    limit = 1 << FLOAT32_EXACT_BITS
    for i, (k0, k1) in enumerate(chunks):
        chunk_bound = int(
            (np.abs(w[:, k0:k1]).sum(axis=1, dtype=np.int64) * x_mag).max()
        )
        if chunk_bound >= limit:
            report.fail(
                "acc-bound", name,
                f"split-K chunk {i} [{k0}:{k1}] worst-case |Phi| = "
                f"{chunk_bound} >= 2^{FLOAT32_EXACT_BITS} — sgemm chunk is "
                "not exact",
            )
            ok = False
    w2c = getattr(layer, "w2_chunks", None)
    if w2c is None or len(w2c) != len(chunks) or any(
        c.shape != (w.shape[0], k1 - k0) for c, (k0, k1) in zip(w2c, chunks)
    ):
        report.fail(
            "structure", name,
            "w2_chunks do not match the declared split-K partition",
        )
        ok = False
    if ok:
        report.passed("acc-bound")


def _check_container(layer, narrow: bool, report: VerificationReport) -> None:
    """Container-dtype soundness of one layer's output codes."""
    name = layer.name
    out_dtype = np.dtype(layer.out_dtype)
    expected = container_dtype(layer.out_bits) if narrow else _INT64
    if out_dtype != expected:
        report.fail(
            "container-dtype", name,
            f"output codes land in {out_dtype.name} but container_dtype"
            f"({layer.out_bits}) prescribes {expected.name} "
            f"({'narrow' if narrow else 'wide'} plan)",
        )
        return
    qmax = 2 ** layer.out_bits - 1
    requant = layer.requant
    if requant.kind == "fixed":
        if int(requant.qmax) != qmax:
            report.fail(
                "container-dtype", name,
                f"requant clamps to {requant.qmax} but UINT{layer.out_bits} "
                f"codes end at {qmax}",
            )
            return
    elif requant.kind == "thr":
        if int(requant.levels) != qmax + 1:
            report.fail(
                "container-dtype", name,
                f"threshold requant emits {requant.levels} levels but "
                f"UINT{layer.out_bits} holds {qmax + 1}",
            )
            return
    if qmax > int(np.iinfo(out_dtype).max):
        report.fail(
            "container-dtype", name,
            f"container {out_dtype.name} cannot hold the maximum "
            f"UINT{layer.out_bits} code {qmax}",
        )
        return
    report.passed("container-dtype")


def _check_requant(layer, report: VerificationReport) -> None:
    """Requantization shift/multiplier ranges and int64-overflow freedom."""
    name = layer.name
    requant = layer.requant
    if requant.kind == "thr":
        tables = requant.tables
        if len(tables) != layer.out_channels:
            report.fail(
                "requant-shift", name,
                f"{len(tables)} threshold tables for {layer.out_channels} "
                "output channels",
            )
            return
        for c, (table, _direction) in enumerate(tables):
            if table.shape[0] != requant.levels - 1:
                report.fail(
                    "requant-shift", name,
                    f"channel {c}: {table.shape[0]} thresholds for "
                    f"{requant.levels} levels",
                )
                return
            if table.size > 1 and bool(np.any(np.diff(table) < 0)):
                report.fail(
                    "requant-shift", name,
                    f"channel {c}: threshold table is not sorted ascending",
                )
                return
        report.passed("requant-shift")
        return
    rshift = np.asarray(requant.rshift).reshape(-1)
    lshift = np.asarray(requant.lshift).reshape(-1)
    if rshift.size and (int(rshift.min()) < 0 or int(rshift.max()) > _MAX_RSHIFT):
        report.fail(
            "requant-shift", name,
            f"right shift out of [0, {_MAX_RSHIFT}]: range "
            f"[{int(rshift.min())}, {int(rshift.max())}]",
        )
        return
    if lshift.size and int(lshift.min()) < 0:
        report.fail(
            "requant-shift", name,
            f"negative left shift {int(lshift.min())}",
        )
        return
    both = np.broadcast_arrays(rshift, lshift)
    if bool(np.any((both[0] > 0) & (both[1] > 0))):
        report.fail(
            "requant-shift", name,
            "a channel applies both a right and a left shift — the split "
            "shift must be one-sided",
        )
        return
    m0 = np.asarray(requant.m0).reshape(-1)
    if m0.dtype.kind not in "iu":
        report.fail(
            "requant-shift", name,
            f"Q31 multiplier stored as {m0.dtype} — must be an integer dtype",
        )
        return
    if m0.size and int(np.abs(m0).max()) >= (1 << 31):
        report.fail(
            "requant-shift", name,
            f"|m0| = {int(np.abs(m0).max())} >= 2^31 — not a Q31 multiplier",
        )
        return
    qmax = 2 ** layer.out_bits - 1
    if not (0 <= int(requant.z_y) <= qmax):
        report.fail(
            "requant-shift", name,
            f"output zero point {requant.z_y} outside [0, {qmax}]",
        )
        return
    # Eq. 5 over int64: (|Phi| + |bq|) * |m0| * 2^lshift must stay below
    # 2^63 per channel (Python ints — no wraparound in the check itself).
    bq = np.asarray(requant.bq).reshape(-1)
    bound = int(layer.acc_bound)
    c_out = layer.out_channels
    bq_b = np.broadcast_to(bq, (c_out,)) if bq.size in (1, c_out) else bq
    m0_b = np.broadcast_to(m0, (c_out,)) if m0.size in (1, c_out) else m0
    ls_b = np.broadcast_to(lshift, (c_out,)) if lshift.size in (1, c_out) else lshift
    if len(bq_b) != c_out or len(m0_b) != c_out or len(ls_b) != c_out:
        report.fail(
            "structure", name,
            f"requant constants do not broadcast over {c_out} channels "
            f"(bq {bq.size}, m0 {m0.size}, lshift {lshift.size})",
        )
        return
    for c in range(c_out):
        worst = (bound + abs(int(bq_b[c]))) * abs(int(m0_b[c]))
        worst <<= int(ls_b[c])
        if worst >= (1 << 63):
            report.fail(
                "requant-shift", name,
                f"channel {c}: |Phi + bq| * |m0| << lshift = {worst} "
                ">= 2^63 — Eq. 5 overflows the int64 intermediate",
            )
            return
    report.passed("requant-shift")


# ----------------------------------------------------------------------
# Arena slab lifetime / aliasing
# ----------------------------------------------------------------------
def _conv_slab_needs(layer, h: int, w: int) -> Tuple[Dict[str, int], Tuple[int, int]]:
    """Per-image slab bytes one compiled conv layer touches at ``(h, w)``.

    Recomputed from the compiled layer itself — independently of the
    arena planner — so a plan whose arena was sized for the wrong
    geometry (or tampered with) fails the capacity comparison.
    """
    oh = conv_output_size(h, layer.kh, layer.stride, layer.padding)
    ow = conv_output_size(w, layer.kw, layer.stride, layer.padding)
    gemm_isz = max(
        np.dtype(layer.gemm_dtype).itemsize,
        np.dtype(getattr(layer, "acc_dtype", layer.gemm_dtype)).itemsize,
    )
    out_elems = layer.out_channels * oh * ow
    hp, wp = h + 2 * layer.padding, w + 2 * layer.padding
    pad = layer.in_channels * hp * wp * gemm_isz
    im2col_need = layer.in_channels * layer.kh * layer.kw * oh * ow * gemm_isz
    stencil_tmp = out_elems * gemm_isz if layer.k_reduction > 1 else 0
    if layer.kind == "dw":
        if layer.dw_mode == "always":
            cols = stencil_tmp
        elif layer.dw_mode == "never":
            cols = im2col_need
        else:  # "auto" may take either path at run time
            cols = max(im2col_need, stencil_tmp)
    elif layer.kh == 1 and layer.kw == 1 and layer.stride == 1:
        cols = out_elems * gemm_isz if getattr(layer, "split_k", None) else 0
    else:
        cols = im2col_need
    acc_in_codes = (not layer.narrow) and np.dtype(layer.gemm_dtype) == _INT64
    acc = 0 if acc_in_codes else out_elems * gemm_isz
    out = out_elems * np.dtype(layer.out_dtype).itemsize
    requant = requant_scratch_bytes(
        layer.kind, layer.requant_kind, layer.out_channels, out_elems,
        np.dtype(layer.out_dtype).itemsize,
    )
    return (
        {"pad": pad, "cols": cols, "acc": acc, "out": out, "requant": requant},
        (oh, ow),
    )


def _check_arena(plan, input_hw: Tuple[int, int],
                 schedule: Optional[Sequence[Tuple[int, int]]],
                 report: VerificationReport) -> None:
    """Slab capacity + ping-pong lifetime safety for one input geometry."""
    layers = plan.layers
    label = f"arena {input_hw[0]}x{input_hw[1]}"
    try:
        arena = plan.arena_for(input_hw)
    except ValueError as exc:
        report.fail("slab-aliasing", label, f"arena planning failed: {exc}")
        return
    slot_bytes = arena.code_slot_bytes_per_image
    slab_caps = {
        "pad": arena.pad_bytes_per_image,
        "cols": arena.cols_bytes_per_image,
        "acc": arena.acc_bytes_per_image,
        "requant": arena.requant_scratch_bytes,
    }
    if arena.shares_slabs:
        # A donor-backed arena executes inside the donor's storage — its
        # capacity is what the views must fit (checked at adoption, and
        # re-proved here against the compiled layers).
        donor = arena.donor
        slot_bytes = donor.code_slot_bytes_per_image
        slab_caps = {
            "pad": donor.pad_bytes_per_image,
            "cols": donor.cols_bytes_per_image,
            "acc": donor.acc_bytes_per_image,
            "requant": donor.requant_scratch_bytes,
        }
    if schedule is None:
        schedule = [((i - 1) % 2, i % 2) for i in range(len(layers))]
    if len(schedule) != len(layers):
        report.fail(
            "slab-aliasing", label,
            f"schedule covers {len(schedule)} layers, plan has {len(layers)}",
        )
        return
    h, w = int(input_hw[0]), int(input_hw[1])
    # last_write[slot] = (producer index, bytes written) — the lifetime
    # state the ping-pong walk threads through the trunk.
    last_write: Dict[int, Tuple[int, int]] = {}
    ok = True
    for i, layer in enumerate(layers):
        name = layer.name
        in_slot, out_slot = schedule[i]
        if in_slot not in (0, 1) or out_slot not in (0, 1):
            report.fail(
                "slab-aliasing", name,
                f"schedule slots ({in_slot}, {out_slot}) outside the "
                "ping-pong pair {0, 1}",
            )
            return
        needs, (oh, ow) = _conv_slab_needs(layer, h, w)
        in_bytes = (
            layer.in_channels * h * w
            * (container_dtype(layer.in_bits).itemsize if layer.narrow
               else _INT64.itemsize)
        )
        # Capacity: every per-image view this layer takes must fit its
        # slab — the static form of ActivationArena._view's overflow guard.
        for slab in ("pad", "cols", "acc", "requant"):
            if needs[slab] > slab_caps[slab]:
                report.fail(
                    "slab-aliasing", name,
                    f"{slab} view needs {needs[slab]} B/image but the slab "
                    f"holds {slab_caps[slab]} B/image",
                )
                ok = False
        if needs["out"] > slot_bytes[out_slot]:
            report.fail(
                "slab-aliasing", name,
                f"output codes need {needs['out']} B/image but code slot "
                f"{out_slot} holds {slot_bytes[out_slot]} B/image",
            )
            ok = False
        # Lifetime: the input value must still be live in its slot.
        if i > 0:
            producer = last_write.get(in_slot)
            if producer is None:
                report.fail(
                    "slab-aliasing", name,
                    f"reads code slot {in_slot} which no layer has written",
                )
                ok = False
            else:
                p_idx, p_bytes = producer
                if p_idx != i - 1:
                    report.fail(
                        "slab-aliasing", name,
                        f"stale read: code slot {in_slot} was last written "
                        f"by layer {p_idx} ({layers[p_idx].name}), not by "
                        f"the predecessor {layers[i - 1].name} — the value "
                        "read is outside its producer's live range",
                    )
                    ok = False
                elif p_bytes < in_bytes:
                    report.fail(
                        "slab-aliasing", name,
                        f"reads {in_bytes} B/image from slot {in_slot} but "
                        f"its producer wrote only {p_bytes} B/image",
                    )
                    ok = False
        # Aliasing: while layer i runs, its input (slot in_slot) and its
        # output (slot out_slot) are simultaneously live — they must not
        # share slab bytes.  Slots are disjoint slabs, so out != in is
        # exactly the no-overlap proof.
        if i > 0 and out_slot == in_slot:
            report.fail(
                "slab-aliasing", name,
                f"writes code slot {out_slot} while reading its own input "
                "from the same slot — simultaneously-live tensors would "
                "share slab bytes",
            )
            ok = False
        last_write[out_slot] = (i, needs["out"])
        h, w = oh, ow
    if ok:
        report.passed("slab-aliasing", max(1, len(layers)))


def _known_geometries(plan, input_hw) -> List[Tuple[int, int]]:
    geoms: List[Tuple[int, int]] = []
    if input_hw is not None:
        geoms.append((int(input_hw[0]), int(input_hw[1])))
    for key in plan._arenas:
        if key not in geoms:
            geoms.append(key)
    for opt in (plan.options.input_hw, plan.options.max_input_hw):
        if opt is not None and tuple(opt) not in geoms:
            geoms.append((int(opt[0]), int(opt[1])))
    return geoms


def _check_chain(plan, report: VerificationReport) -> None:
    """Bit-width and channel chaining across the layer stack."""
    layers = plan.layers
    ok = True
    if layers and plan.input_bits != layers[0].in_bits:
        report.fail(
            "container-dtype", layers[0].name,
            f"consumes UINT{layers[0].in_bits} codes but the input "
            f"boundary quantizes to UINT{plan.input_bits}",
        )
        ok = False
    for prev, nxt in zip(layers, layers[1:]):
        if prev.out_bits != nxt.in_bits:
            report.fail(
                "container-dtype", nxt.name,
                f"consumes UINT{nxt.in_bits} codes but {prev.name} "
                f"produces UINT{prev.out_bits}",
            )
            ok = False
        if prev.out_channels != nxt.in_channels:
            report.fail(
                "structure", nxt.name,
                f"consumes {nxt.in_channels} channels but {prev.name} "
                f"produces {prev.out_channels}",
            )
            ok = False
    cl = plan.classifier
    if cl is not None and layers:
        last = layers[-1]
        if cl.in_bits != last.out_bits:
            report.fail(
                "container-dtype", cl.name,
                f"consumes UINT{cl.in_bits} codes but {last.name} "
                f"produces UINT{last.out_bits}",
            )
            ok = False
        if plan.has_pool and cl.k_reduction != last.out_channels:
            report.fail(
                "structure", cl.name,
                f"reduces over {cl.k_reduction} features but the pooled "
                f"trunk produces {last.out_channels}",
            )
            ok = False
    if ok:
        report.passed("structure", max(1, len(layers)))


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def verify_plan(plan, input_hw: Optional[Tuple[int, int]] = None, *,
                schedule: Optional[Sequence[Tuple[int, int]]] = None,
                raise_on_violation: bool = True) -> VerificationReport:
    """Statically verify a compiled :class:`ExecutionPlan`.

    Runs every rule family over every layer without executing the plan.
    ``input_hw`` adds (or selects) a geometry for the slab-lifetime walk;
    without it, every geometry the plan already knows about (planned
    arenas, ``options.input_hw`` / ``options.max_input_hw``) is walked.
    ``schedule`` overrides the ping-pong ``(in_slot, out_slot)`` sequence
    — the hook the corruption tests use to prove the race detector
    actually detects races.

    Returns a :class:`VerificationReport`; raises
    :class:`PlanVerificationError` listing every violation when
    ``raise_on_violation`` (the default) and any check failed.
    """
    report = VerificationReport()
    refined = bool(plan.options.refined_bound)
    for layer in plan.layers:
        _check_acc_bound(layer, plan.validate, refined, report)
        _check_container(layer, plan.narrow, report)
        _check_requant(layer, report)
    if plan.classifier is not None:
        _check_acc_bound(plan.classifier, plan.validate, refined, report)
    _check_chain(plan, report)
    if plan.use_arena:
        for hw in _known_geometries(plan, input_hw):
            _check_arena(plan, hw, schedule, report)
    if raise_on_violation:
        report.raise_if_failed()
    return report


def verify_artifact(path: Union[str, Path],
                    input_hw: Optional[Tuple[int, int]] = None, *,
                    raise_on_violation: bool = True) -> VerificationReport:
    """Statically verify a saved artifact without executing it.

    Loads the artifact (which already CRC-checks every weight blob),
    recompiles the plan from the persisted
    :class:`~repro.runtime.options.CompileOptions` — compilation is
    static: weights reshape, bounds resolve, nothing runs — and applies
    :func:`verify_plan`.  On top of the plan rules, the persisted
    manifest metadata is cross-checked against the recompiled truth:
    per-layer container dtype, reduction length, recorded auto-dispatch
    backend, and the persisted Eq. 7 arena peak.
    """
    from repro.inference.plan import ExecutionPlan
    from repro.runtime.artifact import load_artifact

    network, compile_options, session_options, manifest = load_artifact(path)
    plan = ExecutionPlan(network, compile_options)
    hw = input_hw
    net_manifest = manifest.get("network", {})
    arena_info = net_manifest.get("arena")
    if hw is None and arena_info is not None:
        hw = (int(arena_info["input_hw"][0]), int(arena_info["input_hw"][1]))
    if hw is None and session_options.input_hw is not None:
        hw = session_options.input_hw
    report = verify_plan(plan, hw, raise_on_violation=False)
    entries = list(net_manifest.get("conv_layers", []))
    if len(entries) != len(plan.layers):
        report.fail(
            "structure", "manifest",
            f"manifest records {len(entries)} conv layers, plan compiled "
            f"{len(plan.layers)}",
        )
    for entry, layer in zip(entries, plan.layers):
        name = str(entry.get("name", "?"))
        if name != layer.name:
            report.fail(
                "structure", name,
                f"manifest order mismatch: entry {name!r} vs compiled "
                f"layer {layer.name!r}",
            )
            continue
        declared = str(entry.get("container_dtype", ""))
        expected = container_dtype(int(entry["w_bits"])).name
        if declared != expected:
            report.fail(
                "container-dtype", name,
                f"manifest declares weight container {declared!r} but "
                f"container_dtype({entry['w_bits']}) is {expected!r}",
            )
        else:
            report.passed("container-dtype")
        if int(entry.get("k_reduction", -1)) != layer.k_reduction:
            report.fail(
                "structure", name,
                f"manifest k_reduction {entry.get('k_reduction')} != "
                f"compiled {layer.k_reduction}",
            )
        recorded_backend = entry.get("gemm_backend")
        expected_backend = resolve_gemm_backend(
            "auto", layer.k_reduction, layer.in_bits, layer.w_bits
        )
        if recorded_backend is not None and recorded_backend != expected_backend:
            report.fail(
                "acc-bound", name,
                f"manifest records a-priori backend {recorded_backend!r} "
                f"but the accumulator contract resolves to "
                f"{expected_backend!r}",
            )
        else:
            report.passed("acc-bound")
    if arena_info is not None and plan.use_arena and hw is not None:
        recorded_peak = int(arena_info.get("rw_peak_bytes", -1))
        actual_peak = plan.arena_for(hw).logical_rw_peak_bytes
        if recorded_peak != actual_peak:
            report.fail(
                "slab-aliasing", f"arena {hw[0]}x{hw[1]}",
                f"manifest records an Eq. 7 RW peak of {recorded_peak} B "
                f"but the recompiled plan needs {actual_peak} B",
            )
        else:
            report.passed("slab-aliasing")
    if raise_on_violation:
        report.raise_if_failed()
    return report
