"""Static analysis for the repro engine: plan verification + repo lint.

Two halves, both reachable from ``repro-mcu check``:

* :mod:`repro.analysis.verify` — prove a compiled
  :class:`~repro.inference.plan.ExecutionPlan` (or a saved artifact)
  safe without executing it: accumulator bounds vs. dispatched backend,
  container-dtype soundness, requantization shift ranges, and arena
  slab lifetime/aliasing over the ping-pong schedule.
* :mod:`repro.analysis.lint` — AST rules for the repo itself: no
  blocking calls in the asyncio serving tier, no allocations in ``# hot``
  kernels, no silent broad excepts, consistent lock acquisition order,
  unused imports, mutable default arguments.
"""

from repro.analysis.lint import LintViolation, lint_file, lint_package, lint_paths
from repro.analysis.verify import (
    PlanVerificationError,
    VerificationReport,
    Violation,
    verify_artifact,
    verify_plan,
)

__all__ = [
    "LintViolation",
    "PlanVerificationError",
    "VerificationReport",
    "Violation",
    "lint_file",
    "lint_package",
    "lint_paths",
    "verify_artifact",
    "verify_plan",
]
