"""Round-trippable session artifacts: JSON manifest + CRC-checked blobs.

A saved artifact is a directory with exactly two files::

    <artifact>/
        manifest.json   # structure, options, scalar parameters, blob table
        blobs.bin       # concatenated binary tensors (weights + requant arrays)

The manifest is the :func:`repro.inference.export.export_network` dict
with every numpy array hoisted into ``blobs.bin`` and replaced by a
``{"$blob": <name>}`` reference; the blob table records each tensor's
offset, byte length, dtype, shape and CRC32.  Loading verifies every
blob's CRC (and re-runs :func:`~repro.inference.export.validate_export`
on the reassembled dict, which re-checks the packed weight blobs against
their recorded checksums and byte budgets) before a single kernel runs —
the host-side equivalent of a firmware loader's integrity pass — then
rebuilds the network via
:func:`~repro.inference.export.import_network`.  No reference to the
originating :class:`~repro.inference.engine.IntegerNetwork` survives in
the artifact; rehydration is bit-identical by construction and by test.

Robustness contract (the serving tier builds on both halves):

* **Atomic save** — :func:`save_artifact` stages the directory under a
  hidden sibling name and swaps it into place with ``os.replace``-style
  renames, so a crash mid-write leaves either the previous artifact or
  nothing, never a half-written directory a loader could pick up.
* **Typed load failures** — every corruption class (missing files,
  truncated/bit-flipped blobs, CRC mismatches, bad manifests, failed
  integrity passes) raises :class:`~repro.runtime.errors.ArtifactError`
  (missing paths the :class:`~repro.runtime.errors.ArtifactNotFoundError`
  refinement), never a raw traceback from ``json`` or ``numpy``.
"""

from __future__ import annotations

import json
import mmap as _mmap
import os
import shutil
import uuid
import zlib
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.inference.export import export_network, import_network, validate_export
from repro.runtime.errors import ArtifactError, ArtifactNotFoundError
from repro.runtime.options import CompileOptions, SessionOptions

ARTIFACT_FORMAT = "repro/session-artifact"
ARTIFACT_VERSION = 1
MANIFEST_NAME = "manifest.json"
BLOBS_NAME = "blobs.bin"


class _BlobWriter:
    """Accumulates named tensors into one byte stream + a manifest table."""

    def __init__(self):
        self.chunks = []
        self.table: Dict[str, Dict] = {}
        self.offset = 0

    def add(self, name: str, array: np.ndarray) -> Dict:
        if name in self.table:
            raise ValueError(f"duplicate blob name {name!r}")
        arr = np.ascontiguousarray(array)
        raw = arr.tobytes()
        self.table[name] = {
            "offset": self.offset,
            "nbytes": len(raw),
            "dtype": arr.dtype.str,  # endian-explicit, e.g. "<i8" / "|u1"
            "shape": list(arr.shape),
            "crc32": zlib.crc32(raw),
        }
        self.chunks.append(raw)
        self.offset += len(raw)
        return {"$blob": name}

    def payload(self) -> bytes:
        return b"".join(self.chunks)


def _jsonable(value):
    """Recursively convert an export dict to plain JSON types (arrays
    must already have been replaced by blob references)."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        raise TypeError("array leaked into the manifest without a blob ref")
    return value


def _externalize(node, writer: _BlobWriter, prefix: str):
    """Replace every numpy array under ``node`` with a blob reference."""
    if isinstance(node, np.ndarray):
        return writer.add(prefix, node)
    if isinstance(node, dict):
        return {k: _externalize(v, writer, f"{prefix}/{k}") for k, v in node.items()}
    if isinstance(node, (list, tuple)):
        return [_externalize(v, writer, f"{prefix}[{i}]") for i, v in enumerate(node)]
    return node


class MappedBlobs:
    """Read-only ``mmap`` view of an artifact's ``blobs.bin``.

    Slicing returns zero-copy :class:`memoryview` windows into the
    mapping, so CRC verification (``zlib.crc32`` accepts any buffer) and
    ``np.frombuffer`` both run directly against the page cache — no blob
    bytes are ever duplicated into the Python heap, and because the file
    is mapped ``ACCESS_READ`` every resulting array is read-only and its
    pages are *shared* between all processes that map the same artifact.
    Arrays keep the mapping alive through their ``.base`` chain; the
    file descriptor is closed immediately (POSIX keeps a mapping valid
    after its fd closes).

    Lifetime: without an explicit :meth:`close` the mapping (and its
    page-cache pin) survives until the garbage collector reaps the last
    array view — unbounded on a busy server.  ``Session.close()`` drops
    its views and calls :meth:`close`, which is what the fleet registry
    relies on to actually return memory on LRU eviction.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        with open(self.path, "rb") as fh:
            size = os.fstat(fh.fileno()).st_size
            if size:
                self._map = _mmap.mmap(fh.fileno(), 0, access=_mmap.ACCESS_READ)
                self._view = memoryview(self._map)
            else:  # a zero-blob artifact: mmap refuses empty files
                self._map = None
                self._view = memoryview(b"")
        self.nbytes = size
        self._closed = False

    def __len__(self) -> int:
        return self.nbytes

    def __getitem__(self, key) -> memoryview:
        # memoryview slicing is zero-copy (mmap's own __getitem__ copies
        # to bytes, which is exactly what this class exists to avoid).
        if self._closed:
            raise ValueError(f"{self.path}: mapping is closed")
        return self._view[key]

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unmap ``blobs.bin`` now instead of at GC time.

        Requires every array view into the mapping to be dead; if any
        survive, one garbage-collection pass is attempted (views that
        died in a reference cycle are common after a plan teardown)
        before the ``BufferError`` propagates to the caller — silently
        leaking the mapping would defeat the point of eviction.
        Idempotent; subsequent slicing raises ``ValueError``.
        """
        if self._closed:
            return
        try:
            self._release()
        except BufferError:
            import gc

            gc.collect()
            self._release()
        self._closed = True

    def _release(self) -> None:
        self._view.release()
        if self._map is not None:
            self._map.close()

    def __enter__(self) -> "MappedBlobs":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _internalize(node, blobs, table: Dict[str, Dict], path: Path,
                 copy: bool = True):
    """Inverse of :func:`_externalize`: resolve blob refs, CRC-checked.

    ``blobs`` is anything byte-sliceable — the whole file as ``bytes``,
    or a :class:`MappedBlobs` whose slices are zero-copy memoryviews.
    With ``copy=False`` the arrays stay views of ``blobs`` (read-only,
    backed by shared pages in the mmap case); with ``copy=True`` they
    own their bytes.
    """
    if isinstance(node, dict):
        if set(node) == {"$blob"}:
            name = node["$blob"]
            meta = table.get(name)
            if meta is None:
                raise ArtifactError(
                    f"{path}: manifest references unknown blob {name!r}"
                )
            start, nbytes = int(meta["offset"]), int(meta["nbytes"])
            raw = blobs[start:start + nbytes]
            if len(raw) != nbytes:
                raise ArtifactError(
                    f"{path}: blob {name!r} is truncated "
                    f"({len(raw)} of {nbytes} bytes present)"
                )
            crc = zlib.crc32(raw)
            if crc != int(meta["crc32"]):
                raise ArtifactError(
                    f"{path}: blob {name!r} checksum {crc:#010x} does not "
                    f"match the recorded CRC32 {int(meta['crc32']):#010x}"
                )
            arr = np.frombuffer(raw, dtype=np.dtype(meta["dtype"]))
            arr = arr.reshape(tuple(meta["shape"]))
            return arr.copy() if copy else arr
        return {k: _internalize(v, blobs, table, path, copy)
                for k, v in node.items()}
    if isinstance(node, list):
        return [_internalize(v, blobs, table, path, copy) for v in node]
    return node


def save_artifact(
    path: Union[str, Path],
    network,
    compile_options: Optional[CompileOptions] = None,
    session_options: Optional[SessionOptions] = None,
    input_hw: Optional[Tuple[int, int]] = None,
) -> Path:
    """Serialise ``network`` (+ options) into an artifact directory.

    ``input_hw`` additionally embeds the activation-arena plan (Eq. 7 RW
    peak and container-width physical bytes) for that geometry, so a
    loader can assert device fit without rebuilding the plan.  Returns
    the artifact directory path.
    """
    compile_options = compile_options or CompileOptions()
    session_options = session_options or SessionOptions()
    if input_hw is None:
        input_hw = session_options.input_hw or compile_options.input_hw
    exported = export_network(network, input_hw=input_hw)
    writer = _BlobWriter()
    manifest = {
        "format": ARTIFACT_FORMAT,
        "version": ARTIFACT_VERSION,
        "compile_options": compile_options.to_dict(),
        "session_options": session_options.to_dict(),
        "network": _jsonable(_externalize(exported, writer, "net")),
    }
    manifest["blobs"] = writer.table
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    if out.exists() and not _replaceable(out):
        raise ArtifactError(
            f"{out} exists and is not a session artifact directory; "
            f"refusing to overwrite it"
        )
    # Stage under a hidden sibling, fsync, then swap into place: a crash
    # at any point leaves either the previous artifact or nothing — a
    # loader can never observe a half-written directory.
    stamp = f"{os.getpid():d}-{uuid.uuid4().hex[:8]}"
    tmp = out.parent / f".{out.name}.tmp-{stamp}"
    tmp.mkdir()
    try:
        _write_synced(tmp / BLOBS_NAME, writer.payload())
        _write_synced(
            tmp / MANIFEST_NAME,
            (json.dumps(manifest, indent=2) + "\n").encode("ascii"),
        )
        if out.exists():
            old = out.parent / f".{out.name}.old-{stamp}"
            os.replace(out, old)
            os.replace(tmp, out)
            shutil.rmtree(old)
        else:
            os.replace(tmp, out)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    return out


def _replaceable(target: Path) -> bool:
    """Whether an existing save target may be atomically swapped away:
    only prior artifacts (manifest present) and empty directories — an
    arbitrary populated directory is refused rather than clobbered."""
    if not target.is_dir():
        return False
    entries = {p.name for p in target.iterdir()}
    return not entries or MANIFEST_NAME in entries


def _write_synced(path: Path, payload: bytes) -> None:
    with open(path, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())


def read_manifest(path: Union[str, Path]) -> Dict:
    """Parse and structurally check an artifact's manifest (no blobs)."""
    root = Path(path)
    manifest_path = root / MANIFEST_NAME
    if not root.exists():
        raise ArtifactNotFoundError(f"no session artifact at {root}")
    if not manifest_path.is_file():
        raise ArtifactNotFoundError(
            f"{root} is not a session artifact (missing {MANIFEST_NAME})"
        )
    try:
        with open(manifest_path) as fh:
            manifest = json.load(fh)
    except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
        raise ArtifactError(f"{manifest_path}: unreadable manifest: {exc}") from exc
    if not isinstance(manifest, dict):
        raise ArtifactError(f"{manifest_path}: manifest is not a JSON object")
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise ArtifactError(
            f"{manifest_path}: unrecognised artifact format "
            f"{manifest.get('format')!r} (expected {ARTIFACT_FORMAT!r})"
        )
    if int(manifest.get("version", 0)) > ARTIFACT_VERSION:
        raise ArtifactError(
            f"{manifest_path}: artifact version {manifest.get('version')} is "
            f"newer than this runtime understands ({ARTIFACT_VERSION})"
        )
    return manifest


def load_artifact(path: Union[str, Path], *, mmap: bool = False):
    """Load an artifact back into ``(network, compile_opts, session_opts, manifest)``.

    Every blob is CRC-verified against the manifest table, the
    reassembled export dict passes the deployment-side
    :func:`validate_export` integrity pass (packed-weight byte budgets +
    checksums + container dtypes), and the network is rebuilt with
    :func:`import_network` — all without the original
    ``IntegerNetwork``.

    With ``mmap=True`` the blob file is memory-mapped read-only instead
    of read into the heap: every weight tensor becomes a read-only view
    of the mapping (zero copies, CRC still verified against the mapped
    bytes), and because the pages are file-backed and read-only the OS
    shares them between every process that loads the same artifact —
    the memory model behind :class:`repro.runtime.pool.WorkerPool`.
    """
    root = Path(path)
    manifest = read_manifest(root)
    blobs_path = root / BLOBS_NAME
    if not blobs_path.is_file():
        raise ArtifactNotFoundError(
            f"{root} is a partially-written artifact (missing {BLOBS_NAME})"
        )
    if mmap:
        try:
            blobs = MappedBlobs(blobs_path)
        except (OSError, ValueError) as exc:
            raise ArtifactError(f"{root}: cannot mmap {BLOBS_NAME}: {exc}") from exc
    else:
        blobs = blobs_path.read_bytes()
    try:
        exported = _internalize(
            manifest["network"], blobs, manifest.get("blobs", {}), root,
            copy=not mmap,
        )
        validate_export(exported)
        network = import_network(exported)
        compile_options = CompileOptions.from_dict(manifest.get("compile_options", {}))
        session_options = SessionOptions.from_dict(manifest.get("session_options", {}))
    except ArtifactError:
        if mmap:
            _close_quietly(blobs)
        raise
    except (ValueError, TypeError, KeyError) as exc:
        # Manifest/blob contents that parse but cannot be rebuilt into a
        # network (bad shapes, failed integrity pass, unknown options)
        # are corruption too — surface them under the one typed error.
        if mmap:
            _close_quietly(blobs)
        raise ArtifactError(f"{root}: corrupt artifact: {exc}") from exc
    if mmap:
        # Hand the mapping's lifetime to the caller: Session picks this
        # up so Session.close() can unmap deterministically (the fleet
        # registry's eviction path) instead of waiting for GC.
        network.mapped_blobs = blobs
    return network, compile_options, session_options, manifest


def _close_quietly(blobs) -> None:
    try:
        blobs.close()
    except BufferError:
        pass  # partially-built views survive; GC reaps the mapping later
