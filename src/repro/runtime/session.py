"""The :class:`Session` front door: quantize → compile → serve in one object.

``Session`` owns a compiled :class:`~repro.inference.plan.ExecutionPlan`
plus the options it was built with, and adds the serving conveniences
the bare plan does not have: default batch tiling, a per-layer
:meth:`profile`, and — the round-trip capability — :meth:`save` /
:meth:`load` to/from the on-disk artifact format of
:mod:`repro.runtime.artifact`.  :func:`pipeline` is the one-call
replacement for the hand-wired spec → policy → convert → compile chains.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.inference.plan import ExecutionPlan
from repro.runtime.artifact import load_artifact, save_artifact
from repro.runtime.errors import InvalidInputError
from repro.runtime.options import CompileOptions, SessionOptions


@dataclass
class LayerTiming:
    """Best-of-N wall time of one compiled layer inside the arena."""

    name: str
    kind: str
    dispatch: str
    seconds: float


@dataclass
class SessionProfile:
    """Per-layer latency breakdown returned by :meth:`Session.profile`."""

    batch_size: int
    input_hw: Tuple[int, int]
    layers: List[LayerTiming] = field(default_factory=list)
    total_seconds: float = 0.0

    def table(self) -> str:
        from repro.evaluation.tables import render_table

        rows = [
            [t.name, t.kind, t.dispatch, round(t.seconds * 1e3, 3),
             round(100.0 * t.seconds / self.total_seconds, 1)
             if self.total_seconds else 0.0]
            for t in self.layers
        ]
        layer_sum = sum(t.seconds for t in self.layers)
        rows.append(["TOTAL (end to end)", "", "", round(self.total_seconds * 1e3, 3),
                     round(100.0 * layer_sum / self.total_seconds, 1)
                     if self.total_seconds else 0.0])
        h, w = self.input_hw
        return render_table(
            ["Layer", "Kind", "Dispatch", "ms", "% of e2e"], rows,
            title=f"session profile — batch {self.batch_size} @ {h}x{w}",
        )


def _best_of(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(max(1, reps)):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


class Session:
    """A compiled, servable integer network.

    ``Session(network)`` compiles with the production defaults;
    ``Session(network, CompileOptions(...), SessionOptions(...))``
    customises compilation and serving.  The session eagerly plans (and
    on ``options.input_hw`` geometry, allocates lazily like the plan)
    the activation arena, so steady-state serving performs no per-layer
    allocations.

    The session is also the unit of deployment: :meth:`save` writes a
    self-contained artifact (JSON manifest + CRC-checked binary blobs)
    and :meth:`load` rehydrates it into a bit-identical running session
    with no reference to the originating network object.
    """

    def __init__(
        self,
        network,
        compile_options: Optional[CompileOptions] = None,
        options: Optional[SessionOptions] = None,
    ):
        self.network = network
        self.compile_options = compile_options or CompileOptions()
        self.options = options or SessionOptions()
        # Artifact directory this session is known to round-trip with
        # (set by load/save) — lets WorkerPool.from_session reuse it
        # instead of staging a temporary copy.
        self.source_artifact: Optional[Path] = None
        # mmap-loaded networks carry their MappedBlobs handle so
        # Session.close() can release the mapping (registry eviction).
        self.mapped_blobs = getattr(network, "mapped_blobs", None)
        self._closed = False
        self._plan = ExecutionPlan(network, self.compile_options)
        if self.options.input_hw is not None:
            self._plan.arena_for(self.options.input_hw)

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the session's resources: drop the compiled plan and
        network (freeing arena slabs and, for mmap-loaded artifacts,
        every weight view), then close the underlying
        :class:`~repro.runtime.artifact.MappedBlobs` mapping so the
        page-cache pin is released immediately instead of at GC time.
        Idempotent; the registry calls this on LRU eviction.  A closed
        session raises ``RuntimeError`` from every inference entry point.
        """
        if self._closed:
            return
        self._closed = True
        # Order matters: every mmap-backed array (network weights,
        # compiled requant-parameter views) must be unreachable before
        # the mapping can release its exported buffers.
        self._plan = None
        self.network = None
        blobs, self.mapped_blobs = self.mapped_blobs, None
        if blobs is not None:
            blobs.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _require_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -- introspection -------------------------------------------------
    @property
    def plan(self) -> ExecutionPlan:
        """The compiled :class:`ExecutionPlan` backing this session."""
        self._require_open()
        return self._plan

    def layer_info(self):
        return self._plan.layer_info()

    def describe(self, input_hw: Optional[Tuple[int, int]] = None,
                 batch_size: Optional[int] = None) -> str:
        """Per-layer dispatch summary plus the arena plan (see
        :meth:`ExecutionPlan.describe`); defaults come from the session
        options."""
        return self._plan.describe(
            input_hw=input_hw or self.options.input_hw,
            batch_size=batch_size or self.options.batch_size,
        )

    def verify(self, input_hw: Optional[Tuple[int, int]] = None,
               raise_on_violation: bool = True):
        """Statically verify the compiled plan without executing it.

        Runs :func:`repro.analysis.verify_plan` over the session's plan:
        accumulator bounds vs. the dispatched backends, container-dtype
        soundness, requantization shift ranges, and arena slab
        lifetime/aliasing safety over the ping-pong schedule.  Returns
        the :class:`~repro.analysis.VerificationReport`; raises
        :class:`~repro.analysis.PlanVerificationError` (listing every
        violation with its layer) unless ``raise_on_violation=False``.
        """
        from repro.analysis import verify_plan

        self._require_open()
        return verify_plan(
            self._plan, input_hw or self.options.input_hw,
            raise_on_violation=raise_on_violation,
        )

    # -- input boundary ------------------------------------------------
    def validate_input(self, x_real) -> np.ndarray:
        """Check a batch at the serving boundary; returns it as an array.

        Rejections raise :class:`~repro.runtime.errors.InvalidInputError`
        (a client-side error by contract — the serving tier maps it to a
        400) instead of letting numpy internals leak out of a kernel:
        non-array payloads, non-real dtypes, wrong rank, wrong channel
        count, NaN/Inf values, and geometries the layer cascade shrinks
        below one pixel.  ``SessionOptions(validate=False)`` skips the
        scan for trusted in-process callers.
        """
        self._require_open()
        try:
            arr = np.asarray(x_real)
        except Exception as exc:
            raise InvalidInputError(f"input is not array-like: {exc}") from exc
        if arr.dtype == object or not (
            np.issubdtype(arr.dtype, np.floating)
            or np.issubdtype(arr.dtype, np.integer)
            or np.issubdtype(arr.dtype, np.bool_)
        ):
            raise InvalidInputError(
                f"input dtype {arr.dtype} is not a real numeric type"
            )
        if arr.ndim != 4:
            raise InvalidInputError(
                f"input must be an NCHW batch (4 dims), got shape {arr.shape}"
            )
        plan = self._plan
        if plan.layers:
            expected = plan.layers[0].in_channels
            if arr.shape[1] != expected:
                raise InvalidInputError(
                    f"input has {arr.shape[1]} channel(s), the compiled "
                    f"network expects {expected}"
                )
            h, w = int(arr.shape[2]), int(arr.shape[3])
            max_hw = self.compile_options.max_input_hw
            if max_hw is not None and (h > max_hw[0] or w > max_hw[1]):
                raise InvalidInputError(
                    f"input geometry {h}x{w} exceeds the session's declared "
                    f"max geometry {max_hw[0]}x{max_hw[1]}"
                )
            from repro.nn.functional import conv_output_size

            for layer in plan.layers:
                h = conv_output_size(h, layer.kh, layer.stride, layer.padding)
                w = conv_output_size(w, layer.kw, layer.stride, layer.padding)
                if h < 1 or w < 1:
                    raise InvalidInputError(
                        f"input geometry {arr.shape[2]}x{arr.shape[3]} "
                        f"collapses below 1x1 at layer {layer.name!r}"
                    )
        if arr.size and np.issubdtype(arr.dtype, np.floating) \
                and not np.isfinite(arr).all():
            raise InvalidInputError("input contains non-finite values (NaN/Inf)")
        return arr

    def _checked(self, x_real) -> np.ndarray:
        if self.options.validate is False:
            return np.asarray(x_real)
        return self.validate_input(x_real)

    # -- serving -------------------------------------------------------
    def run(self, x_real: np.ndarray) -> np.ndarray:
        """Single-shot inference: real NCHW batch -> real logits."""
        self._require_open()
        return self._plan.run(self._checked(x_real))

    def run_codes(self, x_codes: np.ndarray) -> np.ndarray:
        """Run the conv trunk on integer codes (boundary validation per
        ``options.validate``; ``None`` keeps the compiled default)."""
        self._require_open()
        return self._plan.run_codes(x_codes, validate=self.options.validate)

    def run_batched(self, x_real: np.ndarray,
                    batch_size: Optional[int] = None) -> np.ndarray:
        """Stream a sweep through the arena in ``batch_size`` tiles
        (default ``options.batch_size``)."""
        self._require_open()
        return self._plan.run_batched(
            self._checked(x_real), batch_size=batch_size or self.options.batch_size
        )

    def predict(self, x_real: np.ndarray,
                batch_size: Optional[int] = None) -> np.ndarray:
        """Class predictions, tiled through the arena by default."""
        return np.argmax(self.run_batched(x_real, batch_size=batch_size), axis=1)

    def synthetic_batch(self, batch_size: int = 1, rng_seed: int = 0,
                        input_hw: Optional[Tuple[int, int]] = None) -> np.ndarray:
        """A random real-valued NCHW batch matching the session's input
        geometry: channel count from the first compiled layer, ``(H, W)``
        from ``input_hw`` falling back to the session's then the
        compile-time arena geometry.  The single source of the
        synthetic-input rule shared by :meth:`profile` and the
        ``repro-mcu run`` CLI."""
        hw = input_hw or self.options.input_hw or self.compile_options.input_hw
        if hw is None:
            raise ValueError(
                "no input geometry known: pass input_hw or set "
                "SessionOptions(input_hw=...)"
            )
        plan = self._plan
        channels = plan.layers[0].in_channels if plan.layers else 1
        return np.random.default_rng(rng_seed).uniform(
            0.0, 1.0, size=(int(batch_size), channels, hw[0], hw[1])
        )

    def healthcheck(self, input_hw: Optional[Tuple[int, int]] = None) -> dict:
        """End-to-end self-test: one synthetic image through the full
        pipeline, logits checked for shape and finiteness.

        Returns ``{"ok": bool, "latency_ms": float, "output_shape": ...,
        "error": str|None}`` and never raises — the serving tier calls
        this at startup (warming the arena in the same pass) and from
        its health endpoint, where an exception would be a liveness bug.
        """
        t0 = time.perf_counter()
        try:
            x = self.synthetic_batch(1, input_hw=input_hw)
            out = self.run(x)
            shape, _ = self._plan.output_spec(x.shape[1:])
            ok = out.shape == (1,) + shape and bool(np.isfinite(out).all())
            error = None if ok else f"bad output: shape {out.shape}, finite=False"
        except Exception as exc:  # liveness probe: report, never raise
            return {
                "ok": False,
                "latency_ms": round((time.perf_counter() - t0) * 1e3, 3),
                "output_shape": None,
                "error": f"{type(exc).__name__}: {exc}",
            }
        return {
            "ok": ok,
            "latency_ms": round((time.perf_counter() - t0) * 1e3, 3),
            "output_shape": list(out.shape),
            "error": error,
        }

    def profile(self, x_real: Optional[np.ndarray] = None,
                batch_size: Optional[int] = None, repeats: int = 3,
                rng_seed: int = 0) -> SessionProfile:
        """Best-of-``repeats`` per-layer latency breakdown.

        With no input, a synthetic batch is drawn at the session's arena
        geometry (``options.input_hw`` falling back to the compile-time
        geometry); layer timings run inside the arena on propagated
        intermediate codes, exactly like steady-state serving.
        """
        plan = self._plan
        if x_real is None:
            x_real = self.synthetic_batch(
                batch_size or self.options.batch_size, rng_seed=rng_seed
            )
        x_real = np.asarray(x_real)
        n, _, h, w = x_real.shape
        prof = SessionProfile(batch_size=n, input_hw=(h, w))
        prof.total_seconds = _best_of(lambda: plan.run(x_real), repeats)
        codes = plan.quantize_input(x_real)
        arena = None
        if plan.use_arena and plan.layers:
            arena = plan.arena_for((h, w))
            arena.ensure(n)
        infos = {i.name: i for i in plan.layer_info()}
        for i, layer in enumerate(plan.layers):
            info = infos[layer.name]
            dispatch = f"{info.backend}/{info.gemm_dtype}->{info.container}"
            if info.dw_mode:
                dispatch += f" dw:{info.dw_mode}"
            if arena is not None:
                t = _best_of(lambda: layer(codes, arena=arena, slot=i % 2), repeats)
            else:
                t = _best_of(lambda: layer(codes), repeats)
            prof.layers.append(LayerTiming(layer.name, layer.kind, dispatch, t))
            codes = layer(codes)  # propagate via owned (non-arena) arrays
        if plan.has_pool:
            from repro.inference.kernels import int_avg_pool_global

            t = _best_of(lambda: int_avg_pool_global(codes), repeats)
            prof.layers.append(LayerTiming("global_avg_pool", "pool", "-", t))
            codes = int_avg_pool_global(codes)
        if plan.classifier is not None:
            c = plan.classifier
            t = _best_of(lambda: c(codes), repeats)
            dispatch = f"{c.backend}/{np.dtype(c.gemm_dtype).name}->logits"
            prof.layers.append(LayerTiming(c.name, "fc", dispatch, t))
        return prof

    # -- persistence ---------------------------------------------------
    def save(self, path: Union[str, Path]) -> Path:
        """Write the session as a loadable artifact directory
        (manifest.json + CRC-checked blobs.bin); returns the path."""
        out = save_artifact(
            path,
            self.network,
            compile_options=self.compile_options,
            session_options=self.options,
        )
        self.source_artifact = out
        return out

    @classmethod
    def load(cls, path: Union[str, Path], *, mmap: bool = False,
             max_input_hw: Optional[Tuple[int, int]] = None) -> "Session":
        """Rehydrate a saved artifact into a running session.

        Blob CRCs and packed-weight budgets are verified before
        compilation; the resulting plan is bit-identical to the one the
        artifact was saved from.  ``mmap=True`` keeps the weight blobs
        as read-only views of the memory-mapped ``blobs.bin`` (pages
        shared across every process loading the same artifact) instead
        of private heap copies — the :class:`repro.runtime.pool`
        workers load this way (``close()`` releases the mapping).

        ``max_input_hw`` overrides the artifact's compile options with a
        shape-polymorphic max geometry — the registry's load path, which
        sizes one arena per model at the artifact's native resolution
        and routes every smaller request shape into it.
        """
        network, compile_options, session_options, _ = load_artifact(
            path, mmap=mmap
        )
        if max_input_hw is not None:
            compile_options = compile_options.replace(
                max_input_hw=max_input_hw
            )
        session = cls(network, compile_options=compile_options,
                      options=session_options)
        session.source_artifact = Path(path)
        return session


def pipeline(
    spec,
    *,
    policy=None,
    device=None,
    method=None,
    network=None,
    seed: int = 0,
    compile_options: Optional[CompileOptions] = None,
    options: Optional[SessionOptions] = None,
    strict: bool = False,
) -> Session:
    """One front door for quantize → compile → serve.

    From a :class:`~repro.models.model_zoo.NetworkSpec` this runs the
    memory-driven mixed-precision search (when ``policy`` is not given
    and a ``device`` provides the budgets), materialises an integer
    deployment of the spec honouring the policy's per-layer bit
    assignment, compiles it into a session, and — when ``device`` is
    given and the policy is feasible — asserts the activation arena fits
    the device's RW budget.  Every keyword has a production default:

    ``pipeline(spec, device=STM32H7)`` is the whole paper flow.

    ``network`` short-circuits the synthetic materialisation with a
    prebuilt :class:`~repro.inference.engine.IntegerNetwork` (e.g. from
    :func:`~repro.core.graph_convert.convert_to_integer_network` after
    QAT), in which case ``policy`` is only used for reporting/fit checks.
    """
    from repro.core.mixed_precision import search_mixed_precision
    from repro.core.policy import QuantMethod, QuantPolicy

    if method is None:
        method = policy.method if policy is not None else QuantMethod.PC_ICN
    if policy is None:
        if device is not None:
            policy = search_mixed_precision(
                spec, device.flash_bytes, device.ram_bytes,
                method=method, strict=strict,
            )
        else:
            policy = QuantPolicy.uniform(spec, method=method)
    if network is None:
        from repro.inference.testing import integer_network_from_spec

        strategy = (
            "thr" if method is QuantMethod.PC_THRESHOLDS
            else "folded" if method.folds_batchnorm
            else "icn"
        )
        network = integer_network_from_spec(
            spec, np.random.default_rng(seed),
            per_channel=method.per_channel, strategy=strategy, policy=policy,
        )
    if options is None:
        options = SessionOptions(input_hw=(spec.resolution, spec.resolution))
    session = Session(network, compile_options=compile_options, options=options)
    if (
        device is not None
        and policy.feasible
        and session.plan.use_arena
        and options.input_hw is not None
    ):
        from repro.mcu.deploy import assert_arena_fits

        assert_arena_fits(session.plan, device, options.input_hw)
    return session
