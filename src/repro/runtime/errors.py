"""Typed error hierarchy for the :mod:`repro.runtime` front door.

Serving callers need to tell *what* went wrong without parsing numpy
tracebacks: a broken artifact on disk is an operational problem (page
whoever deployed it), a bad input batch is a client problem (reject the
request with a 400), and neither should surface as a raw ``ValueError``
from deep inside a kernel.  The classes below are the boundary between
those worlds.

Both roots subclass :class:`ValueError` so historical call sites (and
tests) that caught ``ValueError`` keep working; the missing-artifact
case additionally subclasses :class:`FileNotFoundError` for the same
reason.
"""

from __future__ import annotations


class ArtifactError(ValueError):
    """A session artifact on disk is unusable.

    Raised by :func:`repro.runtime.artifact.load_artifact` (and hence
    :meth:`repro.runtime.Session.load`) for every corruption class —
    missing files, truncated or bit-flipped blobs, CRC mismatches,
    unparseable manifests, unknown formats/versions, and export dicts
    that fail the deployment-side integrity pass.  The message always
    names the artifact path and the failing check.
    """


class ArtifactNotFoundError(ArtifactError, FileNotFoundError):
    """The artifact directory (or one of its two files) does not exist."""


class InvalidInputError(ValueError):
    """An input batch was rejected at the ``Session.run`` boundary.

    Raised before any kernel runs when a batch is not a real-valued
    NCHW array the compiled plan can consume: wrong rank, wrong channel
    count, non-numeric or complex dtype, non-finite values, or a
    geometry the layer cascade collapses to nothing.  Client-side by
    definition — the serving tier maps it to a 400, never a 500.
    """


class PoolError(RuntimeError):
    """Base class for :class:`repro.runtime.pool.WorkerPool` failures.

    Deliberately *not* a :class:`ValueError`: a pool failure is an
    operational event (a worker process died, the pool was closed), not
    a malformed value.  The serving tier treats these like any other
    batch-execution failure — retry, then surface per policy.
    """


class WorkerCrashedError(PoolError):
    """A worker process died (or wedged past the task watchdog) while a
    task was in flight.  The dispatcher respawns the worker; the task is
    retried up to the pool's retry budget before this error reaches the
    caller."""


class WorkerTaskError(PoolError):
    """The task itself raised inside the worker.  Carries the remote
    exception's type name and message; the worker stays alive — this is
    a task failure, not a worker failure, so no respawn happens."""

    def __init__(self, etype: str, message: str):
        super().__init__(f"{etype}: {message}")
        self.etype = etype


class PoolClosedError(PoolError):
    """The pool was closed; no further tasks are accepted and tasks
    still queued at close time are failed with this error."""
