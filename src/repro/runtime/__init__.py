"""repro.runtime — the public serving API (canonical reference).

This package is the single front door onto the integer inference stack:
everything an application needs to quantize, compile, serve, save and
reload a network lives behind four names::

    from repro.runtime import CompileOptions, Session, SessionOptions, pipeline

Quickstart
----------
::

    import repro
    from repro.runtime import CompileOptions, Session, SessionOptions, pipeline

    # spec + policy + device -> a running session (search included):
    spec = repro.mobilenet_v1_spec(192, 0.5)
    session = pipeline(spec, device=repro.STM32H7)
    logits = session.run(images)               # single shot
    labels = session.predict(image_sweep)      # tiled through the arena
    print(session.describe())                  # per-layer dispatch + arena plan

    # Or wrap a QAT-converted network directly:
    session = Session(net, CompileOptions(backend="int32"),
                      SessionOptions(batch_size=16, input_hw=(32, 32)))

    # Round-trippable deployment artifact (JSON manifest + CRC'd blobs):
    session.save("model.artifact")
    restored = Session.load("model.artifact")  # bit-identical, no net needed

Vocabulary
----------
:class:`CompileOptions`
    Frozen dataclass of compilation knobs — ``backend`` (GEMM dispatch
    tier), ``validate`` (boundary/weight range checks), ``use_arena``
    (static activation arena), ``fused_depthwise`` (stencil kernel
    dispatch), ``narrow`` (container-width activation codes),
    ``refined_bound`` (weight-data accumulator bound), ``input_hw``
    (eager arena planning).  Replaces the historical loose kwargs of
    ``IntegerNetwork.compile()``, which survive only as a deprecated
    shim that forwards here.
:class:`SessionOptions`
    Frozen dataclass of serving knobs — ``batch_size`` (default tile
    for ``run_batched``/``predict``), ``validate`` (per-session
    boundary-check override), ``input_hw`` (arena geometry planned at
    session construction).
:class:`Session`
    A compiled, servable network: ``run`` / ``run_batched`` /
    ``predict`` / ``run_codes`` execute, ``describe`` / ``layer_info``
    / ``profile`` introspect, ``save`` / ``load`` round-trip the
    on-disk artifact.
:func:`pipeline`
    ``spec [+ policy] [+ device] -> Session`` — the one-call
    replacement for hand-wired search → convert → compile chains, with
    the device RW-budget assertion built in.
:mod:`repro.runtime.artifact`
    The artifact format itself (``save_artifact`` / ``load_artifact``,
    the latter with an ``mmap=True`` zero-copy mode), for tooling that
    wants the raw manifest.
:class:`WorkerPool` / :class:`PoolOptions`
    Process-pool scale-out over a saved artifact: N workers share one
    mmap'd copy of the weights behind a work-stealing dispatcher with
    crash detection and respawn-and-retry (``repro.runtime.pool``).

All four core names are re-exported at the top level (``repro.Session``
…) and the ``repro-mcu run <artifact>`` CLI subcommand serves a saved
artifact from the shell (``serve --workers N`` for the pool).
"""

from repro.runtime.artifact import load_artifact, read_manifest, save_artifact
from repro.runtime.errors import (
    ArtifactError,
    ArtifactNotFoundError,
    InvalidInputError,
    PoolClosedError,
    PoolError,
    WorkerCrashedError,
    WorkerTaskError,
)
from repro.runtime.options import CompileOptions, SessionOptions
from repro.runtime.pool import PoolOptions, WorkerPool
from repro.runtime.session import LayerTiming, Session, SessionProfile, pipeline

__all__ = [
    "CompileOptions",
    "SessionOptions",
    "Session",
    "SessionProfile",
    "LayerTiming",
    "pipeline",
    "save_artifact",
    "load_artifact",
    "read_manifest",
    "ArtifactError",
    "ArtifactNotFoundError",
    "InvalidInputError",
    "PoolError",
    "PoolClosedError",
    "WorkerCrashedError",
    "WorkerTaskError",
    "PoolOptions",
    "WorkerPool",
]
