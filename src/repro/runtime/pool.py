"""Process-based worker pool over a session artifact: N cores, one copy
of the weights.

The scaling unit of the serving tier.  Each worker is a separate
process that opens the *same* artifact directory via the mmap load path
(:func:`repro.runtime.artifact.load_artifact` with ``mmap=True``): the
read-only pages of ``blobs.bin`` are shared by the OS page cache across
every worker, so an N-worker pool costs one copy of the weight blobs
plus N private activation arenas (and N compiled plans) — not N full
model copies.  Every worker compiles the identical
:class:`~repro.runtime.Session` from the identical bytes, so pool
results are bit-identical to a single in-process session by
construction, and the parity suite asserts it.

Dispatch is work-stealing: the pool keeps one task deque per worker
plus one parent-side dispatcher thread per worker.  ``submit`` enqueues
onto the shortest deque; an idle dispatcher first drains its own deque,
then steals the *oldest* task from the longest peer deque (FIFO steal —
the task that has waited longest moves first).  Tensors travel through
per-worker :class:`~repro.runtime.shm.SharedSlab` segments (zero-copy
IPC; oversize payloads fall back to the control pipe, counted).

Failure contract:

* a worker that dies mid-task (crash, OOM-kill, injected SIGKILL) is
  detected by its dispatcher thread, **respawned**, and the task is
  retried up to ``PoolOptions.retries`` times before the caller sees a
  :class:`~repro.runtime.errors.WorkerCrashedError`;
* a worker wedged past ``task_timeout_s`` is SIGKILL'd and handled the
  same way (the pool-side analogue of the engine's hung-batch watchdog);
* an exception *inside* the task (bad input reaching a kernel) comes
  back as :class:`~repro.runtime.errors.WorkerTaskError` without a
  respawn — task failures are not worker failures.

The ``worker-kill`` chaos fault lives here: the pool accepts any object
with a ``fire(kind) -> spec|None`` method (duck-typed so this module
never imports the serving tier) and SIGKILLs the worker right after a
task is handed to it — a deterministic stand-in for a mid-batch crash.
"""

from __future__ import annotations

import os
import signal
import tempfile
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, Union

import numpy as np

from repro.runtime.errors import (
    PoolClosedError,
    WorkerCrashedError,
    WorkerTaskError,
)
from repro.runtime.shm import SharedSlab

_FALLBACK_SLAB_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class PoolOptions:
    """Configuration of a :class:`WorkerPool` (frozen value object).

    ``workers``
        Number of worker processes.
    ``retries``
        Respawn-and-retry budget per task after a worker crash
        (0 = fail the task on the first crash).
    ``start_method``
        ``multiprocessing`` start method.  The default ``"spawn"``
        gives every worker a clean interpreter with no locks inherited
        from a threaded parent — crash-respawn from a dispatcher thread
        is only safe with clean children.
    ``mmap_weights``
        Workers open the artifact through the zero-copy mmap load path
        (the whole point of the pool); ``False`` restores the copying
        loader for A/B.
    ``spawn_timeout_s`` / ``task_timeout_s``
        How long to wait for a worker to report ready, and the per-task
        wedge watchdog (a worker silent past it is killed + respawned).
    ``steal``
        Work stealing between worker queues (``False`` pins tasks to
        the queue ``submit`` chose — for tests and A/B).
    ``slab_bytes``
        Shared-memory slab size per direction per worker; ``None``
        sizes it from the artifact's arena geometry (max tile bytes),
        falling back to 16 MiB.
    ``max_tile``
        Upper bound on images per dispatched task; ``run_batched``
        sweeps are split into tiles of at most this many images.
    """

    workers: int = 2
    retries: int = 1
    start_method: str = "spawn"
    mmap_weights: bool = True
    spawn_timeout_s: float = 120.0
    task_timeout_s: float = 120.0
    steal: bool = True
    slab_bytes: Optional[int] = None
    max_tile: int = 32

    def __post_init__(self):
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.start_method not in ("spawn", "fork", "forkserver"):
            raise ValueError(
                f"start_method must be spawn/fork/forkserver, "
                f"got {self.start_method!r}"
            )
        if self.max_tile < 1:
            raise ValueError(f"max_tile must be >= 1, got {self.max_tile}")


def _worker_main(worker_id: int, artifact_path: str, req_name: str,
                 resp_name: str, conn, mmap_weights: bool) -> None:  # pragma: no cover
    """Worker-process body: load the artifact (mmap), warm the plan,
    then serve run/batched requests off the control pipe until told to
    close.  Runs in a child process — everything it needs arrives via
    arguments, nothing is inherited (and coverage cannot trace it:
    it is exercised end to end by the pool suites, not line-counted)."""
    # The parent owns lifecycle; a Ctrl-C on the process group must not
    # tear workers down before the pool's own close sequence does.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    from repro.runtime.session import Session

    req = SharedSlab.attach(req_name)
    resp = SharedSlab.attach(resp_name)
    try:
        session = Session.load(artifact_path, mmap=mmap_weights)
        health = session.healthcheck()  # warms the arena + kernels
        conn.send({"op": "ready", "pid": os.getpid(), "worker": worker_id,
                   "health": health})
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg.get("op")
            if op == "close":
                conn.send({"op": "closed", "pid": os.getpid()})
                break
            if op == "ping":
                conn.send({"op": "pong", "pid": os.getpid(),
                           "seq": msg.get("seq")})
                continue
            if op not in ("run", "batched"):
                conn.send({"op": "error", "seq": msg.get("seq"),
                           "etype": "ValueError",
                           "message": f"unknown op {op!r}"})
                continue
            try:
                if msg.get("inline") is not None:
                    xs = np.asarray(msg["inline"])
                else:
                    xs = req.view(msg["shape"], msg["dtype"])
                if op == "batched":
                    out = session.run_batched(
                        xs, batch_size=msg.get("batch_size")
                    )
                else:
                    out = session.run(xs)
            except Exception as exc:
                conn.send({"op": "error", "seq": msg.get("seq"),
                           "etype": type(exc).__name__, "message": str(exc)})
                continue
            out = np.ascontiguousarray(out)
            reply = {"op": "done", "seq": msg.get("seq"),
                     "shape": out.shape, "dtype": out.dtype.str}
            if resp.fits(out.nbytes):
                resp.write(out)
            else:
                reply["inline"] = out
            conn.send(reply)
    finally:
        req.close()
        resp.close()
        try:
            conn.close()
        except OSError:
            pass  # already torn down by the parent


class _Task:
    """One unit of dispatch: a tile plus its completion future."""

    __slots__ = ("op", "xs", "batch_size", "future", "attempts")

    def __init__(self, op: str, xs: np.ndarray,
                 batch_size: Optional[int] = None):
        import concurrent.futures

        self.op = op
        self.xs = xs
        self.batch_size = batch_size
        self.future: "concurrent.futures.Future" = concurrent.futures.Future()
        self.attempts = 0


class _WorkerHandle:
    """Parent-side record of one worker slot (process + pipe + slabs).
    Only the slot's dispatcher thread mutates it after start()."""

    def __init__(self, worker_id: int, req: SharedSlab, resp: SharedSlab):
        self.worker_id = worker_id
        self.req = req
        self.resp = resp
        self.proc = None
        self.conn = None
        self.pid: Optional[int] = None
        self.ready = False
        self.state = "starting"
        self.served = 0
        self.restarts = 0
        self.stolen = 0

    @property
    def alive(self) -> bool:
        return self.proc is not None and self.proc.is_alive()


class WorkerPool:
    """N artifact-backed worker processes behind a work-stealing
    dispatcher.  See the module docstring for the full contract."""

    def __init__(self, artifact_path: Union[str, Path],
                 options: Optional[PoolOptions] = None,
                 faults: Optional[Any] = None):
        self.artifact_path = Path(artifact_path)
        self.options = options or PoolOptions()
        self.faults = faults  # duck-typed: .fire("worker-kill") -> spec|None
        self._ctx = None
        self._seq = 0
        self._closed = False
        self._started = False
        self._owned_tmp: Optional[str] = None
        self._lock = threading.Condition()
        n = self.options.workers
        self._queues: List[Deque[_Task]] = [deque() for _ in range(n)]
        self._workers: List[_WorkerHandle] = []
        self._threads: List[threading.Thread] = []
        self.kills = 0
        self.inline_fallbacks = 0
        self._total_restarts = 0

    # -- construction helpers ------------------------------------------
    @classmethod
    def from_session(cls, session, options: Optional[PoolOptions] = None,
                     faults: Optional[Any] = None) -> "WorkerPool":
        """Pool over an in-memory session: reuse the artifact it was
        loaded from when known, else stage a private temporary artifact
        (removed on ``close``)."""
        source = getattr(session, "source_artifact", None)
        if source is not None and Path(source).is_dir():
            return cls(source, options=options, faults=faults)
        tmp = tempfile.mkdtemp(prefix="repro-pool-")
        path = Path(tmp) / "model.artifact"
        session.save(path)
        pool = cls(path, options=options, faults=faults)
        pool._owned_tmp = tmp
        return pool

    def _slab_bytes(self, manifest: dict) -> int:
        if self.options.slab_bytes is not None:
            return int(self.options.slab_bytes)
        try:
            net = manifest["network"]
            arena = net["arena"]
            h, w = arena["input_hw"]
            channels = int(net["conv_layers"][0]["weight_shape"][1])
            per_image = channels * int(h) * int(w) * 8  # float64 NCHW
            return max(64 * 1024, self.options.max_tile * per_image)
        except (KeyError, IndexError, TypeError, ValueError):
            return _FALLBACK_SLAB_BYTES

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "WorkerPool":
        """Spawn the workers, wait for every one to report ready (plan
        compiled, arena warm), then start the dispatcher threads.
        Idempotent."""
        if self._started:
            return self
        import multiprocessing as mp

        from repro.runtime.artifact import read_manifest

        manifest = read_manifest(self.artifact_path)  # fail fast + sizing
        slab_bytes = self._slab_bytes(manifest)
        self._ctx = mp.get_context(self.options.start_method)
        for wid in range(self.options.workers):
            handle = _WorkerHandle(
                wid, SharedSlab(slab_bytes), SharedSlab(slab_bytes)
            )
            self._workers.append(handle)
            self._spawn(handle)
        deadline = time.monotonic() + self.options.spawn_timeout_s
        for handle in self._workers:
            self._await_ready(handle, deadline)
        self._started = True
        for handle in self._workers:
            t = threading.Thread(
                target=self._dispatch_loop, args=(handle,),
                name=f"repro-pool-dispatch-{handle.worker_id}", daemon=True,
            )
            self._threads.append(t)
            t.start()
        return self

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(handle.worker_id, str(self.artifact_path),
                  handle.req.name, handle.resp.name, child_conn,
                  self.options.mmap_weights),
            name=f"repro-pool-worker-{handle.worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        handle.proc = proc
        handle.conn = parent_conn
        handle.pid = proc.pid
        handle.ready = False
        handle.state = "starting"

    def _await_ready(self, handle: _WorkerHandle, deadline: float) -> None:
        while True:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                raise WorkerCrashedError(
                    f"worker {handle.worker_id} did not report ready within "
                    f"{self.options.spawn_timeout_s:.0f}s"
                )
            if handle.conn.poll(min(0.1, timeout)):
                try:
                    msg = handle.conn.recv()
                except (EOFError, OSError):
                    raise WorkerCrashedError(
                        f"worker {handle.worker_id} died during startup"
                    ) from None
                if msg.get("op") == "ready":
                    handle.ready = True
                    handle.state = "idle"
                    return
            elif not handle.proc.is_alive():
                raise WorkerCrashedError(
                    f"worker {handle.worker_id} died during startup "
                    f"(exit code {handle.proc.exitcode})"
                )

    def _respawn(self, handle: _WorkerHandle) -> None:
        """Replace a dead worker in place (same slot, same slabs)."""
        try:
            handle.conn.close()
        except OSError:
            pass  # pipe already broken — that is why we are respawning
        if handle.proc is not None and handle.proc.is_alive():
            handle.proc.kill()
        if handle.proc is not None:
            handle.proc.join(timeout=5.0)
        handle.restarts += 1
        with self._lock:
            self._total_restarts += 1
        self._spawn(handle)
        self._await_ready(
            handle, time.monotonic() + self.options.spawn_timeout_s
        )

    def close(self) -> None:
        """Stop dispatchers, shut workers down, release every shared
        segment, and fail tasks still queued.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            leftovers = [t for q in self._queues for t in q]
            for q in self._queues:
                q.clear()
            self._lock.notify_all()
        for task in leftovers:
            if not task.future.done():
                task.future.set_exception(
                    PoolClosedError("pool closed with tasks still queued")
                )
        for t in self._threads:
            t.join(timeout=self.options.task_timeout_s + 10.0)
        for handle in self._workers:
            try:
                if handle.alive:
                    handle.conn.send({"op": "close"})
            except (OSError, ValueError):
                pass  # worker died first; the kill below still runs
        for handle in self._workers:
            if handle.proc is not None:
                handle.proc.join(timeout=2.0)
                if handle.proc.is_alive():
                    handle.proc.kill()
                    handle.proc.join(timeout=2.0)
            try:
                handle.conn.close()
            except OSError:
                pass  # double-close after a crashed worker
            handle.req.close()
            handle.resp.close()
        if self._owned_tmp:
            import shutil

            shutil.rmtree(self._owned_tmp, ignore_errors=True)
            self._owned_tmp = None

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- dispatch ------------------------------------------------------
    def submit(self, xs: np.ndarray, op: str = "run",
               batch_size: Optional[int] = None):
        """Enqueue one tile; returns a ``concurrent.futures.Future``
        resolving to the tile's logits.  Thread-safe."""
        if not self._started:
            self.start()
        task = _Task(op, np.ascontiguousarray(np.asarray(xs)), batch_size)
        with self._lock:
            if self._closed:
                raise PoolClosedError("pool is closed")
            target = min(
                range(len(self._queues)), key=lambda i: len(self._queues[i])
            )
            self._queues[target].append(task)
            self._lock.notify_all()
        return task.future

    def _take_task(self, handle: _WorkerHandle) -> Optional[_Task]:
        """Own queue first; else steal the oldest task from the longest
        peer queue; else block until work arrives or the pool closes."""
        wid = handle.worker_id
        with self._lock:
            while True:
                if self._closed:
                    return None
                if self._queues[wid]:
                    return self._queues[wid].popleft()
                if self.options.steal:
                    victim = max(
                        range(len(self._queues)),
                        key=lambda i: len(self._queues[i]),
                    )
                    if self._queues[victim]:
                        handle.stolen += 1
                        return self._queues[victim].popleft()
                handle.state = "idle"
                self._lock.wait()

    def _requeue_front(self, handle: _WorkerHandle, task: _Task) -> None:
        with self._lock:
            if self._closed:
                if not task.future.done():
                    task.future.set_exception(
                        PoolClosedError("pool closed during retry")
                    )
                return
            self._queues[handle.worker_id].appendleft(task)
            self._lock.notify_all()

    def _dispatch_loop(self, handle: _WorkerHandle) -> None:
        while True:
            task = self._take_task(handle)
            if task is None:
                return
            if task.future.cancelled():
                continue
            handle.state = "busy"
            try:
                result = self._roundtrip(handle, task)
            except WorkerCrashedError as exc:
                handle.state = "respawning"
                try:
                    self._respawn(handle)
                except WorkerCrashedError as respawn_exc:
                    # Could not bring the slot back: fail the task and
                    # keep trying to serve the queue with a fresh spawn
                    # on the next task.
                    exc = respawn_exc
                task.attempts += 1
                if task.attempts <= self.options.retries:
                    self._requeue_front(handle, task)
                elif not task.future.done():
                    task.future.set_exception(exc)
                handle.state = "idle"
                continue
            except Exception as exc:
                if not task.future.done():
                    task.future.set_exception(exc)
                handle.state = "idle"
                continue
            handle.served += 1
            handle.state = "idle"
            if not task.future.done():
                task.future.set_result(result)

    def _roundtrip(self, handle: _WorkerHandle, task: _Task) -> np.ndarray:
        """Ship one task to ``handle``'s worker and wait for its reply.
        Raises :class:`WorkerCrashedError` if the process dies or wedges
        past the task watchdog, :class:`WorkerTaskError` if the task
        itself failed remotely."""
        with self._lock:
            self._seq += 1
            seq = self._seq
        xs = task.xs
        msg: Dict[str, Any] = {
            "op": task.op, "seq": seq,
            "shape": xs.shape, "dtype": xs.dtype.str,
            "batch_size": task.batch_size,
        }
        if xs.size and handle.req.fits(xs.nbytes):
            handle.req.write(xs)
        elif xs.size:
            msg["inline"] = xs
            with self._lock:
                self.inline_fallbacks += 1
        try:
            handle.conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            raise WorkerCrashedError(
                f"worker {handle.worker_id} (pid {handle.pid}) pipe broke "
                f"while sending a task"
            ) from exc
        # Chaos hook: kill the worker *after* the task is in its hands —
        # a deterministic mid-batch crash the dispatcher must absorb.
        if self.faults is not None and self.faults.fire("worker-kill") is not None:
            with self._lock:
                self.kills += 1
            try:
                os.kill(handle.pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):
                pass
        deadline = time.monotonic() + self.options.task_timeout_s
        while True:
            if handle.conn.poll(0.05):
                try:
                    reply = handle.conn.recv()
                except (EOFError, OSError):
                    raise WorkerCrashedError(
                        f"worker {handle.worker_id} (pid {handle.pid}) died "
                        f"mid-task"
                    ) from None
                if reply.get("seq") != seq:
                    continue  # stale pre-crash chatter; keep draining
                break
            if not handle.proc.is_alive():
                # One final poll: the reply may have been in flight when
                # the process exited.
                if handle.conn.poll(0):
                    continue
                raise WorkerCrashedError(
                    f"worker {handle.worker_id} (pid {handle.pid}) died "
                    f"mid-task (exit code {handle.proc.exitcode})"
                )
            if time.monotonic() > deadline:
                try:
                    os.kill(handle.pid, signal.SIGKILL)
                except (ProcessLookupError, OSError):
                    pass
                raise WorkerCrashedError(
                    f"worker {handle.worker_id} (pid {handle.pid}) wedged "
                    f"past the {self.options.task_timeout_s:.0f}s task "
                    f"watchdog"
                )
        if reply.get("op") == "error":
            raise WorkerTaskError(reply.get("etype", "Exception"),
                                  reply.get("message", ""))
        if reply.get("op") != "done":
            raise WorkerCrashedError(
                f"worker {handle.worker_id} sent an unexpected "
                f"{reply.get('op')!r} reply"
            )
        if reply.get("inline") is not None:
            return np.asarray(reply["inline"])
        return handle.resp.read(reply["shape"], reply["dtype"])

    # -- serving surface ----------------------------------------------
    def run(self, xs: np.ndarray) -> np.ndarray:
        """One tile, synchronously: real NCHW batch -> real logits
        (bit-identical to ``Session.run`` on any worker's session)."""
        return self.submit(xs, op="run").result()

    def run_batched(self, x_real: np.ndarray,
                    batch_size: Optional[int] = None) -> np.ndarray:
        """A sweep, tiled *across* workers: split into contiguous tiles
        of ``batch_size`` (default ``PoolOptions.max_tile``), dispatch
        them all, and reassemble in submission order.  Because every
        kernel in the stack is exact, per-tile execution is
        bit-identical to ``Session.run_batched`` of the whole sweep no
        matter how the tiles land on workers."""
        x = np.asarray(x_real)
        tile = int(batch_size or self.options.max_tile)
        if tile < 1:
            raise ValueError(f"batch_size must be >= 1, got {tile}")
        n = x.shape[0] if x.ndim else 0
        if n == 0:
            # Shape-preserving empty sweep: one worker answers with the
            # plan's output spec applied to zero images.
            return self.submit(x, op="batched",
                               batch_size=tile).result()
        futures = [self.submit(x[i:i + tile], op="run")
                   for i in range(0, n, tile)]
        return np.concatenate([f.result() for f in futures], axis=0)

    def predict(self, x_real: np.ndarray,
                batch_size: Optional[int] = None) -> np.ndarray:
        return np.argmax(self.run_batched(x_real, batch_size=batch_size),
                         axis=1)

    # -- introspection -------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def restarts(self) -> int:
        return self._total_restarts

    def alive_workers(self) -> int:
        return sum(1 for h in self._workers if h.alive)

    def queue_depths(self) -> List[int]:
        with self._lock:
            return [len(q) for q in self._queues]

    def stats(self) -> dict:
        """Health + accounting snapshot (the ``/stats`` pool section).

        Taken under the pool lock so the counters, queue depths and
        per-worker rows all describe one instant — an unlocked snapshot
        can sum ``served`` mid-restart and report a batch both in a
        queue and in a worker's tally.  (``queue_depths`` re-enters the
        lock; the Condition's default lock is reentrant.)
        """
        with self._lock:
            return {
                "workers": self.options.workers,
                "alive": self.alive_workers(),
                "restarts": self._total_restarts,
                "kills": self.kills,
                "served": sum(h.served for h in self._workers),
                "stolen": sum(h.stolen for h in self._workers),
                "inline_fallbacks": self.inline_fallbacks,
                "queue_depths": self.queue_depths(),
                "mmap_weights": self.options.mmap_weights,
                "per_worker": [
                    {
                        "worker": h.worker_id,
                        "pid": h.pid,
                        "alive": h.alive,
                        "state": h.state,
                        "served": h.served,
                        "restarts": h.restarts,
                        "stolen": h.stolen,
                    }
                    for h in self._workers
                ],
            }

    def worker_pids(self) -> List[Optional[int]]:
        return [h.pid for h in self._workers]
