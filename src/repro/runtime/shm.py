"""Shared-memory tensor transport for the worker pool.

One :class:`SharedSlab` is a fixed-size ``multiprocessing.shared_memory``
segment the dispatcher and exactly one worker agree on: the parent
writes a request batch into the worker's request slab, sends a tiny
control message (shape + dtype + sequence number) over the worker's
pipe, and the worker maps the same bytes as a numpy view — the batch
never crosses the pipe, and neither does the response.  The protocol is
strictly request/response per worker, so a slab is never written while
the peer might still be reading it and no locks are needed.

Payloads that do not fit the slab (a caller submitting a tile larger
than the pool was sized for, or an unusually large trunk output) fall
back to pickling the array through the control pipe — slower, never
wrong.  :class:`repro.runtime.pool.WorkerPool` counts those fallbacks
in its stats so an undersized pool is visible, not silent.

Lifecycle: the *parent* owns every segment (creates and unlinks);
workers only attach.  A SIGKILL'd worker therefore leaks nothing — the
segment lives until the pool closes, and the respawned worker attaches
to the same name.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import Optional, Sequence, Tuple

import numpy as np


class SharedSlab:
    """A named shared-memory byte range with numpy views on top."""

    def __init__(self, nbytes: int, name: Optional[str] = None,
                 create: bool = True):
        self.create = bool(create)
        if create:
            self._shm = shared_memory.SharedMemory(
                create=True, size=max(1, int(nbytes))
            )
        else:
            # Attaching would re-register the segment with the resource
            # tracker (shared with the parent process), and our later
            # deregistration would cancel the *parent's* registration —
            # its unlink at pool close would then warn about an unknown
            # name.  Workers only borrow the mapping, so suppress the
            # registration entirely for the duration of the attach.
            from multiprocessing import resource_tracker

            original_register = resource_tracker.register

            def _borrowing_register(name_, rtype):
                if rtype != "shared_memory":
                    original_register(name_, rtype)

            resource_tracker.register = _borrowing_register
            try:
                self._shm = shared_memory.SharedMemory(name=name)
            finally:
                resource_tracker.register = original_register
        self.name = self._shm.name
        self.nbytes = self._shm.size

    def fits(self, nbytes: int) -> bool:
        return int(nbytes) <= self.nbytes

    def view(self, shape: Sequence[int], dtype) -> np.ndarray:
        """A numpy view of the slab's first ``prod(shape)`` elements."""
        shape = tuple(int(d) for d in shape)
        arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=self._shm.buf)
        return arr

    def write(self, array: np.ndarray) -> Tuple[Tuple[int, ...], str]:
        """Copy ``array`` into the slab; returns ``(shape, dtype.str)``
        for the control message.  Caller must have checked :meth:`fits`."""
        arr = np.ascontiguousarray(array)
        if arr.size:
            self.view(arr.shape, arr.dtype)[...] = arr
        return arr.shape, arr.dtype.str

    def read(self, shape: Sequence[int], dtype) -> np.ndarray:
        """Copy the described tensor *out* of the slab (the slab is
        reused for the next task, so the result must own its bytes)."""
        return np.array(self.view(shape, dtype), copy=True)

    def close(self) -> None:
        try:
            self._shm.close()
        except (OSError, BufferError):
            pass  # exported views may still pin the mapping; GC reaps it
        if self.create:
            try:
                self._shm.unlink()
            except OSError:
                pass  # another owner already unlinked the segment

    @classmethod
    def attach(cls, name: str) -> "SharedSlab":
        """Worker-side: map an existing parent-owned segment by name."""
        return cls(0, name=name, create=False)
