"""Options dataclasses for the :mod:`repro.runtime` front door.

:class:`CompileOptions` replaces the loose keyword arguments that
``IntegerNetwork.compile()`` accreted (``backend``, ``validate``,
``use_arena``, ``fused_depthwise``, ``narrow``, ``refined_bound``,
``input_hw``) with one frozen, validated, hashable value object —
the ONNX-Runtime ``SessionOptions`` shape.  :class:`SessionOptions`
carries the serving-side knobs (batch tiling, boundary-validation
override, arena geometry) consumed by :class:`repro.runtime.Session`.

Both classes are plain data: constructing them performs no work beyond
validation, and the same instance can configure any number of networks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

#: GEMM backends understood by the compiled plan (see
#: :func:`repro.inference.plan._resolve_compiled_backend`).
VALID_BACKENDS = ("auto", "blas", "int32", "int64")


def _normalize_hw(value: Any) -> Optional[Tuple[int, int]]:
    if value is None:
        return None
    try:
        h, w = value
    except (TypeError, ValueError):
        raise ValueError(f"input_hw must be a (height, width) pair, got {value!r}")
    h, w = int(h), int(w)
    if h < 1 or w < 1:
        raise ValueError(f"input_hw must be positive, got {(h, w)}")
    return (h, w)


@dataclass(frozen=True)
class CompileOptions:
    """How an :class:`~repro.inference.engine.IntegerNetwork` is compiled
    into an :class:`~repro.inference.plan.ExecutionPlan`.

    Fields (all keyword-friendly, all with the production defaults):

    ``backend``
        GEMM dispatch: ``"auto"`` picks the narrowest exact accumulator
        per layer under the refined bound; ``"blas"`` forces the float
        tiers (error if inexact); ``"int32"`` forces the MCU-style int32
        accumulator under the ``2^31`` bound; ``"int64"`` forces the
        exact einsum reference.
    ``validate``
        Range-check weight codes at compile time and activation codes at
        the network boundary.  Disabling also voids the refined-bound
        guarantee (dispatch falls back to the a-priori corner case).
    ``use_arena``
        Execute inside the static activation arena (zero steady-state
        allocations).  ``False`` restores per-call allocation for A/B.
    ``fused_depthwise``
        Depthwise kernel dispatch: ``"auto"`` (cache-threshold rule),
        ``True`` (always the im2col-free stencil), ``False`` (never).
    ``narrow``
        Store activation codes at container width (uint8 for all paper
        widths).  ``False`` restores the legacy int64-code pipeline.
    ``refined_bound``
        Use the weight-data refined accumulator bound for dispatch
        (promotes most wide pointwise layers to float32 BLAS).
    ``input_hw``
        Optional ``(H, W)`` to plan the activation arena eagerly at
        compile time instead of lazily on first run.
    ``max_input_hw``
        Declared maximum input geometry for a *shape-polymorphic* plan:
        the activation arena is sized once for this ``(H, W)`` and every
        smaller geometry executes inside the same slabs (per-geometry
        plans adopt the max arena's storage instead of allocating their
        own).  Inputs exceeding either dimension are rejected.  ``None``
        (the default) keeps the historical per-geometry arenas.
    """

    backend: str = "auto"
    validate: bool = True
    use_arena: bool = True
    fused_depthwise: Union[bool, str] = "auto"
    narrow: bool = True
    refined_bound: bool = True
    input_hw: Optional[Tuple[int, int]] = None
    max_input_hw: Optional[Tuple[int, int]] = None

    def __post_init__(self) -> None:
        if self.backend not in VALID_BACKENDS:
            raise ValueError(
                f"backend must be one of {VALID_BACKENDS}, got {self.backend!r}"
            )
        if self.fused_depthwise not in (True, False, "auto"):
            raise ValueError(
                f"fused_depthwise must be True, False or 'auto', "
                f"got {self.fused_depthwise!r}"
            )
        object.__setattr__(self, "input_hw", _normalize_hw(self.input_hw))
        object.__setattr__(self, "max_input_hw", _normalize_hw(self.max_input_hw))
        if (
            self.input_hw is not None
            and self.max_input_hw is not None
            and (self.input_hw[0] > self.max_input_hw[0]
                 or self.input_hw[1] > self.max_input_hw[1])
        ):
            raise ValueError(
                f"input_hw {self.input_hw} exceeds max_input_hw "
                f"{self.max_input_hw}"
            )

    @classmethod
    def from_legacy_kwargs(cls, **kwargs: Any) -> "CompileOptions":
        """Build options from the historical ``compile(**kwargs)`` names.

        The legacy keyword names map one-to-one onto the dataclass
        fields; unknown names raise ``TypeError`` listing the valid set,
        so old call sites fail loudly instead of silently ignoring a
        typo'd option.
        """
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(kwargs) - valid
        if unknown:
            raise TypeError(
                f"unknown compile option(s) {sorted(unknown)}; "
                f"valid options are {sorted(valid)}"
            )
        return cls(**kwargs)

    def replace(self, **changes: Any) -> "CompileOptions":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serialisable form (used by the session artifact)."""
        d = dataclasses.asdict(self)
        for key in ("input_hw", "max_input_hw"):
            if d[key] is not None:
                d[key] = list(d[key])
        # Artifacts written before shape-polymorphic plans existed have
        # no max_input_hw key; omit the default so those artifacts and
        # new-default ones serialise identically.
        if d["max_input_hw"] is None:
            del d["max_input_hw"]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CompileOptions":
        return cls.from_legacy_kwargs(**d)


@dataclass(frozen=True)
class SessionOptions:
    """Serving-side configuration of a :class:`repro.runtime.Session`.

    ``batch_size``
        Default tile size for ``Session.run_batched`` / ``predict`` —
        large sweeps stream through the activation arena in tiles of
        this many images.
    ``validate``
        Boundary-validation override for ``run_codes``: ``None`` keeps
        the compiled plan's setting, ``True``/``False`` force it per
        session.
    ``input_hw``
        Arena geometry: when given, the session plans (and allocates on
        first use) the activation arena for this ``(H, W)`` at
        construction, so the first request pays no planning latency.
    ``workers``
        Default process-pool width for scale-out serving: ``1`` keeps
        everything in-process (the degenerate case), ``N > 1`` lets the
        serving tier stand up a :class:`repro.runtime.pool.WorkerPool`
        of N artifact-backed workers sharing one mmap'd copy of the
        weights.  Stored in the artifact like every other session
        option, and overridable per serve (CLI ``--workers``).
    """

    batch_size: int = 32
    validate: Optional[bool] = None
    input_hw: Optional[Tuple[int, int]] = None
    workers: int = 1

    def __post_init__(self) -> None:
        if int(self.batch_size) < 1:
            raise ValueError(f"batch_size must be >= 1, got {self.batch_size}")
        object.__setattr__(self, "batch_size", int(self.batch_size))
        object.__setattr__(self, "input_hw", _normalize_hw(self.input_hw))
        if int(self.workers) < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        object.__setattr__(self, "workers", int(self.workers))

    def replace(self, **changes: Any) -> "SessionOptions":
        """A copy with ``changes`` applied (frozen-dataclass update)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        d = dataclasses.asdict(self)
        if d["input_hw"] is not None:
            d["input_hw"] = list(d["input_hw"])
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SessionOptions":
        valid = {f.name for f in dataclasses.fields(cls)}
        unknown = set(d) - valid
        if unknown:
            raise TypeError(
                f"unknown session option(s) {sorted(unknown)}; "
                f"valid options are {sorted(valid)}"
            )
        return cls(**d)
