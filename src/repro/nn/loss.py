"""Loss functions and classification helpers."""

from __future__ import annotations

import numpy as np


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - logits.max(axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=axis, keepdims=True)


class CrossEntropyLoss:
    """Softmax cross-entropy over integer class targets.

    ``forward`` returns the mean loss; ``backward`` returns the gradient of
    the mean loss w.r.t. the logits.
    """

    def __init__(self):
        self._probs = None
        self._targets = None

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"logits must be 2-D (N, classes), got {logits.shape}")
        probs = softmax(logits, axis=1)
        self._probs = probs
        self._targets = np.asarray(targets, dtype=np.int64)
        n = logits.shape[0]
        eps = 1e-12
        picked = probs[np.arange(n), self._targets]
        return float(-np.log(picked + eps).mean())

    def backward(self) -> np.ndarray:
        n = self._probs.shape[0]
        grad = self._probs.copy()
        grad[np.arange(n), self._targets] -= 1.0
        return grad / n

    def __call__(self, logits, targets):
        return self.forward(logits, targets)


def accuracy(logits: np.ndarray, targets: np.ndarray) -> float:
    """Top-1 accuracy of a batch of logits against integer targets."""
    preds = np.argmax(logits, axis=1)
    return float((preds == np.asarray(targets)).mean())


def topk_accuracy(logits: np.ndarray, targets: np.ndarray, k: int = 5) -> float:
    """Top-k accuracy of a batch of logits against integer targets."""
    k = min(k, logits.shape[1])
    topk = np.argsort(-logits, axis=1)[:, :k]
    targets = np.asarray(targets).reshape(-1, 1)
    return float((topk == targets).any(axis=1).mean())
