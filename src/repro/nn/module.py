"""Module base class: parameter registration, train/eval mode, traversal."""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.nn.tensor import Parameter


class Module:
    """Base class for all layers and models.

    Sub-classes implement :meth:`forward` and :meth:`backward`.  The
    backward pass receives the gradient of the loss w.r.t. the module's
    output and must return the gradient w.r.t. its input, accumulating
    parameter gradients into the registered :class:`Parameter` objects.
    """

    def __init__(self):
        self._parameters: Dict[str, Parameter] = {}
        self._modules: Dict[str, "Module"] = {}
        self.training: bool = True

    # -- registration --------------------------------------------------
    def register_parameter(self, name: str, param: Parameter) -> Parameter:
        if not param.name:
            param.name = name
        self._parameters[name] = param
        return param

    def register_module(self, name: str, module: "Module") -> "Module":
        self._modules[name] = module
        return module

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            # Lazily create the dicts so Parameter assignment works even
            # before Module.__init__ has run in a subclass.
            if "_parameters" not in self.__dict__:
                object.__setattr__(self, "_parameters", {})
            if not value.name:
                value.name = name
            self.__dict__["_parameters"][name] = value
        elif isinstance(value, Module):
            if "_modules" not in self.__dict__:
                object.__setattr__(self, "_modules", {})
            self.__dict__["_modules"][name] = value
        object.__setattr__(self, name, value)

    # -- traversal ------------------------------------------------------
    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its children (depth-first)."""
        out: List[Parameter] = list(self._parameters.values())
        for child in self._modules.values():
            out.extend(child.parameters())
        return out

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}" if prefix else name), p
        for cname, child in self._modules.items():
            child_prefix = f"{prefix}{cname}." if prefix else f"{cname}."
            yield from child.named_parameters(child_prefix)

    def modules(self) -> Iterator["Module"]:
        """Yield this module and every descendant module."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        yield prefix, self
        for cname, child in self._modules.items():
            child_prefix = f"{prefix}.{cname}" if prefix else cname
            yield from child.named_modules(child_prefix)

    def children(self) -> Iterator["Module"]:
        yield from self._modules.values()

    # -- state ----------------------------------------------------------
    def state_dict(self, prefix: str = "") -> Dict[str, np.ndarray]:
        """Flat mapping of parameter (and buffer) names to value copies."""
        state: Dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            state[name] = p.data.copy()
        for name, mod in self.named_modules():
            for bname, buf in getattr(mod, "_buffers", {}).items():
                key = f"{name}.{bname}" if name else bname
                state[key] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for name, p in self.named_parameters():
            if name in state:
                p.copy_(state[name])
        for name, mod in self.named_modules():
            bufs = getattr(mod, "_buffers", None)
            if not bufs:
                continue
            for bname in list(bufs.keys()):
                key = f"{name}.{bname}" if name else bname
                if key in state:
                    bufs[bname] = np.array(state[key], copy=True)
                    object.__setattr__(mod, bname, bufs[bname])

    # -- mode -----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- compute --------------------------------------------------------
    def forward(self, x):  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad_out):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, x):
        return self.forward(x)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        child_repr = ", ".join(self._modules.keys())
        return f"{type(self).__name__}({child_repr})"
