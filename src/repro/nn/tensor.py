"""Learnable parameter container.

The framework uses module-level explicit backward passes rather than a
tape-based autograd; a :class:`Parameter` simply pairs a value array with
an accumulated gradient of the same shape.
"""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor: a float64/float32 array plus its gradient.

    Parameters
    ----------
    data:
        Initial value.  Copied and stored as ``float64`` unless a float32
        array is passed explicitly.
    name:
        Optional human-readable name (used in optimizer state and debug
        output).
    requires_grad:
        When ``False`` the parameter is frozen: optimizers skip it and
        ``accumulate_grad`` becomes a no-op.
    """

    __slots__ = ("data", "grad", "name", "requires_grad")

    def __init__(self, data, name: str = "", requires_grad: bool = True):
        arr = np.asarray(data)
        if arr.dtype not in (np.float32, np.float64):
            arr = arr.astype(np.float64)
        self.data = np.array(arr, copy=True)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.requires_grad = requires_grad

    # ------------------------------------------------------------------
    @property
    def shape(self):
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero."""
        self.grad.fill(0.0)

    def accumulate_grad(self, grad) -> None:
        """Add ``grad`` to the stored gradient (no-op when frozen)."""
        if not self.requires_grad:
            return
        grad = np.asarray(grad)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match parameter "
                f"shape {self.data.shape} for parameter '{self.name}'"
            )
        self.grad += grad

    def copy_(self, value) -> None:
        """In-place overwrite of the parameter value."""
        value = np.asarray(value, dtype=self.data.dtype)
        if value.shape != self.data.shape:
            raise ValueError(
                f"value shape {value.shape} does not match parameter shape "
                f"{self.data.shape}"
            )
        np.copyto(self.data, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Parameter(name={self.name!r}, shape={self.data.shape}, "
            f"requires_grad={self.requires_grad})"
        )
