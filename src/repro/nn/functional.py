"""Vectorised functional primitives (im2col convolutions, pooling).

All functions operate on NCHW numpy arrays and are written with numpy
vectorised idioms (no per-pixel Python loops) so that quantization-aware
training of small/medium networks is practical on a CPU.

The forward helpers return any intermediate buffers that the matching
backward helper needs, so layers can stay stateless beyond a cache dict.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


# ----------------------------------------------------------------------
# im2col / col2im
# ----------------------------------------------------------------------
def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    return (size + 2 * pad - kernel) // stride + 1


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    contiguous: bool = True,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Unfold ``x`` (N, C, H, W) into columns of shape (N, C*kh*kw, OH*OW).

    With ``contiguous=False`` the result is not forced into a fresh
    C-contiguous buffer: for 1x1 kernels the reshape is a pure view of the
    input, and consumers that accept strided arrays (``einsum``,
    ``matmul``) skip one full copy of the unfolded tensor.  Overlapping
    kernels still copy inside ``reshape`` (the strided view cannot be
    reshaped in place), so the flag only elides the redundant second copy.

    With ``out`` the unfolded columns are written into the caller's
    preallocated ``(N, C*kh*kw, OH*OW)`` buffer (an activation-arena
    slab) instead of a fresh allocation; ``out`` is returned.
    """
    n, c, h, w = x.shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    # Strided view: (N, C, kh, kw, OH, OW)
    s0, s1, s2, s3 = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kh, kw, oh, ow),
        strides=(s0, s1, s2, s3, s2 * stride, s3 * stride),
        writeable=False,
    )
    if out is not None:
        if out.shape != (n, c * kh * kw, oh * ow):
            raise ValueError(
                f"im2col out buffer has shape {out.shape}, "
                f"expected {(n, c * kh * kw, oh * ow)}"
            )
        np.copyto(out.reshape(n, c, kh, kw, oh, ow), view)
        return out
    cols = view.reshape(n, c * kh * kw, oh * ow)
    if contiguous:
        return np.ascontiguousarray(cols)
    return cols


def col2im(
    cols: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Fold columns (N, C*kh*kw, OH*OW) back into an image, summing overlaps."""
    n, c, h, w = x_shape
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    hp, wp = h + 2 * pad, w + 2 * pad
    x_padded = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        i_max = i + stride * oh
        for j in range(kw):
            j_max = j + stride * ow
            x_padded[:, :, i:i_max:stride, j:j_max:stride] += cols6[:, :, i, j, :, :]
    if pad > 0:
        return x_padded[:, :, pad:-pad, pad:-pad]
    return x_padded


# ----------------------------------------------------------------------
# Standard convolution
# ----------------------------------------------------------------------
def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
):
    """Forward pass of a 2-D convolution.

    Parameters
    ----------
    x:
        Input activations, shape (N, C_in, H, W).
    weight:
        Kernel, shape (C_out, C_in, kh, kw).
    bias:
        Optional per-output-channel bias of shape (C_out,).

    Returns
    -------
    (out, cache):
        ``out`` has shape (N, C_out, OH, OW); ``cache`` carries what the
        backward pass needs.
    """
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"input channels {c_in} != weight channels {c_in_w}")
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    cols = im2col(x, kh, kw, stride, pad, contiguous=False)  # (N, C*kh*kw, OH*OW)
    w2 = weight.reshape(c_out, -1)  # (C_out, C*kh*kw)
    out = np.einsum("ok,nkl->nol", w2, cols, optimize=True)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1)
    out = out.reshape(n, c_out, oh, ow)
    cache = {"x_shape": x.shape, "cols": cols, "weight": weight,
             "stride": stride, "pad": pad, "has_bias": bias is not None}
    return out, cache


def conv2d_backward(grad_out: np.ndarray, cache: dict):
    """Backward pass of :func:`conv2d_forward`.

    Returns ``(grad_x, grad_w, grad_b)``; ``grad_b`` is ``None`` when the
    forward had no bias.
    """
    x_shape = cache["x_shape"]
    cols = cache["cols"]
    weight = cache["weight"]
    stride, pad = cache["stride"], cache["pad"]
    n = grad_out.shape[0]
    c_out, c_in, kh, kw = weight.shape
    g = grad_out.reshape(n, c_out, -1)  # (N, C_out, L)
    grad_w = np.einsum("nol,nkl->ok", g, cols, optimize=True).reshape(weight.shape)
    grad_b = g.sum(axis=(0, 2)) if cache["has_bias"] else None
    w2 = weight.reshape(c_out, -1)
    grad_cols = np.einsum("ok,nol->nkl", w2, g, optimize=True)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, pad)
    return grad_x, grad_w, grad_b


# ----------------------------------------------------------------------
# Depthwise convolution (channel multiplier 1)
# ----------------------------------------------------------------------
def depthwise_conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
):
    """Depthwise 2-D convolution (one filter per input channel).

    ``weight`` has shape (C, 1, kh, kw).
    """
    n, c, h, w = x.shape
    c_w, one, kh, kw = weight.shape
    if c_w != c or one != 1:
        raise ValueError(f"depthwise weight shape {weight.shape} incompatible with input channels {c}")
    oh = conv_output_size(h, kh, stride, pad)
    ow = conv_output_size(w, kw, stride, pad)
    cols = im2col(x, kh, kw, stride, pad, contiguous=False).reshape(n, c, kh * kw, oh * ow)
    w2 = weight.reshape(c, kh * kw)
    out = np.einsum("ck,nckl->ncl", w2, cols, optimize=True)
    if bias is not None:
        out = out + bias.reshape(1, -1, 1)
    out = out.reshape(n, c, oh, ow)
    cache = {"x_shape": x.shape, "cols": cols, "weight": weight,
             "stride": stride, "pad": pad, "has_bias": bias is not None}
    return out, cache


def depthwise_conv2d_backward(grad_out: np.ndarray, cache: dict):
    """Backward pass of :func:`depthwise_conv2d_forward`."""
    x_shape = cache["x_shape"]
    cols = cache["cols"]  # (N, C, kh*kw, L)
    weight = cache["weight"]
    stride, pad = cache["stride"], cache["pad"]
    n, c = grad_out.shape[0], grad_out.shape[1]
    c_w, _, kh, kw = weight.shape
    g = grad_out.reshape(n, c, -1)  # (N, C, L)
    grad_w = np.einsum("ncl,nckl->ck", g, cols, optimize=True).reshape(weight.shape)
    grad_b = g.sum(axis=(0, 2)) if cache["has_bias"] else None
    w2 = weight.reshape(c, kh * kw)
    grad_cols = np.einsum("ck,ncl->nckl", w2, g, optimize=True)
    grad_cols = grad_cols.reshape(n, c * kh * kw, -1)
    grad_x = col2im(grad_cols, x_shape, kh, kw, stride, pad)
    return grad_x, grad_w, grad_b


# ----------------------------------------------------------------------
# Pooling
# ----------------------------------------------------------------------
def avg_pool2d_forward(x: np.ndarray, kernel: int, stride: int | None = None):
    """Average pooling with square kernel (no padding)."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_output_size(h, kernel, stride, 0)
    ow = conv_output_size(w, kernel, stride, 0)
    s0, s1, s2, s3 = x.strides
    view = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(s0, s1, s2 * stride, s3 * stride, s2, s3),
        writeable=False,
    )
    out = view.mean(axis=(4, 5))
    cache = {"x_shape": x.shape, "kernel": kernel, "stride": stride}
    return out, cache


def avg_pool2d_backward(grad_out: np.ndarray, cache: dict) -> np.ndarray:
    """Backward pass of average pooling (uniform spread of the gradient)."""
    n, c, h, w = cache["x_shape"]
    k, s = cache["kernel"], cache["stride"]
    oh, ow = grad_out.shape[2], grad_out.shape[3]
    grad_x = np.zeros(cache["x_shape"], dtype=grad_out.dtype)
    scaled = grad_out / (k * k)
    for i in range(k):
        for j in range(k):
            grad_x[:, :, i : i + s * oh : s, j : j + s * ow : s] += scaled
    return grad_x


def global_avg_pool2d_forward(x: np.ndarray):
    """Global average pooling: (N, C, H, W) -> (N, C, 1, 1)."""
    out = x.mean(axis=(2, 3), keepdims=True)
    return out, {"x_shape": x.shape}


def global_avg_pool2d_backward(grad_out: np.ndarray, cache: dict) -> np.ndarray:
    n, c, h, w = cache["x_shape"]
    return np.broadcast_to(grad_out / (h * w), cache["x_shape"]).copy()


# ----------------------------------------------------------------------
# Linear
# ----------------------------------------------------------------------
def linear_forward(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None):
    """Fully-connected layer forward: ``y = x @ W.T + b``.

    ``x`` has shape (N, in_features); ``weight`` (out_features, in_features).
    """
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out, {"x": x, "weight": weight, "has_bias": bias is not None}


def linear_backward(grad_out: np.ndarray, cache: dict):
    x, weight = cache["x"], cache["weight"]
    grad_w = grad_out.T @ x
    grad_b = grad_out.sum(axis=0) if cache["has_bias"] else None
    grad_x = grad_out @ weight
    return grad_x, grad_w, grad_b
