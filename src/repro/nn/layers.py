"""Standard layers: convolutions, linear, batch-norm, activations, pooling."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.tensor import Parameter


class Conv2d(Module):
    """2-D convolution over NCHW inputs.

    Parameters mirror the usual framework conventions; only square
    kernels/strides and symmetric zero padding are supported, which covers
    every layer of the MobileNetV1 family.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        self.weight = Parameter(
            init.kaiming_normal(shape, init.conv_fan_in(shape), rng), name="weight"
        )
        self.bias = Parameter(np.zeros(out_channels), name="bias") if bias else None
        self._cache = None

    def forward(self, x):
        out, self._cache = F.conv2d_forward(
            x, self.weight.data,
            self.bias.data if self.bias is not None else None,
            self.stride, self.padding,
        )
        return out

    def backward(self, grad_out):
        grad_x, grad_w, grad_b = F.conv2d_backward(grad_out, self._cache)
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None and grad_b is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    def macs(self, in_h: int, in_w: int) -> int:
        """Multiply-accumulate count for one inference at this input size."""
        oh = F.conv_output_size(in_h, self.kernel_size, self.stride, self.padding)
        ow = F.conv_output_size(in_w, self.kernel_size, self.stride, self.padding)
        return oh * ow * self.out_channels * self.in_channels * self.kernel_size ** 2


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution (channel multiplier 1)."""

    def __init__(
        self,
        channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.channels = channels
        self.in_channels = channels
        self.out_channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        shape = (channels, 1, kernel_size, kernel_size)
        fan_in = kernel_size * kernel_size
        self.weight = Parameter(init.kaiming_normal(shape, fan_in, rng), name="weight")
        self.bias = Parameter(np.zeros(channels), name="bias") if bias else None
        self._cache = None

    def forward(self, x):
        out, self._cache = F.depthwise_conv2d_forward(
            x, self.weight.data,
            self.bias.data if self.bias is not None else None,
            self.stride, self.padding,
        )
        return out

    def backward(self, grad_out):
        grad_x, grad_w, grad_b = F.depthwise_conv2d_backward(grad_out, self._cache)
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None and grad_b is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    def macs(self, in_h: int, in_w: int) -> int:
        oh = F.conv_output_size(in_h, self.kernel_size, self.stride, self.padding)
        ow = F.conv_output_size(in_w, self.kernel_size, self.stride, self.padding)
        return oh * ow * self.channels * self.kernel_size ** 2


class Linear(Module):
    """Fully connected layer: ``y = x @ W.T + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.xavier_uniform((out_features, in_features), in_features, out_features, rng),
            name="weight",
        )
        self.bias = Parameter(np.zeros(out_features), name="bias") if bias else None
        self._cache = None

    def forward(self, x):
        out, self._cache = F.linear_forward(
            x, self.weight.data, self.bias.data if self.bias is not None else None
        )
        return out

    def backward(self, grad_out):
        grad_x, grad_w, grad_b = F.linear_backward(grad_out, self._cache)
        self.weight.accumulate_grad(grad_w)
        if self.bias is not None and grad_b is not None:
            self.bias.accumulate_grad(grad_b)
        return grad_x

    def macs(self) -> int:
        return self.in_features * self.out_features


class BatchNorm2d(Module):
    """Per-channel batch normalisation over NCHW inputs.

    Exposes ``freeze()`` to stop updating running statistics and learned
    affine parameters — the paper freezes batch-norm after the first QAT
    epoch (Section 6).
    """

    def __init__(self, channels: int, eps: float = 1e-5, momentum: float = 0.1):
        super().__init__()
        self.channels = channels
        self.eps = eps
        self.momentum = momentum
        self.gamma = Parameter(np.ones(channels), name="gamma")
        self.beta = Parameter(np.zeros(channels), name="beta")
        self._buffers = {
            "running_mean": np.zeros(channels),
            "running_var": np.ones(channels),
        }
        self.running_mean = self._buffers["running_mean"]
        self.running_var = self._buffers["running_var"]
        self.frozen = False
        self._cache = None

    def freeze(self) -> None:
        """Freeze running statistics and affine parameters (paper §6)."""
        self.frozen = True
        self.gamma.requires_grad = False
        self.beta.requires_grad = False

    def forward(self, x):
        if self.training and not self.frozen:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            m = self.momentum
            self._buffers["running_mean"] = (1 - m) * self._buffers["running_mean"] + m * mean
            self._buffers["running_var"] = (1 - m) * self._buffers["running_var"] + m * var
            self.running_mean = self._buffers["running_mean"]
            self.running_var = self._buffers["running_var"]
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]
        std = np.sqrt(var + self.eps)
        x_hat = (x - mean.reshape(1, -1, 1, 1)) / std.reshape(1, -1, 1, 1)
        out = self.gamma.data.reshape(1, -1, 1, 1) * x_hat + self.beta.data.reshape(1, -1, 1, 1)
        self._cache = {"x_hat": x_hat, "std": std, "batch_stats": self.training and not self.frozen}
        return out

    def backward(self, grad_out):
        x_hat = self._cache["x_hat"]
        std = self._cache["std"]
        n, c, h, w = grad_out.shape
        m = n * h * w
        grad_gamma = (grad_out * x_hat).sum(axis=(0, 2, 3))
        grad_beta = grad_out.sum(axis=(0, 2, 3))
        self.gamma.accumulate_grad(grad_gamma)
        self.beta.accumulate_grad(grad_beta)
        g = self.gamma.data.reshape(1, -1, 1, 1)
        if self._cache["batch_stats"]:
            # Full batch-norm backward through the batch statistics.
            dxhat = grad_out * g
            grad_x = (
                dxhat
                - dxhat.mean(axis=(0, 2, 3), keepdims=True)
                - x_hat * (dxhat * x_hat).mean(axis=(0, 2, 3), keepdims=True)
            ) / std.reshape(1, -1, 1, 1)
        else:
            # Running statistics are constants w.r.t. the input.
            grad_x = grad_out * g / std.reshape(1, -1, 1, 1)
        return grad_x

    def channel_scale_shift(self):
        """Return the effective per-channel (scale, shift) of the BN transform.

        The ICN conversion (Eq. 3–4) needs ``gamma/sigma`` and
        ``beta - gamma*mu/sigma`` computed from the frozen running stats.
        """
        std = np.sqrt(self._buffers["running_var"] + self.eps)
        scale = self.gamma.data / std
        shift = self.beta.data - self.gamma.data * self._buffers["running_mean"] / std
        return scale, shift


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x):
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_out):
        return grad_out * self._mask


class ReLU6(Module):
    """ReLU clipped at 6 (the MobileNet default activation)."""

    def __init__(self):
        super().__init__()
        self._mask = None

    def forward(self, x):
        self._mask = (x > 0) & (x < 6.0)
        return np.clip(x, 0.0, 6.0)

    def backward(self, grad_out):
        return grad_out * self._mask


class AvgPool2d(Module):
    """Average pooling with square kernel."""

    def __init__(self, kernel_size: int, stride: Optional[int] = None):
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self._cache = None

    def forward(self, x):
        out, self._cache = F.avg_pool2d_forward(x, self.kernel_size, self.stride)
        return out

    def backward(self, grad_out):
        return F.avg_pool2d_backward(grad_out, self._cache)


class GlobalAvgPool2d(Module):
    """Global average pooling to a 1x1 spatial map."""

    def __init__(self):
        super().__init__()
        self._cache = None

    def forward(self, x):
        out, self._cache = F.global_avg_pool2d_forward(x)
        return out

    def backward(self, grad_out):
        return F.global_avg_pool2d_backward(grad_out, self._cache)


class Flatten(Module):
    """Flatten all non-batch dimensions."""

    def __init__(self):
        super().__init__()
        self._shape = None

    def forward(self, x):
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out):
        return grad_out.reshape(self._shape)


class Identity(Module):
    """Pass-through module (useful as a placeholder)."""

    def forward(self, x):
        return x

    def backward(self, grad_out):
        return grad_out
