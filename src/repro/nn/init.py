"""Weight initialisation helpers (deterministic given an explicit RNG)."""

from __future__ import annotations

import numpy as np


def kaiming_normal(shape, fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialisation for ReLU networks."""
    std = np.sqrt(2.0 / max(fan_in, 1))
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape, fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialisation."""
    limit = np.sqrt(6.0 / max(fan_in + fan_out, 1))
    return rng.uniform(-limit, limit, size=shape)


def conv_fan_in(weight_shape) -> int:
    """Fan-in of a convolution kernel (C_in * kh * kw)."""
    _, c_in, kh, kw = weight_shape
    return c_in * kh * kw
