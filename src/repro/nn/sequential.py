"""Sequential container: ordered chain of modules with chained backward."""

from __future__ import annotations

from typing import Iterator, List

from repro.nn.module import Module


class Sequential(Module):
    """A container executing its children in order.

    The backward pass walks the children in reverse, which is sufficient
    for the strictly sequential MobileNetV1-style networks used here.
    """

    def __init__(self, *modules: Module):
        super().__init__()
        self._order: List[str] = []
        for i, m in enumerate(modules):
            name = f"layer{i}"
            self.register_module(name, m)
            self._order.append(name)

    def append(self, module: Module) -> "Sequential":
        name = f"layer{len(self._order)}"
        self.register_module(name, module)
        self._order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, idx: int) -> Module:
        return self._modules[self._order[idx]]

    def __iter__(self) -> Iterator[Module]:
        for name in self._order:
            yield self._modules[name]

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x

    def backward(self, grad_out):
        for name in reversed(self._order):
            grad_out = self._modules[name].backward(grad_out)
        return grad_out
