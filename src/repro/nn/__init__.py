"""Minimal neural-network substrate used by the quantization flow.

This package provides the training/inference framework the paper assumes
(PyTorch in the original work): NCHW tensors, convolutional / depthwise /
linear / batch-norm layers with explicit forward and backward passes,
losses and optimizers.  Everything is plain numpy and vectorised (im2col
convolutions), which is sufficient for quantization-aware training of the
small and medium networks exercised in the tests, examples and benches.
"""

from repro.nn.tensor import Parameter
from repro.nn.module import Module
from repro.nn.sequential import Sequential
from repro.nn.layers import (
    Conv2d,
    DepthwiseConv2d,
    Linear,
    BatchNorm2d,
    ReLU,
    ReLU6,
    AvgPool2d,
    GlobalAvgPool2d,
    Flatten,
    Identity,
)
from repro.nn.loss import CrossEntropyLoss, softmax
from repro.nn.optim import SGD, Adam

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Conv2d",
    "DepthwiseConv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Identity",
    "CrossEntropyLoss",
    "softmax",
    "SGD",
    "Adam",
]
