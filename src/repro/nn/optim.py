"""Optimizers: SGD with momentum and Adam (the paper trains with Adam)."""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.nn.tensor import Parameter


class Optimizer:
    """Base optimizer over a list of :class:`Parameter` objects."""

    def __init__(self, params: List[Parameter], lr: float):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = [p for p in params]
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def set_lr(self, lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: Dict[int, np.ndarray] = {}

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                v = self._velocity.get(i)
                if v is None:
                    v = np.zeros_like(p.data)
                v = self.momentum * v + grad
                self._velocity[i] = v
                update = v
            else:
                update = grad
            p.data -= self.lr * update


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba); the paper's QAT uses lr=1e-4."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas=(0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: Dict[int, np.ndarray] = {}
        self._v: Dict[int, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for i, p in enumerate(self.params):
            if not p.requires_grad:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m = self._m.get(i)
            v = self._v.get(i)
            if m is None:
                m = np.zeros_like(p.data)
                v = np.zeros_like(p.data)
            m = b1 * m + (1 - b1) * grad
            v = b2 * v + (1 - b2) * grad * grad
            self._m[i] = m
            self._v[i] = v
            m_hat = m / (1 - b1 ** self._t)
            v_hat = v / (1 - b2 ** self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
