"""Plain-text table rendering used by the benches and examples."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence], title: str = "") -> str:
    """Render a list of rows as an aligned plain-text table."""
    str_rows: List[List[str]] = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
