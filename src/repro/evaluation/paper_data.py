"""Numbers reported by the paper, used as reference points by the benches.

These values are transcribed from the paper's tables so every benchmark
can print a "paper vs. reproduced" comparison (EXPERIMENTS.md records the
same pairs).  They are *reference data*, never inputs to the models.
"""

from __future__ import annotations

# Table 2 — Integer-only MobilenetV1_224_1.0.
TABLE2 = {
    "Full-precision": {"top1": 70.9, "weight_mb": 16.27},
    "PL+FB INT8": {"top1": 70.1, "weight_mb": 4.06},
    "PL+FB INT4": {"top1": 0.1, "weight_mb": 2.05},
    "PL+ICN INT4": {"top1": 61.75, "weight_mb": 2.10},
    "PC+ICN INT4": {"top1": 66.41, "weight_mb": 2.12},
    "PC+Thresholds INT4": {"top1": 66.46, "weight_mb": 2.35},
}

# Table 3 — mixed-precision comparison at MRO = 1 MB.
TABLE3 = {
    "MobilenetV1_224_0.5 MixQ-PC-ICN": {"top1": 62.9, "constraint": "1MB RO + 512kB RW"},
    "MobilenetV1_192_0.5 MixQ-PC-ICN": {"top1": 60.2, "constraint": "1MB RO + 256kB RW"},
    "MobilenetV1_224_0.5 INT8 PL+FB [11]": {"top1": 60.7, "constraint": "1.34 MB"},
    "MobilenetV1_224_0.25 INT8 PL+FB [11]": {"top1": 48.0, "constraint": "0.47 MB"},
}

# Table 4 (appendix) — Top-1 of every MobileNetV1 configuration under
# MRO = 2 MB, MRW = 512 kB.  Keys are the paper's "<resolution>_<alpha>"
# labels; values are (MixQ-PL, MixQ-PC-ICN) Top-1 percentages.
TABLE4 = {
    "224_1.0": (59.61, 64.29),
    "224_0.75": (67.06, 68.02),
    "224_0.5": (63.12, 63.48),
    "224_0.25": (50.76, 51.70),
    "192_1.0": (61.94, 65.88),
    "192_0.75": (64.67, 67.23),
    "192_0.5": (59.50, 62.93),
    "192_0.25": (48.12, 49.75),
    "160_1.0": (59.49, 64.46),
    "160_0.75": (64.75, 65.70),
    "160_0.5": (59.55, 61.25),
    "160_0.25": (44.77, 47.79),
    "128_1.0": (49.44, 49.44),
    "128_0.75": (60.44, 63.53),
    "128_0.5": (54.20, 58.22),
    "128_0.25": (43.45, 44.68),
}

# Figure 2 — qualitative latency anchors (§6): the fastest configuration
# (128_0.25, homogeneous 8 bit) runs at ~10 fps on the 400 MHz STM32H7 and
# the most accurate (224_0.75 PC+ICN) is about 20x slower; PC adds ~20 %.
FIGURE2_ANCHORS = {
    "fastest_fps": 10.0,
    "fastest_config": "128_0.25",
    "slowdown_most_accurate": 20.0,
    "most_accurate_config": "224_0.75",
    "pc_overhead_factor": 1.2,
}

# §6 headline claim: 68 % Top-1 on a 2 MB / 512 kB device, 8 % above the
# best 8-bit integer-only deployment that fits the same device.
HEADLINE = {"best_top1": 68.0, "int8_gap": 8.0}
