"""Pareto-frontier analysis of accuracy-latency trade-offs (Figure 2)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List


@dataclass(frozen=True)
class ParetoPoint:
    """One configuration in the accuracy-latency plane."""

    label: str
    latency_cycles: float
    top1: float
    method: str = ""

    def dominates(self, other: "ParetoPoint") -> bool:
        """True when this point is at least as fast and as accurate, and
        strictly better on at least one axis."""
        no_worse = (
            self.latency_cycles <= other.latency_cycles and self.top1 >= other.top1
        )
        strictly_better = (
            self.latency_cycles < other.latency_cycles or self.top1 > other.top1
        )
        return no_worse and strictly_better


def pareto_frontier(points: Iterable[ParetoPoint]) -> List[ParetoPoint]:
    """Non-dominated subset, sorted by latency (ascending)."""
    pts = list(points)
    frontier = [
        p for p in pts if not any(q.dominates(p) for q in pts if q is not p)
    ]
    return sorted(frontier, key=lambda p: p.latency_cycles)
