"""ImageNet Top-1 accuracy surrogate for MobileNetV1 quantization policies.

Training the full MobileNetV1 family on ImageNet is outside the scope of
this offline reproduction (the paper uses 4 P100 GPUs for 8 hours per
configuration).  The benches that regenerate Tables 2-4 and Figure 2 need
an accuracy axis, so this module provides an explicit, documented
surrogate:

* the full-precision baselines are the published TF-slim MobileNetV1
  Top-1 accuracies (the same checkpoints the paper starts from);
* a quantization policy incurs a per-layer degradation that depends on
  the weight and activation bit widths, the layer kind (depthwise layers
  and the first/last layers are more sensitive), and whether weights are
  quantized per-channel (PC) or per-layer (PL) — per-layer costs roughly
  2-2.5x more accuracy at 4 bits, consistent with the paper's Table 2;
* the PL+FB strategy below 8 bits reproduces the training collapse the
  paper reports (Table 2): the surrogate returns chance-level accuracy.

The sensitivity constants are calibrated once against the paper's Table 2
(uniform INT8/INT4 points) and are then applied unchanged to every other
experiment, so all comparisons produced by the benches are internally
consistent.  EXPERIMENTS.md records paper-vs-surrogate numbers for every
table.  The *measured* small-scale accuracy claims (ICN lossless
conversion, PL+FB collapse) come from real QAT runs in the test suite and
``benchmarks/bench_e2e_icn_loss.py``, not from this surrogate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.core.policy import QuantMethod, QuantPolicy
from repro.models.model_zoo import NetworkSpec

#: Published full-precision Top-1 accuracy of the TF-slim MobileNetV1
#: checkpoints, indexed by (resolution, width multiplier).
FP_TOP1_ACCURACY: Dict[Tuple[int, float], float] = {
    (224, 1.0): 70.9, (192, 1.0): 70.0, (160, 1.0): 68.0, (128, 1.0): 65.2,
    (224, 0.75): 68.4, (192, 0.75): 67.2, (160, 0.75): 65.3, (128, 0.75): 62.1,
    (224, 0.5): 63.3, (192, 0.5): 61.7, (160, 0.5): 59.1, (128, 0.5): 56.3,
    (224, 0.25): 49.8, (192, 0.25): 47.7, (160, 0.25): 45.5, (128, 0.25): 41.5,
}

#: Chance-level Top-1 on the 1000-class task, returned when training collapses.
CHANCE_TOP1 = 0.1


@dataclass(frozen=True)
class QuantSensitivity:
    """Degradation constants of the accuracy surrogate (percent Top-1).

    ``weight_penalty[q]`` / ``act_penalty[q]`` are the per-layer penalties
    of storing weights / activations at ``q`` bits under per-channel
    quantization; ``pl_weight_factor`` scales the weight penalties when
    per-layer ranges are used; ``kind_factor`` scales a layer's weight
    penalty by its kind (depthwise filters have very few weights per
    channel and quantize worse); ``first_last_factor`` further scales the
    first convolution and the classifier.
    """

    weight_penalty: Dict[int, float] = field(
        default_factory=lambda: {8: 0.01, 4: 0.10, 2: 1.8}
    )
    act_penalty: Dict[int, float] = field(
        default_factory=lambda: {8: 0.01, 4: 0.05, 2: 1.2}
    )
    pl_weight_factor: float = 2.5
    kind_factor: Dict[str, float] = field(
        default_factory=lambda: {"conv": 1.0, "pw": 1.0, "dw": 1.5, "fc": 0.8}
    )
    first_last_factor: float = 2.0


class AccuracyModel:
    """Predict ImageNet Top-1 of a MobileNetV1 config under a policy."""

    def __init__(self, sensitivity: QuantSensitivity | None = None):
        self.sensitivity = sensitivity or QuantSensitivity()

    # -- baselines -------------------------------------------------------
    def full_precision_top1(self, spec: NetworkSpec) -> float:
        key = (spec.resolution, spec.width_multiplier)
        if key not in FP_TOP1_ACCURACY:
            raise KeyError(f"no published full-precision baseline for {key}")
        return FP_TOP1_ACCURACY[key]

    # -- degradation -----------------------------------------------------
    def degradation(self, spec: NetworkSpec, policy: QuantPolicy) -> float:
        """Total predicted Top-1 degradation (percentage points)."""
        s = self.sensitivity
        if policy.method.folds_batchnorm and any(lp.q_w < 8 for lp in policy.layers):
            # PL+FB below 8 bit: the folding inflates per-layer weight
            # ranges and QAT collapses (paper Table 2, PL+FB INT4).
            return self.full_precision_top1(spec) - CHANCE_TOP1
        total = 0.0
        n = len(policy)
        for i, (layer, lp) in enumerate(zip(spec.layers, policy.layers)):
            kind = s.kind_factor.get(layer.kind, 1.0)
            edge = s.first_last_factor if i in (0, n - 1) else 1.0
            # Per-layer ranges hurt markedly only below 8 bit (Table 2:
            # PL+FB INT8 is near-lossless, PL+ICN INT4 loses ~2x more than
            # PC+ICN INT4).
            pl_factor = (
                s.pl_weight_factor
                if (not policy.method.per_channel and lp.q_w < 8)
                else 1.0
            )
            total += s.weight_penalty[lp.q_w] * kind * edge * pl_factor
            if i < n - 1:  # the classifier output is not re-quantized
                total += s.act_penalty[lp.q_out]
        return total

    def predict_top1(self, spec: NetworkSpec, policy: QuantPolicy) -> float:
        """Predicted Top-1 accuracy (percent) of the deployed network."""
        fp = self.full_precision_top1(spec)
        return max(fp - self.degradation(spec, policy), CHANCE_TOP1)

    def predict_uniform(self, spec: NetworkSpec, method: QuantMethod, bits: int) -> float:
        """Top-1 under a homogeneous ``bits``-bit policy (Table 2 rows)."""
        policy = QuantPolicy.uniform(spec, method=method, bits=bits)
        return self.predict_top1(spec, policy)
