"""One entry point per paper table/figure (the per-experiment index of
DESIGN.md).  Each function returns plain data structures; the benchmark
scripts render and time them, and EXPERIMENTS.md records the outputs next
to the paper's numbers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.memory_model import MemoryModel, layer_extra_params_bytes, table1_row
from repro.core.mixed_precision import search_mixed_precision
from repro.core.policy import QuantMethod, QuantPolicy
from repro.evaluation.accuracy_model import AccuracyModel
from repro.evaluation.pareto import ParetoPoint, pareto_frontier
from repro.mcu.device import MB, KB, STM32H7, MCUDevice
from repro.mcu.latency import CMSISNNCostModel, DEFAULT_COST_MODEL, network_cycles
from repro.models.model_zoo import (
    all_mobilenet_configs,
    mobilenet_v1_spec,
    NetworkSpec,
)

#: Deployment strategies plotted in Figure 2 ("MixQ-PL" uses per-layer
#: quantization with ICN where sub-byte precision is required; see §6).
FIGURE2_METHODS: Dict[str, QuantMethod] = {
    "MixQ-PL": QuantMethod.PL_ICN,
    "MixQ-PC-ICN": QuantMethod.PC_ICN,
}


# ----------------------------------------------------------------------
# Table 1 — memory requirements of a quantized convolutional layer
# ----------------------------------------------------------------------
def table1(layer_index: int = 14, spec: Optional[NetworkSpec] = None) -> Dict:
    """Element counts (Table 1) for one representative layer of
    MobileNetV1_224_1.0 and the resulting per-method byte totals."""
    spec = spec or mobilenet_v1_spec(224, 1.0)
    layer = spec.layers[layer_index]
    rows = {}
    memory = MemoryModel(spec)
    for method in QuantMethod:
        counts = table1_row(layer, method, q_out=4)
        policy = QuantPolicy.uniform(spec, method=method, bits=4)
        rows[method.value] = {
            "counts": counts,
            "layer_extra_bytes": layer_extra_params_bytes(layer, method, q_out=4),
            "network_ro_bytes": memory.ro_bytes(policy),
        }
    return {"layer": layer.name, "spec": spec.name, "rows": rows}


# ----------------------------------------------------------------------
# Table 2 — integer-only MobileNetV1_224_1.0
# ----------------------------------------------------------------------
@dataclass
class Table2Row:
    label: str
    top1: float
    weight_mb: float


def table2(accuracy_model: Optional[AccuracyModel] = None) -> List[Table2Row]:
    """Uniform INT8/INT4 deployments of MobileNetV1_224_1.0 (Table 2)."""
    spec = mobilenet_v1_spec(224, 1.0)
    model = accuracy_model or AccuracyModel()
    memory = MemoryModel(spec)
    rows: List[Table2Row] = [
        Table2Row("Full-precision", model.full_precision_top1(spec), spec.total_weights * 4 / MB)
    ]
    cases = [
        ("PL+FB INT8", QuantMethod.PL_FB, 8),
        ("PL+FB INT4", QuantMethod.PL_FB, 4),
        ("PL+ICN INT4", QuantMethod.PL_ICN, 4),
        ("PC+ICN INT4", QuantMethod.PC_ICN, 4),
        ("PC+Thresholds INT4", QuantMethod.PC_THRESHOLDS, 4),
    ]
    for label, method, bits in cases:
        policy = QuantPolicy.uniform(spec, method=method, bits=bits)
        rows.append(
            Table2Row(
                label,
                model.predict_top1(spec, policy),
                memory.ro_bytes(policy) / MB,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Figure 2 — accuracy-latency trade-off on the STM32H7
# ----------------------------------------------------------------------
@dataclass
class TradeoffPoint:
    """One network configuration deployed with one strategy."""

    label: str
    method: str
    resolution: int
    width_multiplier: float
    top1: float
    cycles: float
    fps: float
    ro_bytes: int
    rw_peak_bytes: int
    feasible: bool
    policy: QuantPolicy


def figure2(
    device: MCUDevice = STM32H7,
    cost_model: CMSISNNCostModel = DEFAULT_COST_MODEL,
    accuracy_model: Optional[AccuracyModel] = None,
    num_classes: int = 1000,
) -> Dict:
    """All 16 MobileNetV1 configurations under both Figure-2 strategies."""
    acc_model = accuracy_model or AccuracyModel()
    points: List[TradeoffPoint] = []
    for spec in all_mobilenet_configs(num_classes=num_classes):
        for method_label, method in FIGURE2_METHODS.items():
            policy = search_mixed_precision(
                spec, device.flash_bytes, device.ram_bytes, method=method, strict=False
            )
            memory = MemoryModel(spec)
            latency = network_cycles(spec, policy, cost_model)
            points.append(
                TradeoffPoint(
                    label=spec.label,
                    method=method_label,
                    resolution=spec.resolution,
                    width_multiplier=spec.width_multiplier,
                    top1=acc_model.predict_top1(spec, policy),
                    cycles=latency.total_cycles,
                    fps=device.cycles_to_fps(latency.total_cycles),
                    ro_bytes=memory.ro_bytes(policy),
                    rw_peak_bytes=memory.rw_peak_bytes(policy),
                    feasible=policy.feasible,
                    policy=policy,
                )
            )
    pareto_points = [
        ParetoPoint(f"{p.label} {p.method}", p.cycles, p.top1, p.method)
        for p in points
        if p.feasible
    ]
    return {
        "device": device.name,
        "points": points,
        "pareto": pareto_frontier(pareto_points),
    }


# ----------------------------------------------------------------------
# Table 3 — comparison at MRO = 1 MB
# ----------------------------------------------------------------------
@dataclass
class Table3Row:
    label: str
    method: str
    top1: float
    ro_mb: float
    rw_kb: float
    feasible: bool


def table3(accuracy_model: Optional[AccuracyModel] = None) -> List[Table3Row]:
    """Mixed-precision deployments under a 1 MB read-only budget."""
    acc_model = accuracy_model or AccuracyModel()
    rows: List[Table3Row] = []
    cases = [
        ("MobilenetV1_224_0.5", 224, 0.5, 1 * MB, 512 * KB, QuantMethod.PC_ICN, "MixQ-PC-ICN"),
        ("MobilenetV1_192_0.5", 192, 0.5, 1 * MB, 256 * KB, QuantMethod.PC_ICN, "MixQ-PC-ICN"),
    ]
    for label, res, wm, ro_budget, rw_budget, method, method_label in cases:
        spec = mobilenet_v1_spec(res, wm)
        policy = search_mixed_precision(spec, ro_budget, rw_budget, method=method, strict=False)
        memory = MemoryModel(spec)
        rows.append(
            Table3Row(
                label=label,
                method=method_label,
                top1=acc_model.predict_top1(spec, policy),
                ro_mb=memory.ro_bytes(policy) / MB,
                rw_kb=memory.rw_peak_bytes(policy) / KB,
                feasible=policy.feasible,
            )
        )
    # INT8 PL+FB reference points ([11]) for the same family.
    for label, res, wm in [("MobilenetV1_224_0.5", 224, 0.5), ("MobilenetV1_224_0.25", 224, 0.25)]:
        spec = mobilenet_v1_spec(res, wm)
        policy = QuantPolicy.uniform(spec, method=QuantMethod.PL_FB, bits=8)
        memory = MemoryModel(spec)
        rows.append(
            Table3Row(
                label=label,
                method="INT8 PL+FB [11]",
                top1=acc_model.predict_top1(spec, policy),
                ro_mb=memory.ro_bytes(policy) / MB,
                rw_kb=memory.rw_peak_bytes(policy) / KB,
                feasible=memory.ro_bytes(policy) <= 2 * MB,
            )
        )
    return rows


# ----------------------------------------------------------------------
# Measured integer inference (compiled engine, bounded-memory sweeps)
# ----------------------------------------------------------------------
def evaluate_integer_network(
    net,
    x: np.ndarray,
    labels: Optional[np.ndarray] = None,
    batch_size: int = 64,
    compiled: bool = True,
    backend: str = "auto",
) -> Dict:
    """Measured (not modeled) inference of an ``IntegerNetwork`` sweep.

    Unlike the analytical table/figure entry points above, this actually
    executes the deployment graph on ``x`` (N, C, H, W real images).  With
    ``compiled=True`` the sweep streams through a compiled
    :class:`~repro.inference.plan.ExecutionPlan` in ``batch_size`` tiles,
    so peak memory is bounded by one tile regardless of the sweep size;
    ``compiled=False`` keeps the interpreted int64 reference path for
    cross-checks.  Returns predictions and, when ``labels`` is given, the
    measured top-1.
    """
    x = np.asarray(x)
    if compiled:
        from repro.runtime import CompileOptions

        plan = net.compile(CompileOptions(backend=backend))
        logits = plan.run_batched(x, batch_size=batch_size)
    elif x.shape[0] <= batch_size:
        logits = net.forward(x)
    else:
        logits = np.concatenate(
            [net.forward(x[i:i + batch_size]) for i in range(0, x.shape[0], batch_size)],
            axis=0,
        )
    preds = np.argmax(logits, axis=1)
    out: Dict = {
        "num_images": int(x.shape[0]),
        "batch_size": int(batch_size),
        "compiled": bool(compiled),
        "predictions": preds,
    }
    if labels is not None:
        out["top1"] = float(np.mean(preds == np.asarray(labels)))
    return out


# ----------------------------------------------------------------------
# Figure 3 / Table 4 — per-tensor bit widths and Top-1 of every config
# ----------------------------------------------------------------------
def figure3(device: MCUDevice = STM32H7, num_classes: int = 1000) -> Dict[str, Dict[str, QuantPolicy]]:
    """Per-tensor bit precision chosen by the search for every config."""
    result: Dict[str, Dict[str, QuantPolicy]] = {}
    for spec in all_mobilenet_configs(num_classes=num_classes):
        per_method = {}
        for method_label, method in FIGURE2_METHODS.items():
            per_method[method_label] = search_mixed_precision(
                spec, device.flash_bytes, device.ram_bytes, method=method, strict=False
            )
        result[spec.label] = per_method
    return result


def table4(
    device: MCUDevice = STM32H7,
    accuracy_model: Optional[AccuracyModel] = None,
) -> Dict[str, Tuple[float, float]]:
    """Top-1 of (MixQ-PL, MixQ-PC-ICN) for every configuration (Table 4)."""
    acc_model = accuracy_model or AccuracyModel()
    fig = figure2(device=device, accuracy_model=acc_model)
    by_config: Dict[str, Dict[str, float]] = {}
    for p in fig["points"]:
        by_config.setdefault(p.label, {})[p.method] = p.top1
    return {
        label: (vals.get("MixQ-PL", 0.0), vals.get("MixQ-PC-ICN", 0.0))
        for label, vals in by_config.items()
    }
