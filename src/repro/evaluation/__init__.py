"""Evaluation utilities: the ImageNet-accuracy surrogate, Pareto analysis,
table rendering and one entry point per paper table/figure."""

from repro.evaluation.accuracy_model import (
    QuantSensitivity,
    AccuracyModel,
    FP_TOP1_ACCURACY,
)
from repro.evaluation.pareto import pareto_frontier, ParetoPoint
from repro.evaluation.tables import render_table
from repro.evaluation import paper_data
from repro.evaluation import experiments

__all__ = [
    "QuantSensitivity",
    "AccuracyModel",
    "FP_TOP1_ACCURACY",
    "pareto_frontier",
    "ParetoPoint",
    "render_table",
    "paper_data",
    "experiments",
]
