"""Synthetic data substrate standing in for ImageNet (see DESIGN.md §2)."""

from repro.data.synthetic import SyntheticImageDataset, make_synthetic_classification
from repro.data.calibration import calibration_batches, collect_activation_ranges

__all__ = [
    "SyntheticImageDataset",
    "make_synthetic_classification",
    "calibration_batches",
    "collect_activation_ranges",
]
