"""Calibration helpers: activation-range statistics over a calibration set.

The paper determines activation ranges either at training time (PACT) or
against a calibration dataset (§3).  These helpers implement the latter
path, which is also used to initialise the PACT clipping bounds before
quantization-aware retraining.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

import numpy as np


def calibration_batches(
    x: np.ndarray, batch_size: int = 32, max_batches: int = 8
) -> Iterable[np.ndarray]:
    """Yield up to ``max_batches`` deterministic batches from ``x``."""
    n = min(len(x), batch_size * max_batches)
    for start in range(0, n, batch_size):
        yield x[start : start + batch_size]


def collect_activation_ranges(
    model,
    x_calib: np.ndarray,
    batch_size: int = 32,
    max_batches: int = 8,
    percentile: float = 99.9,
) -> List[Dict[str, float]]:
    """Run calibration data through a model and record per-block output ranges.

    ``model`` must expose ``features`` (a sequential of blocks); the return
    value has one dict per block with ``min``, ``max`` and the requested
    upper ``percentile`` of the block's pre-quantization output — the
    percentile is the usual robust initialiser of the PACT alpha.
    """
    blocks = list(model.features)
    mins = [np.inf] * len(blocks)
    maxs = [-np.inf] * len(blocks)
    samples: List[List[np.ndarray]] = [[] for _ in blocks]

    was_training = model.training
    model.eval()
    for batch in calibration_batches(x_calib, batch_size, max_batches):
        h = batch
        for i, block in enumerate(blocks):
            h = block(h)
            mins[i] = min(mins[i], float(h.min()))
            maxs[i] = max(maxs[i], float(h.max()))
            flat = h.reshape(-1)
            take = min(flat.size, 4096)
            samples[i].append(flat[:: max(flat.size // take, 1)][:take])
    model.train(was_training)

    stats = []
    for i in range(len(blocks)):
        pooled = np.concatenate(samples[i]) if samples[i] else np.zeros(1)
        stats.append(
            {
                "min": mins[i],
                "max": maxs[i],
                "percentile": float(np.percentile(pooled, percentile)),
            }
        )
    return stats
