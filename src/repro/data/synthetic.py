"""Synthetic image-classification dataset ("SynthImageNet").

The paper trains and evaluates on ImageNet, which is neither available
offline nor trainable at laptop scale.  This generator produces a
deterministic, controllable-difficulty classification task with the same
interface a real dataset loader would have: NCHW float images in [0, 1]
and integer labels.  Each class is defined by a smooth spatial prototype
(a mixture of low-frequency sinusoidal patterns per channel); samples are
prototypes plus i.i.d. noise and a random global gain, so accuracy
degrades smoothly as quantization noise grows — the property the QAT
experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass
class SyntheticImageDataset:
    """In-memory train/test split of the synthetic task."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    num_classes: int

    @property
    def resolution(self) -> int:
        return self.x_train.shape[2]

    @property
    def channels(self) -> int:
        return self.x_train.shape[1]

    def batches(self, batch_size: int, rng: np.random.Generator, train: bool = True):
        """Yield shuffled (x, y) minibatches from the chosen split."""
        x, y = (self.x_train, self.y_train) if train else (self.x_test, self.y_test)
        order = rng.permutation(len(x))
        for start in range(0, len(x), batch_size):
            idx = order[start : start + batch_size]
            yield x[idx], y[idx]


def _class_prototypes(
    num_classes: int, channels: int, resolution: int, rng: np.random.Generator
) -> np.ndarray:
    """Smooth per-class prototype images built from low-frequency waves."""
    yy, xx = np.meshgrid(
        np.linspace(0, 2 * np.pi, resolution),
        np.linspace(0, 2 * np.pi, resolution),
        indexing="ij",
    )
    protos = np.zeros((num_classes, channels, resolution, resolution))
    for k in range(num_classes):
        for c in range(channels):
            fy, fx = rng.uniform(0.5, 3.0, size=2)
            phase = rng.uniform(0, 2 * np.pi, size=2)
            amp = rng.uniform(0.5, 1.0)
            protos[k, c] = amp * (
                np.sin(fy * yy + phase[0]) * np.cos(fx * xx + phase[1])
            )
    # Normalise prototypes to [0, 1].
    protos -= protos.min(axis=(2, 3), keepdims=True)
    maxima = protos.max(axis=(2, 3), keepdims=True)
    protos /= np.where(maxima > 0, maxima, 1.0)
    return protos


def make_synthetic_classification(
    num_classes: int = 10,
    resolution: int = 16,
    channels: int = 3,
    train_per_class: int = 64,
    test_per_class: int = 16,
    noise: float = 0.15,
    seed: int = 0,
) -> SyntheticImageDataset:
    """Build a deterministic synthetic classification dataset.

    Parameters
    ----------
    noise:
        Standard deviation of the additive Gaussian noise; larger values
        make the task harder (useful for testing graceful degradation).
    """
    if num_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    protos = _class_prototypes(num_classes, channels, resolution, rng)

    def _split(per_class: int) -> Tuple[np.ndarray, np.ndarray]:
        xs, ys = [], []
        for k in range(num_classes):
            gain = rng.uniform(0.7, 1.0, size=(per_class, 1, 1, 1))
            eps = rng.normal(0, noise, size=(per_class, channels, resolution, resolution))
            xs.append(np.clip(gain * protos[k] + eps, 0.0, 1.0))
            ys.append(np.full(per_class, k, dtype=np.int64))
        x = np.concatenate(xs, axis=0)
        y = np.concatenate(ys, axis=0)
        order = rng.permutation(len(x))
        return x[order], y[order]

    x_train, y_train = _split(train_per_class)
    x_test, y_test = _split(test_per_class)
    return SyntheticImageDataset(x_train, y_train, x_test, y_test, num_classes)
