"""Command line interface for the deployment flow.

Installed as the ``repro-mcu`` console script::

    repro-mcu search  --resolution 192 --width 0.75 --flash-mb 2 --ram-kb 512
    repro-mcu deploy  --resolution 224 --width 0.75 --device stm32h7 \
                      --save-artifact model.artifact
    repro-mcu run     model.artifact --batch 4 --profile
    repro-mcu serve   model.artifact --port 8707 --max-batch 8
    repro-mcu serve   --fleet artifacts/ --memory-budget-kb 1024
    repro-mcu check   model.artifact --self
    repro-mcu sweep   --device stm32h7 --method PC+ICN
    repro-mcu table   table2

``search`` prints the per-tensor bit assignment (and optionally writes it
as JSON), ``deploy`` adds the latency/memory report for a device preset
(and can materialise + save a servable session artifact), ``run`` loads
a saved artifact and serves it (the quantize → compile → serve round
trip of :mod:`repro.runtime`), ``serve`` exposes an artifact over the
fault-tolerant micro-batching HTTP front end of :mod:`repro.serving`,
``check`` statically verifies a saved artifact's compiled plan (and with
``--self`` lints the repo) without executing any inference, ``sweep``
reproduces the Figure-2 style family sweep, and ``table`` regenerates
one of the paper's tables on the terminal.

Operational errors (missing or corrupt artifacts, bad input files) exit
nonzero with a one-line ``error:`` message — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

import numpy as np

from repro.core.memory_model import MemoryModel
from repro.core.mixed_precision import search_mixed_precision
from repro.core.policy import QuantMethod, QuantPolicy
from repro.evaluation import experiments, paper_data
from repro.evaluation.accuracy_model import AccuracyModel
from repro.evaluation.tables import render_table
from repro.mcu.deploy import deploy
from repro.mcu.device import KB, MB, STM32F4, STM32F7, STM32H7, STM32L4, MCUDevice
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import ArtifactError, Session, pipeline

DEVICE_PRESETS = {
    "stm32h7": STM32H7,
    "stm32f7": STM32F7,
    "stm32f4": STM32F4,
    "stm32l4": STM32L4,
}


def _resolve_device(args: argparse.Namespace) -> MCUDevice:
    device = DEVICE_PRESETS[args.device]
    flash = int(args.flash_mb * MB) if args.flash_mb is not None else None
    ram = args.ram_kb * KB if args.ram_kb is not None else None
    if flash is not None or ram is not None:
        device = device.with_budgets(flash_bytes=flash, ram_bytes=ram)
    return device


def _add_network_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--resolution", type=int, default=224,
                        help="input resolution (128/160/192/224)")
    parser.add_argument("--width", type=float, default=1.0,
                        help="width multiplier (0.25/0.5/0.75/1.0)")


def _add_device_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--device", choices=sorted(DEVICE_PRESETS), default="stm32h7")
    parser.add_argument("--flash-mb", type=float, default=None,
                        help="override the device Flash budget in MB")
    parser.add_argument("--ram-kb", type=int, default=None,
                        help="override the device RAM budget in kB")
    parser.add_argument("--method", choices=[m.value for m in QuantMethod],
                        default=QuantMethod.PC_ICN.value)


def _cmd_search(args: argparse.Namespace) -> int:
    spec = mobilenet_v1_spec(args.resolution, args.width)
    device = _resolve_device(args)
    method = QuantMethod(args.method)
    policy = search_mixed_precision(
        spec, device.flash_bytes, device.ram_bytes, method=method, strict=False
    )
    print(policy.summary())
    memory = MemoryModel(spec)
    print(f"\nread-only : {memory.ro_bytes(policy) / MB:.2f} MB "
          f"(budget {device.flash_bytes / MB:.2f} MB)")
    print(f"read-write: {memory.rw_peak_bytes(policy) / KB:.0f} kB "
          f"(budget {device.ram_bytes / KB:.0f} kB)")
    print(f"feasible  : {policy.feasible}")
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(policy.to_json())
        print(f"policy written to {args.output}")
    return 0 if policy.feasible else 1


def _cmd_deploy(args: argparse.Namespace) -> int:
    spec = mobilenet_v1_spec(args.resolution, args.width)
    device = _resolve_device(args)
    method = QuantMethod(args.method)
    policy: Optional[QuantPolicy] = None
    if args.policy:
        with open(args.policy) as fh:
            policy = QuantPolicy.from_json(fh.read())
    report = deploy(spec, device, method=method, policy=policy, strict=False)
    print(report.summary())
    top1 = AccuracyModel().predict_top1(spec, report.policy)
    print(f"  predicted Top-1  : {top1:6.2f} %")
    if args.save_artifact:
        session = pipeline(
            spec, policy=report.policy,
            device=device if report.fits else None, seed=args.seed,
        )
        out = session.save(args.save_artifact)
        print(f"  session artifact : {out} "
              f"(load with `repro-mcu run {out}`)")
    return 0 if report.fits else 1


def _fault_spec(text: str) -> str:
    """argparse type for --inject: validate early so a typo dies as a
    usage error instead of a traceback after the artifact loads."""
    from repro.serving import FaultInjector

    try:
        FaultInjector.parse(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return text


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serving import (
        FaultInjector,
        ModelRegistry,
        RetryPolicy,
        ServerOptions,
        serve,
    )

    if (args.artifact is None) == (args.fleet is None):
        print("error: serve needs exactly one of an artifact path or "
              "--fleet DIR", file=sys.stderr)
        return 2
    session = registry = None
    default_model = None
    if args.fleet is not None:
        budget = (args.memory_budget_kb * 1024
                  if args.memory_budget_kb is not None else None)
        registry = ModelRegistry.from_directory(
            args.fleet, memory_budget_bytes=budget,
            workers=max(1, args.workers or 1),
            worker_retries=args.worker_retries,
        )
        default_model = args.default_model
        if default_model is not None and default_model not in registry:
            print(f"error: --default-model {default_model!r} is not in the "
                  f"fleet {registry.models}", file=sys.stderr)
            return 2
    else:
        session = Session.load(args.artifact)
    faults = None
    if args.inject:
        faults = FaultInjector.parse(args.inject, seed=args.fault_seed)
    # --workers falls back to the workers count baked into the artifact's
    # session options, so a deployment can carry its own pool width.
    workers = args.workers if args.workers is not None else (
        session.options.workers if session is not None else 1
    )
    options = ServerOptions(
        host=args.host, port=args.port,
        max_batch=args.max_batch, max_wait_ms=args.max_wait_ms,
        queue_depth=args.queue_depth,
        default_deadline_ms=args.deadline_ms,
        batch_timeout_s=args.batch_timeout,
        retry=RetryPolicy(attempts=args.retries),
        circuit_threshold=args.circuit_threshold,
        circuit_reset_s=args.circuit_reset,
        degrade=not args.no_degrade,
        workers=workers,
        worker_retries=args.worker_retries,
    )
    serve(session, options, faults=faults, ttl_s=args.ttl,
          artifact_path=args.artifact, registry=registry,
          default_model=default_model)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    session = Session.load(args.artifact)
    plan = session.plan
    if args.input:
        x = np.load(args.input)
        if x.ndim != 4:
            print(f"error: {args.input} must hold an NCHW batch, "
                  f"got shape {x.shape}", file=sys.stderr)
            return 2
    else:
        hw = None
        if args.resolution is not None:
            hw = (args.resolution, args.resolution)
        elif (session.options.input_hw or session.compile_options.input_hw) is None:
            hw = (32, 32)  # artifact carries no geometry; pick a small default
        x = session.synthetic_batch(args.batch, rng_seed=args.seed, input_hw=hw)
    print(session.describe(input_hw=(x.shape[2], x.shape[3]),
                           batch_size=x.shape[0]))
    t0 = time.perf_counter()
    preds = session.predict(x)
    elapsed = time.perf_counter() - t0
    print(f"\nran {x.shape[0]} image(s) at {x.shape[2]}x{x.shape[3]} "
          f"in {elapsed * 1e3:.1f} ms "
          f"({x.shape[0] / elapsed:.1f} imgs/sec)")
    print(f"predictions: {preds.tolist()}")
    if args.profile:
        print()
        print(session.profile(x, repeats=args.repeats).table())
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.analysis import PlanVerificationError, lint_package, verify_artifact

    if args.artifact is None and not args.self_lint:
        print("error: check needs an artifact path and/or --self",
              file=sys.stderr)
        return 2
    rc = 0
    if args.artifact is not None:
        hw = None
        if args.resolution is not None:
            hw = (args.resolution, args.resolution)
        try:
            report = verify_artifact(args.artifact, hw)
        except PlanVerificationError as exc:
            for v in exc.violations:
                print(str(v), file=sys.stderr)
            print(f"{args.artifact}: FAILED static verification "
                  f"({len(exc.violations)} violation(s))", file=sys.stderr)
            rc = 1
        else:
            print(f"{args.artifact}: {report.summary()}")
    if args.self_lint:
        violations = lint_package()
        for v in violations:
            print(str(v), file=sys.stderr)
        if violations:
            print(f"repo lint: {len(violations)} violation(s)", file=sys.stderr)
            rc = 1
        else:
            print("repo lint: clean")
    return rc


def _cmd_sweep(args: argparse.Namespace) -> int:
    device = _resolve_device(args)
    fig = experiments.figure2(device=device)
    # Map the CLI method names onto the Figure-2 strategy labels; any other
    # value (or --all-methods) shows both strategies.
    method_to_label = {"PC+ICN": "MixQ-PC-ICN", "PL+ICN": "MixQ-PL"}
    wanted = method_to_label.get(args.method)
    rows = []
    for p in sorted(fig["points"], key=lambda p: p.cycles):
        if wanted is not None and p.method != wanted:
            continue
        rows.append([p.label, p.method, round(p.top1, 2), round(p.fps, 2),
                     round(p.ro_bytes / MB, 2), "yes" if p.feasible else "no"])
    print(render_table(
        ["Config", "Method", "Top-1 (%)", "fps", "Flash (MB)", "fits"], rows,
        title=f"MobileNetV1 family on {device.name}"))
    print("\nPareto frontier:")
    for p in fig["pareto"]:
        print(f"  {p.label:<26s} {p.top1:5.1f} %  {p.latency_cycles / 1e6:8.1f} Mcycles")
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    name = args.name
    if name == "table1":
        result = experiments.table1()
        rows = [[m, r["counts"]["Zw"], r["counts"]["Bq"], r["counts"]["M0"],
                 r["counts"]["Thr"], r["layer_extra_bytes"]]
                for m, r in result["rows"].items()]
        print(render_table(["Method", "Zw", "Bq", "M0", "Thr", "extra bytes"], rows,
                           title=f"Table 1 ({result['layer']})"))
    elif name == "table2":
        rows = [[r.label, paper_data.TABLE2.get(r.label, {}).get("top1", "-"),
                 round(r.top1, 2), round(r.weight_mb, 2)] for r in experiments.table2()]
        print(render_table(["Strategy", "paper Top-1", "repro Top-1", "mem (MB)"], rows,
                           title="Table 2"))
    elif name == "table3":
        rows = [[r.label, r.method, round(r.top1, 2), round(r.ro_mb, 2)]
                for r in experiments.table3()]
        print(render_table(["Model", "Method", "Top-1", "RO (MB)"], rows, title="Table 3"))
    elif name == "table4":
        result = experiments.table4()
        rows = [[label, *paper_data.TABLE4[label], round(pl, 2), round(pc, 2)]
                for label, (pl, pc) in result.items()]
        print(render_table(
            ["Config", "paper PL", "paper PC", "repro PL", "repro PC"], rows, title="Table 4"))
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(name)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro-mcu", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_search = sub.add_parser("search", help="memory-driven mixed-precision search")
    _add_network_args(p_search)
    _add_device_args(p_search)
    p_search.add_argument("--output", help="write the policy as JSON to this path")
    p_search.set_defaults(func=_cmd_search)

    p_deploy = sub.add_parser("deploy", help="deployment report for one configuration")
    _add_network_args(p_deploy)
    _add_device_args(p_deploy)
    p_deploy.add_argument("--policy", help="use a previously saved policy JSON")
    p_deploy.add_argument("--save-artifact", metavar="PATH",
                          help="materialise the deployment as a servable "
                               "session artifact at PATH")
    p_deploy.add_argument("--seed", type=int, default=0,
                          help="seed for the synthetic weight materialisation")
    p_deploy.set_defaults(func=_cmd_deploy)

    p_run = sub.add_parser("run", help="load and serve a saved session artifact")
    p_run.add_argument("artifact", help="artifact directory written by "
                                        "Session.save / deploy --save-artifact")
    p_run.add_argument("--input", help=".npy file with an NCHW image batch "
                                       "(default: synthetic random batch)")
    p_run.add_argument("--batch", type=int, default=1,
                       help="synthetic batch size (default: 1)")
    p_run.add_argument("--resolution", type=int, default=None,
                       help="synthetic input resolution (default: the "
                            "artifact's arena geometry)")
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument("--profile", action="store_true",
                       help="print the per-layer latency breakdown")
    p_run.add_argument("--repeats", type=int, default=3,
                       help="best-of repeats for --profile timings")
    p_run.set_defaults(func=_cmd_run)

    p_serve = sub.add_parser(
        "serve", help="serve an artifact over the fault-tolerant "
                      "micro-batching HTTP front end")
    p_serve.add_argument("artifact", nargs="?", default=None,
                         help="artifact directory written by "
                                          "Session.save / deploy --save-artifact")
    p_serve.add_argument("--fleet", metavar="DIR", default=None,
                         help="serve every artifact under DIR as a "
                              "multi-model fleet (requests route by their "
                              "'model' field; mutually exclusive with the "
                              "positional artifact)")
    p_serve.add_argument("--memory-budget-kb", type=int, default=None,
                         help="fleet residency budget in KiB (weights + "
                              "Eq. 7 arena peak per resident model; "
                              "least-recently-used idle models are evicted "
                              "to fit; default: unlimited)")
    p_serve.add_argument("--default-model", default=None,
                         help="fleet model used when a request omits "
                              "'model' (also warmed at startup)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8707,
                         help="TCP port (0 = ephemeral; default: 8707)")
    p_serve.add_argument("--max-batch", type=int, default=8,
                         help="micro-batch tile size (default: 8)")
    p_serve.add_argument("--max-wait-ms", type=float, default=5.0,
                         help="partial-tile flush timeout (default: 5 ms)")
    p_serve.add_argument("--queue-depth", type=int, default=64,
                         help="admission queue bound; beyond it requests "
                              "are shed with a 503 (default: 64)")
    p_serve.add_argument("--deadline-ms", type=float, default=1000.0,
                         help="default per-request deadline; expired requests "
                              "are dropped before batching (default: 1000)")
    p_serve.add_argument("--batch-timeout", type=float, default=30.0,
                         help="hung-batch watchdog, seconds (default: 30)")
    p_serve.add_argument("--retries", type=int, default=2,
                         help="retries per batch on transient faults (default: 2)")
    p_serve.add_argument("--circuit-threshold", type=int, default=5,
                         help="consecutive batch failures that open the "
                              "circuit breaker (default: 5)")
    p_serve.add_argument("--circuit-reset", type=float, default=2.0,
                         help="seconds before a half-open probe (default: 2)")
    p_serve.add_argument("--no-degrade", action="store_true",
                         help="disable the batch-of-1 poisoned-tile fallback")
    p_serve.add_argument("--workers", type=int, default=None,
                         help="worker processes sharing one mmap'd copy of "
                              "the weights (default: the artifact's session "
                              "options, usually 1 = in-process)")
    p_serve.add_argument("--worker-retries", type=int, default=1,
                         help="respawn-and-retry budget per task after a "
                              "worker crash (default: 1)")
    p_serve.add_argument("--inject", metavar="SPEC", type=_fault_spec,
                         help="deterministic fault injection, e.g. "
                              "'kernel:every=7;slow:every=5,delay=0.05'")
    p_serve.add_argument("--fault-seed", type=int, default=0)
    p_serve.add_argument("--ttl", type=float, default=None,
                         help="serve for TTL seconds then shut down cleanly "
                              "(default: until Ctrl-C)")
    p_serve.set_defaults(func=_cmd_serve)

    p_check = sub.add_parser(
        "check", help="statically verify an artifact's compiled plan "
                      "and/or lint the repo (no inference is executed)")
    p_check.add_argument("artifact", nargs="?", default=None,
                         help="artifact directory to verify: accumulator "
                              "bounds vs. dispatched backend, container "
                              "dtypes, requant shifts, arena slab "
                              "lifetime/aliasing")
    p_check.add_argument("--self", dest="self_lint", action="store_true",
                         help="run the AST repo lint over the installed "
                              "repro package")
    p_check.add_argument("--resolution", type=int, default=None,
                         help="geometry for the slab-lifetime walk "
                              "(default: the artifact's arena geometry)")
    p_check.set_defaults(func=_cmd_check)

    p_sweep = sub.add_parser("sweep", help="Figure-2 style sweep of the whole family")
    _add_device_args(p_sweep)
    p_sweep.set_defaults(func=_cmd_sweep)
    p_sweep.add_argument("--all-methods", dest="method", action="store_const", const="all",
                         help="show both MixQ-PL and MixQ-PC-ICN points")

    p_table = sub.add_parser("table", help="regenerate one of the paper's tables")
    p_table.add_argument("name", choices=["table1", "table2", "table3", "table4"])
    p_table.set_defaults(func=_cmd_table)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (ArtifactError, FileNotFoundError, IsADirectoryError,
            PermissionError) as exc:
        # Operational errors (missing/corrupt artifacts, unreadable
        # inputs) are a one-liner for the operator, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
