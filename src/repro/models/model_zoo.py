"""Architecture specifications of the MobileNetV1 family.

The memory-driven mixed-precision search, the memory model (Table 1) and
the MCU latency model only need layer *shapes* — channel counts, kernel
sizes and spatial resolutions — not instantiated weights.  A
:class:`NetworkSpec` therefore enumerates the quantized convolutional
layers of a network symbolically, so the full-size MobileNetV1 family
(up to 224_1.0 with 4.2 M parameters) can be analysed without allocating
any weight tensors.

The paper labels a configuration ``<resolution>_<width multiplier>``,
e.g. ``192_0.5``; the same convention is used throughout this package.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple

MOBILENET_RESOLUTIONS: Tuple[int, ...] = (128, 160, 192, 224)
MOBILENET_WIDTH_MULTIPLIERS: Tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)

# (output channels at width multiplier 1.0, stride) for the 13 depthwise
# separable blocks of MobileNetV1 after the initial full convolution.
_MOBILENET_BLOCKS: Tuple[Tuple[int, int], ...] = (
    (64, 1),
    (128, 2),
    (128, 1),
    (256, 2),
    (256, 1),
    (512, 2),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (512, 1),
    (1024, 2),
    (1024, 1),
)


@dataclass(frozen=True)
class LayerSpec:
    """Shape description of one quantized convolutional (or linear) layer.

    Attributes
    ----------
    index:
        Position in the stacked-layer ordering used by Algorithms 1 and 2.
    name:
        Human readable layer name, e.g. ``"conv0"`` or ``"block3_pw"``.
    kind:
        One of ``"conv"`` (standard convolution), ``"dw"`` (depthwise),
        ``"pw"`` (pointwise 1x1) and ``"fc"`` (fully connected).
    in_channels / out_channels:
        Channel counts (``c_I`` and ``c_O`` in Table 1).
    kernel_size, stride, padding:
        Convolution geometry (kernel 1 for ``fc``).
    in_h, in_w, out_h, out_w:
        Spatial sizes of the input and output activation maps (1 for fc).
    """

    index: int
    name: str
    kind: str
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int
    padding: int
    in_h: int
    in_w: int
    out_h: int
    out_w: int

    # -- derived quantities -------------------------------------------
    @property
    def weight_count(self) -> int:
        """Number of weight scalars in the kernel (Table 1's Weights row)."""
        if self.kind == "dw":
            return self.out_channels * self.kernel_size * self.kernel_size
        if self.kind == "fc":
            return self.out_channels * self.in_channels
        return (
            self.out_channels
            * self.in_channels
            * self.kernel_size
            * self.kernel_size
        )

    @property
    def input_activation_count(self) -> int:
        """Number of scalars in the layer's input activation tensor."""
        return self.in_channels * self.in_h * self.in_w

    @property
    def output_activation_count(self) -> int:
        """Number of scalars in the layer's output activation tensor."""
        return self.out_channels * self.out_h * self.out_w

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one inference of this layer."""
        if self.kind == "dw":
            return (
                self.out_h * self.out_w * self.out_channels
                * self.kernel_size * self.kernel_size
            )
        if self.kind == "fc":
            return self.in_channels * self.out_channels
        return (
            self.out_h * self.out_w * self.out_channels
            * self.in_channels * self.kernel_size * self.kernel_size
        )

    @property
    def im2col_patch(self) -> int:
        """Size of one im2col patch (inner-loop length of the MCU kernel)."""
        if self.kind == "dw":
            return self.kernel_size * self.kernel_size
        if self.kind == "fc":
            return self.in_channels
        return self.in_channels * self.kernel_size * self.kernel_size


@dataclass
class NetworkSpec:
    """Ordered collection of :class:`LayerSpec` describing one network."""

    name: str
    resolution: int
    width_multiplier: float
    num_classes: int
    layers: List[LayerSpec] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterable[LayerSpec]:
        return iter(self.layers)

    def __getitem__(self, idx: int) -> LayerSpec:
        return self.layers[idx]

    @property
    def total_macs(self) -> int:
        return sum(l.macs for l in self.layers)

    @property
    def total_weights(self) -> int:
        return sum(l.weight_count for l in self.layers)

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``"192_0.5"`` or ``"224_1.0"``."""
        return f"{self.resolution}_{float(self.width_multiplier)}"


def _scaled(channels: int, alpha: float) -> int:
    """Width-multiplied channel count (MobileNetV1 uses exact scaling for
    the canonical multipliers 0.25/0.5/0.75/1.0)."""
    return max(int(round(channels * alpha)), 8)


def mobilenet_v1_spec(
    resolution: int = 224,
    width_multiplier: float = 1.0,
    num_classes: int = 1000,
    in_channels: int = 3,
) -> NetworkSpec:
    """Build the :class:`NetworkSpec` of a MobileNetV1 configuration.

    The network is the standard MobileNetV1: a full 3x3 stride-2
    convolution followed by 13 depthwise-separable blocks (depthwise 3x3 +
    pointwise 1x1), global average pooling and a fully connected
    classifier.  Quantized-layer ordering (index) follows the execution
    order, which is what Algorithms 1 and 2 iterate over.
    """
    if resolution % 32 != 0:
        raise ValueError(f"MobileNetV1 resolution must be a multiple of 32, got {resolution}")
    layers: List[LayerSpec] = []
    idx = 0
    h = w = resolution

    def out_size(size: int, k: int, s: int, p: int) -> int:
        return (size + 2 * p - k) // s + 1

    # Initial full convolution: 3x3, stride 2, padding 1.
    c_out = _scaled(32, width_multiplier)
    oh = out_size(h, 3, 2, 1)
    layers.append(LayerSpec(idx, "conv0", "conv", in_channels, c_out, 3, 2, 1, h, w, oh, oh))
    idx += 1
    h = w = oh
    c_in = c_out

    for b, (base_out, stride) in enumerate(_MOBILENET_BLOCKS):
        c_out = _scaled(base_out, width_multiplier)
        # Depthwise 3x3.
        oh = out_size(h, 3, stride, 1)
        layers.append(
            LayerSpec(idx, f"block{b}_dw", "dw", c_in, c_in, 3, stride, 1, h, w, oh, oh)
        )
        idx += 1
        h = w = oh
        # Pointwise 1x1.
        layers.append(
            LayerSpec(idx, f"block{b}_pw", "pw", c_in, c_out, 1, 1, 0, h, w, h, w)
        )
        idx += 1
        c_in = c_out

    # Classifier (after global average pooling the spatial size is 1x1).
    layers.append(
        LayerSpec(idx, "fc", "fc", c_in, num_classes, 1, 1, 0, 1, 1, 1, 1)
    )

    return NetworkSpec(
        name=f"mobilenet_v1_{resolution}_{float(width_multiplier)}",
        resolution=resolution,
        width_multiplier=width_multiplier,
        num_classes=num_classes,
        layers=layers,
    )


def all_mobilenet_configs(num_classes: int = 1000) -> List[NetworkSpec]:
    """All 16 MobileNetV1 configurations evaluated in the paper (Fig. 2)."""
    specs = []
    for res in MOBILENET_RESOLUTIONS:
        for wm in MOBILENET_WIDTH_MULTIPLIERS:
            specs.append(mobilenet_v1_spec(res, wm, num_classes))
    return specs
