"""Instantiable MobileNetV1 built on the :mod:`repro.nn` substrate.

Full-size ImageNet configurations can be instantiated, but for training
in this reproduction the small-resolution / narrow variants (and the
`small_cnn` testbeds) are the practical choice.  The layer ordering of
the built model matches the :class:`~repro.models.model_zoo.NetworkSpec`
ordering, so a trained model and its spec can be zipped together by the
conversion and deployment tooling.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.models.model_zoo import NetworkSpec, mobilenet_v1_spec


class ConvBNBlock(nn.Module):
    """conv (or depthwise conv) -> batch-norm -> ReLU.

    This is the sub-graph the ICN conversion (Eq. 3) operates on; keeping
    it as a dedicated module makes graph traversal straightforward.
    """

    def __init__(self, conv: nn.Module, channels: int, activation: Optional[nn.Module] = None):
        super().__init__()
        self.conv = conv
        self.bn = nn.BatchNorm2d(channels)
        self.act = activation if activation is not None else nn.ReLU()

    def forward(self, x):
        return self.act(self.bn(self.conv(x)))

    def backward(self, grad_out):
        grad_out = self.act.backward(grad_out)
        grad_out = self.bn.backward(grad_out)
        return self.conv.backward(grad_out)


class MobileNetV1(nn.Module):
    """MobileNetV1 classifier over NCHW inputs."""

    def __init__(
        self,
        resolution: int = 224,
        width_multiplier: float = 1.0,
        num_classes: int = 1000,
        in_channels: int = 3,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.spec: NetworkSpec = mobilenet_v1_spec(
            resolution, width_multiplier, num_classes, in_channels
        )
        self.resolution = resolution
        self.width_multiplier = width_multiplier
        self.num_classes = num_classes

        blocks: List[nn.Module] = []
        for layer in self.spec.layers:
            if layer.kind == "conv":
                conv = nn.Conv2d(
                    layer.in_channels, layer.out_channels, layer.kernel_size,
                    stride=layer.stride, padding=layer.padding, bias=False, rng=rng,
                )
                blocks.append(ConvBNBlock(conv, layer.out_channels))
            elif layer.kind == "dw":
                conv = nn.DepthwiseConv2d(
                    layer.in_channels, layer.kernel_size,
                    stride=layer.stride, padding=layer.padding, bias=False, rng=rng,
                )
                blocks.append(ConvBNBlock(conv, layer.out_channels))
            elif layer.kind == "pw":
                conv = nn.Conv2d(
                    layer.in_channels, layer.out_channels, 1,
                    stride=1, padding=0, bias=False, rng=rng,
                )
                blocks.append(ConvBNBlock(conv, layer.out_channels))
            elif layer.kind == "fc":
                # handled after the feature extractor
                continue
            else:  # pragma: no cover - spec kinds are fixed
                raise ValueError(f"unknown layer kind {layer.kind}")

        self.features = nn.Sequential(*blocks)
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        fc_spec = self.spec.layers[-1]
        self.classifier = nn.Linear(fc_spec.in_channels, num_classes, bias=True, rng=rng)

    def forward(self, x):
        x = self.features(x)
        x = self.pool(x)
        x = self.flatten(x)
        return self.classifier(x)

    def backward(self, grad_out):
        grad_out = self.classifier.backward(grad_out)
        grad_out = self.flatten.backward(grad_out)
        grad_out = self.pool.backward(grad_out)
        return self.features.backward(grad_out)

    def conv_blocks(self) -> List[ConvBNBlock]:
        """The conv/bn/act blocks in execution order (excludes classifier)."""
        return list(self.features)


def build_mobilenet_v1(
    resolution: int = 224,
    width_multiplier: float = 1.0,
    num_classes: int = 1000,
    in_channels: int = 3,
    seed: int = 0,
) -> MobileNetV1:
    """Convenience constructor with a seeded RNG."""
    return MobileNetV1(
        resolution=resolution,
        width_multiplier=width_multiplier,
        num_classes=num_classes,
        in_channels=in_channels,
        rng=np.random.default_rng(seed),
    )
