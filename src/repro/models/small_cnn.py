"""Small MobileNet-style testbed networks for end-to-end QAT experiments.

The paper trains full MobileNetV1 on ImageNet with 4 GPUs; here the same
pipeline (fake-quantization, PACT, ICN conversion, integer inference) is
exercised end-to-end on small networks and the synthetic dataset so the
qualitative claims — PL+FB INT4 training collapse, ICN recovery, PC > PL,
negligible fake-quantized vs integer-only gap — can be measured within a
laptop-scale budget.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro import nn
from repro.models.mobilenet_v1 import ConvBNBlock
from repro.models.model_zoo import LayerSpec, NetworkSpec


class SmallCNN(nn.Module):
    """A stack of conv/bn/relu blocks followed by global pooling + linear."""

    def __init__(self, blocks: List[ConvBNBlock], spec: NetworkSpec, num_classes: int,
                 rng: Optional[np.random.Generator] = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.spec = spec
        self.num_classes = num_classes
        self.features = nn.Sequential(*blocks)
        self.pool = nn.GlobalAvgPool2d()
        self.flatten = nn.Flatten()
        fc_spec = spec.layers[-1]
        self.classifier = nn.Linear(fc_spec.in_channels, num_classes, bias=True, rng=rng)

    def forward(self, x):
        x = self.features(x)
        x = self.pool(x)
        x = self.flatten(x)
        return self.classifier(x)

    def backward(self, grad_out):
        grad_out = self.classifier.backward(grad_out)
        grad_out = self.flatten.backward(grad_out)
        grad_out = self.pool.backward(grad_out)
        return self.features.backward(grad_out)

    def conv_blocks(self) -> List[ConvBNBlock]:
        return list(self.features)


def _layer(idx, name, kind, cin, cout, k, s, p, hin, hout) -> LayerSpec:
    return LayerSpec(idx, name, kind, cin, cout, k, s, p, hin, hin, hout, hout)


def build_small_cnn(
    resolution: int = 16,
    channels: int = 16,
    num_classes: int = 10,
    in_channels: int = 3,
    seed: int = 0,
) -> SmallCNN:
    """Three plain conv/bn/relu blocks — the minimal QAT testbed."""
    rng = np.random.default_rng(seed)
    c = channels
    h = resolution
    layers = [
        _layer(0, "conv0", "conv", in_channels, c, 3, 1, 1, h, h),
        _layer(1, "conv1", "conv", c, 2 * c, 3, 2, 1, h, h // 2),
        _layer(2, "conv2", "conv", 2 * c, 2 * c, 3, 1, 1, h // 2, h // 2),
        _layer(3, "fc", "fc", 2 * c, num_classes, 1, 1, 0, 1, 1),
    ]
    spec = NetworkSpec("small_cnn", resolution, 1.0, num_classes, layers)
    blocks = []
    for l in layers[:-1]:
        conv = nn.Conv2d(l.in_channels, l.out_channels, l.kernel_size,
                         stride=l.stride, padding=l.padding, bias=False, rng=rng)
        blocks.append(ConvBNBlock(conv, l.out_channels))
    return SmallCNN(blocks, spec, num_classes, rng=rng)


def build_tiny_mobilenet(
    resolution: int = 32,
    width: int = 8,
    num_classes: int = 10,
    in_channels: int = 3,
    seed: int = 0,
) -> SmallCNN:
    """A scaled-down MobileNetV1: conv + 3 depthwise-separable blocks.

    Uses exactly the layer kinds of the real network (conv, dw, pw, fc) so
    the mixed-precision search, ICN conversion and integer kernels are
    exercised on every code path the full model would hit.
    """
    rng = np.random.default_rng(seed)
    w = width
    h = resolution
    layers = [
        _layer(0, "conv0", "conv", in_channels, w, 3, 2, 1, h, h // 2),
        _layer(1, "block0_dw", "dw", w, w, 3, 1, 1, h // 2, h // 2),
        _layer(2, "block0_pw", "pw", w, 2 * w, 1, 1, 0, h // 2, h // 2),
        _layer(3, "block1_dw", "dw", 2 * w, 2 * w, 3, 2, 1, h // 2, h // 4),
        _layer(4, "block1_pw", "pw", 2 * w, 4 * w, 1, 1, 0, h // 4, h // 4),
        _layer(5, "block2_dw", "dw", 4 * w, 4 * w, 3, 1, 1, h // 4, h // 4),
        _layer(6, "block2_pw", "pw", 4 * w, 4 * w, 1, 1, 0, h // 4, h // 4),
        _layer(7, "fc", "fc", 4 * w, num_classes, 1, 1, 0, 1, 1),
    ]
    spec = NetworkSpec("tiny_mobilenet", resolution, 1.0, num_classes, layers)
    blocks = []
    for l in layers[:-1]:
        if l.kind == "dw":
            conv = nn.DepthwiseConv2d(l.in_channels, l.kernel_size,
                                      stride=l.stride, padding=l.padding, bias=False, rng=rng)
        else:
            conv = nn.Conv2d(l.in_channels, l.out_channels, l.kernel_size,
                             stride=l.stride, padding=l.padding, bias=False, rng=rng)
        blocks.append(ConvBNBlock(conv, l.out_channels))
    return SmallCNN(blocks, spec, num_classes, rng=rng)
