"""Model definitions and architecture specs (MobileNetV1 family)."""

from repro.models.model_zoo import (
    LayerSpec,
    NetworkSpec,
    mobilenet_v1_spec,
    MOBILENET_RESOLUTIONS,
    MOBILENET_WIDTH_MULTIPLIERS,
    all_mobilenet_configs,
)
from repro.models.mobilenet_v1 import build_mobilenet_v1, MobileNetV1
from repro.models.small_cnn import build_small_cnn, build_tiny_mobilenet

__all__ = [
    "LayerSpec",
    "NetworkSpec",
    "mobilenet_v1_spec",
    "MOBILENET_RESOLUTIONS",
    "MOBILENET_WIDTH_MULTIPLIERS",
    "all_mobilenet_configs",
    "build_mobilenet_v1",
    "MobileNetV1",
    "build_small_cnn",
    "build_tiny_mobilenet",
]
