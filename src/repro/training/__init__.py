"""Training pipelines: full-precision pretraining and quantization-aware
training (QAT) following the schedule of the paper's §6."""

from repro.training.trainer import Trainer, TrainConfig
from repro.training.qat import prepare_qat, QATConfig, QATTrainer, evaluate_model

__all__ = [
    "Trainer",
    "TrainConfig",
    "prepare_qat",
    "QATConfig",
    "QATTrainer",
    "evaluate_model",
]
