"""Plain full-precision training loop (the "pretrained f(x)" of Fig. 1)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro import nn
from repro.data.synthetic import SyntheticImageDataset


@dataclass
class TrainConfig:
    """Hyper-parameters of full-precision training."""

    epochs: int = 5
    batch_size: int = 32
    lr: float = 1e-3
    weight_decay: float = 0.0
    seed: int = 0


@dataclass
class TrainResult:
    """Per-epoch history of a training run."""

    train_loss: List[float] = field(default_factory=list)
    train_acc: List[float] = field(default_factory=list)
    test_acc: List[float] = field(default_factory=list)

    @property
    def final_test_acc(self) -> float:
        return self.test_acc[-1] if self.test_acc else 0.0


def evaluate(model, x: np.ndarray, y: np.ndarray, batch_size: int = 64) -> float:
    """Top-1 accuracy of a model on a dataset split."""
    was_training = model.training
    model.eval()
    correct = 0
    for start in range(0, len(x), batch_size):
        logits = model(x[start : start + batch_size])
        correct += int((np.argmax(logits, axis=1) == y[start : start + batch_size]).sum())
    model.train(was_training)
    return correct / max(len(x), 1)


class Trainer:
    """Minimal full-precision trainer used to produce pretrained weights."""

    def __init__(self, model, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = nn.Adam(
            model.parameters(), lr=self.config.lr, weight_decay=self.config.weight_decay
        )
        self.criterion = nn.CrossEntropyLoss()

    def fit(self, dataset: SyntheticImageDataset) -> TrainResult:
        rng = np.random.default_rng(self.config.seed)
        result = TrainResult()
        self.model.train()
        for _ in range(self.config.epochs):
            losses, accs = [], []
            for xb, yb in dataset.batches(self.config.batch_size, rng, train=True):
                self.optimizer.zero_grad()
                logits = self.model(xb)
                loss = self.criterion(logits, yb)
                grad = self.criterion.backward()
                self.model.backward(grad)
                self.optimizer.step()
                losses.append(loss)
                accs.append(float((np.argmax(logits, axis=1) == yb).mean()))
            result.train_loss.append(float(np.mean(losses)))
            result.train_acc.append(float(np.mean(accs)))
            result.test_acc.append(evaluate(self.model, dataset.x_test, dataset.y_test))
        return result
