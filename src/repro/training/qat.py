"""Quantization-aware training (QAT) pipeline (paper §3 and §6).

``prepare_qat`` rewrites a full-precision model in place: every
conv/bn/relu block becomes a :class:`QuantConvBNBlock` (fake-quantized
weights + PACT activation quantizer) and the classifier becomes a
:class:`QuantLinear`, with bit widths taken from a
:class:`~repro.core.policy.QuantPolicy`.

``QATTrainer`` then follows the paper's §6 schedule: Adam, a stepped
learning-rate decay, batch-norm freezing after the first epoch, and —
for the PL+FB strategy — batch-norm folding activated from the second
epoch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro import nn
from repro.core.fake_quant import PACTFakeQuant, QuantConvBNBlock, QuantLinear
from repro.core.policy import QuantMethod, QuantPolicy
from repro.data.calibration import collect_activation_ranges
from repro.data.synthetic import SyntheticImageDataset
from repro.models.mobilenet_v1 import ConvBNBlock
from repro.training.trainer import evaluate


def _weight_scheme(method: QuantMethod) -> str:
    """Weight quantization scheme per deployment strategy (paper §6):
    PACT/symmetric per-layer for PL, min/max per-channel for PC."""
    return "minmax_pc" if method.per_channel else "pact_pl"


def prepare_qat(
    model,
    policy: QuantPolicy,
    method: Optional[QuantMethod] = None,
    calibration_data: Optional[np.ndarray] = None,
    act_alpha_init: float = 6.0,
):
    """Rewrite ``model`` in place into its fake-quantized form g(x).

    ``model`` must expose ``features`` (Sequential of ConvBNBlock),
    ``pool``, ``flatten`` and ``classifier`` — the structure of
    :class:`MobileNetV1` and the small testbed networks.  The policy must
    have one entry per conv block plus one for the classifier (its last
    layer).  When ``calibration_data`` is given, the PACT clipping bounds
    are initialised from the 99.9th percentile of each block's output.
    """
    method = method or policy.method
    blocks = list(model.features)
    if len(policy) != len(blocks) + 1:
        raise ValueError(
            f"policy has {len(policy)} layers; expected {len(blocks)} conv blocks "
            f"plus a classifier"
        )

    # Optional calibration pass on the full-precision model.
    alpha_inits = [act_alpha_init] * len(blocks)
    if calibration_data is not None:
        stats = collect_activation_ranges(model, calibration_data)
        alpha_inits = [max(s["percentile"], 1e-3) for s in stats]

    scheme = _weight_scheme(method)
    fold = method.folds_batchnorm
    new_blocks = []
    for i, block in enumerate(blocks):
        if isinstance(block, QuantConvBNBlock):
            raise ValueError("model is already prepared for QAT")
        if not isinstance(block, ConvBNBlock):
            raise TypeError(f"block {i} is {type(block).__name__}, expected ConvBNBlock")
        lp = policy[i]
        qblock = QuantConvBNBlock(
            block,
            weight_bits=lp.q_w,
            act_bits=lp.q_out,
            weight_scheme=scheme,
            fold_bn=fold,
            act_alpha_init=alpha_inits[i],
        )
        new_blocks.append(qblock)

    model.features = nn.Sequential(*new_blocks)
    model.classifier = QuantLinear(
        model.classifier, weight_bits=policy[len(blocks)].q_w, weight_scheme=scheme
    )
    return model


@dataclass
class QATConfig:
    """QAT hyper-parameters mirroring the paper's §6 recipe (scaled down)."""

    epochs: int = 4
    batch_size: int = 32
    lr: float = 1e-4
    lr_schedule: dict = field(default_factory=lambda: {2: 5e-5, 3: 1e-5})
    freeze_bn_after_epoch: int = 1
    enable_folding_after_epoch: int = 1
    seed: int = 0


@dataclass
class QATResult:
    train_loss: List[float] = field(default_factory=list)
    train_acc: List[float] = field(default_factory=list)
    test_acc: List[float] = field(default_factory=list)

    @property
    def final_test_acc(self) -> float:
        return self.test_acc[-1] if self.test_acc else 0.0


class QATTrainer:
    """Quantization-aware retraining loop."""

    def __init__(self, model, config: QATConfig | None = None):
        self.model = model
        self.config = config or QATConfig()
        self.optimizer = nn.Adam(model.parameters(), lr=self.config.lr)
        self.criterion = nn.CrossEntropyLoss()

    def _apply_schedule(self, epoch: int) -> None:
        cfg = self.config
        if epoch in cfg.lr_schedule:
            self.optimizer.set_lr(cfg.lr_schedule[epoch])
        if epoch == cfg.freeze_bn_after_epoch:
            for module in self.model.modules():
                if isinstance(module, nn.BatchNorm2d):
                    module.freeze()
        if epoch == cfg.enable_folding_after_epoch:
            for module in self.model.modules():
                if isinstance(module, QuantConvBNBlock):
                    module.enable_folding()

    def fit(self, dataset: SyntheticImageDataset) -> QATResult:
        rng = np.random.default_rng(self.config.seed)
        result = QATResult()
        self.model.train()
        for epoch in range(self.config.epochs):
            self._apply_schedule(epoch)
            losses, accs = [], []
            for xb, yb in dataset.batches(self.config.batch_size, rng, train=True):
                self.optimizer.zero_grad()
                logits = self.model(xb)
                loss = self.criterion(logits, yb)
                grad = self.criterion.backward()
                self.model.backward(grad)
                self.optimizer.step()
                # PACT alphas must stay strictly positive.
                for module in self.model.modules():
                    if isinstance(module, PACTFakeQuant):
                        module.alpha.data[...] = np.maximum(module.alpha.data, 1e-3)
                losses.append(loss)
                accs.append(float((np.argmax(logits, axis=1) == yb).mean()))
            result.train_loss.append(float(np.mean(losses)))
            result.train_acc.append(float(np.mean(accs)))
            result.test_acc.append(evaluate(self.model, dataset.x_test, dataset.y_test))
        return result


def evaluate_model(model, dataset: SyntheticImageDataset) -> float:
    """Top-1 accuracy of a (fake-quantized or full-precision) model."""
    return evaluate(model, dataset.x_test, dataset.y_test)
