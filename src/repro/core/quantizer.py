"""Uniform affine quantization primitives (paper Eq. 1–2).

A real tensor ``t`` is mapped onto integers ``T`` in ``[0, 2^Q - 1]``
(UINT-Q) or ``[-2^(Q-1), 2^(Q-1)-1]`` (INT-Q) through

    t = S * (T - Z)            (Eq. 2)
    T = clamp(round(t / S) + Z, qmin, qmax)

with the scale ``S = (b - a) / (2^Q - 1)`` derived from the quantization
range ``[a, b]`` (Eq. 1).  Activations use ``floor`` instead of ``round``
(paper §3) because truncation is a plain shift on the target MCU.

Ranges can be computed per-tensor ("per-layer", PL) or along the outer
(output-channel) dimension ("per-channel", PC, §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

VALID_BITS = (2, 4, 8)


@dataclass(frozen=True)
class QuantSpec:
    """Static description of a quantized tensor format.

    Attributes
    ----------
    bits:
        Bit width Q; the paper admits Q in {2, 4, 8}.
    signed:
        ``False`` for UINT-Q ([0, 2^Q-1]) and ``True`` for INT-Q.
    per_channel:
        Whether scale/zero-point are vectors along the outer dimension.
    symmetric:
        Whether the zero-point is constrained to map real 0 exactly onto
        an integer with ``a = -b`` (weights only).
    """

    bits: int
    signed: bool = False
    per_channel: bool = False
    symmetric: bool = False

    def __post_init__(self):
        if self.bits < 1 or self.bits > 32:
            raise ValueError(f"unsupported bit width {self.bits}")

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1)) if self.signed else 0

    @property
    def qmax(self) -> int:
        return 2 ** (self.bits - 1) - 1 if self.signed else 2 ** self.bits - 1

    @property
    def levels(self) -> int:
        return 2 ** self.bits

    @property
    def container_dtype(self) -> np.dtype:
        """Narrowest numpy dtype that stores this format's codes (the
        physical width quantized tensors occupy on the host — uint8 for
        every unsigned width the paper deploys)."""
        from repro.inference.packing import container_dtype

        return container_dtype(self.bits, signed=self.signed)


def compute_affine_params(
    a: np.ndarray | float,
    b: np.ndarray | float,
    spec: QuantSpec,
) -> Tuple[np.ndarray, np.ndarray]:
    """Scale and zero-point for the range [a, b] under ``spec`` (Eq. 1–2).

    Returns ``(scale, zero_point)`` as float64 / int64 arrays broadcastable
    against the tensor.  Degenerate ranges (``a == b``) get scale 1 so that
    quantization is well defined (the tensor is constant).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if np.any(b < a):
        raise ValueError("quantization range must have b >= a")
    span = b - a
    # Degenerate (constant) ranges get a scale that still represents the
    # constant value exactly on the grid.
    fallback = np.maximum(np.abs(a), 1.0) / (spec.levels - 1)
    scale = np.where(span > 0, span / (spec.levels - 1), fallback)
    # A positive but subnormal span can still underflow to scale == 0 in
    # the division above; such a range is indistinguishable from constant
    # at float64 resolution, so it takes the constant-range fallback too
    # (otherwise the zero-point divide produces NaN -> INT64_MIN codes).
    scale = np.where(scale > 0, scale, fallback)
    # Zero-point such that real value `a` maps to qmin exactly.  It is not
    # clamped to the code range: ranges that exclude zero (legal for
    # weights in principle) keep an out-of-range offset rather than a
    # silently wrong mapping.  The ranges produced in this flow (PACT
    # activations with a = 0, min/max weight ranges straddling zero) always
    # yield zero-points inside the UINT-Q / INT16 storage types of §4.1.
    zero_point = np.round(spec.qmin - a / scale).astype(np.int64)
    return scale, zero_point


def quantize_affine(
    t: np.ndarray,
    scale: np.ndarray | float,
    zero_point: np.ndarray | int,
    spec: QuantSpec,
    rounding: str = "round",
) -> np.ndarray:
    """Map a real tensor onto its integer representation.

    ``rounding`` is ``"round"`` for weights and ``"floor"`` for activations
    (paper §3).  Codes come back in the spec's narrow
    :attr:`~QuantSpec.container_dtype` (uint8 for UINT-Q, Q <= 8), not
    int64 — the container width is what deployment blobs and the
    activation arena account for.
    """
    if rounding not in ("round", "floor"):
        raise ValueError(f"unknown rounding mode {rounding!r}")
    q = np.asarray(t, dtype=np.float64) / scale
    q = np.floor(q) if rounding == "floor" else np.round(q)
    q = q + zero_point
    return np.clip(q, spec.qmin, spec.qmax).astype(spec.container_dtype)


def dequantize_affine(
    q: np.ndarray,
    scale: np.ndarray | float,
    zero_point: np.ndarray | int,
) -> np.ndarray:
    """Inverse map of :func:`quantize_affine` (Eq. 2)."""
    return (np.asarray(q, dtype=np.float64) - zero_point) * scale


def fake_quantize(
    t: np.ndarray,
    a: np.ndarray | float,
    b: np.ndarray | float,
    spec: QuantSpec,
    rounding: str = "round",
) -> np.ndarray:
    """Quantize-then-dequantize: the forward emulation used during QAT.

    Values are first clamped to [a, b] (Eq. 1's ``clamp``) so that the
    quantized integer never saturates outside the representable grid.
    """
    a_arr = np.asarray(a, dtype=np.float64)
    b_arr = np.asarray(b, dtype=np.float64)
    t_clamped = np.clip(t, a_arr, b_arr)
    scale, zp = compute_affine_params(a_arr, b_arr, spec)
    q = quantize_affine(t_clamped, scale, zp, spec, rounding=rounding)
    return dequantize_affine(q, scale, zp)


# ----------------------------------------------------------------------
# Range statistics
# ----------------------------------------------------------------------
def per_tensor_minmax(t: np.ndarray) -> Tuple[float, float]:
    """Per-layer (PL) min/max range of a tensor (paper §3, following [11])."""
    return float(np.min(t)), float(np.max(t))


def per_channel_minmax(t: np.ndarray, axis: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """Per-channel (PC) min/max along the outer (output-channel) dimension.

    Returns arrays of shape ``(t.shape[axis],)``.
    """
    moved = np.moveaxis(t, axis, 0).reshape(t.shape[axis], -1)
    return moved.min(axis=1), moved.max(axis=1)


def broadcast_channelwise(vec: np.ndarray, ndim: int, axis: int = 0) -> np.ndarray:
    """Reshape a per-channel vector so it broadcasts along ``axis`` of an
    ``ndim``-dimensional tensor."""
    shape = [1] * ndim
    shape[axis] = -1
    return np.asarray(vec).reshape(shape)


def quantization_error(t: np.ndarray, t_fq: np.ndarray) -> float:
    """Mean-squared quantization error (used by tests and diagnostics)."""
    return float(np.mean((np.asarray(t) - np.asarray(t_fq)) ** 2))
