"""Fake-quantization modules for quantization-aware training (paper §3–4).

Three pieces are provided:

* :class:`PACTFakeQuant` — activation quantizer with a learnable clipping
  bound ``alpha`` (PACT [2]); the forward pass emulates the UINT-Q grid
  with ``floor`` rounding (paper §3), the backward pass uses the
  straight-through estimator for the input and the PACT gradient for
  ``alpha``.
* :class:`WeightFakeQuant` — weight quantizer supporting per-layer (PL)
  min/max, per-channel (PC) min/max, and a per-layer learned symmetric
  range ("pact" scheme) used for the PL configurations of the paper.
* :class:`QuantConvBNBlock` / :class:`QuantLinear` — the fake-quantized
  versions of a conv/bn/relu block and of the classifier, the sub-graphs
  the ICN conversion (§4) later turns into integer-only layers.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import nn
from repro.core.quantizer import (
    QuantSpec,
    broadcast_channelwise,
    compute_affine_params,
    dequantize_affine,
    per_channel_minmax,
    per_tensor_minmax,
    quantize_affine,
)
from repro.models.mobilenet_v1 import ConvBNBlock
from repro.nn.module import Module
from repro.nn.tensor import Parameter


class PACTFakeQuant(Module):
    """PACT activation fake-quantizer: ``quant_act(x) = floor(clamp(x,0,a)/S)*S``.

    The clipping bound ``alpha`` is learned by backpropagation; the
    quantization grid has ``2^bits`` levels on [0, alpha] with scale
    ``S = alpha / (2^bits - 1)`` (paper §3).
    """

    def __init__(self, bits: int = 8, alpha_init: float = 6.0, learn_alpha: bool = True):
        super().__init__()
        if alpha_init <= 0:
            raise ValueError("alpha_init must be positive")
        self.bits = bits
        self.learn_alpha = learn_alpha
        self.alpha = Parameter(np.array([float(alpha_init)]), name="alpha",
                               requires_grad=learn_alpha)
        self.enabled = True
        self._cache = None

    def set_bits(self, bits: int) -> None:
        self.bits = bits

    @property
    def scale(self) -> float:
        """Current activation scale S_x = alpha / (2^Q - 1)."""
        return float(self.alpha.data[0]) / (2 ** self.bits - 1)

    @property
    def zero_point(self) -> int:
        """PACT activations are unsigned with a zero offset."""
        return 0

    def quant_spec(self) -> QuantSpec:
        return QuantSpec(bits=self.bits, signed=False, per_channel=False)

    def forward(self, x):
        alpha = float(self.alpha.data[0])
        if not self.enabled:
            out = np.clip(x, 0.0, alpha)
            self._cache = {"pass_mask": (x > 0) & (x < alpha), "clip_mask": x >= alpha}
            return out
        s = alpha / (2 ** self.bits - 1)
        clipped = np.clip(x, 0.0, alpha)
        q = np.floor(clipped / s)
        q = np.clip(q, 0, 2 ** self.bits - 1)
        out = q * s
        self._cache = {
            "pass_mask": (x > 0) & (x < alpha),
            "clip_mask": x >= alpha,
        }
        return out

    def backward(self, grad_out):
        cache = self._cache
        # STE for the input: gradient passes where the input was inside
        # the clipping range, zero elsewhere.
        grad_x = grad_out * cache["pass_mask"]
        if self.learn_alpha:
            # PACT: d(quant_act)/d(alpha) = 1 where x >= alpha, 0 otherwise
            # (the quantization grid rescaling term is ignored, as in [2]).
            grad_alpha = float(np.sum(grad_out * cache["clip_mask"]))
            self.alpha.accumulate_grad(np.array([grad_alpha]))
        return grad_x

    def quantize_integer(self, x: np.ndarray) -> np.ndarray:
        """Integer codes of an activation tensor (used by tests/diagnostics)."""
        s = self.scale
        q = np.floor(np.clip(x, 0.0, float(self.alpha.data[0])) / s)
        return np.clip(q, 0, 2 ** self.bits - 1).astype(np.int64)


class WeightFakeQuant:
    """Weight fake-quantizer (stateless helper, not a Module).

    Schemes
    -------
    ``"minmax_pl"``:
        Asymmetric per-layer range from the tensor min/max (as in [11]).
    ``"minmax_pc"``:
        Asymmetric per-channel range along the output-channel axis ([13]).
    ``"pact_pl"``:
        Symmetric per-layer range with a learnable bound (PACT applied to
        weights, used by the paper's PL configurations).
    """

    SCHEMES = ("minmax_pl", "minmax_pc", "pact_pl")

    def __init__(self, bits: int = 8, scheme: str = "minmax_pc"):
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown weight quantization scheme {scheme!r}")
        self.bits = bits
        self.scheme = scheme
        # Learnable symmetric bound for the pact_pl scheme; lazily
        # initialised from the first tensor seen.
        self.alpha: Optional[float] = None

    def set_bits(self, bits: int) -> None:
        self.bits = bits

    @property
    def per_channel(self) -> bool:
        return self.scheme == "minmax_pc"

    def spec(self) -> QuantSpec:
        return QuantSpec(bits=self.bits, signed=False, per_channel=self.per_channel)

    def ranges(self, w: np.ndarray):
        """Quantization range (a, b) for the current scheme."""
        if self.scheme == "minmax_pl":
            a, b = per_tensor_minmax(w)
            return np.float64(a), np.float64(b)
        if self.scheme == "minmax_pc":
            a, b = per_channel_minmax(w, axis=0)
            return a, b
        # pact_pl: symmetric learned bound.
        if self.alpha is None:
            self.alpha = float(np.max(np.abs(w))) or 1.0
        return np.float64(-self.alpha), np.float64(self.alpha)

    def quant_params(self, w: np.ndarray):
        """(scale, zero_point, a, b) for the tensor under this scheme."""
        a, b = self.ranges(w)
        spec = self.spec()
        if self.per_channel:
            a_b = broadcast_channelwise(a, w.ndim, 0)
            b_b = broadcast_channelwise(b, w.ndim, 0)
            scale, zp = compute_affine_params(a, b, spec)
            return scale, zp, a_b, b_b
        scale, zp = compute_affine_params(a, b, spec)
        return scale, zp, a, b

    def fake_quantize(self, w: np.ndarray) -> np.ndarray:
        """Quantize-then-dequantize with the scheme's range (STE forward)."""
        spec = self.spec()
        scale, zp, a, b = self.quant_params(w)
        w_clamped = np.clip(w, a, b)
        if self.per_channel:
            scale_b = broadcast_channelwise(scale, w.ndim, 0)
            zp_b = broadcast_channelwise(zp, w.ndim, 0)
            q = quantize_affine(w_clamped, scale_b, zp_b, spec, rounding="round")
            return dequantize_affine(q, scale_b, zp_b)
        q = quantize_affine(w_clamped, scale, zp, spec, rounding="round")
        return dequantize_affine(q, scale, zp)

    def quantize_integer(self, w: np.ndarray):
        """Integer codes plus (scale, zero_point) for deployment export."""
        spec = self.spec()
        scale, zp, a, b = self.quant_params(w)
        w_clamped = np.clip(w, a, b)
        if self.per_channel:
            scale_b = broadcast_channelwise(scale, w.ndim, 0)
            zp_b = broadcast_channelwise(zp, w.ndim, 0)
            q = quantize_affine(w_clamped, scale_b, zp_b, spec, rounding="round")
        else:
            q = quantize_affine(w_clamped, scale, zp, spec, rounding="round")
        return q, np.atleast_1d(scale), np.atleast_1d(zp)


class QuantConvBNBlock(Module):
    """Fake-quantized conv -> batch-norm -> PACT-quantized activation.

    Wraps an existing :class:`~repro.models.mobilenet_v1.ConvBNBlock` so a
    pretrained full-precision model can be converted in place for QAT.
    ``fold_bn=True`` reproduces the PL+FB strategy of [11]: batch-norm
    scale/shift are folded into the convolution weights *before* weight
    quantization, which is exactly the step that breaks INT4 training
    (Table 2) because the per-channel BN scale inflates the per-layer
    weight range.
    """

    def __init__(
        self,
        block: ConvBNBlock,
        weight_bits: int = 8,
        act_bits: int = 8,
        weight_scheme: str = "minmax_pc",
        fold_bn: bool = False,
        act_alpha_init: float = 6.0,
    ):
        super().__init__()
        self.conv = block.conv
        self.bn = block.bn
        self.fold_bn = fold_bn
        self.folding_active = False  # paper: folding starts at the 2nd epoch
        self.weight_quant = WeightFakeQuant(bits=weight_bits, scheme=weight_scheme)
        self.act_quant = PACTFakeQuant(bits=act_bits, alpha_init=act_alpha_init)
        self._w_fp: Optional[np.ndarray] = None
        self._fold_scale: Optional[np.ndarray] = None

    # -- policy plumbing -------------------------------------------------
    def set_bits(self, weight_bits: int, act_bits: int) -> None:
        self.weight_quant.set_bits(weight_bits)
        self.act_quant.set_bits(act_bits)

    def enable_folding(self) -> None:
        if self.fold_bn:
            self.folding_active = True

    # -- forward / backward ----------------------------------------------
    def forward(self, x):
        self._w_fp = self.conv.weight.data.copy()
        if self.fold_bn and self.folding_active:
            scale, shift = self.bn.channel_scale_shift()
            self._fold_scale = scale
            w_folded = self._w_fp * broadcast_channelwise(scale, self._w_fp.ndim, 0)
            w_q = self.weight_quant.fake_quantize(w_folded)
            self.conv.weight.data[...] = w_q
            y = self.conv(x)
            y = y + broadcast_channelwise(shift, y.ndim, 1)
        else:
            self._fold_scale = None
            w_q = self.weight_quant.fake_quantize(self._w_fp)
            self.conv.weight.data[...] = w_q
            y = self.conv(x)
            y = self.bn(y)
        out = self.act_quant(y)
        # Restore the full-precision master weights for the optimizer step.
        self.conv.weight.data[...] = self._w_fp
        return out

    def backward(self, grad_out):
        grad = self.act_quant.backward(grad_out)
        if self.fold_bn and self.folding_active:
            # Shift is a constant w.r.t. the conv output here (BN frozen
            # during folded training), so the gradient passes through.
            w_fp = self.conv.weight.data.copy()
            w_folded_q = self.weight_quant.fake_quantize(
                w_fp * broadcast_channelwise(self._fold_scale, w_fp.ndim, 0)
            )
            self.conv.weight.data[...] = w_folded_q
            grad = self.conv.backward(grad)
            self.conv.weight.data[...] = w_fp
            # STE through quantization; chain rule through the folding scale.
            self.conv.weight.grad *= broadcast_channelwise(
                self._fold_scale, w_fp.ndim, 0
            )
        else:
            grad = self.bn.backward(grad)
            # The conv ran on quantized weights during forward; re-install
            # them so the cached im2col buffers stay consistent, then
            # restore the full-precision master copy (STE: the gradient
            # w.r.t. quantized weights is used for the master weights).
            w_fp = self.conv.weight.data.copy()
            self.conv.weight.data[...] = self.weight_quant.fake_quantize(w_fp)
            grad = self.conv.backward(grad)
            self.conv.weight.data[...] = w_fp
        return grad


class QuantLinear(Module):
    """Fake-quantized fully connected classifier.

    The classifier input is the (already quantized) output of the last
    conv block pooled spatially; its weights are quantized like any other
    layer and its output stays in full precision (logits).
    """

    def __init__(self, linear: nn.Linear, weight_bits: int = 8,
                 weight_scheme: str = "minmax_pc"):
        super().__init__()
        self.linear = linear
        self.weight_quant = WeightFakeQuant(bits=weight_bits, scheme=weight_scheme)
        self._w_fp: Optional[np.ndarray] = None

    def set_bits(self, weight_bits: int) -> None:
        self.weight_quant.set_bits(weight_bits)

    def forward(self, x):
        self._w_fp = self.linear.weight.data.copy()
        w_q = self.weight_quant.fake_quantize(self._w_fp)
        self.linear.weight.data[...] = w_q
        out = self.linear(x)
        self.linear.weight.data[...] = self._w_fp
        return out

    def backward(self, grad_out):
        w_fp = self.linear.weight.data.copy()
        self.linear.weight.data[...] = self.weight_quant.fake_quantize(w_fp)
        grad = self.linear.backward(grad_out)
        self.linear.weight.data[...] = w_fp
        return grad
