"""Core contribution of the paper: quantizers, ICN conversion,
memory model (Table 1) and the memory-driven mixed-precision search
(Algorithms 1 and 2)."""

from repro.core.quantizer import (
    QuantSpec,
    compute_affine_params,
    quantize_affine,
    dequantize_affine,
    fake_quantize,
    per_channel_minmax,
    per_tensor_minmax,
)
from repro.core.policy import LayerPolicy, QuantPolicy, QuantMethod
from repro.core.memory_model import (
    MemoryModel,
    tensor_bytes,
    layer_weight_bytes,
    layer_extra_params_bytes,
    network_ro_bytes,
    network_rw_peak_bytes,
)
from repro.core.mixed_precision import (
    MemoryInfeasibleError,
    cut_activation_bits,
    cut_weight_bits,
    search_mixed_precision,
)
from repro.core.fake_quant import (
    PACTFakeQuant,
    WeightFakeQuant,
    QuantConvBNBlock,
    QuantLinear,
)
from repro.core.icn import (
    ICNParams,
    FoldedBNParams,
    ThresholdParams,
    compute_icn_params,
    compute_folded_params,
    compute_thresholds,
    decompose_fixed_point,
    icn_requantize,
)
from repro.core.graph_convert import convert_to_integer_network
from repro.core.range_estimators import (
    RANGE_ESTIMATORS,
    minmax_range,
    percentile_range,
    mse_range,
    kl_divergence_range,
    per_channel_ranges,
    quantization_snr_db,
)

__all__ = [
    "RANGE_ESTIMATORS",
    "minmax_range",
    "percentile_range",
    "mse_range",
    "kl_divergence_range",
    "per_channel_ranges",
    "quantization_snr_db",
    "QuantSpec",
    "compute_affine_params",
    "quantize_affine",
    "dequantize_affine",
    "fake_quantize",
    "per_channel_minmax",
    "per_tensor_minmax",
    "LayerPolicy",
    "QuantPolicy",
    "QuantMethod",
    "MemoryModel",
    "tensor_bytes",
    "layer_weight_bytes",
    "layer_extra_params_bytes",
    "network_ro_bytes",
    "network_rw_peak_bytes",
    "MemoryInfeasibleError",
    "cut_activation_bits",
    "cut_weight_bits",
    "search_mixed_precision",
    "PACTFakeQuant",
    "WeightFakeQuant",
    "QuantConvBNBlock",
    "QuantLinear",
    "ICNParams",
    "FoldedBNParams",
    "ThresholdParams",
    "compute_icn_params",
    "compute_folded_params",
    "compute_thresholds",
    "decompose_fixed_point",
    "icn_requantize",
    "convert_to_integer_network",
]
