"""Quantization policies: the per-tensor bit assignment the search produces.

A :class:`QuantPolicy` is the artifact connecting the three stages of the
flow: the memory-driven search writes it, the QAT stage reads it to build
fake-quantized layers, and the deployment stage reads it to size the
integer-only graph and the MCU memory/latency reports.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, asdict
from enum import Enum
from typing import Dict, List, Optional

from repro.models.model_zoo import NetworkSpec


class QuantMethod(str, Enum):
    """Deployment strategies compared in the paper (Tables 1 and 2)."""

    PL_FB = "PL+FB"            # per-layer quantization, batch-norm folding [11]
    PL_ICN = "PL+ICN"          # per-layer quantization, ICN activation (ours)
    PC_ICN = "PC+ICN"          # per-channel quantization, ICN activation (ours)
    PC_THRESHOLDS = "PC+Thr"   # per-channel quantization, integer thresholds [21, 8]

    @property
    def per_channel(self) -> bool:
        return self in (QuantMethod.PC_ICN, QuantMethod.PC_THRESHOLDS)

    @property
    def uses_icn(self) -> bool:
        return self in (QuantMethod.PL_ICN, QuantMethod.PC_ICN)

    @property
    def folds_batchnorm(self) -> bool:
        return self is QuantMethod.PL_FB


@dataclass
class LayerPolicy:
    """Bit precision assignment of one quantized convolutional layer.

    ``q_in`` / ``q_out`` are the activation bit widths Q_x and Q_y; ``q_w``
    is the weight bit width Q_w.  Because y_i == x_{i+1} the policies of
    adjacent layers share their boundary value by construction.
    """

    index: int
    name: str
    q_w: int = 8
    q_in: int = 8
    q_out: int = 8

    def as_dict(self) -> Dict:
        return asdict(self)


@dataclass
class QuantPolicy:
    """Per-network bit assignment plus the deployment method."""

    network: str
    method: QuantMethod
    layers: List[LayerPolicy] = field(default_factory=list)
    feasible: bool = True
    notes: str = ""

    # -- construction ---------------------------------------------------
    @classmethod
    def uniform(
        cls,
        spec: NetworkSpec,
        method: QuantMethod = QuantMethod.PC_ICN,
        bits: int = 8,
        input_bits: int = 8,
    ) -> "QuantPolicy":
        """A homogeneous policy (the initialisation of Algorithms 1/2)."""
        layers = []
        for i, layer in enumerate(spec.layers):
            q_in = input_bits if i == 0 else bits
            layers.append(LayerPolicy(index=i, name=layer.name, q_w=bits, q_in=q_in, q_out=bits))
        # chain consistency: q_out[i] == q_in[i+1]
        for i in range(len(layers) - 1):
            layers[i].q_out = layers[i + 1].q_in
        return cls(network=spec.name, method=method, layers=layers)

    # -- accessors ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, idx: int) -> LayerPolicy:
        return self.layers[idx]

    def weight_bits(self) -> List[int]:
        return [l.q_w for l in self.layers]

    def activation_bits(self) -> List[int]:
        """Output-activation bit widths Q_y per layer."""
        return [l.q_out for l in self.layers]

    def is_uniform(self, bits: int = 8) -> bool:
        return all(l.q_w == bits and l.q_out == bits for l in self.layers) and all(
            l.q_in == bits for l in self.layers[1:]
        )

    def link_activations(self) -> None:
        """Re-impose the chain constraint q_out[i] == q_in[i+1]."""
        for i in range(len(self.layers) - 1):
            self.layers[i + 1].q_in = self.layers[i].q_out

    def validate(self) -> None:
        """Raise ``ValueError`` if the policy violates structural invariants."""
        from repro.core.quantizer import VALID_BITS

        for i, l in enumerate(self.layers):
            for q in (l.q_w, l.q_in, l.q_out):
                if q not in VALID_BITS:
                    raise ValueError(f"layer {l.name}: bit width {q} not in {VALID_BITS}")
            if i > 0 and l.q_in != self.layers[i - 1].q_out:
                raise ValueError(
                    f"activation chain broken at layer {i}: q_in={l.q_in} but "
                    f"previous q_out={self.layers[i - 1].q_out}"
                )
        if self.layers and self.layers[0].q_in != 8:
            raise ValueError("the network input is fixed at 8 bit (paper §5)")

    # -- serialisation --------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "network": self.network,
            "method": self.method.value,
            "feasible": self.feasible,
            "notes": self.notes,
            "layers": [l.as_dict() for l in self.layers],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, d: Dict) -> "QuantPolicy":
        method = QuantMethod(d["method"])
        layers = [LayerPolicy(**l) for l in d["layers"]]
        return cls(
            network=d["network"],
            method=method,
            layers=layers,
            feasible=d.get("feasible", True),
            notes=d.get("notes", ""),
        )

    @classmethod
    def from_json(cls, s: str) -> "QuantPolicy":
        return cls.from_dict(json.loads(s))

    def summary(self) -> str:
        """Compact human-readable description (used by examples/benches)."""
        rows = [f"policy for {self.network} [{self.method.value}]"]
        for l in self.layers:
            rows.append(f"  {l.index:2d} {l.name:<14s} w={l.q_w} in={l.q_in} out={l.q_out}")
        return "\n".join(rows)
