"""Conversion of a fake-quantized model g(x) into the integer-only
deployment model g'(x) (paper Fig. 1 and §4).

The converter walks the conv/bn/quant-act blocks of a QAT-prepared model,
extracts the learned quantization ranges and frozen batch-norm statistics,
and materialises one :class:`~repro.inference.engine.IntegerConvLayer` per
block with the requantization parameters of the chosen strategy:

* ``PL+FB``  — fold batch-norm into per-layer-quantized weights ([11]);
* ``PL+ICN`` / ``PC+ICN`` — keep batch-norm unfolded and insert the
  Integer Channel-Normalization activation (Eq. 5);
* ``PC+Thr`` — per-channel integer thresholds ([21, 8]).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.fake_quant import QuantConvBNBlock, QuantLinear, WeightFakeQuant
from repro.core.icn import (
    compute_folded_params,
    compute_icn_params,
    compute_thresholds,
)
from repro.core.policy import QuantMethod
from repro.inference.engine import (
    IntegerAvgPool,
    IntegerConvLayer,
    IntegerLinearLayer,
    IntegerNetwork,
)
from repro.nn.layers import DepthwiseConv2d


def _layer_kind(conv) -> str:
    if isinstance(conv, DepthwiseConv2d):
        return "dw"
    if getattr(conv, "kernel_size", None) == 1:
        return "pw"
    return "conv"


def _convert_block(
    block: QuantConvBNBlock,
    method: QuantMethod,
    in_scale: float,
    in_zero_point: int,
    in_bits: int,
    name: str,
) -> IntegerConvLayer:
    conv = block.conv
    bn = block.bn
    out_bits = block.act_quant.bits
    out_scale = block.act_quant.scale
    z_y = block.act_quant.zero_point
    w_bits = block.weight_quant.bits
    conv_bias = conv.bias.data if getattr(conv, "bias", None) is not None else None

    if method is QuantMethod.PL_FB:
        scale, shift = bn.channel_scale_shift()
        w_folded = conv.weight.data * scale.reshape((-1,) + (1,) * (conv.weight.data.ndim - 1))
        folder = WeightFakeQuant(bits=w_bits, scheme="minmax_pl")
        w_q, s_w, z_w = folder.quantize_integer(w_folded)
        folded_bias = shift if conv_bias is None else shift + conv_bias * scale
        params = compute_folded_params(
            w_q, float(s_w[0]), int(z_w[0]), in_scale, in_zero_point,
            out_scale, z_y, out_bits, w_bits, folded_bias,
        )
    else:
        w_q, s_w, z_w = block.weight_quant.quantize_integer(conv.weight.data)
        per_channel = block.weight_quant.per_channel
        std = np.sqrt(bn._buffers["running_var"] + bn.eps)
        icn = compute_icn_params(
            w_q,
            s_w if per_channel else float(s_w[0]),
            z_w if per_channel else int(z_w[0]),
            in_scale, in_zero_point, out_scale, z_y, out_bits, w_bits,
            bn_gamma=bn.gamma.data,
            bn_beta=bn.beta.data,
            bn_mean=bn._buffers["running_mean"],
            bn_std=std,
            conv_bias=conv_bias,
            per_channel=per_channel,
        )
        params = compute_thresholds(icn) if method is QuantMethod.PC_THRESHOLDS else icn

    return IntegerConvLayer(
        name=name,
        kind=_layer_kind(conv),
        stride=conv.stride,
        padding=conv.padding,
        params=params,
        in_bits=in_bits,
        out_bits=out_bits,
        in_scale=in_scale,
        out_scale=out_scale,
    )


def convert_to_integer_network(
    model,
    method: QuantMethod = QuantMethod.PC_ICN,
    input_scale: float = 1.0 / 255.0,
    input_zero_point: int = 0,
    input_bits: int = 8,
) -> IntegerNetwork:
    """Convert a QAT-prepared model into an :class:`IntegerNetwork`.

    ``model`` must expose ``features`` (a Sequential of
    :class:`QuantConvBNBlock`), ``pool`` and ``classifier`` (a
    :class:`QuantLinear`) — the structure produced by
    :func:`repro.training.qat.prepare_qat`.
    """
    blocks = list(model.features)
    if not blocks:
        raise ValueError("model has no convolutional blocks to convert")
    for i, b in enumerate(blocks):
        if not isinstance(b, QuantConvBNBlock):
            raise TypeError(
                f"block {i} is {type(b).__name__}; run prepare_qat() before conversion"
            )

    conv_layers = []
    in_scale = input_scale
    in_zp = input_zero_point
    in_bits = input_bits
    for i, block in enumerate(blocks):
        layer = _convert_block(block, method, in_scale, in_zp, in_bits, name=f"layer{i}")
        conv_layers.append(layer)
        in_scale = block.act_quant.scale
        in_zp = block.act_quant.zero_point
        in_bits = block.act_quant.bits

    classifier: Optional[IntegerLinearLayer] = None
    if isinstance(getattr(model, "classifier", None), QuantLinear):
        qlin = model.classifier
        w_q, s_w, z_w = qlin.weight_quant.quantize_integer(qlin.linear.weight.data)
        bias = qlin.linear.bias.data if qlin.linear.bias is not None else None
        classifier = IntegerLinearLayer(
            name="classifier",
            weights_q=w_q,
            z_w=z_w,
            s_w=s_w,
            z_x=in_zp,
            s_in=in_scale,
            bias=bias,
            in_bits=in_bits,
            w_bits=qlin.weight_quant.bits,
        )

    return IntegerNetwork(
        conv_layers=conv_layers,
        pool=IntegerAvgPool(),
        classifier=classifier,
        input_scale=input_scale,
        input_zero_point=input_zero_point,
        input_bits=input_bits,
    )
