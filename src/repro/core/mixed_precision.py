"""Memory-driven mixed-precision bit selection (paper §5, Algorithms 1–2).

Given a network spec and the RO/RW memory budgets of a device, the search
assigns a bit width from {8, 4, 2} to every activation and weight tensor:

* :func:`cut_activation_bits` (Algorithm 1) sweeps the layer list forward
  and backward, cutting the output (forward) or input (backward) tensor of
  any layer whose activation pair exceeds the RW budget, as decided by the
  ``CutBits`` rule: the victim must be above the minimum precision and
  either hold more bits than its sibling tensor, or the same bits but a
  larger footprint.
* :func:`cut_weight_bits` (Algorithm 2) repeatedly scores layers by their
  share of the total weight footprint and cuts the earliest layer whose
  score is within ``delta`` of the maximum, which biases cuts toward
  central layers and away from the quantization-critical final layers.

Both procedures apply one *step* per cut (8 -> 4 -> 2).  The search is
static: it runs before quantization-aware retraining (§2, "Compared to
this, our methodology ... applies statically").
"""

from __future__ import annotations

from typing import Sequence

from repro.core.memory_model import (
    layer_extra_params_bytes,
    layer_weight_bytes,
    tensor_bytes,
)
from repro.core.policy import QuantMethod, QuantPolicy
from repro.models.model_zoo import NetworkSpec

#: Admissible precisions, ordered from highest to lowest (paper §5).
BIT_STEPS: Sequence[int] = (8, 4, 2)


class MemoryInfeasibleError(RuntimeError):
    """Raised when no bit assignment within {8,4,2} satisfies the budgets."""


def _next_step_down(bits: int) -> int:
    """One quantization step down (8 -> 4 -> 2); raises at the bottom."""
    idx = BIT_STEPS.index(bits)
    if idx == len(BIT_STEPS) - 1:
        raise ValueError(f"cannot reduce below {bits} bits")
    return BIT_STEPS[idx + 1]


def _cut_bits_rule(
    mem_keep: int, q_keep: int, mem_cut: int, q_cut: int, q_min: int
) -> bool:
    """The ``CutBits`` predicate of Algorithm 1.

    ``(mem_keep, q_keep)`` describe the tensor that is *not* being cut this
    pass (x during forward, y during backward); ``(mem_cut, q_cut)`` the
    candidate.  Returns True when the candidate's precision should be
    decremented.
    """
    if q_cut <= q_min:
        return False
    if q_cut > q_keep:
        return True
    if q_cut == q_keep and mem_cut > mem_keep:
        return True
    return False


def cut_activation_bits(
    spec: NetworkSpec,
    policy: QuantPolicy,
    rw_budget: int,
    q_min: int = 2,
    max_outer_iterations: int = 64,
) -> QuantPolicy:
    """Algorithm 1: cut activation bits until Eq. 7 holds for every layer.

    The policy is modified in place (and also returned).  ``q_in`` of the
    first layer is never touched (the sensor input is fixed at 8 bit).

    Raises
    ------
    MemoryInfeasibleError
        If the RW constraint cannot be met even at the minimum precision.
    """
    if q_min not in BIT_STEPS:
        raise ValueError(f"q_min must be one of {tuple(BIT_STEPS)}")
    layers = spec.layers
    n = len(layers)
    if n != len(policy):
        raise ValueError("policy and spec layer counts differ")

    def mem_in(i: int) -> int:
        return tensor_bytes(layers[i].input_activation_count, policy[i].q_in)

    def mem_out(i: int) -> int:
        return tensor_bytes(layers[i].output_activation_count, policy[i].q_out)

    def violated(i: int) -> bool:
        return mem_in(i) + mem_out(i) > rw_budget

    def set_q_out(i: int, q: int) -> None:
        policy[i].q_out = q
        if i + 1 < n:
            policy[i + 1].q_in = q

    def set_q_in(i: int, q: int) -> None:
        policy[i].q_in = q
        if i - 1 >= 0:
            policy[i - 1].q_out = q

    for _ in range(max_outer_iterations):
        if not any(violated(i) for i in range(n)):
            policy.feasible = True
            return policy
        cuts_applied = 0
        # Forward pass: cut output tensors.
        for i in range(0, n - 1):
            while violated(i) and _cut_bits_rule(
                mem_in(i), policy[i].q_in, mem_out(i), policy[i].q_out, q_min
            ):
                set_q_out(i, _next_step_down(policy[i].q_out))
                cuts_applied += 1
        # Backward pass: cut input tensors.
        for i in range(n - 1, 0, -1):
            while violated(i) and _cut_bits_rule(
                mem_out(i), policy[i].q_out, mem_in(i), policy[i].q_in, q_min
            ):
                set_q_in(i, _next_step_down(policy[i].q_in))
                cuts_applied += 1
        if cuts_applied == 0:
            # Tie-break not covered by the paper's rule: a violated layer
            # whose input and output have the same precision and the same
            # footprint would never be cut.  Cut the output tensor (or the
            # input when the output is already at the minimum).
            for i in range(n):
                if not violated(i):
                    continue
                if policy[i].q_out > q_min and i < n - 1:
                    set_q_out(i, _next_step_down(policy[i].q_out))
                    cuts_applied += 1
                elif policy[i].q_in > q_min and i > 0:
                    set_q_in(i, _next_step_down(policy[i].q_in))
                    cuts_applied += 1
            if cuts_applied == 0:
                break

    if any(violated(i) for i in range(n)):
        policy.feasible = False
        raise MemoryInfeasibleError(
            f"RW budget of {rw_budget} bytes cannot be met for {spec.name}: "
            f"peak activation pair is "
            f"{max(mem_in(i) + mem_out(i) for i in range(n))} bytes at the "
            f"minimum precision reachable by Algorithm 1"
        )
    policy.feasible = True
    return policy


def cut_weight_bits(
    spec: NetworkSpec,
    policy: QuantPolicy,
    ro_budget: int,
    q_min: int = 2,
    delta: float = 0.05,
    max_iterations: int = 10_000,
) -> QuantPolicy:
    """Algorithm 2: cut weight bits until Eq. 6 holds.

    ``delta`` is the margin of the layer-score rule: among all layers whose
    footprint ratio is within ``delta`` of the maximum, the one with the
    smallest index is cut, which favours central layers over the final
    (quantization-critical) ones.
    """
    if q_min not in BIT_STEPS:
        raise ValueError(f"q_min must be one of {tuple(BIT_STEPS)}")
    if not 0 <= delta < 1:
        raise ValueError("delta must be in [0, 1)")
    layers = spec.layers
    if len(layers) != len(policy):
        raise ValueError("policy and spec layer counts differ")

    def ro_total() -> int:
        return sum(
            layer_weight_bytes(l, p.q_w)
            + layer_extra_params_bytes(l, policy.method, p.q_out)
            for l, p in zip(layers, policy.layers)
        )

    for _ in range(max_iterations):
        if ro_total() <= ro_budget:
            policy.feasible = policy.feasible and True
            return policy
        weight_total = sum(layer_weight_bytes(l, p.q_w) for l, p in zip(layers, policy.layers))
        scores = []
        for i, (l, p) in enumerate(zip(layers, policy.layers)):
            if p.q_w > q_min:
                scores.append((i, layer_weight_bytes(l, p.q_w) / max(weight_total, 1)))
        if not scores:
            break
        r_max = max(r for _, r in scores)
        # The paper states "ri > (R - delta)"; >= keeps the rule well defined
        # for delta = 0 (the maximal layer itself always qualifies).
        candidates = [i for i, r in scores if r >= r_max - delta]
        k = min(candidates)
        policy[k].q_w = _next_step_down(policy[k].q_w)

    if ro_total() > ro_budget:
        policy.feasible = False
        raise MemoryInfeasibleError(
            f"RO budget of {ro_budget} bytes cannot be met for {spec.name}: "
            f"footprint is {ro_total()} bytes with every weight tensor at "
            f"{q_min} bits"
        )
    return policy


def search_mixed_precision(
    spec: NetworkSpec,
    ro_budget: int,
    rw_budget: int,
    method: QuantMethod = QuantMethod.PC_ICN,
    q_min_act: int = 2,
    q_min_w: int = 2,
    delta: float = 0.05,
    strict: bool = True,
) -> QuantPolicy:
    """End-to-end memory-driven search (§5): activations first, then weights.

    Parameters
    ----------
    spec:
        The network's layer shapes.
    ro_budget, rw_budget:
        Flash and RAM budgets in bytes (e.g. 2 MB / 512 kB for STM32H7).
    method:
        Deployment strategy; affects the ``MT_A`` term of Eq. 6.
    strict:
        When False, infeasible budgets return the best-effort policy with
        ``feasible=False`` instead of raising.
    """
    policy = QuantPolicy.uniform(spec, method=method, bits=8)
    try:
        cut_activation_bits(spec, policy, rw_budget, q_min=q_min_act)
        cut_weight_bits(spec, policy, ro_budget, q_min=q_min_w, delta=delta)
    except MemoryInfeasibleError:
        if strict:
            raise
        policy.feasible = False
        policy.notes = "budgets infeasible within {8,4,2}-bit precision"
    policy.link_activations()
    return policy
