"""Integer Channel-Normalization (ICN) conversion (paper §4, Eq. 3–5).

A fake-quantized sub-graph ``conv -> batch-norm -> quant_act`` computes

    y = quant_act((phi - mu)/sigma * gamma + beta),   phi = sum x*w  (Eq. 3)

With the affine quantization rules of the input (scale ``S_i``, zero
``Z_x``), the weights (``S_w``, ``Z_w``, possibly per-channel) and the
output activation (``S_o``, ``Z_y``), the integer-only form is

    Y = clamp(Z_y + floor(M0 * 2^N0 * (Phi + Bq)), 0, 2^Q - 1)     (Eq. 5)

where ``Phi = sum (X - Z_x)(W - Z_w)`` is the integer convolution output,
``Bq = round((B - mu + beta*sigma/gamma) / (S_i S_w))`` the quantized
bias, and ``M = S_i S_w gamma / (S_o sigma)`` decomposed per channel as
``M = M0 * 2^N0`` with ``0.5 <= |M0| < 1`` stored as a signed Q31
fixed-point mantissa.

Two alternative requantization strategies are provided for comparison:

* **Folded batch-norm** (PL+FB, [11]): gamma/sigma is folded into the
  weights before quantization, leaving a per-layer scalar multiplier.
* **Integer thresholds** ([21, 8]): each of the ``2^Q`` output levels of a
  channel gets an explicit INT32 threshold on ``Phi``; the output is the
  index of the bracketing interval.  Lossless but ``c_O * 2^Q`` thresholds
  of memory (Table 1, last row).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

# Number of fractional bits of the M0 mantissa (signed Q31, stored INT32).
M0_FRACTIONAL_BITS = 31


# ----------------------------------------------------------------------
# Fixed-point decomposition
# ----------------------------------------------------------------------
def decompose_fixed_point(m: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Decompose each element of ``m`` as ``m = m0 * 2^n0``.

    ``m0`` is a signed fractional value with ``0.5 <= |m0| < 1`` (zero maps
    to zero) and ``n0`` an integer exponent, as required by Eq. 5.  Returns
    ``(m0, n0)`` as float64 / int64 arrays of the same shape as ``m``.
    """
    m = np.asarray(m, dtype=np.float64)
    m0 = np.zeros_like(m)
    n0 = np.zeros(m.shape, dtype=np.int64)
    nonzero = m != 0
    if np.any(nonzero):
        mant, exp = np.frexp(m[nonzero])  # m = mant * 2^exp, 0.5 <= |mant| < 1
        m0[nonzero] = mant
        n0[nonzero] = exp
    return m0, n0


def quantize_mantissa(m0: np.ndarray, frac_bits: int = M0_FRACTIONAL_BITS) -> np.ndarray:
    """Round the fractional mantissa to a signed fixed-point integer."""
    return np.round(np.asarray(m0, dtype=np.float64) * (1 << frac_bits)).astype(np.int64)


def quantize_multiplier(m: np.ndarray, frac_bits: int = M0_FRACTIONAL_BITS):
    """Decompose real multipliers into (INT32 mantissa, exponent) pairs.

    Combines :func:`decompose_fixed_point` and :func:`quantize_mantissa`
    and renormalises the corner case where rounding pushes the mantissa to
    exactly ``±2^frac_bits`` (i.e. |m0| = 1.0), which must be re-expressed
    as ``±2^(frac_bits-1)`` with the exponent incremented to stay inside
    the signed fixed-point range.
    """
    m0_f, n0 = decompose_fixed_point(m)
    m0_int = quantize_mantissa(m0_f, frac_bits)
    limit = 1 << frac_bits
    overflow = np.abs(m0_int) >= limit
    if np.any(overflow):
        m0_int = np.where(overflow, np.sign(m0_int) * (limit >> 1), m0_int)
        n0 = np.where(overflow, n0 + 1, n0)
    return m0_int.astype(np.int64), n0.astype(np.int64)


def mantissa_to_float(m0_int: np.ndarray, frac_bits: int = M0_FRACTIONAL_BITS) -> np.ndarray:
    """Inverse of :func:`quantize_mantissa`."""
    return np.asarray(m0_int, dtype=np.float64) / (1 << frac_bits)


# ----------------------------------------------------------------------
# Parameter containers
# ----------------------------------------------------------------------
@dataclass
class ICNParams:
    """Static integer parameters of one ICN layer (Eq. 5).

    All arrays have length ``c_O``.  ``m0`` is the INT32 fixed-point
    mantissa (Q31), ``n0`` the INT8 exponent, ``bq`` the INT32 bias.
    """

    weights_q: np.ndarray          # UINT-Qw integer weight codes
    z_w: np.ndarray                # weight zero-point(s): scalar (PL) or per-channel (PC)
    z_x: int                       # input activation zero-point
    z_y: int                       # output activation zero-point
    bq: np.ndarray                 # INT32 quantized bias, per channel
    m0: np.ndarray                 # INT32 fixed-point mantissa, per channel
    n0: np.ndarray                 # INT8 exponent, per channel
    out_bits: int                  # Q of the output activation
    w_bits: int                    # Q of the weights
    per_channel: bool

    @property
    def out_channels(self) -> int:
        return int(self.bq.shape[0])


@dataclass
class FoldedBNParams:
    """Static parameters of the folded-batch-norm deployment (PL+FB, [11]).

    The BN scale is folded into the weights, so requantization only needs a
    per-layer scalar multiplier ``m0 * 2^n0`` plus a per-channel bias.
    """

    weights_q: np.ndarray
    z_w: int
    z_x: int
    z_y: int
    bq: np.ndarray
    m0: int
    n0: int
    out_bits: int
    w_bits: int


@dataclass
class ThresholdParams:
    """Per-channel integer thresholds ([21, 8]): ``c_O x 2^Q`` INT32 values.

    ``thresholds[c, j]`` is the smallest ``Phi`` for which the output of
    channel ``c`` is at least ``j``; ``direction[c]`` is +1 when the
    channel's transfer function is increasing in ``Phi`` and -1 otherwise
    (a negative batch-norm gamma flips the monotonicity).
    """

    weights_q: np.ndarray
    z_w: np.ndarray
    z_x: int
    thresholds: np.ndarray
    direction: np.ndarray
    out_bits: int
    w_bits: int


# ----------------------------------------------------------------------
# Conversion from fake-quantized parameters
# ----------------------------------------------------------------------
def _as_channel_vector(value, c_o: int) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64).reshape(-1)
    if arr.size == 1:
        return np.full(c_o, float(arr[0]))
    if arr.size != c_o:
        raise ValueError(f"expected scalar or length-{c_o} vector, got size {arr.size}")
    return arr


def compute_icn_params(
    weights_q: np.ndarray,
    s_w: np.ndarray | float,
    z_w: np.ndarray | int,
    s_in: float,
    z_x: int,
    s_out: float,
    z_y: int,
    out_bits: int,
    w_bits: int,
    bn_gamma: np.ndarray,
    bn_beta: np.ndarray,
    bn_mean: np.ndarray,
    bn_std: np.ndarray,
    conv_bias: Optional[np.ndarray] = None,
    per_channel: bool = False,
) -> ICNParams:
    """Derive the ICN parameters of Eq. 4–5 for one layer.

    ``bn_std`` is ``sqrt(var + eps)`` (the ``sigma`` of Eq. 3).  When the
    layer has no batch normalisation pass ``gamma=1, beta=0, mean=0,
    std=1``.  ``s_w``/``z_w`` may be scalars (PL) or per-channel vectors
    (PC).
    """
    c_o = weights_q.shape[0]
    gamma = _as_channel_vector(bn_gamma, c_o)
    beta = _as_channel_vector(bn_beta, c_o)
    mu = _as_channel_vector(bn_mean, c_o)
    sigma = _as_channel_vector(bn_std, c_o)
    s_w_vec = _as_channel_vector(s_w, c_o)
    bias = _as_channel_vector(conv_bias if conv_bias is not None else 0.0, c_o)

    if np.any(sigma <= 0):
        raise ValueError("batch-norm std must be strictly positive")
    # A zero (or denormal) gamma makes Eq. 4's beta*sigma/gamma undefined;
    # clamp its magnitude so the channel degrades gracefully instead of
    # producing non-finite parameters.  BN gammas of trained networks are
    # far from this regime.
    tiny = np.abs(gamma) < 1e-6
    if np.any(tiny):
        gamma = np.where(tiny, np.where(gamma < 0, -1e-6, 1e-6), gamma)

    int32_min, int32_max = -(2 ** 31), 2 ** 31 - 1
    # Eq. 4: Bq = round((B - mu + beta*sigma/gamma) / (S_i * S_w)), stored INT32.
    bq_real = np.round((bias - mu + beta * sigma / gamma) / (s_in * s_w_vec))
    bq = np.clip(bq_real, int32_min, int32_max).astype(np.int64)
    # M = S_i S_w gamma / (S_o sigma), per channel.
    m = s_in * s_w_vec * gamma / (s_out * sigma)
    m0, n0 = quantize_multiplier(m)

    z_w_arr = np.asarray(z_w, dtype=np.int64).reshape(-1)
    if not per_channel and z_w_arr.size != 1:
        raise ValueError("per-layer conversion expects a scalar weight zero point")
    if per_channel and z_w_arr.size == 1:
        z_w_arr = np.full(c_o, int(z_w_arr[0]), dtype=np.int64)

    return ICNParams(
        # Keep the quantizer's narrow container dtype (uint8 for <= 8-bit
        # codes); the kernels widen on the fly inside their GEMM loops.
        weights_q=np.asarray(weights_q),
        z_w=z_w_arr,
        z_x=int(z_x),
        z_y=int(z_y),
        bq=bq,
        m0=m0,
        n0=n0.astype(np.int64),
        out_bits=out_bits,
        w_bits=w_bits,
        per_channel=per_channel,
    )


def compute_folded_params(
    weights_folded_q: np.ndarray,
    s_w: float,
    z_w: int,
    s_in: float,
    z_x: int,
    s_out: float,
    z_y: int,
    out_bits: int,
    w_bits: int,
    folded_bias: np.ndarray,
) -> FoldedBNParams:
    """Deployment parameters of the PL+FB strategy ([11]).

    ``weights_folded_q`` are the integer codes of the *folded* weights
    (gamma/sigma already multiplied in) under a per-layer scale ``s_w``;
    ``folded_bias`` is the per-channel real-valued bias
    ``beta - gamma*mu/sigma`` (plus any conv bias).
    """
    c_o = weights_folded_q.shape[0]
    bq = np.round(_as_channel_vector(folded_bias, c_o) / (s_in * s_w)).astype(np.int64)
    m0, n0 = quantize_multiplier(np.array([s_in * s_w / s_out]))
    return FoldedBNParams(
        weights_q=np.asarray(weights_folded_q),
        z_w=int(z_w),
        z_x=int(z_x),
        z_y=int(z_y),
        bq=bq,
        m0=int(m0[0]),
        n0=int(n0[0]),
        out_bits=out_bits,
        w_bits=w_bits,
    )


def compute_thresholds(icn: ICNParams) -> ThresholdParams:
    """Integer-threshold parameters equivalent to an ICN layer ([21, 8]).

    For each output channel ``c`` with multiplier ``M_c = m0_c * 2^{n0_c}``
    the output level is ``Y = clamp(Z_y + floor(M_c (Phi + Bq_c)), 0,
    2^Q-1)``, a monotone staircase in ``Phi``.  ``thresholds[c, j]`` stores
    the smallest integer ``Phi`` that yields ``Y >= j`` (largest when the
    channel is decreasing), so inference reduces to one binary search per
    output value.
    """
    levels = 2 ** icn.out_bits
    c_o = icn.out_channels
    thresholds = np.zeros((c_o, levels), dtype=np.int64)
    direction = np.ones(c_o, dtype=np.int64)
    int64_max = np.iinfo(np.int64).max
    int64_min = np.iinfo(np.int64).min
    for c in range(c_o):
        m0 = int(icn.m0[c])
        n0 = int(icn.n0[c])
        bq = int(icn.bq[c])
        direction[c] = 1 if m0 >= 0 else -1
        for j in range(levels):
            target = j - icn.z_y
            if m0 == 0:
                # Constant channel: output is always clamp(Zy, ...); every
                # positive level is unreachable.
                thresholds[c, j] = int64_max if target > 0 else int64_min
                continue
            # Exact integer condition:  Y >= j
            #   <=> floor(m0 * (Phi+Bq) / 2^(31-n0)) >= target
            #   <=> m0 * (Phi+Bq) >= target * 2^(31-n0)
            # (arbitrary-precision Python ints avoid any overflow).
            shift = M0_FRACTIONAL_BITS - n0
            rhs = target * (1 << shift) if shift >= 0 else None
            if rhs is None:
                rhs = target // (1 << (-shift))
            if m0 > 0:
                # Phi + Bq >= ceil(rhs / m0)
                bound = -((-rhs) // m0) - bq
            else:
                # Dividing by a negative flips the inequality:
                # Phi + Bq <= floor(rhs / m0)
                bound = (rhs // m0) - bq
            thresholds[c, j] = int(np.clip(bound, int64_min, int64_max))
    return ThresholdParams(
        weights_q=icn.weights_q,
        z_w=icn.z_w,
        z_x=icn.z_x,
        thresholds=thresholds,
        direction=direction,
        out_bits=icn.out_bits,
        w_bits=icn.w_bits,
    )


# ----------------------------------------------------------------------
# Integer requantization (the arithmetic of Eq. 5)
# ----------------------------------------------------------------------
def _fixed_point_scale(acc: np.ndarray, m0_int: np.ndarray, n0: np.ndarray) -> np.ndarray:
    """Integer-exact ``floor(m0 * 2^n0 * acc)`` with ``m0 = m0_int / 2^31``.

    The product ``m0_int * acc`` stays within int64 for the accumulator
    magnitudes produced by the layers considered here (|acc| < 2^31,
    |m0_int| <= 2^31), and ``floor`` of the scaled value is an exact
    arithmetic shift: ``floor_divide(m0_int * acc, 2^(31 - n0))``.
    """
    prod = m0_int.astype(np.int64, copy=False) * acc.astype(np.int64, copy=False)
    shift = M0_FRACTIONAL_BITS - n0.astype(np.int64)
    # shift >= 0 is the practical case (M < 2^31); guard the other branch.
    # Shifts beyond 62 would overflow the int64 divisor; they correspond to
    # multipliers below 2^-31, whose scaled output is 0 (or -1 for negative
    # accumulators under floor), which the clamp below 62 preserves.
    pos = np.minimum(np.maximum(shift, 0), 62)
    neg = np.maximum(-shift, 0)
    scaled = np.floor_divide(prod, np.left_shift(np.int64(1), pos))
    return np.left_shift(scaled, neg)


def icn_requantize(
    phi: np.ndarray,
    params: ICNParams,
    channel_axis: int = 1,
) -> np.ndarray:
    """Apply Eq. 5 to an integer accumulator tensor ``phi``.

    ``phi`` holds the integer convolution output ``sum (X-Zx)(W-Zw)``; the
    channel dimension is ``channel_axis``.  All arithmetic is integer-only
    (int64 accumulators, fixed-point multiply, arithmetic shift), matching
    what the MCU kernel executes.
    """
    shape = [1] * phi.ndim
    shape[channel_axis] = -1
    m0 = params.m0.reshape(shape)
    n0 = params.n0.reshape(shape)
    bq = params.bq.reshape(shape)
    acc = phi.astype(np.int64, copy=False) + bq
    y = params.z_y + _fixed_point_scale(acc, m0, n0)
    return np.clip(y, 0, 2 ** params.out_bits - 1).astype(np.int64, copy=False)


def folded_requantize(phi: np.ndarray, params: FoldedBNParams, channel_axis: int = 1) -> np.ndarray:
    """Requantization of the PL+FB strategy: per-layer scalar multiplier."""
    shape = [1] * phi.ndim
    shape[channel_axis] = -1
    bq = params.bq.reshape(shape)
    acc = phi.astype(np.int64, copy=False) + bq
    y = params.z_y + _fixed_point_scale(
        acc, np.array([params.m0], dtype=np.int64), np.array([params.n0], dtype=np.int64)
    )
    return np.clip(y, 0, 2 ** params.out_bits - 1).astype(np.int64, copy=False)


def threshold_requantize(phi: np.ndarray, params: ThresholdParams, channel_axis: int = 1) -> np.ndarray:
    """Requantization via per-channel integer thresholds ([21, 8]).

    The output of channel ``c`` is the number of thresholds passed by
    ``Phi`` in the channel's monotone direction.
    """
    levels = 2 ** params.out_bits
    moved = np.moveaxis(phi, channel_axis, 0)
    out = np.zeros_like(moved)
    for c in range(moved.shape[0]):
        th = params.thresholds[c]
        vals = moved[c]
        if params.direction[c] > 0:
            # Count thresholds j >= 1 with Phi >= th[j]; th is non-decreasing.
            y = np.searchsorted(th[1:], vals, side="right")
        else:
            # Decreasing channel: thresholds are non-increasing in j.
            rev = th[1:][::-1]
            y = levels - 1 - np.searchsorted(rev, vals, side="left")
        out[c] = np.clip(y, 0, levels - 1)
    return np.moveaxis(out, 0, channel_axis).astype(np.int64, copy=False)
