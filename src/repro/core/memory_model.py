"""Memory model of quantized convolutional layers (paper Table 1, Eq. 6–7).

The model distinguishes, per microcontroller architecture (§5):

* **Read-only (RO) memory** — Flash: quantized weights plus the per-layer
  static parameters of the requantization method (zero points, ``Bq``,
  ``M0``, ``N0`` or thresholds).  Constraint Eq. 6.
* **Read-write (RW) memory** — RAM: the input and output activation
  tensors of the layer currently executing (output-stationary dataflow
  keeps exactly one such pair alive).  Constraint Eq. 7.

Datatype conventions follow §4.1: zero points are UINT8 (Zw becomes a
per-channel INT16 vector under PC), ``Bq`` and ``M0`` are INT32, ``N0`` is
INT8 and thresholds are INT32.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.core.policy import LayerPolicy, QuantMethod, QuantPolicy
from repro.models.model_zoo import LayerSpec, NetworkSpec

# Byte widths of the auxiliary datatypes (§4.1).
_BYTES_UINT8 = 1
_BYTES_INT8 = 1
_BYTES_INT16 = 2
_BYTES_INT32 = 4


def tensor_bytes(count: int, bits: int) -> int:
    """Memory footprint in bytes of ``count`` elements stored at ``bits``
    bits each (sub-byte values are bit-packed, so the total is rounded up
    to whole bytes once per tensor)."""
    if count < 0:
        raise ValueError("element count must be non-negative")
    if bits <= 0:
        raise ValueError("bit width must be positive")
    return math.ceil(count * bits / 8)


def layer_weight_bytes(layer: LayerSpec, q_w: int) -> int:
    """Bytes of the packed UINT-Q weight tensor of one layer."""
    return tensor_bytes(layer.weight_count, q_w)


def layer_extra_params_bytes(
    layer: LayerSpec,
    method: QuantMethod,
    q_out: int = 8,
) -> int:
    """The ``MT_A`` term of Eq. 6: static per-layer parameters (Table 1).

    Parameters
    ----------
    layer:
        Shape of the convolutional layer (``c_O`` drives the vector sizes).
    method:
        Deployment strategy; determines which parameter vectors exist and
        whether they are scalars (per-layer) or per-channel vectors.
    q_out:
        Output activation bit width; only the thresholds method depends on
        it (``c_O * 2^Q`` thresholds).
    """
    c_o = layer.out_channels
    zx = _BYTES_UINT8
    zy = _BYTES_UINT8
    if method is QuantMethod.PL_FB:
        # Scalars Zw, M0, N0; per-channel Bq.
        return zx + zy + _BYTES_UINT8 + c_o * _BYTES_INT32 + _BYTES_INT32 + _BYTES_INT8
    if method is QuantMethod.PL_ICN:
        return zx + zy + _BYTES_UINT8 + c_o * (_BYTES_INT32 + _BYTES_INT32 + _BYTES_INT8)
    if method is QuantMethod.PC_ICN:
        return (
            zx + zy + c_o * _BYTES_INT16
            + c_o * (_BYTES_INT32 + _BYTES_INT32 + _BYTES_INT8)
        )
    if method is QuantMethod.PC_THRESHOLDS:
        return zx + zy + c_o * _BYTES_INT16 + c_o * (2 ** q_out) * _BYTES_INT32
    raise ValueError(f"unknown method {method}")


def layer_ro_bytes(layer: LayerSpec, policy: LayerPolicy, method: QuantMethod) -> int:
    """Read-only footprint of one layer: weights + static parameters."""
    return layer_weight_bytes(layer, policy.q_w) + layer_extra_params_bytes(
        layer, method, policy.q_out
    )


def activation_rw_bytes(
    in_count: int, q_in: int, out_count: int, q_out: int
) -> int:
    """Eq. 7 RW term for one layer: packed input + output activation bytes.

    The single formula shared by this analytical model and the compiled
    plan's activation arena (:mod:`repro.inference.arena`), so the
    runtime's planned peak and the paper's memory model cannot drift.
    """
    return tensor_bytes(in_count, q_in) + tensor_bytes(out_count, q_out)


def layer_rw_bytes(layer: LayerSpec, policy: LayerPolicy) -> int:
    """Read-write footprint of one layer: input + output activations (Eq. 7)."""
    return activation_rw_bytes(
        layer.input_activation_count, policy.q_in,
        layer.output_activation_count, policy.q_out,
    )


def network_ro_bytes(spec: NetworkSpec, policy: QuantPolicy) -> int:
    """Total read-only footprint of the network (left-hand side of Eq. 6)."""
    if len(spec) != len(policy):
        raise ValueError(
            f"policy has {len(policy)} layers but spec has {len(spec)}"
        )
    return sum(
        layer_ro_bytes(layer, lp, policy.method)
        for layer, lp in zip(spec.layers, policy.layers)
    )


def network_rw_peak_bytes(spec: NetworkSpec, policy: QuantPolicy) -> int:
    """Peak read-write footprint across layers (binding term of Eq. 7)."""
    if len(spec) != len(policy):
        raise ValueError(
            f"policy has {len(policy)} layers but spec has {len(spec)}"
        )
    return max(
        layer_rw_bytes(layer, lp) for layer, lp in zip(spec.layers, policy.layers)
    )


@dataclass
class MemoryReport:
    """Breakdown of a network's memory use under a policy."""

    network: str
    method: QuantMethod
    ro_bytes: int
    rw_peak_bytes: int
    per_layer_ro: List[int]
    per_layer_rw: List[int]

    @property
    def ro_mb(self) -> float:
        return self.ro_bytes / (1024 * 1024)

    @property
    def rw_kb(self) -> float:
        return self.rw_peak_bytes / 1024


class MemoryModel:
    """Convenience wrapper bundling a spec with the Table-1 cost formulas."""

    def __init__(self, spec: NetworkSpec):
        self.spec = spec

    def weight_bytes(self, policy: QuantPolicy) -> int:
        return sum(
            layer_weight_bytes(l, p.q_w) for l, p in zip(self.spec.layers, policy.layers)
        )

    def ro_bytes(self, policy: QuantPolicy) -> int:
        return network_ro_bytes(self.spec, policy)

    def rw_peak_bytes(self, policy: QuantPolicy) -> int:
        return network_rw_peak_bytes(self.spec, policy)

    def rw_bytes_per_layer(self, policy: QuantPolicy) -> List[int]:
        return [layer_rw_bytes(l, p) for l, p in zip(self.spec.layers, policy.layers)]

    def ro_bytes_per_layer(self, policy: QuantPolicy) -> List[int]:
        return [
            layer_ro_bytes(l, p, policy.method)
            for l, p in zip(self.spec.layers, policy.layers)
        ]

    def fits(self, policy: QuantPolicy, ro_budget: int, rw_budget: int) -> bool:
        """Whether both Eq. 6 and Eq. 7 are satisfied."""
        return (
            self.ro_bytes(policy) <= ro_budget
            and self.rw_peak_bytes(policy) <= rw_budget
        )

    def report(self, policy: QuantPolicy) -> MemoryReport:
        return MemoryReport(
            network=self.spec.name,
            method=policy.method,
            ro_bytes=self.ro_bytes(policy),
            rw_peak_bytes=self.rw_peak_bytes(policy),
            per_layer_ro=self.ro_bytes_per_layer(policy),
            per_layer_rw=self.rw_bytes_per_layer(policy),
        )


def table1_row(layer: LayerSpec, method: QuantMethod, q_out: int = 8) -> Dict[str, int]:
    """Element counts of Table 1 for one layer and one method.

    Returns the number of *elements* (not bytes) of each parameter array,
    matching the columns of the paper's Table 1.
    """
    c_o = layer.out_channels
    row = {
        "Zx": 1,
        "Weights": layer.weight_count,
        "Zw": c_o if method.per_channel else 1,
        "Bq": 0,
        "M0": 0,
        "N0": 0,
        "Zy": 1,
        "Thr": 0,
    }
    if method is QuantMethod.PL_FB:
        row.update(Bq=c_o, M0=1, N0=1)
    elif method is QuantMethod.PL_ICN:
        row.update(Bq=c_o, M0=c_o, N0=c_o)
    elif method is QuantMethod.PC_ICN:
        row.update(Bq=c_o, M0=c_o, N0=c_o)
    elif method is QuantMethod.PC_THRESHOLDS:
        row.update(Thr=c_o * 2 ** q_out)
    return row
