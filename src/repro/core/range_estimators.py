"""Alternative weight-range estimators for the uniform quantizer.

The paper quantizes weights from min/max statistics (per-channel) or PACT
(per-layer), but its related-work section discusses range selection by
statistical analysis — TensorRT's KL-divergence calibration [18] and
percentile clipping.  These estimators are provided both for completeness
and for the range-estimator ablation bench: they all produce an ``(a, b)``
range consumable by :func:`repro.core.quantizer.compute_affine_params`.

All estimators operate per tensor; wrap them with
:func:`per_channel_ranges` to apply them along the output-channel axis.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

import numpy as np

RangeEstimator = Callable[[np.ndarray, int], Tuple[float, float]]


def minmax_range(t: np.ndarray, bits: int) -> Tuple[float, float]:
    """The paper's default: the tensor's exact min/max ([11])."""
    return float(np.min(t)), float(np.max(t))


def percentile_range(t: np.ndarray, bits: int, percentile: float = 99.9) -> Tuple[float, float]:
    """Clip the range to symmetric percentiles, discarding outliers."""
    if not 50.0 < percentile <= 100.0:
        raise ValueError("percentile must be in (50, 100]")
    lo = float(np.percentile(t, 100.0 - percentile))
    hi = float(np.percentile(t, percentile))
    if lo == hi:
        return minmax_range(t, bits)
    return lo, hi


def mse_range(t: np.ndarray, bits: int, grid_points: int = 20) -> Tuple[float, float]:
    """Pick the symmetric clipping factor minimising the quantization MSE.

    A light-weight version of the optimal-clipping analyses used by
    post-training quantization work: candidate ranges are ``c * [min, max]``
    for ``c`` on a grid, and the one with the lowest reconstruction error
    wins.
    """
    from repro.core.quantizer import QuantSpec, fake_quantize

    a0, b0 = minmax_range(t, bits)
    if a0 == b0:
        return a0, b0
    spec = QuantSpec(bits=bits)
    best = (float("inf"), (a0, b0))
    for c in np.linspace(0.3, 1.0, grid_points):
        a, b = c * a0, c * b0
        # End-to-end reconstruction error against the original tensor, so
        # the c = 1.0 candidate coincides exactly with the min/max range.
        err = float(np.mean((fake_quantize(t, a, b, spec) - t) ** 2))
        if err < best[0]:
            best = (err, (float(a), float(b)))
    return best[1]


def kl_divergence_range(
    t: np.ndarray, bits: int, num_bins: int = 1024, search_points: int = 32
) -> Tuple[float, float]:
    """TensorRT-style calibration ([18]): choose the symmetric clipping
    threshold whose quantized histogram has the lowest KL divergence from
    the full-precision histogram."""
    flat = np.abs(np.asarray(t, dtype=np.float64).reshape(-1))
    max_abs = float(flat.max())
    if max_abs == 0.0:
        return 0.0, 0.0
    hist, edges = np.histogram(flat, bins=num_bins, range=(0.0, max_abs))
    hist = hist.astype(np.float64)
    levels = 2 ** (bits - 1)  # symmetric signed grid

    best_kl, best_threshold = float("inf"), max_abs
    thresholds = np.linspace(max_abs / search_points, max_abs, search_points)
    for threshold in thresholds:
        cut = int(np.searchsorted(edges, threshold))
        if cut < levels:
            continue
        p = hist[:cut].copy()
        p[-1] += hist[cut:].sum()  # clipped mass folds into the last bin
        # Quantize the reference distribution onto `levels` buckets.
        q = np.zeros_like(p)
        bucket = cut / levels
        for i in range(levels):
            lo, hi = int(np.floor(i * bucket)), int(np.ceil((i + 1) * bucket))
            hi = min(max(hi, lo + 1), cut)
            mass = p[lo:hi].sum()
            nonzero = np.count_nonzero(p[lo:hi])
            if nonzero:
                q[lo:hi] = np.where(p[lo:hi] > 0, mass / nonzero, 0.0)
        p_norm = p / p.sum() if p.sum() else p
        q_norm = q / q.sum() if q.sum() else q
        mask = (p_norm > 0) & (q_norm > 0)
        kl = float(np.sum(p_norm[mask] * np.log(p_norm[mask] / q_norm[mask])))
        if kl < best_kl:
            best_kl, best_threshold = kl, float(threshold)
    return -best_threshold, best_threshold


#: Registry used by the ablation bench and the CLI.
RANGE_ESTIMATORS: Dict[str, RangeEstimator] = {
    "minmax": minmax_range,
    "percentile": percentile_range,
    "mse": mse_range,
    "kl": kl_divergence_range,
}


def per_channel_ranges(
    t: np.ndarray, bits: int, estimator: RangeEstimator = minmax_range, axis: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Apply a per-tensor estimator independently to every output channel."""
    moved = np.moveaxis(t, axis, 0)
    lows, highs = [], []
    for c in range(moved.shape[0]):
        a, b = estimator(moved[c], bits)
        lows.append(a)
        highs.append(b)
    return np.asarray(lows), np.asarray(highs)


def quantization_snr_db(t: np.ndarray, bits: int, estimator: RangeEstimator) -> float:
    """Signal-to-quantization-noise ratio of a tensor under an estimator."""
    from repro.core.quantizer import QuantSpec, fake_quantize

    a, b = estimator(t, bits)
    fq = fake_quantize(t, a, b, QuantSpec(bits=bits))
    noise = float(np.mean((fq - t) ** 2))
    signal = float(np.mean(np.asarray(t) ** 2))
    if noise == 0:
        return float("inf")
    return 10.0 * np.log10(signal / noise) if signal > 0 else float("-inf")
