"""Typed failure vocabulary of the serving tier.

Every request that does not end in a prediction ends in exactly one of
these, and each maps to one HTTP status — the policy table in the
README is the authoritative crosswalk.  Handlers switch on the type,
never on message text.
"""

from __future__ import annotations


class ServingError(Exception):
    """Base class for every serving-tier failure.

    ``status`` is the HTTP status the front end answers with; subclasses
    pin it so the mapping lives with the error, not in the handler.
    """

    status = 500

    def payload(self) -> dict:
        return {"error": type(self).__name__, "detail": str(self)}


class MalformedRequestError(ServingError, ValueError):
    """The request body could not be turned into a model input (bad
    JSON, missing fields, wrong shape/dtype, non-finite values)."""

    status = 400


class DeadlineExceededError(ServingError):
    """The request's deadline passed while it waited for a batch slot;
    it was dropped *before* reaching the engine."""

    status = 504


class QueueFullError(ServingError):
    """Admission control shed the request: the bounded queue was at
    depth.  The response carries ``Retry-After`` — explicit backpressure
    instead of unbounded buffering."""

    status = 503


class CircuitOpenError(ServingError):
    """The model's circuit breaker is open after consecutive batch
    failures; requests are shed until a half-open probe succeeds."""

    status = 503


class ServerClosingError(ServingError):
    """The server is shutting down; pending requests are failed fast
    rather than silently dropped."""

    status = 503


class ModelNotFoundError(ServingError):
    """The request named a model the fleet registry does not know.  A
    permanent condition for this request — no Retry-After."""

    status = 404


class OverBudgetError(ServingError):
    """The named model exists but cannot be made resident: even after
    evicting every idle model, its flash + Eq. 7 arena cost exceeds the
    registry's memory budget.  Payload-too-large in spirit — the model,
    not the request body, is what does not fit."""

    status = 413


class BatchExecutionError(ServingError):
    """A batch failed terminally (retries exhausted, or the request was
    quarantined as the poisoner during batch-of-1 degradation)."""

    status = 500


class HungBatchError(BatchExecutionError):
    """The engine's watchdog abandoned a batch that exceeded the batch
    timeout; the executor thread was replaced to keep the tier live."""


class InjectedFaultError(RuntimeError):
    """Raised by the fault-injection harness inside the engine to stand
    in for a kernel crash.  Deliberately *not* a ServingError: the
    robustness layer must treat it like any unexpected exception."""
