"""Serving metrics: reservoir-free latency percentiles plus counters.

Small by design — enough for the load generator and the ``/stats``
endpoint to report p50/p99 and per-policy outcome counts without any
dependency.  Latency samples are capped; once full, every k-th sample
is kept (deterministic decimation, not reservoir sampling, so repeated
runs agree exactly).
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, List


class LatencyRecorder:
    """Collects latency samples (seconds) and reports percentiles."""

    def __init__(self, cap: int = 200_000):
        self.cap = int(cap)
        self.samples: List[float] = []
        self.count = 0
        self.total = 0.0
        self._stride = 1

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if self.count % self._stride:
            return
        self.samples.append(seconds)
        if len(self.samples) >= self.cap:
            # Decimate deterministically: keep every other sample and
            # double the stride for future observations.
            self.samples = self.samples[::2]
            self._stride *= 2

    def percentile(self, p: float) -> float:
        if not self.samples:
            return 0.0
        ordered = sorted(self.samples)
        k = min(len(ordered) - 1, max(0, round(p / 100.0 * (len(ordered) - 1))))
        return ordered[k]

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_ms": round(1e3 * self.total / self.count, 3) if self.count else 0.0,
            "p50_ms": round(1e3 * self.percentile(50), 3),
            "p90_ms": round(1e3 * self.percentile(90), 3),
            "p99_ms": round(1e3 * self.percentile(99), 3),
            "max_ms": round(1e3 * max(self.samples), 3) if self.samples else 0.0,
        }


class DrainTracker:
    """Recent request-completion rate, for backpressure hints.

    Records a timestamp per completed request in a bounded deque and
    reports completions/second over the trailing ``window_s``.  Feeds
    :func:`repro.serving.policies.retry_after_s` so a shed client's
    Retry-After reflects how fast the queue is actually draining rather
    than a constant.
    """

    def __init__(self, window_s: float = 10.0, cap: int = 4096,
                 clock: Callable[[], float] = time.monotonic):
        self.window_s = float(window_s)
        self.clock = clock
        self._marks: deque = deque(maxlen=int(cap))

    def mark(self) -> None:
        self._marks.append(self.clock())

    def rate(self) -> float:
        """Completions per second over the trailing window (0.0 when
        nothing has completed recently)."""
        now = self.clock()
        horizon = now - self.window_s
        while self._marks and self._marks[0] < horizon:
            self._marks.popleft()
        if not self._marks:
            return 0.0
        span = max(now - self._marks[0], 1e-9)
        return len(self._marks) / span


class ServerStats:
    """Outcome counters + end-to-end latency for one server instance.

    One counter per policy outcome, so the chaos suite can assert *which*
    policy handled an injected fault rather than inferring it from logs.
    """

    def __init__(self):
        self.latency = LatencyRecorder()
        self.completed = 0
        self.malformed = 0
        self.shed_queue = 0
        self.shed_circuit = 0
        self.shed_shutdown = 0
        self.deadline_dropped = 0
        self.failed = 0
        self.quarantined = 0
        self.batches = 0
        self.batched_images = 0
        self.retries = 0
        self.degraded_batches = 0
        self.hung_batches = 0
        self.breaker_opens = 0
        # Fleet-mode outcomes (zero and invisible for single-model servers).
        self.unknown_model = 0
        self.over_budget = 0

    def observe_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_images += size

    def to_dict(self) -> dict:
        return {
            "requests": {
                "completed": self.completed,
                "malformed": self.malformed,
                "shed_queue": self.shed_queue,
                "shed_circuit": self.shed_circuit,
                "shed_shutdown": self.shed_shutdown,
                "deadline_dropped": self.deadline_dropped,
                "failed": self.failed,
                "quarantined": self.quarantined,
                "unknown_model": self.unknown_model,
                "over_budget": self.over_budget,
            },
            "batches": {
                "count": self.batches,
                "images": self.batched_images,
                "mean_size": round(self.batched_images / self.batches, 2)
                if self.batches else 0.0,
                "retries": self.retries,
                "degraded": self.degraded_batches,
                "hung": self.hung_batches,
                "breaker_opens": self.breaker_opens,
            },
            "latency": self.latency.summary(),
        }
