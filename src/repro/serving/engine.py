"""Batch engine: the bridge from the asyncio front end to the
synchronous, GIL-releasing inference stack.

One ``BatchEngine`` owns one :class:`~repro.runtime.Session` (circuit
breaking is therefore per model by construction), the executor batches
run on, and the robustness machinery around it:

* **retry with deterministic backoff** for transient faults,
* a **hung-batch watchdog**: a batch exceeding ``batch_timeout_s`` is
  abandoned and the executor thread *replaced*, so one wedged kernel
  cannot take the tier down (the abandoned thread dies with its batch),
* **fault injection hooks** that run inside the executor thread,
  exactly where a real kernel would fail.

Backend width follows ``ServerOptions.workers``.  At ``workers=1`` the
executor has a single inference thread — the compiled plan's activation
arena is not concurrency-safe, so one in-process thread is the
correctness contract, not a limitation.  At ``workers=N`` the engine
stands up a :class:`repro.runtime.pool.WorkerPool` of N artifact-backed
processes (one mmap'd copy of the weights, one private arena each) and
widens the executor to N threads, each of which only *waits* on the
pool — the arena-safety contract moves into the per-worker processes
and N tiles really execute concurrently.

The engine reports terminal failures as
:class:`~repro.serving.errors.BatchExecutionError`; the server layered
above decides what a terminal failure *means* (degrade, quarantine,
circuit state) — the engine only executes and retries.  A worker crash
that survives the pool's own respawn-and-retry budget surfaces like any
other transient batch fault and goes through the same retry policy.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
from typing import Optional

import numpy as np

from repro.serving.errors import (
    BatchExecutionError,
    HungBatchError,
    InjectedFaultError,
    ModelNotFoundError,
    OverBudgetError,
)
from repro.serving.faults import FaultInjector
from repro.serving.metrics import ServerStats
from repro.serving.policies import CircuitBreaker, ServerOptions


class BatchEngine:
    """Executes engine-shaped tiles with retry, watchdog, and injection."""

    def __init__(self, session, options: Optional[ServerOptions] = None,
                 faults: Optional[FaultInjector] = None,
                 stats: Optional[ServerStats] = None,
                 artifact_path=None, registry=None):
        if session is None and registry is None:
            raise ValueError("BatchEngine needs a session or a registry")
        self.session = session
        self.registry = registry
        self.options = options or ServerOptions()
        self.faults = faults
        self.stats = stats or ServerStats()
        self.workers = max(1, int(self.options.workers))
        self.artifact_path = artifact_path
        self.pool = None
        self.breaker = CircuitBreaker(
            failure_threshold=self.options.circuit_threshold,
            reset_after_s=self.options.circuit_reset_s,
        )
        # Fleet mode: one breaker per model, created on first use, so a
        # poisoned model opens its own circuit without shedding its
        # neighbours.  `self.breaker` doubles as the single-model (and
        # model=None) breaker for back-compat.
        self._breakers: dict = {}
        self._executor = self._new_executor()
        self._closed = False

    def breaker_for(self, model: Optional[str]) -> CircuitBreaker:
        if model is None:
            return self.breaker
        breaker = self._breakers.get(model)
        if breaker is None:
            breaker = self._breakers[model] = CircuitBreaker(
                failure_threshold=self.options.circuit_threshold,
                reset_after_s=self.options.circuit_reset_s,
            )
        return breaker

    def _new_executor(self) -> concurrent.futures.ThreadPoolExecutor:
        return concurrent.futures.ThreadPoolExecutor(
            max_workers=self.workers, thread_name_prefix="repro-batch"
        )

    @property
    def concurrency(self) -> int:
        """How many batches may execute at once: the pool width, or one
        for the in-process single-thread backend."""
        return self.workers if self.pool is not None else 1

    def start(self) -> None:
        """Stand up the worker pool when ``workers > 1`` (blocking —
        spawning + warming N processes takes seconds; the server calls
        this off the event loop).  Idempotent; a no-op at width 1 and
        in fleet mode (the registry stands per-model pools itself)."""
        if (self.workers <= 1 or self.pool is not None or self._closed
                or self.registry is not None):
            return
        from repro.runtime.pool import PoolOptions, WorkerPool

        pool_options = PoolOptions(
            workers=self.workers,
            retries=self.options.worker_retries,
            max_tile=max(32, self.options.max_batch),
        )
        if self.artifact_path is not None:
            self.pool = WorkerPool(self.artifact_path, pool_options,
                                   faults=self.faults)
            self.pool.start()
        else:
            # No artifact on disk: stage one from the live session
            # (from_session reuses session.source_artifact when known).
            self.pool = WorkerPool.from_session(self.session, pool_options,
                                                faults=self.faults)
            self.pool.start()

    def _run_sync(self, xs: np.ndarray, poisoned: bool,
                  model: Optional[str]) -> np.ndarray:
        """Executor-thread body: faults first (that is where a real
        kernel would blow up), then the actual inference — in-process,
        shipped to a pool worker, or routed through the fleet registry
        (which loads/evicts under its budget right here, off the event
        loop)."""
        if self.faults:
            self.faults.apply_batch_faults()
        if poisoned:
            raise InjectedFaultError("poisoned request in batch")
        if self.registry is not None:
            return np.argmax(self.registry.run(model, xs), axis=1)
        if self.pool is not None:
            return np.argmax(self.pool.run(xs), axis=1)
        return np.argmax(self.session.run(xs), axis=1)

    async def _attempt(self, xs: np.ndarray, poisoned: bool,
                       model: Optional[str]) -> np.ndarray:
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(self._executor, self._run_sync, xs,
                                      poisoned, model)
        try:
            return await asyncio.wait_for(future, self.options.batch_timeout_s)
        except asyncio.TimeoutError:
            # The batch is wedged. Abandon the executor (its thread will
            # die when the stuck call eventually returns or the process
            # exits) and replace it so the next batch runs on a healthy
            # thread. wait_for already cancelled `future` for us.
            self.stats.hung_batches += 1
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = self._new_executor()
            raise HungBatchError(
                f"batch of {len(xs)} exceeded the "
                f"{self.options.batch_timeout_s:.1f}s watchdog"
            ) from None

    async def run_batch(self, xs: np.ndarray, poisoned: bool = False,
                        model: Optional[str] = None) -> np.ndarray:
        """Run one tile to per-image class predictions, retrying per the
        policy; raises :class:`BatchExecutionError` when retries are
        exhausted.  Does *not* touch the circuit breaker — the server
        records outcomes after degradation has had its say.

        Fleet conditions — unknown model, over budget — are permanent
        for this request and re-raise untouched (no retry, no 500
        wrapping): they carry their own HTTP status.
        """
        if self._closed:
            raise BatchExecutionError("engine is closed")
        self.stats.observe_batch(len(xs))
        delays = list(self.options.retry.delays())
        last: Optional[BaseException] = None
        for attempt in range(len(delays) + 1):
            if attempt:
                self.stats.retries += 1
                await asyncio.sleep(delays[attempt - 1])
            try:
                return await self._attempt(xs, poisoned, model)
            except asyncio.CancelledError:
                raise
            except (ModelNotFoundError, OverBudgetError):
                raise
            except Exception as exc:
                last = exc
        if isinstance(last, BatchExecutionError):
            raise last
        raise BatchExecutionError(
            f"batch of {len(xs)} failed after {len(delays) + 1} attempt(s): "
            f"{type(last).__name__}: {last}"
        ) from last

    async def close(self) -> None:
        self._closed = True
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self.pool is not None:
            pool, self.pool = self.pool, None
            # pool.close() joins dispatcher threads and worker processes
            # — keep that off the event loop.
            await asyncio.get_running_loop().run_in_executor(None, pool.close)
        if self.registry is not None:
            # Unmaps every resident model (and joins per-model pools).
            await asyncio.get_running_loop().run_in_executor(
                None, self.registry.close
            )
