"""Robustness policies: retry/backoff, circuit breaking, server options.

Everything here is deterministic and clock-injected so the chaos suite
can step time by hand: retry delays are a fixed exponential series (no
jitter — reproducibility beats thundering-herd avoidance at this
scale), and the circuit breaker is a plain three-state machine.
"""

from __future__ import annotations

import dataclasses
import math
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterator


@dataclass(frozen=True)
class RetryPolicy:
    """Deterministic exponential backoff for transient batch faults.

    ``attempts`` counts *retries* after the first try (0 = fail fast).
    ``delays()`` yields the sleep before each retry:
    ``base * factor**i`` capped at ``max_delay_s``.
    """

    attempts: int = 2
    base_delay_s: float = 0.02
    factor: float = 2.0
    max_delay_s: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 0:
            raise ValueError(f"attempts must be >= 0, got {self.attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("backoff delays must be >= 0")

    def delays(self) -> Iterator[float]:
        for i in range(self.attempts):
            yield min(self.base_delay_s * self.factor ** i, self.max_delay_s)


def retry_after_s(queue_depth: int, drain_rate: float,
                  lo: int = 1, hi: int = 30) -> int:
    """Seconds a shed client should wait before retrying.

    Estimated time to drain the current backlog at the recently
    observed completion rate (``ceil(depth / rate)``), clamped to
    ``[lo, hi]``.  With no observed drain (cold start, or the breaker
    tripped and nothing is completing) a non-empty backlog earns the
    pessimistic ``hi`` and an empty one the optimistic ``lo`` — a
    hardcoded constant under-backs-off exactly when the server is most
    loaded.
    """
    depth = max(0, int(queue_depth))
    if drain_rate <= 0.0:
        return hi if depth > 0 else lo
    return max(lo, min(hi, math.ceil(depth / drain_rate)))


class BreakerState(str, Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-model circuit breaker over consecutive terminal batch failures.

    CLOSED → (``failure_threshold`` consecutive failures) → OPEN →
    (``reset_after_s`` elapsed) → HALF_OPEN, which admits exactly one
    probe batch: success closes the circuit, failure re-opens it and
    restarts the reset clock.  While OPEN every request is shed at
    admission with a 503 — the engine is never touched.
    """

    def __init__(self, failure_threshold: int = 5, reset_after_s: float = 2.0,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.failure_threshold = int(failure_threshold)
        self.reset_after_s = float(reset_after_s)
        self.clock = clock
        self._failures = 0
        self._state = BreakerState.CLOSED
        self._opened_at = 0.0
        self._probe_inflight = False

    @property
    def state(self) -> BreakerState:
        self._maybe_half_open()
        return self._state

    @property
    def consecutive_failures(self) -> int:
        return self._failures

    def _maybe_half_open(self) -> None:
        if (self._state is BreakerState.OPEN
                and self.clock() - self._opened_at >= self.reset_after_s):
            self._state = BreakerState.HALF_OPEN
            self._probe_inflight = False

    def allow(self) -> bool:
        """May a batch proceed right now?  HALF_OPEN admits exactly one
        probe at a time; OPEN admits nothing."""
        self._maybe_half_open()
        if self._state is BreakerState.CLOSED:
            return True
        if self._state is BreakerState.HALF_OPEN and not self._probe_inflight:
            self._probe_inflight = True
            return True
        return False

    def record_success(self) -> None:
        self._failures = 0
        self._state = BreakerState.CLOSED
        self._probe_inflight = False

    def record_failure(self) -> None:
        self._failures += 1
        if (self._state is BreakerState.HALF_OPEN
                or self._failures >= self.failure_threshold):
            self._state = BreakerState.OPEN
            self._opened_at = self.clock()
            self._probe_inflight = False


@dataclass(frozen=True)
class ServerOptions:
    """Configuration of the serving front end (one frozen value object,
    mirroring :class:`repro.runtime.options.SessionOptions`).

    ``max_batch`` / ``max_wait_ms``
        Micro-batcher tile size and partial-tile flush timeout.
    ``queue_depth``
        Bound on admitted-but-unanswered requests (pending + in batch);
        beyond it requests are shed with a 503.
    ``default_deadline_ms``
        Per-request deadline when the client does not send one
        (``deadline_ms`` in the request body overrides; 0 disables).
    ``batch_timeout_s``
        Hung-batch watchdog: a batch exceeding this wall time is
        abandoned and the executor thread replaced.
    ``retry``
        :class:`RetryPolicy` for transient batch faults.
    ``circuit_threshold`` / ``circuit_reset_s``
        :class:`CircuitBreaker` parameters.
    ``degrade``
        On terminal batch failure, fall back to batch-of-1 to isolate
        and quarantine the poisoning request instead of failing the
        whole tile.
    ``max_body_bytes``
        Request-body size cap (oversized bodies are a 400, not an OOM).
    ``workers``
        Inference backend width: ``1`` executes in-process on the
        engine's single inference thread (the degenerate case); ``N >
        1`` stands up a :class:`repro.runtime.pool.WorkerPool` of N
        artifact-backed processes sharing one mmap'd copy of the
        weights, and the batch loop runs up to N tiles concurrently.
    ``worker_retries``
        Pool-level respawn-and-retry budget per task after a worker
        crash (on top of — and usually instead of — the engine-level
        ``retry`` policy, which re-runs whole batches).
    """

    host: str = "127.0.0.1"
    port: int = 8707
    max_batch: int = 8
    max_wait_ms: float = 5.0
    queue_depth: int = 64
    default_deadline_ms: float = 1000.0
    batch_timeout_s: float = 30.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    circuit_threshold: int = 5
    circuit_reset_s: float = 2.0
    degrade: bool = True
    max_body_bytes: int = 64 * 1024 * 1024
    workers: int = 1
    worker_retries: int = 1

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")
        if self.max_wait_ms < 0 or self.default_deadline_ms < 0:
            raise ValueError("timeouts must be >= 0")
        if self.batch_timeout_s <= 0:
            raise ValueError("batch_timeout_s must be > 0")
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.worker_retries < 0:
            raise ValueError(
                f"worker_retries must be >= 0, got {self.worker_retries}"
            )

    def replace(self, **changes: Any) -> "ServerOptions":
        return dataclasses.replace(self, **changes)
