"""Fault-tolerant asyncio serving front end over a :class:`Session`.

One process, three moving parts:

* **connection handlers** (one asyncio task per connection) parse a
  minimal HTTP/1.1 request, validate the payload at the session
  boundary, run admission control (circuit state, bounded queue), and
  park a :class:`~repro.serving.batcher.Request` future;
* the **batch loop** (one task) drives the
  :class:`~repro.serving.batcher.MicroBatcher` — expire deadlines
  *before* batching, flush on full-or-timeout, carry remainders — and
  hands tiles to the :class:`~repro.serving.engine.BatchEngine`,
  keeping up to ``engine.concurrency`` tiles in flight at once (one for
  the in-process backend, N for a ``--workers N`` pool);
* the **engine** executes with retry and a hung-batch watchdog — on its
  single inference thread, or across a process
  :class:`~repro.runtime.pool.WorkerPool` sharing one mmap'd copy of
  the weights.

Failure policy (the README table restates this mapping):

====================  =========================================  ======
failure                policy                                    status
====================  =========================================  ======
malformed payload      reject at parse/validate, stay live        400
unknown fleet model    reject at admission (permanent)            404
model over budget      cannot be made resident even after LRU     413
deadline passed        drop before batching, never infer          504
queue at depth         shed with ``Retry-After`` (backpressure)   503
circuit open           shed until half-open probe succeeds        503
transient batch fault  retry with deterministic backoff           —
hung batch             watchdog abandons it, executor replaced    (retry)
poisoned batch         re-run batch-of-1, quarantine poisoner     500*
server shutdown        fail pending fast, close sockets           503
====================  =========================================  ======

(* only the poisoning request; innocents in the tile still get 200.)
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import List, Optional, Tuple

import numpy as np

from repro.runtime.errors import InvalidInputError
from repro.serving.batcher import FleetBatcher, MicroBatcher, Request
from repro.serving.engine import BatchEngine
from repro.serving.errors import (
    BatchExecutionError,
    CircuitOpenError,
    DeadlineExceededError,
    MalformedRequestError,
    ModelNotFoundError,
    OverBudgetError,
    QueueFullError,
    ServerClosingError,
    ServingError,
)
from repro.serving.faults import FaultInjector
from repro.serving.metrics import DrainTracker, ServerStats
from repro.serving.policies import BreakerState, ServerOptions, retry_after_s

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}
_MAX_HEADER_BYTES = 16 * 1024


class ServingServer:
    """The micro-batching HTTP front end; stdlib asyncio only.

    Endpoints: ``POST /v1/predict`` (body ``{"input": CHW-nested-list,
    "deadline_ms": float?, "model": str?}``), ``GET /healthz``,
    ``GET /stats``.  ``model`` routes between fleet artifacts when the
    server was built over a
    :class:`~repro.serving.registry.ModelRegistry`; a single-model
    server ignores it.
    """

    def __init__(self, session=None, options: Optional[ServerOptions] = None,
                 faults: Optional[FaultInjector] = None,
                 artifact_path=None, registry=None,
                 default_model: Optional[str] = None):
        if session is None and registry is None:
            raise ValueError("ServingServer needs a session or a registry")
        self.session = session
        self.registry = registry
        self.default_model = default_model
        self.options = options or ServerOptions()
        self.faults = faults
        self.stats = ServerStats()
        self.drain = DrainTracker()
        self.engine = BatchEngine(session, self.options, faults=faults,
                                  stats=self.stats,
                                  artifact_path=artifact_path,
                                  registry=registry)
        if registry is not None:
            # Tiles must be homogeneous per (model, shape); the fleet
            # batcher keeps one lane per pair.
            self.batcher = FleetBatcher(self.options.max_batch,
                                        self.options.max_wait_ms / 1e3)
        else:
            self.batcher = MicroBatcher(self.options.max_batch,
                                        self.options.max_wait_ms / 1e3)
        self._server: Optional[asyncio.base_events.Server] = None
        self._loop_task: Optional[asyncio.Task] = None
        self._wakeup = asyncio.Event()
        self._closing = False
        # In-flight batches keyed by identity: with a worker pool
        # several batches execute at once (Request is unhashable, so
        # lists-in-a-dict rather than a set).
        self._inflight: dict = {}
        self._batch_tasks: set = set()
        self._startup_health: Optional[dict] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    def _inflight_count(self) -> int:
        return sum(len(batch) for batch in self._inflight.values())

    # -- lifecycle -----------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Stand up the backend (worker pool when ``workers > 1``), warm
        the engine (one healthcheck inference plans the arena), bind the
        socket, and start the batch loop.  Returns the bound
        ``(host, port)`` — pass ``port=0`` for an ephemeral port."""
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.engine.start)
        self._startup_health = await loop.run_in_executor(
            None, self._startup_check
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.options.host, self.options.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        self._loop_task = asyncio.create_task(self._batch_loop(),
                                              name="repro-batch-loop")
        return self.host, self.port

    def _startup_check(self) -> dict:
        """Blocking warmup probe (runs off the event loop).

        Single-model: the session's own healthcheck.  Fleet: warm the
        default model (when one is named) so the first request does not
        pay its load, and report the fleet shape; an empty registry or a
        default that cannot fit the budget is a startup failure."""
        if self.registry is None:
            return self.session.healthcheck()
        report = {"ok": True, "fleet": self.registry.stats()["models_known"]}
        if self.default_model is not None:
            try:
                self.registry.warm([self.default_model])
                report["warmed"] = self.default_model
            except ServingError as exc:
                return {"ok": False, "error": str(exc)}
        return report

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, fail everything pending
        with a 503, stop the loop, release the inference backend."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in [self._loop_task, *self._batch_tasks]:
            if task is None:
                continue
            task.cancel()
            try:
                await task
            # Shutdown drain: a batch task's terminal error was already
            # surfaced to its requests; here only the cancellation counts
            # (CancelledError is a BaseException and must be named).
            except (asyncio.CancelledError, Exception):  # analysis: ignore[except-swallow]
                pass
        self._batch_tasks.clear()
        pending = self.batcher.drain() + [
            r for batch in self._inflight.values() for r in batch
        ]
        for r in pending:
            if self._fail(r, ServerClosingError("server is shutting down")):
                self.stats.shed_shutdown += 1
        self._inflight = {}
        await self.engine.close()

    async def serve_forever(self, ttl_s: Optional[float] = None) -> None:
        """Serve until cancelled (or for ``ttl_s`` seconds), then stop
        cleanly."""
        try:
            if ttl_s is None:
                await asyncio.Event().wait()  # park until cancelled
            else:
                await asyncio.sleep(ttl_s)
        finally:
            await self.stop()

    # -- request futures ----------------------------------------------
    @staticmethod
    def _fail(request: Request, exc: ServingError) -> bool:
        if request.future is not None and not request.future.done():
            request.future.set_exception(exc)
            return True
        return False

    def _resolve(self, request: Request, prediction: int) -> None:
        if request.future is not None and not request.future.done():
            latency = time.monotonic() - request.enqueued_at
            self.stats.completed += 1
            self.stats.latency.observe(latency)
            self.drain.mark()
            result = {
                "prediction": int(prediction),
                "latency_ms": round(latency * 1e3, 3),
            }
            if request.model is not None:
                result["model"] = request.model
            request.future.set_result(result)

    def _retry_after(self) -> str:
        """Backpressure hint for 503s: estimated seconds to drain the
        current backlog at the recently observed completion rate,
        clamped to [1, 30]."""
        depth = len(self.batcher) + self._inflight_count()
        return str(retry_after_s(depth, self.drain.rate()))

    def _fail_expired(self, expired: List[Request]) -> None:
        for r in expired:
            if self._fail(r, DeadlineExceededError(
                    "deadline passed while waiting for a batch slot")):
                self.stats.deadline_dropped += 1

    # -- batch loop ----------------------------------------------------
    async def _batch_loop(self) -> None:
        while True:
            # Clear *before* inspecting the batcher: an add() racing with
            # this iteration either lands before take() (and is seen) or
            # after the clear (and re-sets the event, waking us at once).
            self._wakeup.clear()
            now = time.monotonic()
            batch, expired = self.batcher.take(now)
            self._fail_expired(expired)
            if not batch:
                delay = self.batcher.next_flush_in(now)
                try:
                    await asyncio.wait_for(self._wakeup.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    pass
                continue
            # Dispatch the tile as its own task so up to
            # engine.concurrency batches execute at once (N pool
            # workers -> N concurrent tiles); at the limit, wait for a
            # slot instead of queueing unboundedly.
            while len(self._batch_tasks) >= self.engine.concurrency:
                await asyncio.wait(self._batch_tasks,
                                   return_when=asyncio.FIRST_COMPLETED)
            task = asyncio.create_task(self._run_batch_task(batch),
                                       name="repro-batch")
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch_task(self, batch: List[Request]) -> None:
        self._inflight[id(batch)] = batch
        try:
            await self._process_batch(batch)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # defence: batch tasks must not leak
            for r in batch:
                self._fail(r, BatchExecutionError(
                    f"unexpected serving failure: {type(exc).__name__}: {exc}"
                ))
                self.stats.failed += 1
        finally:
            self._inflight.pop(id(batch), None)

    def _record_breaker(self, success: bool,
                        model: Optional[str] = None) -> None:
        breaker = self.engine.breaker_for(model)
        before = breaker.state
        breaker.record_success() if success else breaker.record_failure()
        if breaker.state is BreakerState.OPEN and before is not BreakerState.OPEN:
            self.stats.breaker_opens += 1

    async def _process_batch(self, batch: List[Request]) -> None:
        model = batch[0].model  # tiles are homogeneous by construction
        if not self.engine.breaker_for(model).allow():
            for r in batch:
                if self._fail(r, CircuitOpenError("circuit opened while queued")):
                    self.stats.shed_circuit += 1
            return
        xs = np.stack([r.x for r in batch])
        try:
            preds = await self.engine.run_batch(
                xs, poisoned=any(r.poisoned for r in batch), model=model
            )
        except (ModelNotFoundError, OverBudgetError) as exc:
            # Permanent for this model right now — not a health signal,
            # so the breaker is left alone.
            counter = ("unknown_model" if isinstance(exc, ModelNotFoundError)
                       else "over_budget")
            for r in batch:
                if self._fail(r, exc):
                    setattr(self.stats, counter,
                            getattr(self.stats, counter) + 1)
            return
        except BatchExecutionError as exc:
            await self._degrade(batch, exc)
            return
        self._record_breaker(success=True, model=model)
        for r, p in zip(batch, preds):
            self._resolve(r, p)

    async def _degrade(self, batch: List[Request],
                       exc: BatchExecutionError) -> None:
        """A tile failed terminally.  Fall back to batch-of-1 to isolate
        the poisoning request(s): innocents still get answers, poisoners
        are quarantined with a 500, and the breaker only counts the tile
        as a failure if *nothing* in it could be served."""
        model = batch[0].model
        if not self.options.degrade or len(batch) == 1:
            for r in batch:
                if self._fail(r, exc):
                    self.stats.failed += 1
            self._record_breaker(success=False, model=model)
            return
        self.stats.degraded_batches += 1
        successes = 0
        for r in batch:
            if r.expired(time.monotonic()):
                self._fail_expired([r])
                continue
            try:
                preds = await self.engine.run_batch(r.x[None],
                                                    poisoned=r.poisoned,
                                                    model=r.model)
            except BatchExecutionError as single_exc:
                if self._fail(r, BatchExecutionError(
                        f"request quarantined as batch poisoner: {single_exc}")):
                    self.stats.quarantined += 1
                continue
            self._resolve(r, preds[0])
            successes += 1
        self._record_breaker(success=successes > 0, model=model)

    # -- HTTP ----------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            status, payload, headers = await self._handle_request(reader)
            await self._write_response(writer, status, payload, headers)
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except OSError:
                pass  # peer reset during close

    async def _handle_request(self, reader: asyncio.StreamReader):
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) != 3:
                raise MalformedRequestError("malformed request line")
            method, path, _ = parts
            content_length = 0
            header_bytes = 0
            while True:
                line = await reader.readline()
                header_bytes += len(line)
                if header_bytes > _MAX_HEADER_BYTES:
                    raise MalformedRequestError("headers too large")
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        content_length = int(value.strip())
                    except ValueError:
                        raise MalformedRequestError("bad Content-Length") from None
            if content_length > self.options.max_body_bytes:
                raise MalformedRequestError(
                    f"body of {content_length} bytes exceeds the "
                    f"{self.options.max_body_bytes}-byte cap"
                )
            body = await reader.readexactly(content_length) if content_length else b""
        except MalformedRequestError as exc:
            self.stats.malformed += 1
            return exc.status, exc.payload(), {}
        return await self._route(method, path, body)

    async def _route(self, method: str, path: str, body: bytes):
        if path == "/v1/predict":
            if method != "POST":
                return 405, {"error": "MethodNotAllowed",
                             "detail": "use POST /v1/predict"}, {}
            return await self._predict(body)
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "MethodNotAllowed"}, {}
            return self._healthz()
        if path == "/stats":
            if method != "GET":
                return 405, {"error": "MethodNotAllowed"}, {}
            return 200, self._stats_payload(), {}
        return 404, {"error": "NotFound", "detail": f"no route {path}"}, {}

    def _healthz(self):
        breaker = self.engine.breaker.state
        startup = self._startup_health or {}
        ok = (not self._closing and breaker is not BreakerState.OPEN
              and bool(startup.get("ok")))
        payload = {
            "status": "ok" if ok else "degraded",
            "circuit": breaker.value,
            "queued": len(self.batcher),
            "startup": startup,
        }
        pool = self.engine.pool
        if pool is not None:
            payload["workers"] = {
                "configured": pool.options.workers,
                "alive": pool.alive_workers(),
                "restarts": pool.restarts,
            }
        if self.registry is not None:
            reg = self.registry.stats()
            payload["fleet"] = {
                "models_known": reg["models_known"],
                "models_resident": reg["models_resident"],
                "resident_bytes": reg["resident_bytes"],
                "budget_bytes": reg["budget_bytes"],
            }
        return (200 if ok else 503), payload, {}

    def _stats_payload(self) -> dict:
        payload = self.stats.to_dict()
        payload["circuit"] = self.engine.breaker.state.value
        payload["queued"] = len(self.batcher)
        payload["inflight"] = self._inflight_count()
        if self.engine.pool is not None:
            payload["pool"] = self.engine.pool.stats()
        if self.registry is not None:
            payload["registry"] = self.registry.stats()
            payload["circuits"] = {
                name: self.engine.breaker_for(name).state.value
                for name in self.engine._breakers
            }
        if self.faults:
            payload["faults"] = self.faults.summary()
        return payload

    async def _predict(self, body: bytes):
        try:
            request = self._admit(body)
        except ServingError as exc:
            headers = {}
            if isinstance(exc, (QueueFullError, CircuitOpenError,
                                ServerClosingError)):
                headers["Retry-After"] = self._retry_after()
            return exc.status, exc.payload(), headers
        self._wakeup.set()
        try:
            result = await request.future
        except ServingError as exc:
            headers = ({"Retry-After": self._retry_after()}
                       if exc.status == 503 else {})
            return exc.status, exc.payload(), headers
        return 200, result, {}

    def _admit(self, body: bytes) -> Request:
        """Parse + validate + admission-control one predict request.
        Raises a typed ServingError; on success the request is queued."""
        if self._closing:
            raise ServerClosingError("server is shutting down")
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self.stats.malformed += 1
            raise MalformedRequestError(f"body is not JSON: {exc}") from exc
        if not isinstance(payload, dict) or "input" not in payload:
            self.stats.malformed += 1
            raise MalformedRequestError('body must be {"input": CHW-array}')
        try:
            x = np.asarray(payload["input"], dtype=np.float64)
        except (TypeError, ValueError) as exc:
            self.stats.malformed += 1
            raise MalformedRequestError(f"input is not numeric: {exc}") from exc
        if x.ndim != 3:
            self.stats.malformed += 1
            raise MalformedRequestError(
                f"input must be one CHW image (3 dims), got shape {x.shape}"
            )
        model: Optional[str] = None
        if self.registry is not None:
            model = payload.get("model", self.default_model)
            if model is None:
                self.stats.malformed += 1
                raise MalformedRequestError(
                    'fleet server requires "model" (no default configured)'
                )
            if not isinstance(model, str):
                self.stats.malformed += 1
                raise MalformedRequestError(
                    f'"model" must be a string, got {type(model).__name__}'
                )
            if model not in self.registry:
                self.stats.unknown_model += 1
                raise ModelNotFoundError(
                    f"unknown model {model!r}; fleet has {self.registry.models}"
                )
            try:
                # Cold models validate against manifest metadata only —
                # loading happens off the event loop, at batch time.
                self.registry.validate_input(model, x[None])
            except InvalidInputError as exc:
                self.stats.malformed += 1
                raise MalformedRequestError(str(exc)) from exc
        else:
            try:
                self.session.validate_input(x[None])
            except InvalidInputError as exc:
                self.stats.malformed += 1
                raise MalformedRequestError(str(exc)) from exc

        if self.engine.breaker_for(model).state is BreakerState.OPEN:
            self.stats.shed_circuit += 1
            raise CircuitOpenError("circuit is open; retry later")
        depth = len(self.batcher) + self._inflight_count()
        overflow = self.faults.fire("queue-overflow") if self.faults else None
        if depth >= self.options.queue_depth or overflow is not None:
            self.stats.shed_queue += 1
            raise QueueFullError(
                f"admission queue at depth {depth}/{self.options.queue_depth}"
            )

        now = time.monotonic()
        deadline_ms = payload.get("deadline_ms", self.options.default_deadline_ms)
        try:
            deadline_ms = float(deadline_ms)
        except (TypeError, ValueError):
            self.stats.malformed += 1
            raise MalformedRequestError(
                f"deadline_ms must be a number, got {deadline_ms!r}"
            ) from None
        deadline = now + deadline_ms / 1e3 if deadline_ms > 0 else None
        request = Request(
            x=x, enqueued_at=now, deadline=deadline, model=model,
            future=asyncio.get_running_loop().create_future(),
        )
        if self.faults and self.faults.fire("poison") is not None:
            request.poisoned = True
        self.batcher.add(request)
        return request

    @staticmethod
    async def _write_response(writer: asyncio.StreamWriter, status: int,
                              payload: dict, headers: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        await writer.drain()


def serve(session=None, options: Optional[ServerOptions] = None,
          faults: Optional[FaultInjector] = None,
          ttl_s: Optional[float] = None,
          announce=print, artifact_path=None, registry=None,
          default_model: Optional[str] = None) -> None:
    """Blocking convenience entry point (the ``repro-mcu serve`` body):
    start, announce the bound address, serve until Ctrl-C or ``ttl_s``,
    shut down cleanly.  ``artifact_path`` lets a ``--workers N`` pool
    mmap the artifact already on disk instead of staging a copy.
    ``registry`` switches to fleet mode (``repro-mcu serve --fleet``):
    requests route by their ``"model"`` field through a
    :class:`~repro.serving.registry.ModelRegistry` instead of one
    session."""

    async def _main():
        server = ServingServer(session, options=options, faults=faults,
                               artifact_path=artifact_path,
                               registry=registry,
                               default_model=default_model)
        host, port = await server.start()
        if announce is not None:
            fleet = (f"fleet={len(registry.models)} models, "
                     if registry is not None else "")
            announce(f"serving on http://{host}:{port} "
                     f"({fleet}workers={server.engine.workers}, "
                     f"max_batch={server.options.max_batch}, "
                     f"queue_depth={server.options.queue_depth}) — Ctrl-C to stop")
        try:
            await server.serve_forever(ttl_s=ttl_s)
        except asyncio.CancelledError:
            await server.stop()
            raise

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        if announce is not None:
            announce("interrupted — shut down cleanly")
