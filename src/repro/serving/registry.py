"""Multi-model fleet registry: many artifacts, one memory budget.

One server process hosting a fleet of artifacts cannot keep them all
resident — the point of the paper's memory accounting is that models
are sized against a *device budget*, and the registry applies the same
discipline to the serving host: every resident model is charged its
read-only weight bytes (the ``blobs.bin`` it maps) plus its Eq. 7
activation-arena peak, and the sum must stay inside
``memory_budget_bytes``.  Admission of a newly-loaded model is the
deployment gate itself — :func:`repro.mcu.deploy.assert_arena_fits`
against a synthetic :class:`~repro.mcu.device.MCUDevice` whose RAM is
whatever the budget has left — so serving-side residency and MCU-side
deployability are one check, not two parallel accountings.

Residency is managed lazily with LRU eviction:

* a request for a cold model loads it on first use (``mmap=True`` so
  weight pages are file-backed and shareable, ``max_input_hw`` set to
  the artifact's native geometry so one shape-polymorphic arena serves
  every smaller request shape);
* when the budget cannot admit the newcomer, least-recently-used idle
  models are evicted — ``Session.close()`` drops the plan and unmaps
  the blobs *now*, not at GC time — until it fits;
* a model that cannot fit even with every idle model evicted is a
  :class:`~repro.serving.errors.OverBudgetError` (HTTP 413);
* models with requests in flight are never evicted.

All public methods are thread-safe; ``run`` is called from the batch
engine's executor threads.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.runtime.errors import InvalidInputError
from repro.serving.errors import ModelNotFoundError, OverBudgetError


class FleetEntry:
    """One artifact known to the registry (resident or cold)."""

    def __init__(self, name: str, path: Path, manifest: dict):
        self.name = name
        self.path = Path(path)
        self.max_hw = _native_hw(manifest)
        #: Read-only cost: the byte length of blobs.bin (what the mmap
        #: pins), from the manifest blob table.
        self.ro_bytes = sum(
            int(meta.get("nbytes", 0))
            for meta in manifest.get("blobs", {}).values()
        )
        #: Eq. 7 RW peak as recorded at export time (None for artifacts
        #: saved without a geometry; measured at first load instead).
        arena = manifest.get("network", {}).get("arena") or {}
        self.rw_bytes: Optional[int] = (
            int(arena["rw_peak_bytes"]) if "rw_peak_bytes" in arena else None
        )
        self.session = None
        self.pool = None
        self.inflight = 0
        self.last_used = 0
        self.loads = 0
        self.evictions = 0
        self.requests = 0

    @property
    def resident(self) -> bool:
        return self.session is not None

    def cost_bytes(self) -> int:
        return self.ro_bytes + int(self.rw_bytes or 0)

    def to_dict(self) -> dict:
        return {
            "resident": self.resident,
            "inflight": self.inflight,
            "loads": self.loads,
            "evictions": self.evictions,
            "requests": self.requests,
            "ro_bytes": self.ro_bytes,
            "rw_peak_bytes": self.rw_bytes,
            "cost_bytes": self.cost_bytes(),
            "max_input_hw": list(self.max_hw) if self.max_hw else None,
            "workers": self.pool.options.workers if self.pool else 1,
        }


def _native_hw(manifest: dict) -> Optional[Tuple[int, int]]:
    """The artifact's native (maximum) geometry, from the manifest.

    Preference order: the embedded arena plan (authoritative — it is
    what the export sized), then session options, then compile options.
    """
    arena = manifest.get("network", {}).get("arena") or {}
    for hw in (arena.get("input_hw"),
               manifest.get("session_options", {}).get("input_hw"),
               manifest.get("compile_options", {}).get("input_hw")):
        if hw is not None:
            return (int(hw[0]), int(hw[1]))
    return None


class ModelRegistry:
    """Artifact registry with LRU residency under a memory budget.

    ``memory_budget_bytes=None`` disables eviction entirely (every
    model loads and stays resident — the unconstrained dev default).
    ``workers > 1`` gives each *resident* model its own
    :class:`repro.runtime.pool.WorkerPool` of artifact-backed worker
    processes; the pool is stood up at load and torn down at eviction.
    """

    def __init__(self, *, memory_budget_bytes: Optional[int] = None,
                 workers: int = 1, worker_retries: int = 1):
        if memory_budget_bytes is not None and memory_budget_bytes < 1:
            raise ValueError(
                f"memory_budget_bytes must be >= 1, got {memory_budget_bytes}"
            )
        self.memory_budget_bytes = memory_budget_bytes
        self.workers = max(1, int(workers))
        self.worker_retries = int(worker_retries)
        self._entries: Dict[str, FleetEntry] = {}
        self._lock = threading.RLock()
        self._tick = 0
        self.loads = 0
        self.evictions = 0
        self._closed = False

    # -- construction --------------------------------------------------
    @classmethod
    def from_directory(cls, root, **kwargs) -> "ModelRegistry":
        """Scan ``root`` for artifact subdirectories (anything holding a
        ``manifest.json``) and register each under its directory name.
        The directory itself may also be a single artifact."""
        from repro.runtime.artifact import read_manifest

        root = Path(root)
        registry = cls(**kwargs)
        candidates: List[Path] = []
        if (root / "manifest.json").is_file():
            candidates.append(root)
        else:
            candidates.extend(sorted(
                p for p in root.iterdir()
                if p.is_dir() and (p / "manifest.json").is_file()
            ))
        if not candidates:
            raise ModelNotFoundError(f"no artifacts found under {root}")
        for path in candidates:
            registry.add(path.name, path, manifest=read_manifest(path))
        return registry

    def add(self, name: str, path, manifest: Optional[dict] = None) -> FleetEntry:
        from repro.runtime.artifact import read_manifest

        if manifest is None:
            manifest = read_manifest(path)
        entry = FleetEntry(name, Path(path), manifest)
        with self._lock:
            if name in self._entries:
                raise ValueError(f"model {name!r} already registered")
            self._entries[name] = entry
        return entry

    # -- lookup --------------------------------------------------------
    @property
    def models(self) -> List[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def entry(self, name: str) -> FleetEntry:
        with self._lock:
            entry = self._entries.get(name)
        if entry is None:
            raise ModelNotFoundError(
                f"unknown model {name!r}; fleet has {self.models}"
            )
        return entry

    def resident_bytes(self) -> int:
        with self._lock:
            return sum(e.cost_bytes() for e in self._entries.values()
                       if e.resident)

    # -- residency -----------------------------------------------------
    def checkout(self, name: str) -> FleetEntry:
        """Pin ``name`` resident and mark a request in flight.  Loads
        (and evicts) as needed; every checkout must be paired with
        :meth:`release`."""
        with self._lock:
            if self._closed:
                raise ModelNotFoundError("registry is closed")
            entry = self._entries.get(name)
            if entry is None:
                raise ModelNotFoundError(
                    f"unknown model {name!r}; fleet has {sorted(self._entries)}"
                )
            if not entry.resident:
                self._load_locked(entry)
            entry.inflight += 1
            entry.requests += 1
            self._tick += 1
            entry.last_used = self._tick
            return entry

    def release(self, entry: FleetEntry) -> None:
        with self._lock:
            entry.inflight = max(0, entry.inflight - 1)

    def run(self, name: str, xs: np.ndarray) -> np.ndarray:
        """Execute one tile on ``name``'s session (or worker pool) —
        the batch engine's executor-thread body for fleet dispatch."""
        entry = self.checkout(name)
        try:
            if entry.pool is not None:
                return entry.pool.run(xs)
            return entry.session.run(xs)
        finally:
            self.release(entry)

    def warm(self, names) -> None:
        """Eagerly load ``names`` (in order, subject to the budget —
        later names may evict earlier ones, exactly as live traffic
        would)."""
        for name in names:
            self.release(self.checkout(name))

    def validate_input(self, name: str, x_real) -> None:
        """Boundary validation without forcing a load.

        Resident models delegate to the session's full check; cold
        models get the checks the manifest can answer — geometry
        against the declared max and finiteness — so a bad request is a
        400 at admission rather than a load plus a batch failure.
        """
        entry = self.entry(name)
        with self._lock:
            session = entry.session
        if session is not None:
            try:
                session.validate_input(x_real)
                return
            except RuntimeError:
                pass  # evicted between the snapshot and the check
        x = np.asarray(x_real)
        if x.ndim != 4:
            raise InvalidInputError(
                f"input must be NCHW (4 dims), got shape {x.shape}"
            )
        if not np.isfinite(x).all():
            raise InvalidInputError("input contains non-finite values")
        if entry.max_hw is not None:
            h, w = int(x.shape[2]), int(x.shape[3])
            if h > entry.max_hw[0] or w > entry.max_hw[1]:
                raise InvalidInputError(
                    f"input geometry {h}x{w} exceeds model {name!r}'s "
                    f"declared max geometry {entry.max_hw[0]}x{entry.max_hw[1]}"
                )

    def _load_locked(self, entry: FleetEntry) -> None:
        """Load ``entry`` under the lock, evicting LRU idle models until
        the budget admits it; raises OverBudgetError when it never can."""
        from repro.runtime.session import Session

        # Pre-evict on manifest metadata so the transient (loaded but
        # not yet admitted) state overshoots the budget as little as
        # possible.  The authoritative check still runs on the compiled
        # plan below.
        if self.memory_budget_bytes is not None and entry.rw_bytes is not None:
            while (self.resident_bytes() + entry.cost_bytes()
                   > self.memory_budget_bytes):
                if not self._evict_lru_locked():
                    break
        session = Session.load(entry.path, mmap=True,
                               max_input_hw=entry.max_hw)
        rejection = None
        try:
            self._admit_locked(entry, session)
        except OverBudgetError as exc:
            # Keep only the message: the live exception's traceback (and
            # chained assert_arena_fits frames) pins the plan — and with
            # it the mmap views — which would make session.close() fail
            # with BufferError.
            rejection = str(exc)
        if rejection is not None:
            session.close()
            raise OverBudgetError(rejection)
        entry.session = session
        entry.loads += 1
        self.loads += 1
        rw = self.rw_from_plan(entry)
        if rw is not None:
            entry.rw_bytes = rw
        if self.workers > 1:
            entry.pool = self._start_pool(entry)

    @staticmethod
    def rw_from_plan(entry: FleetEntry) -> Optional[int]:
        session = entry.session
        if session is None or entry.max_hw is None:
            return entry.rw_bytes
        if not session.plan.use_arena or not session.plan.layers:
            return entry.rw_bytes
        return session.plan.arena_for(entry.max_hw).logical_rw_peak_bytes

    def _admit_locked(self, entry: FleetEntry, session) -> None:
        """The budget gate: the newcomer's arena must fit the RAM the
        budget has left after its weights and everyone resident — the
        same :func:`assert_arena_fits` check an MCU deployment runs."""
        if self.memory_budget_bytes is None:
            return
        if entry.max_hw is None or not session.plan.use_arena \
                or not session.plan.layers:
            # No arena to size: charge weights only.
            while (self.resident_bytes() + entry.ro_bytes
                   > self.memory_budget_bytes):
                if not self._evict_lru_locked():
                    raise OverBudgetError(self._over_budget_msg(entry))
            return
        from repro.mcu.deploy import assert_arena_fits
        from repro.mcu.device import MCUDevice

        while True:
            free = self.memory_budget_bytes - self.resident_bytes()
            device = MCUDevice(
                name="fleet-budget",
                flash_bytes=max(1, free),
                ram_bytes=max(1, free - entry.ro_bytes),
                clock_hz=1,
            )
            try:
                if entry.ro_bytes > free:
                    raise ValueError(
                        f"weights {entry.ro_bytes} B exceed the free "
                        f"budget {free} B"
                    )
                assert_arena_fits(session.plan, device, entry.max_hw)
                return
            except ValueError:
                if not self._evict_lru_locked():
                    raise OverBudgetError(
                        self._over_budget_msg(entry)
                    ) from None

    def _over_budget_msg(self, entry: FleetEntry) -> str:
        return (
            f"model {entry.name!r} needs {entry.cost_bytes()} B "
            f"(weights {entry.ro_bytes} B + arena {entry.rw_bytes or '?'} B) "
            f"but the fleet budget is {self.memory_budget_bytes} B with "
            f"{self.resident_bytes()} B resident and nothing evictable"
        )

    def _evict_lru_locked(self) -> bool:
        """Evict the least-recently-used idle resident model; False when
        nothing is evictable (all cold or all in flight)."""
        victims = [e for e in self._entries.values()
                   if e.resident and e.inflight == 0]
        if not victims:
            return False
        victim = min(victims, key=lambda e: e.last_used)
        self._close_entry(victim)
        victim.evictions += 1
        self.evictions += 1
        return True

    @staticmethod
    def _close_entry(entry: FleetEntry) -> None:
        pool, entry.pool = entry.pool, None
        session, entry.session = entry.session, None
        if pool is not None:
            pool.close()
        if session is not None:
            session.close()

    def _start_pool(self, entry: FleetEntry):
        from repro.runtime.pool import PoolOptions, WorkerPool

        pool = WorkerPool(entry.path, PoolOptions(
            workers=self.workers, retries=self.worker_retries,
        ))
        pool.start()
        return pool

    # -- introspection / lifecycle -------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "budget_bytes": self.memory_budget_bytes,
                "resident_bytes": self.resident_bytes(),
                "models_known": len(self._entries),
                "models_resident": sum(
                    1 for e in self._entries.values() if e.resident
                ),
                "loads": self.loads,
                "evictions": self.evictions,
                "models": {
                    name: e.to_dict()
                    for name, e in sorted(self._entries.items())
                },
            }

    def close(self) -> None:
        with self._lock:
            self._closed = True
            for entry in self._entries.values():
                self._close_entry(entry)

    def __enter__(self) -> "ModelRegistry":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def materialize_fleet(root, configs, *, num_classes: int = 5,
                      seed: int = 0) -> List[Path]:
    """Build a fleet directory of zoo artifacts: one
    ``{resolution}x{width}`` subdirectory per ``(resolution, width)``
    config, each a loadable session artifact saved at its native
    geometry (so the manifest carries the Eq. 7 arena plan the registry
    budgets with).  Returns the artifact paths."""
    from repro.models.model_zoo import mobilenet_v1_spec
    from repro.runtime.session import pipeline

    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, (resolution, width) in enumerate(configs):
        spec = mobilenet_v1_spec(int(resolution), float(width),
                                 num_classes=num_classes)
        session = pipeline(spec, seed=seed + i)
        label = f"{int(resolution)}x{width:g}"
        paths.append(session.save(root / label))
    return paths
