"""Deterministic fault injection for the serving tier.

Every failure mode the robustness layer claims to handle can be
injected here at a controlled, *reproducible* rate — the chaos suite
and the CI smoke lane assert behaviour under faults that fire on exact
event counts, not on luck:

``kernel``
    Raise :class:`~repro.serving.errors.InjectedFaultError` inside the
    engine's executor thread — a stand-in for a crashed kernel.
``slow``
    Sleep ``delay`` seconds inside the batch (latency spike, under the
    watchdog).
``hang``
    Sleep ``delay`` seconds chosen *past* the watchdog — a wedged batch
    the engine must abandon.
``poison``
    Tag the admitted request itself: any batch containing it crashes on
    *every* attempt (a data-dependent kernel fault), so retries cannot
    fix it — only batch-of-1 degradation can isolate and quarantine it.
``queue-overflow``
    Force admission control to treat the queue as full for this
    request (shed path without needing a real traffic burst).
``worker-kill``
    Consumed by :class:`repro.runtime.pool.WorkerPool`: SIGKILL the
    worker process *after* a task has been handed to it — a
    deterministic mid-batch crash the dispatcher must absorb via
    respawn-and-retry (``serve --workers N --inject worker-kill:every=7``).
``malformed``
    Consumed by the *load generator*: emit a garbage payload instead of
    a valid one (the server must 400 it and stay live).

Schedules are counter-based (``every=N`` fires on the N-th, 2N-th, …
event, optionally at a phase ``offset``), optionally bounded by
``limit``; a seeded Bernoulli ``rate`` is also supported and is
deterministic for a fixed seed and event sequence.  Artifact corruption
is a separate helper (:func:`corrupt_artifact`) because it happens on
disk before a server exists.

Spec strings (CLI ``--inject``, bench ``--inject``)::

    kernel:every=7
    slow:every=5,delay=0.05;hang:every=40,delay=10,limit=1
    malformed:rate=0.1
"""

from __future__ import annotations

import random
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.serving.errors import InjectedFaultError

FAULT_KINDS = ("kernel", "slow", "hang", "poison", "queue-overflow",
               "malformed", "worker-kill")


@dataclass(frozen=True)
class FaultSpec:
    """One fault class and its deterministic firing schedule."""

    kind: str
    every: int = 0            # fire on every N-th event (0 = disabled)
    offset: int = 0           # phase shift for ``every``
    rate: float = 0.0         # seeded Bernoulli probability per event
    delay: float = 0.0        # sleep for slow/hang faults, seconds
    limit: Optional[int] = None  # max total fires (None = unbounded)

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; valid: {FAULT_KINDS}"
            )
        if self.every < 0 or self.offset < 0:
            raise ValueError("every/offset must be >= 0")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")


class FaultInjector:
    """Owns the event counters and decides, per event, whether to fire.

    One injector instance is threaded through the engine (batch events)
    and the server (admission events); the load generator holds its own
    for payload faults.  All decisions are pure functions of the event
    count and the seed, so a failing chaos run replays identically.
    """

    def __init__(self, specs: Union[FaultSpec, List[FaultSpec], None] = None,
                 seed: int = 0):
        if specs is None:
            specs = []
        elif isinstance(specs, FaultSpec):
            specs = [specs]
        self.specs: Dict[str, FaultSpec] = {}
        for spec in specs:
            if spec.kind in self.specs:
                raise ValueError(f"duplicate fault spec for {spec.kind!r}")
            self.specs[spec.kind] = spec
        self.seed = seed
        self._rng = random.Random(seed)
        self.events: Dict[str, int] = {k: 0 for k in self.specs}
        self.fires: Dict[str, int] = {k: 0 for k in self.specs}

    def __bool__(self) -> bool:
        return bool(self.specs)

    def fire(self, kind: str) -> Optional[FaultSpec]:
        """Count one ``kind`` event; return the spec iff it fires now."""
        spec = self.specs.get(kind)
        if spec is None:
            return None
        self.events[kind] += 1
        if spec.limit is not None and self.fires[kind] >= spec.limit:
            return None
        hit = False
        if spec.every:
            hit = (self.events[kind] - spec.offset) % spec.every == 0
        if not hit and spec.rate:
            hit = self._rng.random() < spec.rate
        if hit:
            self.fires[kind] += 1
            return spec
        return None

    # -- engine-side application (runs on the executor thread) ---------
    def apply_batch_faults(self, sleep=time.sleep) -> None:
        """Called by the engine at the top of every batch execution."""
        spec = self.fire("slow")
        if spec is not None:
            sleep(spec.delay)
        spec = self.fire("hang")
        if spec is not None:
            sleep(spec.delay)
        spec = self.fire("kernel")
        if spec is not None:
            raise InjectedFaultError(
                f"injected kernel fault (event {self.events['kernel']})"
            )

    def summary(self) -> dict:
        return {
            kind: {"events": self.events[kind], "fires": self.fires[kind]}
            for kind in self.specs
        }

    # -- spec-string parsing (CLI / CI) --------------------------------
    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultInjector":
        """Build an injector from ``kind:key=val,...;kind:...`` syntax."""
        specs = []
        for part in filter(None, (p.strip() for p in text.split(";"))):
            kind, _, argtext = part.partition(":")
            kwargs = {}
            for item in filter(None, (a.strip() for a in argtext.split(","))):
                key, _, value = item.partition("=")
                if not _:
                    raise ValueError(
                        f"malformed fault argument {item!r} in {part!r} "
                        f"(expected key=value)"
                    )
                if key in ("every", "offset", "limit"):
                    kwargs[key] = int(value)
                elif key in ("rate", "delay"):
                    kwargs[key] = float(value)
                else:
                    raise ValueError(f"unknown fault argument {key!r} in {part!r}")
            specs.append(FaultSpec(kind=kind.strip(), **kwargs))
        return cls(specs, seed=seed)


def corrupt_artifact(src: Union[str, Path], dst: Union[str, Path],
                     byte_offset: int = 0, flip: int = 0xFF) -> Path:
    """Copy a session artifact and flip one byte of its blob stream.

    The loader's CRC pass must reject the copy with a typed
    :class:`~repro.runtime.errors.ArtifactError` — this is the
    deterministic stand-in for disk/transfer corruption used by the
    chaos suite and the CI smoke lane.
    """
    from repro.runtime.artifact import BLOBS_NAME

    src, dst = Path(src), Path(dst)
    if dst.exists():
        shutil.rmtree(dst)
    shutil.copytree(src, dst)
    blob_path = dst / BLOBS_NAME
    raw = bytearray(blob_path.read_bytes())
    if not raw:
        raise ValueError(f"{blob_path} is empty; nothing to corrupt")
    raw[byte_offset % len(raw)] ^= flip & 0xFF
    blob_path.write_bytes(bytes(raw))
    return dst
