"""repro.serving — fault-tolerant asyncio micro-batching over a Session.

The serving tier turns the synchronous, single-process
:class:`repro.runtime.Session` into a network service built for
failure: concurrent single requests are gathered into engine-shaped
tiles (flush on max-batch or max-wait, remainders carried over), every
request carries a deadline enforced *before* batching, admission is
bounded with explicit 503 shedding, transient faults retry with
deterministic backoff, consecutive batch failures open a per-model
circuit breaker, and a poisoned tile degrades to batch-of-1 so one bad
request cannot take its neighbours down.

Every one of those failure modes is injectable at a deterministic rate
through :mod:`repro.serving.faults` — the chaos suite and the CI smoke
lane assert the policies, they do not hope for them.

Quickstart::

    from repro.runtime import Session
    from repro.serving import ServerOptions, serve

    serve(Session.load("model.artifact"),
          ServerOptions(port=8707, max_batch=8, max_wait_ms=5))

or from the shell: ``repro-mcu serve model.artifact``.
"""

from repro.serving.batcher import FleetBatcher, MicroBatcher, Request
from repro.serving.client import predict, raw_request, request_json
from repro.serving.engine import BatchEngine
from repro.serving.errors import (
    BatchExecutionError,
    CircuitOpenError,
    DeadlineExceededError,
    HungBatchError,
    InjectedFaultError,
    MalformedRequestError,
    ModelNotFoundError,
    OverBudgetError,
    QueueFullError,
    ServerClosingError,
    ServingError,
)
from repro.serving.faults import FaultInjector, FaultSpec, corrupt_artifact
from repro.serving.metrics import DrainTracker, LatencyRecorder, ServerStats
from repro.serving.policies import (
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
    ServerOptions,
    retry_after_s,
)
from repro.serving.registry import FleetEntry, ModelRegistry, materialize_fleet
from repro.serving.server import ServingServer, serve

__all__ = [
    "MicroBatcher",
    "FleetBatcher",
    "Request",
    "BatchEngine",
    "ModelRegistry",
    "FleetEntry",
    "materialize_fleet",
    "ServingServer",
    "serve",
    "ServerOptions",
    "RetryPolicy",
    "CircuitBreaker",
    "BreakerState",
    "FaultInjector",
    "FaultSpec",
    "corrupt_artifact",
    "ServerStats",
    "LatencyRecorder",
    "DrainTracker",
    "retry_after_s",
    "ServingError",
    "MalformedRequestError",
    "ModelNotFoundError",
    "OverBudgetError",
    "DeadlineExceededError",
    "QueueFullError",
    "CircuitOpenError",
    "ServerClosingError",
    "BatchExecutionError",
    "HungBatchError",
    "InjectedFaultError",
    "predict",
    "request_json",
    "raw_request",
]
