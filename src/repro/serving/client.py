"""Minimal asyncio HTTP client for the serving tier.

Used by the chaos suite and the load generator — no third-party HTTP
stack exists in the container, and a hand-rolled client doubles as the
place to send *deliberately broken* requests (raw bytes straight onto
the socket) that a well-behaved library would refuse to emit.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple


async def raw_request(host: str, port: int, payload: bytes,
                      timeout: float = 30.0) -> Tuple[int, dict, bytes]:
    """Write ``payload`` verbatim, read one HTTP response.

    Returns ``(status, headers, body)``.  ``payload`` carrying garbage
    instead of HTTP is exactly what the malformed-input chaos tests
    send.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        raw = await asyncio.wait_for(reader.read(-1), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except OSError:
            pass  # peer reset during close — the response is already read
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    try:
        status = int(lines[0].split()[1])
    except (IndexError, ValueError):
        raise ConnectionError(f"unparseable response: {raw[:200]!r}") from None
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body


def _encode(method: str, path: str, body: bytes) -> bytes:
    return (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: repro\r\nContent-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("latin-1") + body


async def request_json(host: str, port: int, method: str, path: str,
                       payload: Optional[dict] = None,
                       timeout: float = 30.0) -> Tuple[int, dict]:
    """JSON request/response round trip; returns ``(status, body_dict)``."""
    body = b"" if payload is None else json.dumps(payload).encode("utf-8")
    status, _, raw = await raw_request(
        host, port, _encode(method, path, body), timeout
    )
    try:
        decoded = json.loads(raw.decode("utf-8")) if raw else {}
    except json.JSONDecodeError:
        decoded = {"raw": raw.decode("latin-1")}
    return status, decoded


async def predict(host: str, port: int, image,
                  deadline_ms: Optional[float] = None,
                  timeout: float = 30.0,
                  model: Optional[str] = None) -> Tuple[int, dict]:
    """One inference request.  ``image`` is a CHW array/nested list;
    ``model`` routes between artifacts on a fleet server."""
    payload = {"input": image.tolist() if hasattr(image, "tolist") else image}
    if deadline_ms is not None:
        payload["deadline_ms"] = deadline_ms
    if model is not None:
        payload["model"] = model
    return await request_json(host, port, "POST", "/v1/predict", payload,
                              timeout=timeout)
