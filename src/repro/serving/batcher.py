"""Micro-batching core: accumulate single requests into engine-shaped tiles.

The algorithm is the ``InputContainer`` accumulate-until-full pattern:
requests append to a pending queue; when ``max_batch`` are waiting a
full tile is emitted and the remainder is *carried over* to seed the
next tile; when the oldest pending request has waited ``max_wait_s`` the
partial tile is flushed so light traffic still sees bounded latency.

Deadlines are enforced *here*, before batching: an expired request is
dropped from the pending queue and never reaches the engine — inference
capacity is never spent on an answer nobody is waiting for.

The batcher is deliberately synchronous and clock-injected (pass
``clock=`` a fake for tests); the asyncio server drives it from its
batch loop and owns all waiting/waking.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, List, Optional, Tuple

_request_ids = itertools.count(1)


@dataclass
class Request:
    """One admitted inference request waiting for a batch slot.

    ``deadline`` is absolute on the batcher's clock (``None`` = no
    deadline).  ``future`` is whatever completion handle the caller
    wants resolved (the asyncio server stores an ``asyncio.Future``);
    the batcher never touches it.
    """

    x: Any  # per-image CHW array (already validated at admission)
    enqueued_at: float
    deadline: Optional[float] = None
    future: Any = None
    #: Tagged by the fault injector: this request deterministically
    #: crashes any batch containing it (data-dependent kernel fault).
    poisoned: bool = False
    #: Fleet routing key (``None`` on a single-model server).
    model: Optional[str] = None
    req_id: int = field(default_factory=lambda: next(_request_ids))

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


class MicroBatcher:
    """Gather requests into tiles of at most ``max_batch``.

    ``max_wait_s`` bounds how long the *oldest* pending request may sit
    before a partial tile is flushed.  ``take()`` returns
    ``(batch, expired)`` — expired requests are surfaced so the caller
    can answer them (504), and are guaranteed never to appear in a
    batch.
    """

    def __init__(self, max_batch: int, max_wait_s: float,
                 clock: Callable[[], float] = time.monotonic):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait_s < 0:
            raise ValueError(f"max_wait_s must be >= 0, got {max_wait_s}")
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.clock = clock
        self._pending: Deque[Request] = deque()

    def __len__(self) -> int:
        return len(self._pending)

    def add(self, request: Request) -> None:
        self._pending.append(request)

    def expire(self, now: Optional[float] = None) -> List[Request]:
        """Drop and return every pending request whose deadline passed."""
        now = self.clock() if now is None else now
        expired = [r for r in self._pending if r.expired(now)]
        if expired:
            self._pending = deque(
                r for r in self._pending if not r.expired(now)
            )
        return expired

    def ready(self, now: Optional[float] = None) -> bool:
        """Is a tile due — full, or the oldest waiter timed out?"""
        if len(self._pending) >= self.max_batch:
            return True
        if not self._pending:
            return False
        now = self.clock() if now is None else now
        return now - self._pending[0].enqueued_at >= self.max_wait_s

    def next_flush_in(self, now: Optional[float] = None) -> Optional[float]:
        """Seconds until the pending partial tile must flush (0 when a
        tile is already due, ``None`` when nothing is pending).  The
        server sleeps exactly this long between loop wakeups."""
        if not self._pending:
            return None
        if len(self._pending) >= self.max_batch:
            return 0.0
        now = self.clock() if now is None else now
        due = self._pending[0].enqueued_at + self.max_wait_s
        for r in self._pending:
            if r.deadline is not None:
                due = min(due, r.deadline)
        return max(0.0, due - now)

    def take(self, now: Optional[float] = None,
             force: bool = False) -> Tuple[List[Request], List[Request]]:
        """Form the next tile: ``(batch, expired)``.

        Expired requests are removed first and can never be batched.  A
        full tile takes exactly ``max_batch`` requests and *carries the
        remainder* for the next call; a timed-out partial tile takes
        everything pending; otherwise the batch is empty.  ``force``
        flushes a partial tile immediately (shutdown drain).
        """
        now = self.clock() if now is None else now
        expired = self.expire(now)
        if not self._pending:
            return [], expired
        if len(self._pending) >= self.max_batch:
            batch = [self._pending.popleft() for _ in range(self.max_batch)]
            return batch, expired
        if force or now - self._pending[0].enqueued_at >= self.max_wait_s:
            batch = list(self._pending)
            self._pending.clear()
            return batch, expired
        return [], expired

    def drain(self) -> List[Request]:
        """Remove and return everything pending (shutdown path)."""
        pending = list(self._pending)
        self._pending.clear()
        return pending


class FleetBatcher:
    """Per-``(model, input shape)`` micro-batching for the fleet server.

    A tile must be homogeneous — one model, one geometry — because the
    engine stacks it into a single array and runs it through one
    session.  Each distinct ``(request.model, request.x.shape)`` pair
    therefore gets its own :class:`MicroBatcher` lane; lanes are created
    on first use and dropped when empty, so a fleet of mostly-idle
    models costs nothing.  The interface mirrors ``MicroBatcher`` — the
    server's batch loop drives either without caring which.
    """

    def __init__(self, max_batch: int, max_wait_s: float,
                 clock: Callable[[], float] = time.monotonic):
        self.max_batch = int(max_batch)
        self.max_wait_s = float(max_wait_s)
        self.clock = clock
        self._lanes: "dict[tuple, MicroBatcher]" = {}

    def __len__(self) -> int:
        return sum(len(lane) for lane in self._lanes.values())

    @property
    def lanes(self) -> int:
        return len(self._lanes)

    def _key(self, request: Request) -> tuple:
        shape = tuple(getattr(request.x, "shape", ()))
        return (request.model, shape)

    def add(self, request: Request) -> None:
        key = self._key(request)
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._lanes[key] = MicroBatcher(
                self.max_batch, self.max_wait_s, clock=self.clock
            )
        lane.add(request)

    def next_flush_in(self, now: Optional[float] = None) -> Optional[float]:
        now = self.clock() if now is None else now
        delays = [d for d in (lane.next_flush_in(now)
                              for lane in self._lanes.values())
                  if d is not None]
        return min(delays) if delays else None

    def take(self, now: Optional[float] = None,
             force: bool = False) -> Tuple[List[Request], List[Request]]:
        """The next due tile across all lanes: ``(batch, expired)``.

        Lanes are polled in insertion order; the first lane with a due
        tile wins this call (the batch loop calls again immediately, so
        other due lanes are at most one iteration behind).  Expired
        requests from *every* polled lane are surfaced.  Empty lanes are
        garbage-collected as they are encountered.
        """
        now = self.clock() if now is None else now
        expired: List[Request] = []
        batch: List[Request] = []
        for key in list(self._lanes):
            lane = self._lanes[key]
            got, exp = lane.take(now, force=force)
            expired.extend(exp)
            if not len(lane):
                del self._lanes[key]
            if got:
                batch = got
                break
        return batch, expired

    def drain(self) -> List[Request]:
        pending: List[Request] = []
        for lane in self._lanes.values():
            pending.extend(lane.drain())
        self._lanes.clear()
        return pending
