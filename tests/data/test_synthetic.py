"""Synthetic dataset and calibration helpers."""

import numpy as np
import pytest

import repro
from repro.data import (
    calibration_batches,
    collect_activation_ranges,
    make_synthetic_classification,
)


class TestSyntheticDataset:
    def test_shapes_and_ranges(self):
        ds = make_synthetic_classification(num_classes=4, resolution=12,
                                           train_per_class=10, test_per_class=5)
        assert ds.x_train.shape == (40, 3, 12, 12)
        assert ds.x_test.shape == (20, 3, 12, 12)
        assert ds.x_train.min() >= 0.0 and ds.x_train.max() <= 1.0
        assert set(np.unique(ds.y_train)) == set(range(4))

    def test_deterministic_given_seed(self):
        a = make_synthetic_classification(seed=7, train_per_class=5, test_per_class=2)
        b = make_synthetic_classification(seed=7, train_per_class=5, test_per_class=2)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_test, b.y_test)

    def test_different_seeds_differ(self):
        a = make_synthetic_classification(seed=1, train_per_class=5, test_per_class=2)
        b = make_synthetic_classification(seed=2, train_per_class=5, test_per_class=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_properties(self):
        ds = make_synthetic_classification(num_classes=3, resolution=8, channels=1,
                                           train_per_class=4, test_per_class=2)
        assert ds.resolution == 8 and ds.channels == 1 and ds.num_classes == 3

    def test_batches_cover_dataset(self, rng):
        ds = make_synthetic_classification(num_classes=3, train_per_class=10, test_per_class=2)
        seen = 0
        for xb, yb in ds.batches(batch_size=8, rng=rng, train=True):
            assert len(xb) == len(yb) <= 8
            seen += len(xb)
        assert seen == 30

    def test_noise_controls_difficulty(self):
        """Higher noise produces larger within-class spread (harder task)."""
        clean = make_synthetic_classification(num_classes=4, noise=0.02, seed=3,
                                              train_per_class=20, test_per_class=10)
        noisy = make_synthetic_classification(num_classes=4, noise=0.9, seed=3,
                                              train_per_class=20, test_per_class=10)

        def within_class_variance(ds):
            total = 0.0
            for k in range(ds.num_classes):
                xs = ds.x_train[ds.y_train == k]
                total += float(((xs - xs.mean(axis=0)) ** 2).mean())
            return total / ds.num_classes

        assert within_class_variance(noisy) > 3 * within_class_variance(clean)

    def test_at_least_two_classes_required(self):
        with pytest.raises(ValueError):
            make_synthetic_classification(num_classes=1)


class TestCalibration:
    def test_calibration_batches_limit(self):
        x = np.zeros((100, 3, 8, 8))
        batches = list(calibration_batches(x, batch_size=16, max_batches=3))
        assert len(batches) == 3
        assert all(len(b) == 16 for b in batches)

    def test_collect_activation_ranges(self, small_dataset):
        model = repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5)
        stats = collect_activation_ranges(model, small_dataset.x_train[:32], batch_size=16)
        assert len(stats) == len(model.conv_blocks())
        for s in stats:
            assert s["min"] <= s["percentile"] <= s["max"] + 1e-9
            assert np.isfinite(s["percentile"])

    def test_collect_restores_training_mode(self, small_dataset):
        model = repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5)
        model.train()
        collect_activation_ranges(model, small_dataset.x_train[:16])
        assert model.training
