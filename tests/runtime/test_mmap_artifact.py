"""Zero-copy artifact loading: ``load_artifact(mmap=True)`` must map
``blobs.bin`` read-only instead of copying it into the heap.

Three properties are enforced:

* **No copy** — the Python-heap allocation delta of an mmap load is a
  small fraction of the blob file (tracemalloc), while a plain load
  pays at least one full blob copy.  Weight arrays come back as
  read-only views of the mapping and reject writes.
* **Integrity still holds** — CRC mismatches and truncation surface as
  the same typed :class:`ArtifactError` through the mapped view as
  through the heap path, and the loaded network is bit-identical.
* **Pages are shared** — the mapping is file-backed with zero
  ``Private_Dirty`` bytes, and across a 4-worker pool the
  proportional-set-size of the blob mapping sums to ~one copy of the
  weights (the "1 x weights + N x arenas" memory model), not N copies.

The smaps-based tests are Linux-only and skip elsewhere.
"""

import os
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import PoolOptions, Session, SessionOptions, WorkerPool
from repro.runtime.artifact import (
    BLOBS_NAME,
    ArtifactError,
    MappedBlobs,
    load_artifact,
)

_SMALL = mobilenet_v1_spec(32, 0.25, num_classes=5)
# Wider net for the memory-accounting tests: enough blob bytes that a
# stray full copy is orders of magnitude above the measurement noise.
_WIDE = mobilenet_v1_spec(32, 1.0, num_classes=50)

_HAS_SMAPS = Path("/proc/self/smaps").exists()


def _saved(spec, tmp_path, seed=7, **net_kwargs):
    net = integer_network_from_spec(spec, np.random.default_rng(seed), **net_kwargs)
    session = Session(net, options=SessionOptions(input_hw=(32, 32)))
    return session, session.save(tmp_path / "artifact")


def _smaps_for(pid, path):
    """Aggregate smaps fields (bytes) for every mapping of ``path`` in
    process ``pid``.  Returns None when the file isn't mapped."""
    text = Path(f"/proc/{pid}/smaps").read_text()
    totals = {}
    in_section = False
    for line in text.splitlines():
        if "-" in line.split(" ", 1)[0] and " " in line:  # header line
            in_section = line.rstrip().endswith(str(path))
        elif in_section and line.endswith("kB"):
            field, value = line.split(":", 1)
            totals[field.strip()] = (
                totals.get(field.strip(), 0) + int(value.split()[0]) * 1024
            )
    return totals or None


class TestNoCopy:
    def test_mmap_load_allocates_a_fraction_of_the_blob(self, tmp_path):
        _, path = _saved(_WIDE, tmp_path)
        blob_bytes = (path / BLOBS_NAME).stat().st_size
        assert blob_bytes > 1_000_000  # the measurement needs headroom

        tracemalloc.start()
        try:
            base, _ = tracemalloc.get_traced_memory()
            network, *_ = load_artifact(path, mmap=True)
            now, _ = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        mmap_delta = now - base
        # Requant params, python objects and small per-layer arrays are
        # allowed; another copy of the weights is not.
        assert mmap_delta < blob_bytes / 4, (
            f"mmap load allocated {mmap_delta} B against a "
            f"{blob_bytes} B blob — weights were copied"
        )
        assert network.conv_layers  # mapping stays alive via the arrays

    def test_plain_load_pays_at_least_one_blob_copy(self, tmp_path):
        """The control for the assertion above: without mmap the loader
        must allocate at least the blob once, proving the tracemalloc
        harness actually sees blob-sized traffic."""
        _, path = _saved(_WIDE, tmp_path)
        blob_bytes = (path / BLOBS_NAME).stat().st_size
        tracemalloc.start()
        try:
            base, _ = tracemalloc.get_traced_memory()
            network, *_ = load_artifact(path)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert peak - base >= blob_bytes
        assert network.conv_layers

    def test_mapped_weights_are_readonly_and_reject_writes(self, tmp_path):
        _, path = _saved(_SMALL, tmp_path)
        network, *_ = load_artifact(path, mmap=True)
        arrays = [layer.params.weights_q for layer in network.conv_layers]
        arrays.append(network.classifier.weights_q)
        assert arrays
        for arr in arrays:
            assert arr.flags.writeable is False
            with pytest.raises(ValueError):
                arr[...] = 0

    def test_mapped_blobs_getitem_is_zero_copy_view(self, tmp_path):
        _, path = _saved(_SMALL, tmp_path)
        blobs = MappedBlobs(path / BLOBS_NAME)
        view = blobs[4:64]
        assert isinstance(view, memoryview)
        assert view.readonly
        assert len(blobs) == (path / BLOBS_NAME).stat().st_size


class TestIntegrityThroughTheMapping:
    def test_mmap_load_is_bit_identical(self, tmp_path):
        session, path = _saved(_SMALL, tmp_path)
        restored = Session.load(path, mmap=True)
        x = np.random.default_rng(9).uniform(0, 1, size=(4, 3, 32, 32))
        assert np.array_equal(session.run(x), restored.run(x))

    def test_mmap_load_is_bit_identical_with_subbyte_weights(self, tmp_path):
        """Sub-byte codes go through the unpack path on top of the
        mapped bytes — the widened codes are private copies, but the
        results must not change."""
        session, path = _saved(_SMALL, tmp_path, w_bits=4, act_bits=4)
        restored = Session.load(path, mmap=True)
        x = np.random.default_rng(10).uniform(0, 1, size=(4, 3, 32, 32))
        assert np.array_equal(session.run(x), restored.run(x))

    def test_crc_corruption_rejected_through_mmap(self, tmp_path):
        _, path = _saved(_SMALL, tmp_path)
        blob_path = path / BLOBS_NAME
        raw = bytearray(blob_path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        blob_path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactError, match="CRC32"):
            load_artifact(path, mmap=True)

    def test_truncation_rejected_through_mmap(self, tmp_path):
        _, path = _saved(_SMALL, tmp_path)
        blob_path = path / BLOBS_NAME
        blob_path.write_bytes(blob_path.read_bytes()[:-64])
        with pytest.raises(ArtifactError, match="truncated|CRC32|corrupt"):
            load_artifact(path, mmap=True)

    def test_empty_blob_file_rejected_through_mmap(self, tmp_path):
        """A zero-length blobs.bin cannot be mmapped at all; the typed
        error must still come out, not a bare OSError."""
        _, path = _saved(_SMALL, tmp_path)
        (path / BLOBS_NAME).write_bytes(b"")
        with pytest.raises(ArtifactError):
            load_artifact(path, mmap=True)


@pytest.mark.skipif(not _HAS_SMAPS, reason="/proc/self/smaps not available")
class TestPageSharing:
    def test_mapping_is_file_backed_with_no_dirty_pages(self, tmp_path):
        _, path = _saved(_SMALL, tmp_path)
        network, *_ = load_artifact(path, mmap=True)
        stats = _smaps_for(os.getpid(), path / BLOBS_NAME)
        assert stats is not None, "blobs.bin not mapped"
        assert stats.get("Private_Dirty", 0) == 0
        assert network.conv_layers  # keep the mapping alive until read

    def test_four_worker_pool_shares_one_copy_of_the_weights(self, tmp_path):
        """The scale-out memory model, measured: each worker maps
        blobs.bin read-only (zero private-dirty bytes, so no worker owns
        a CoW copy), and the proportional set size of the mapping summed
        across all four workers is ~one file's worth — the kernel is
        charging the weights once, not four times.

        Interpreter/numpy baselines and per-worker arenas are private by
        design and deliberately not bounded here; the weights are the
        part the mmap design promises to share.
        """
        _, path = _saved(_WIDE, tmp_path)
        blob_path = path / BLOBS_NAME
        blob_bytes = blob_path.stat().st_size
        with WorkerPool(path, PoolOptions(workers=4)) as pool:
            # Touch every worker so all four have faulted the pages in.
            x = np.random.default_rng(12).uniform(0, 1, size=(8, 3, 32, 32))
            pool.run_batched(x, batch_size=2)
            pids = pool.worker_pids()
            assert len(pids) == 4
            per_worker = [_smaps_for(pid, blob_path) for pid in pids]
        assert all(stats is not None for stats in per_worker), (
            "every worker must keep blobs.bin mapped"
        )
        for stats in per_worker:
            assert stats.get("Private_Dirty", 0) == 0
        total_pss = sum(stats.get("Pss", 0) for stats in per_worker)
        # One shared copy plus generous page-rounding slack — a private
        # copy per worker would put this at ~4x the blob.
        assert total_pss <= blob_bytes + 512 * 1024, (
            f"Pss across 4 workers is {total_pss} B for a "
            f"{blob_bytes} B blob — weights are not being shared"
        )
