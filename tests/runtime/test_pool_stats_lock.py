"""Regression: ``WorkerPool.stats()`` must snapshot under the pool lock.

The bug: every other accessor that touches the dispatcher-shared state
(``queue_depths``, the dispatch loop, the restart path) takes
``self._lock``, but ``stats()`` read the counters and per-worker handles
lock-free — a snapshot taken mid-restart could count one batch both in
a queue and in a worker's ``served`` tally, or see a handle half-reset.
These tests pin the locking contract with an instrumented Condition.
"""

import threading

import pytest

from repro.runtime.pool import PoolOptions, WorkerPool


class _RecordingCondition(threading.Condition):
    """A Condition that records whether it is held during a probe."""

    def __init__(self):
        super().__init__()
        self.acquisitions = 0

    def __enter__(self):
        result = super().__enter__()
        self.acquisitions += 1
        return result


@pytest.fixture()
def pool(tmp_path):
    # Never started: __init__ fully builds the stats-visible state, and
    # an unstarted pool exercises the same code path without spawning
    # processes.
    p = WorkerPool(tmp_path / "artifact", PoolOptions(workers=3))
    p._lock = _RecordingCondition()
    return p


def test_stats_takes_the_pool_lock(pool):
    before = pool._lock.acquisitions
    pool.stats()
    assert pool._lock.acquisitions > before


def test_stats_holds_lock_while_reading_counters(pool):
    """Stronger than 'acquired at some point': the whole snapshot —
    including the per-worker rows — happens inside one outer hold."""
    held_during_read = []
    lock = pool._lock

    class _Probe:
        served = 0
        restarts = 0
        stolen = 0
        worker_id = 0
        pid = None
        alive = False
        state = "starting"

        def __getattribute__(self, name):
            if name in ("served", "stolen"):
                # _is_owned() is Condition's own "does this thread hold
                # the lock" probe.
                held_during_read.append(lock._is_owned())
            return object.__getattribute__(self, name)

    pool._workers = [_Probe()]
    pool.stats()
    assert held_during_read and all(held_during_read)


def test_stats_consistent_with_queue_depths(pool):
    snapshot = pool.stats()
    assert snapshot["queue_depths"] == [0, 0, 0]
    assert snapshot["workers"] == 3
    assert snapshot["served"] == 0
    assert len(snapshot["per_worker"]) == len(pool._workers)


def test_queue_depths_still_locks(pool):
    before = pool._lock.acquisitions
    pool.queue_depths()
    assert pool._lock.acquisitions > before
