"""CompileOptions / SessionOptions: validation, normalisation, round trip."""

import pytest

from repro.runtime import CompileOptions, SessionOptions


class TestCompileOptions:
    def test_defaults_are_the_production_pipeline(self):
        o = CompileOptions()
        assert o.backend == "auto" and o.validate and o.use_arena
        assert o.fused_depthwise == "auto" and o.narrow and o.refined_bound
        assert o.input_hw is None

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CompileOptions().backend = "blas"

    def test_hashable_and_equal_by_value(self):
        assert CompileOptions(narrow=False) == CompileOptions(narrow=False)
        assert len({CompileOptions(), CompileOptions()}) == 1

    def test_input_hw_normalised_to_int_tuple(self):
        o = CompileOptions(input_hw=[64.0, 32])
        assert o.input_hw == (64, 32)
        assert all(isinstance(d, int) for d in o.input_hw)

    @pytest.mark.parametrize("bad", [{"backend": "sgemm"},
                                     {"fused_depthwise": "maybe"},
                                     {"input_hw": (0, 4)},
                                     {"input_hw": 32}])
    def test_invalid_values_rejected(self, bad):
        with pytest.raises(ValueError):
            CompileOptions(**bad)

    def test_from_legacy_kwargs_rejects_unknown_names(self):
        with pytest.raises(TypeError, match="valid options"):
            CompileOptions.from_legacy_kwargs(narow=True)

    def test_replace(self):
        o = CompileOptions().replace(backend="int64")
        assert o.backend == "int64" and o.narrow

    def test_dict_round_trip(self):
        o = CompileOptions(backend="int32", narrow=False, input_hw=(8, 8))
        assert CompileOptions.from_dict(o.to_dict()) == o


class TestSessionOptions:
    def test_defaults(self):
        o = SessionOptions()
        assert o.batch_size == 32 and o.validate is None and o.input_hw is None

    def test_batch_size_must_be_positive(self):
        with pytest.raises(ValueError):
            SessionOptions(batch_size=0)

    def test_dict_round_trip(self):
        o = SessionOptions(batch_size=4, validate=False, input_hw=(16, 16))
        assert SessionOptions.from_dict(o.to_dict()) == o

    def test_from_dict_rejects_unknown_names(self):
        with pytest.raises(TypeError, match="valid options"):
            SessionOptions.from_dict({"batchsize": 2})
