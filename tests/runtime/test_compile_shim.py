"""The legacy ``IntegerNetwork.compile(**kwargs)`` deprecation shim:
old call sites keep working, warn exactly once, and build the identical
plan the ``CompileOptions`` front door builds."""

import warnings

import numpy as np
import pytest

from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import CompileOptions


@pytest.fixture(scope="module")
def net():
    spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
    return integer_network_from_spec(spec, np.random.default_rng(7))


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(8).uniform(0, 1, size=(2, 3, 32, 32))


def test_default_compile_does_not_warn(net):
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        net.compile()
        net.compile(CompileOptions(narrow=False))


def test_legacy_kwargs_emit_single_deprecation_warning(net):
    with warnings.catch_warnings(record=True) as rec:
        warnings.simplefilter("always")
        net.compile(narrow=False, refined_bound=False, use_arena=False)
    deprecations = [w for w in rec if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    assert "CompileOptions" in str(deprecations[0].message)


@pytest.mark.parametrize("kwargs", [
    {"narrow": False},
    {"backend": "int64"},
    {"backend": "int32"},
    {"validate": False},
    {"use_arena": False, "fused_depthwise": False},
    {"narrow": False, "refined_bound": False, "input_hw": (32, 32)},
])
def test_legacy_kwargs_build_the_identical_plan(net, x, kwargs):
    with pytest.deprecated_call():
        legacy = net.compile(**kwargs)
    modern = net.compile(CompileOptions(**kwargs))
    assert legacy.options == modern.options
    assert list(legacy.layer_info()) == list(modern.layer_info())
    assert np.array_equal(legacy.run(x), modern.run(x))


def test_legacy_plan_matches_interpreted_reference(net, x):
    """The parity contract survives the shim: a legacy-kwargs plan is
    still bit-identical to the interpreted int64 engine."""
    ref = net.forward(x)
    with pytest.deprecated_call():
        plan = net.compile(narrow=False, fused_depthwise=False, use_arena=False)
    assert np.array_equal(ref, plan.run(x))


def test_legacy_positional_backend_still_works(net, x):
    """compile('int64') bound the string to the old leading `backend`
    parameter; the shim must keep that form alive too."""
    with pytest.deprecated_call():
        plan = net.compile("int64")
    assert all(i.backend == "int64" for i in plan.layer_info())
    assert np.array_equal(net.forward(x), plan.run(x))


def test_positional_and_keyword_backend_conflict_is_an_error(net):
    with pytest.raises(TypeError, match="multiple values for argument 'backend'"):
        net.compile("int64", backend="int32")


def test_plan_constructor_rejects_non_options(net):
    from repro.inference.plan import ExecutionPlan

    with pytest.raises(TypeError, match="CompileOptions"):
        ExecutionPlan(net, {"backend": "auto"})


def test_options_and_kwargs_together_is_an_error(net):
    with pytest.raises(TypeError, match="not both"):
        net.compile(CompileOptions(), narrow=False)


def test_unknown_legacy_kwarg_is_an_error(net):
    with pytest.deprecated_call():
        with pytest.raises(TypeError, match="narow"):
            net.compile(narow=False)
