"""Session/MappedBlobs lifetime: close() releases the mapping *now*.

Before the explicit lifecycle, an mmap-loaded session's ``blobs.bin``
mapping lived until the garbage collector reaped the last weight view —
on a fleet server that meant evicted models kept their pages pinned
indefinitely.  These tests pin the new contract: ``Session.close()``
drops the plan and network, closes the mapping deterministically
(verified against ``/proc/self/smaps`` where available and via weakref
otherwise), and a closed session refuses further work instead of
segfault-adjacent behaviour on released buffers.
"""

import gc
import weakref
from pathlib import Path

import numpy as np
import pytest

from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import Session, SessionOptions
from repro.runtime.artifact import MappedBlobs

_SPEC = mobilenet_v1_spec(32, 0.25, num_classes=5)


@pytest.fixture()
def artifact(tmp_path):
    network = integer_network_from_spec(_SPEC, np.random.default_rng(9))
    session = Session(network, options=SessionOptions(input_hw=(32, 32)))
    return session.save(tmp_path / "model")


def _mapped_paths():
    smaps = Path("/proc/self/smaps")
    if not smaps.exists():
        pytest.skip("no /proc/self/smaps on this platform")
    return smaps.read_text()


class TestMappedBlobsClose:
    def test_close_is_idempotent_and_flags(self, artifact):
        blobs = MappedBlobs(artifact / "blobs.bin")
        assert not blobs.closed
        blobs.close()
        assert blobs.closed
        blobs.close()  # second close is a no-op, not an error

    def test_closed_mapping_refuses_slicing(self, artifact):
        blobs = MappedBlobs(artifact / "blobs.bin")
        assert len(blobs[0:4]) == 4
        blobs.close()
        with pytest.raises(ValueError, match="closed"):
            blobs[0:4]

    def test_context_manager(self, artifact):
        with MappedBlobs(artifact / "blobs.bin") as blobs:
            assert blobs.nbytes > 0
        assert blobs.closed

    def test_live_views_surface_buffer_error(self, artifact):
        """A mapping with exported buffers must refuse to close loudly
        (after one GC attempt) rather than leak silently."""
        blobs = MappedBlobs(artifact / "blobs.bin")
        view = blobs[0:16]  # keep a live export
        with pytest.raises(BufferError):
            blobs.close()
        assert not blobs.closed
        view.release()
        blobs.close()
        assert blobs.closed


class TestSessionClose:
    def test_close_unmaps_blobs_file(self, artifact):
        """The smaps check: the artifact's blobs.bin appears in this
        process's mappings while the session is open and is gone right
        after close() — no GC required."""
        session = Session.load(artifact, mmap=True)
        session.run(session.synthetic_batch(1, input_hw=(32, 32)))
        blob_path = str((artifact / "blobs.bin").resolve())
        assert blob_path in _mapped_paths()
        session.close()
        assert blob_path not in _mapped_paths()

    def test_close_releases_network_and_plan(self, artifact):
        session = Session.load(artifact, mmap=True)
        ref = weakref.ref(session.network)
        session.close()
        gc.collect()
        assert ref() is None
        assert session.closed
        assert session.mapped_blobs is None

    def test_closed_session_refuses_work(self, artifact):
        session = Session.load(artifact, mmap=True)
        x = session.synthetic_batch(1, input_hw=(32, 32))
        session.close()
        for call in (lambda: session.run(x),
                     lambda: session.run_batched(x),
                     lambda: session.validate_input(x),
                     lambda: session.plan):
            with pytest.raises(RuntimeError, match="closed"):
                call()

    def test_close_is_idempotent(self, artifact):
        session = Session.load(artifact, mmap=True)
        session.close()
        session.close()
        assert session.closed

    def test_context_manager(self, artifact):
        with Session.load(artifact, mmap=True) as session:
            out = session.run(session.synthetic_batch(2, input_hw=(32, 32)))
            assert out.shape[0] == 2
        assert session.closed

    def test_heap_loaded_session_close_is_safe(self, artifact):
        """Without mmap there is no mapping to release; close() still
        transitions the session and drops the plan."""
        session = Session.load(artifact)
        assert session.mapped_blobs is None
        session.close()
        assert session.closed
