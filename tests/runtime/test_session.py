"""Session front door: serving delegation, profiling, and pipeline()."""

import numpy as np
import pytest

import repro
from repro.core.policy import QuantMethod, QuantPolicy
from repro.inference.testing import integer_network_from_spec
from repro.mcu.deploy import assert_arena_fits
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import CompileOptions, Session, SessionOptions, pipeline

SPEC = mobilenet_v1_spec(32, 0.25, num_classes=5)


@pytest.fixture(scope="module")
def net():
    return integer_network_from_spec(SPEC, np.random.default_rng(3))


@pytest.fixture(scope="module")
def x():
    return np.random.default_rng(4).uniform(0, 1, size=(5, 3, 32, 32))


class TestSession:
    def test_run_matches_plan_and_reference(self, net, x):
        session = Session(net)
        assert np.array_equal(session.run(x), net.forward(x))

    def test_run_batched_uses_session_tile_size(self, net, x):
        session = Session(net, options=SessionOptions(batch_size=2))
        assert np.array_equal(session.run_batched(x), session.run(x))
        assert np.array_equal(session.predict(x), net.predict(x))

    def test_compile_options_flow_through(self, net, x):
        session = Session(net, CompileOptions(backend="int64", narrow=False))
        assert all(i.backend == "int64" for i in session.layer_info())
        assert np.array_equal(session.run(x), net.forward(x))

    def test_input_hw_plans_arena_eagerly(self, net):
        session = Session(net, options=SessionOptions(input_hw=(32, 32)))
        assert (32, 32) in session.plan._arenas
        assert "activation arena" in session.describe()

    def test_run_codes_validate_override(self, net):
        bad = np.full((1, 3, 8, 8), 300, dtype=np.int64)  # out of 8-bit range
        strict = Session(net, options=SessionOptions(validate=True))
        with pytest.raises(ValueError):
            strict.run_codes(bad)
        lax = Session(net, options=SessionOptions(validate=False))
        lax.run_codes(bad)  # no boundary scan, garbage in garbage out

    def test_profile_covers_every_layer(self, net, x):
        session = Session(net)
        prof = session.profile(x[:2], repeats=1)
        names = [t.name for t in prof.layers]
        assert names[-1] == "classifier" and "global_avg_pool" in names
        assert len(names) == len(net.conv_layers) + 2
        assert prof.total_seconds > 0
        assert "session profile" in prof.table()

    def test_profile_synthetic_batch_needs_geometry(self, net):
        with pytest.raises(ValueError, match="input_hw"):
            Session(net).profile()
        prof = Session(net, options=SessionOptions(input_hw=(32, 32),
                                                   batch_size=2)).profile(repeats=1)
        assert prof.batch_size == 2 and prof.input_hw == (32, 32)

    def test_session_accepted_by_assert_arena_fits(self, net):
        session = Session(net, options=SessionOptions(input_hw=(32, 32)))
        peak = assert_arena_fits(session, repro.STM32H7, (32, 32))
        assert peak == session.plan.arena_for((32, 32)).logical_rw_peak_bytes


class TestPipeline:
    def test_device_search_is_wired_in(self):
        session = pipeline(SPEC, device=repro.STM32H7, seed=1)
        assert np.array_equal(
            session.run(np.zeros((1, 3, 32, 32))),
            session.network.forward(np.zeros((1, 3, 32, 32))),
        )
        # arena planned at the spec resolution by default
        assert (32, 32) in session.plan._arenas

    def test_policy_bits_are_materialised(self):
        policy = QuantPolicy.uniform(SPEC, method=QuantMethod.PC_ICN, bits=4)
        policy.layers[0].q_in = 8  # network input is fixed at 8 bit
        session = pipeline(SPEC, policy=policy, seed=2)
        assert all(l.params.w_bits == 4 for l in session.network.conv_layers)
        assert all(l.out_bits == 4 for l in session.network.conv_layers[:-1])

    @pytest.mark.parametrize("method,strategy", [
        (QuantMethod.PL_FB, "FoldedBNParams"),
        (QuantMethod.PC_THRESHOLDS, "ThresholdParams"),
        (QuantMethod.PC_ICN, "ICNParams"),
    ])
    def test_method_selects_requant_strategy(self, method, strategy):
        session = pipeline(SPEC, method=method, seed=5)
        assert all(
            type(l.params).__name__ == strategy
            for l in session.network.conv_layers
        )

    def test_prebuilt_network_short_circuits(self, net, x):
        session = pipeline(SPEC, network=net)
        assert session.network is net
        assert np.array_equal(session.run(x), net.forward(x))

    def test_policy_length_mismatch_is_an_error(self):
        other = mobilenet_v1_spec(32, 0.5, num_classes=5)
        policy = QuantPolicy.uniform(other, method=QuantMethod.PC_ICN)
        del policy.layers[-1]
        with pytest.raises(ValueError, match="layers"):
            integer_network_from_spec(SPEC, policy=policy)
