"""Typed runtime errors: atomic save semantics, ``ArtifactError`` on
partial/missing artifacts, ``InvalidInputError`` at the Session front
door."""

import json
import os

import numpy as np
import pytest

from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import (
    ArtifactError,
    ArtifactNotFoundError,
    InvalidInputError,
    Session,
    SessionOptions,
)
from repro.runtime.artifact import BLOBS_NAME, MANIFEST_NAME

_SMALL = mobilenet_v1_spec(32, 0.25, num_classes=5)


@pytest.fixture(scope="module")
def session():
    net = integer_network_from_spec(_SMALL, np.random.default_rng(7))
    return Session(net, options=SessionOptions(input_hw=(32, 32)))


@pytest.fixture
def saved(session, tmp_path):
    return session.save(tmp_path / "artifact")


class TestAtomicSave:
    def test_save_overwrites_existing_artifact_in_place(self, session, tmp_path):
        path = session.save(tmp_path / "artifact")
        before = (path / MANIFEST_NAME).read_bytes()
        again = session.save(tmp_path / "artifact")
        assert again == path
        assert (path / MANIFEST_NAME).read_bytes() == before
        Session.load(path)  # still a complete, loadable artifact

    def test_save_leaves_no_staging_droppings(self, session, tmp_path):
        session.save(tmp_path / "artifact")
        session.save(tmp_path / "artifact")  # overwrite path too
        assert sorted(os.listdir(tmp_path)) == ["artifact"]
        assert sorted(os.listdir(tmp_path / "artifact")) == [BLOBS_NAME,
                                                             MANIFEST_NAME]

    def test_save_refuses_to_clobber_a_non_artifact_directory(
            self, session, tmp_path):
        victim = tmp_path / "precious"
        victim.mkdir()
        (victim / "data.txt").write_text("do not delete")
        with pytest.raises(ArtifactError, match="not a session artifact"):
            session.save(victim)
        assert (victim / "data.txt").read_text() == "do not delete"

    def test_failed_save_leaves_previous_artifact_intact(
            self, session, saved, monkeypatch):
        """If staging blows up mid-write, the existing artifact on disk
        must remain loadable — the swap never happened."""
        import repro.runtime.artifact as artifact_mod

        def boom(path, data):
            raise OSError("disk full")

        monkeypatch.setattr(artifact_mod, "_write_synced", boom)
        with pytest.raises(OSError):
            session.save(saved)
        Session.load(saved)
        assert not [p for p in saved.parent.iterdir() if p.name != saved.name]


class TestArtifactErrors:
    def test_missing_artifact_is_typed_and_a_file_not_found(self, tmp_path):
        missing = tmp_path / "nope"
        with pytest.raises(ArtifactNotFoundError):
            Session.load(missing)
        with pytest.raises(FileNotFoundError):   # stdlib contract kept
            Session.load(missing)
        with pytest.raises(ArtifactError):        # umbrella type
            Session.load(missing)

    def test_partial_artifact_missing_blobs(self, saved):
        (saved / BLOBS_NAME).unlink()
        with pytest.raises(ArtifactError, match="missing"):
            Session.load(saved)

    def test_partial_artifact_missing_manifest(self, saved):
        (saved / MANIFEST_NAME).unlink()
        with pytest.raises(ArtifactNotFoundError):
            Session.load(saved)

    def test_unparseable_manifest(self, saved):
        (saved / MANIFEST_NAME).write_text("{not json")
        with pytest.raises(ArtifactError, match="manifest"):
            Session.load(saved)

    def test_structurally_broken_manifest(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        del manifest["network"]
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="corrupt artifact"):
            Session.load(saved)

    def test_flipped_blob_byte_is_an_artifact_error(self, saved):
        raw = bytearray((saved / BLOBS_NAME).read_bytes())
        raw[len(raw) // 2] ^= 0x01
        (saved / BLOBS_NAME).write_bytes(bytes(raw))
        with pytest.raises(ArtifactError, match="CRC32"):
            Session.load(saved)


class TestInputValidation:
    def ok(self):
        return np.zeros((2, 3, 32, 32))

    def test_valid_input_passes(self, session):
        session.validate_input(self.ok())

    @pytest.mark.parametrize("bad,why", [
        ("not an array", "numeric"),
        (np.zeros((3, 32, 32)), "NCHW"),               # missing batch dim
        (np.zeros((2, 3, 32)), "NCHW"),
        (np.zeros((2, 5, 32, 32)), "channel"),         # wrong channel count
        (np.zeros((2, 3, 32, 32), dtype=complex), "dtype"),
        (np.array([[["a"]]]), "dtype"),
    ], ids=["non-array", "rank3", "rank3b", "channels", "complex", "strings"])
    def test_rejections_are_typed(self, session, bad, why):
        with pytest.raises(InvalidInputError, match=why):
            session.validate_input(bad)

    def test_non_finite_values_rejected(self, session):
        x = self.ok()
        x[0, 0, 0, 0] = np.nan
        with pytest.raises(InvalidInputError, match="finite"):
            session.validate_input(x)
        x[0, 0, 0, 0] = np.inf
        with pytest.raises(InvalidInputError, match="finite"):
            session.validate_input(x)

    def test_geometry_too_small_for_network(self):
        # A topology with an unpadded layer: a 1x1 input collapses.
        from repro.inference.testing import random_network
        net = random_network(np.random.default_rng(0), resolution=12,
                             max_layers=4)
        with pytest.raises(InvalidInputError, match="collapses"):
            Session(net).validate_input(np.zeros((1, 3, 1, 1)))

    def test_run_validates_before_compute(self, session):
        with pytest.raises(InvalidInputError):
            session.run(np.zeros((1, 3, 32)))

    def test_run_batched_validates_before_compute(self, session):
        with pytest.raises(InvalidInputError):
            session.run_batched(np.full((1, 3, 32, 32), np.nan))

    def test_validation_can_be_disabled(self):
        net = integer_network_from_spec(_SMALL, np.random.default_rng(7))
        unchecked = Session(net, options=SessionOptions(validate=False,
                                                        input_hw=(32, 32)))
        # Bad geometry now surfaces as whatever the kernels raise — the
        # point is only that the typed gate is off.
        with pytest.raises(Exception) as exc_info:
            unchecked.run(np.zeros((1, 3, 32)))
        assert not isinstance(exc_info.value, InvalidInputError)

    def test_invalid_input_error_is_a_value_error(self):
        assert issubclass(InvalidInputError, ValueError)

    def test_healthcheck_reports_ok(self, session):
        report = session.healthcheck()
        assert report["ok"] is True
        assert report["latency_ms"] >= 0.0
        assert report["output_shape"] == [1, 5]
