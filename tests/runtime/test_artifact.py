"""Session artifact round trip: bit-exact rehydration across the whole
model zoo and every bit-width mix, plus integrity rejection of corrupted
artifacts."""

import json

import numpy as np
import pytest

from repro.inference.export import export_network, import_network
from repro.inference.testing import integer_network_from_spec, random_network
from repro.models.model_zoo import all_mobilenet_configs, mobilenet_v1_spec
from repro.runtime import CompileOptions, Session, SessionOptions
from repro.runtime.artifact import BLOBS_NAME, MANIFEST_NAME, load_artifact

_CONFIGS = all_mobilenet_configs(num_classes=5)
_SMALL = mobilenet_v1_spec(32, 0.25, num_classes=5)


def _roundtrip(tmp_path, session):
    return Session.load(session.save(tmp_path / "artifact"))


@pytest.mark.parametrize("spec", _CONFIGS, ids=lambda s: s.label)
def test_zoo_config_artifact_round_trip_is_bit_exact(spec, tmp_path):
    """Acceptance sweep: Session.load(save(...)) serves bit-identically
    to the in-memory compiled plan on every model-zoo configuration,
    with no reference to the originating IntegerNetwork."""
    seed = spec.resolution * 100 + int(spec.width_multiplier * 100)
    net = integer_network_from_spec(spec, np.random.default_rng(seed))
    session = Session(net)
    restored = _roundtrip(tmp_path, session)
    assert restored.network is not net
    assert all(
        a.params.weights_q is not b.params.weights_q
        for a, b in zip(restored.network.conv_layers, net.conv_layers)
    )
    x = np.random.default_rng(seed + 1).uniform(0, 1, size=(2, 3, 32, 32))
    assert np.array_equal(session.run(x), restored.run(x))
    assert np.array_equal(net.compile().run(x), restored.run(x))


@pytest.mark.parametrize("act_bits", [2, 4, 8])
@pytest.mark.parametrize("w_bits", [2, 4, 8])
def test_bit_width_mix_round_trip(act_bits, w_bits, tmp_path):
    net = integer_network_from_spec(
        _SMALL, np.random.default_rng(act_bits * 10 + w_bits),
        act_bits=act_bits, w_bits=w_bits,
    )
    session = Session(net)
    restored = _roundtrip(tmp_path, session)
    x = np.random.default_rng(0).uniform(0, 1, size=(2, 3, 32, 32))
    assert np.array_equal(session.run(x), restored.run(x))


@pytest.mark.parametrize("idx,strategy", list(enumerate(["icn", "folded", "thr", "mixed"])))
def test_every_requant_strategy_round_trips(idx, strategy, tmp_path):
    """Random topologies exercising every requantization strategy (and
    per-layer mixes of all three) rehydrate bit-identically."""
    rng = np.random.default_rng(1000 + idx)  # fixed seed: reproducible topology
    net = random_network(rng, resolution=10, max_layers=3, strategy=strategy)
    session = Session(net)
    restored = _roundtrip(tmp_path, session)
    x = np.random.default_rng(1).uniform(0, 1, size=(3, 3, 10, 10))
    assert np.array_equal(session.run(x), restored.run(x))


def test_options_survive_the_round_trip(tmp_path):
    net = integer_network_from_spec(_SMALL, np.random.default_rng(0))
    session = Session(
        net,
        CompileOptions(backend="int64", narrow=False, fused_depthwise=False),
        SessionOptions(batch_size=3, validate=False, input_hw=(32, 32)),
    )
    restored = _roundtrip(tmp_path, session)
    assert restored.compile_options == session.compile_options
    assert restored.options == session.options
    assert all(i.backend == "int64" for i in restored.layer_info())


def test_export_import_round_trip_in_memory():
    """The dict-level inverse pair underneath the artifact."""
    net = integer_network_from_spec(_SMALL, np.random.default_rng(2))
    back = import_network(export_network(net))
    x = np.random.default_rng(3).uniform(0, 1, size=(2, 3, 32, 32))
    assert np.array_equal(net.forward(x), back.forward(x))


def test_manifest_carries_arena_plan(tmp_path):
    net = integer_network_from_spec(_SMALL, np.random.default_rng(0))
    session = Session(net, options=SessionOptions(input_hw=(32, 32)))
    path = session.save(tmp_path / "artifact")
    manifest = json.loads((path / MANIFEST_NAME).read_text())
    arena = manifest["network"]["arena"]
    assert arena["input_hw"] == [32, 32]
    assert arena["rw_peak_bytes"] == \
        session.plan.arena_for((32, 32)).logical_rw_peak_bytes


class TestCorruption:
    @pytest.fixture
    def saved(self, tmp_path):
        net = integer_network_from_spec(_SMALL, np.random.default_rng(5))
        return Session(net).save(tmp_path / "artifact")

    def test_corrupted_blob_rejected_by_crc(self, saved):
        blob_path = saved / BLOBS_NAME
        raw = bytearray(blob_path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF  # flip one byte mid-stream
        blob_path.write_bytes(bytes(raw))
        with pytest.raises(ValueError, match="CRC32"):
            Session.load(saved)

    def test_truncated_blob_file_rejected(self, saved):
        blob_path = saved / BLOBS_NAME
        blob_path.write_bytes(blob_path.read_bytes()[:-10])
        with pytest.raises(ValueError, match="truncated|CRC32"):
            Session.load(saved)

    def test_missing_manifest_rejected(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            Session.load(tmp_path / "nothing-here")

    def test_wrong_format_marker_rejected(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["format"] = "somebody-elses-format"
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="format"):
            Session.load(saved)

    def test_newer_version_rejected(self, saved):
        manifest = json.loads((saved / MANIFEST_NAME).read_text())
        manifest["version"] = 999
        (saved / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ValueError, match="version"):
            Session.load(saved)

    def test_load_artifact_returns_manifest(self, saved):
        network, copts, sopts, manifest = load_artifact(saved)
        assert manifest["format"] == "repro/session-artifact"
        assert network.conv_layers and copts == CompileOptions()
