"""Cross-worker bit-exactness: the process pool must be indistinguishable
from a single-thread Session — same logits, bit for bit, no matter how
tiles land on workers.

The argument the suite enforces: every kernel in the stack is exact
(integer GEMMs under proven accumulator bounds), so per-image results
cannot depend on batch tiling; a pool that mmaps the same artifact into
every worker and splits sweeps across them must therefore reproduce
``Session.run_batched`` exactly.  Any mismatch — one ULP, one image —
is a real bug (shared-state corruption, transport truncation, tile
reassembly out of order), which is why the assertions are
``array_equal``, never ``allclose``.
"""

import threading

import numpy as np
import pytest

from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import all_mobilenet_configs, mobilenet_v1_spec
from repro.runtime import (
    PoolClosedError,
    PoolOptions,
    Session,
    SessionOptions,
    WorkerPool,
    WorkerTaskError,
)

# A sampled slice of the 16-config zoo: the extremes plus two interior
# points.  Structure (depth/width) comes from the spec; inputs run at
# 32x32 so each config costs milliseconds, exactly like the artifact
# round-trip sweep.
_ZOO = all_mobilenet_configs(num_classes=5)
_ZOO_SLICE = [_ZOO[0], _ZOO[5], _ZOO[10], _ZOO[15]]
_SMALL = mobilenet_v1_spec(32, 0.25, num_classes=5)


def _session_for(spec, seed):
    net = integer_network_from_spec(spec, np.random.default_rng(seed))
    return Session(net, options=SessionOptions(input_hw=(32, 32), batch_size=4))


@pytest.fixture(scope="module")
def small_setup(tmp_path_factory):
    """One tiny session + its artifact + a running 2-worker pool,
    shared by every test that doesn't need its own pool."""
    session = _session_for(_SMALL, seed=11)
    path = tmp_path_factory.mktemp("pool") / "small.artifact"
    session.save(path)
    pool = WorkerPool(path, PoolOptions(workers=2, max_tile=4)).start()
    yield session, pool
    pool.close()


@pytest.mark.parametrize("spec", _ZOO_SLICE, ids=lambda s: s.label)
def test_pool_is_bit_identical_across_zoo_slice(spec, tmp_path):
    """Acceptance: pool output == single-thread Session.run_batched on
    every tested zoo config, including an uneven final tile."""
    seed = spec.resolution + int(spec.width_multiplier * 100)
    session = _session_for(spec, seed)
    path = session.save(tmp_path / "zoo.artifact")
    x = np.random.default_rng(seed + 1).uniform(0, 1, size=(7, 3, 32, 32))
    with WorkerPool(path, PoolOptions(workers=2, max_tile=3)) as pool:
        assert np.array_equal(session.run_batched(x), pool.run_batched(x))
        assert np.array_equal(session.run(x[:2]), pool.run(x[:2]))


@pytest.mark.parametrize("n", [1, 3, 4, 5, 7, 9])
def test_ragged_run_batched_edges(small_setup, n):
    """Sweep sizes around the tile boundary (tile=4): one image, one
    tile exactly, tile+1, a ragged tail — every split must reassemble
    in order and bit-exactly."""
    session, pool = small_setup
    x = np.random.default_rng(n).uniform(0, 1, size=(n, 3, 32, 32))
    assert np.array_equal(session.run_batched(x), pool.run_batched(x))
    # Explicit batch_size overrides, including degenerate tile=1.
    assert np.array_equal(
        session.run_batched(x, batch_size=1), pool.run_batched(x, batch_size=1)
    )


def test_empty_sweep_preserves_output_shape(small_setup):
    session, pool = small_setup
    empty = np.empty((0, 3, 32, 32))
    ref = session.run_batched(empty)
    got = pool.run_batched(empty)
    assert got.shape == ref.shape
    assert np.array_equal(ref, got)


def test_predict_parity(small_setup):
    session, pool = small_setup
    x = np.random.default_rng(21).uniform(0, 1, size=(6, 3, 32, 32))
    assert np.array_equal(session.predict(x), pool.predict(x))


def test_concurrent_mixed_shape_submission(small_setup):
    """Many client threads hammer the pool at once with different batch
    sizes and geometries; every caller must get exactly what a private
    single-thread session would have produced.  This is the test that
    catches slab reuse races and response misrouting."""
    session, pool = small_setup
    cases = []
    for i, (n, hw) in enumerate(
        [(1, 32), (5, 32), (2, 40), (8, 32), (3, 40), (4, 32), (7, 40), (6, 32)]
    ):
        x = np.random.default_rng(100 + i).uniform(0, 1, size=(n, 3, hw, hw))
        cases.append((x, session.run_batched(x)))

    failures = []

    def client(idx, x, expected):
        try:
            for _ in range(3):  # re-submit: interleave with other clients
                got = pool.run_batched(x)
                if not np.array_equal(expected, got):
                    failures.append((idx, "mismatch"))
        except Exception as exc:  # pragma: no cover - failure path
            failures.append((idx, repr(exc)))

    threads = [
        threading.Thread(target=client, args=(i, x, ref))
        for i, (x, ref) in enumerate(cases)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not failures, failures
    assert pool.stats()["served"] >= len(cases)


def test_worker_task_error_is_typed_and_nonfatal(small_setup):
    """A bad input fails inside the worker with the remote exception's
    identity preserved — and the worker survives to serve the next task
    (task failures are not worker failures: no respawn)."""
    session, pool = small_setup
    restarts_before = pool.restarts
    with pytest.raises(WorkerTaskError) as err:
        pool.run(np.full((1, 3, 32, 32), np.nan))
    assert err.value.etype == "InvalidInputError"
    assert pool.restarts == restarts_before
    x = np.random.default_rng(5).uniform(0, 1, size=(2, 3, 32, 32))
    assert np.array_equal(session.run(x), pool.run(x))


def test_from_session_stages_and_cleans_up(tmp_path):
    """A pool over an unsaved in-memory session stages its own artifact
    and removes it on close."""
    session = _session_for(_SMALL, seed=31)
    assert session.source_artifact is None
    pool = WorkerPool.from_session(session, PoolOptions(workers=1))
    staged = pool.artifact_path
    with pool:
        x = np.random.default_rng(6).uniform(0, 1, size=(3, 3, 32, 32))
        assert np.array_equal(session.run_batched(x), pool.run_batched(x))
        assert staged.is_dir()
    assert not staged.exists()


def test_closed_pool_rejects_new_work(tmp_path):
    session = _session_for(_SMALL, seed=41)
    path = session.save(tmp_path / "c.artifact")
    pool = WorkerPool(path, PoolOptions(workers=1)).start()
    pool.close()
    pool.close()  # idempotent
    with pytest.raises(PoolClosedError):
        pool.submit(np.zeros((1, 3, 32, 32)))


def test_work_stealing_spreads_a_burst(small_setup):
    """A burst of tiles submitted at once ends up executed by both
    workers (the stealing path, not just round-robin luck)."""
    session, pool = small_setup
    x = np.random.default_rng(51).uniform(0, 1, size=(2, 3, 32, 32))
    futures = [pool.submit(x) for _ in range(12)]
    for f in futures:
        assert np.array_equal(session.run(x), f.result(timeout=120))
    per_worker = pool.stats()["per_worker"]
    assert all(w["served"] > 0 for w in per_worker)
