"""End-to-end integration tests reproducing the paper's qualitative claims
at small scale: the full pipeline pretrain -> memory-driven search -> QAT ->
ICN conversion -> bit-accurate integer inference -> MCU deployment report."""

import numpy as np
import pytest

import repro
from repro.core.graph_convert import convert_to_integer_network
from repro.core.memory_model import MemoryModel
from repro.core.mixed_precision import search_mixed_precision
from repro.core.policy import QuantMethod, QuantPolicy
from repro.inference.export import deployment_size_bytes
from repro.mcu.deploy import deploy
from repro.mcu.device import STM32H7
from repro.training import QATConfig, QATTrainer, TrainConfig, Trainer, evaluate_model, prepare_qat


class TestFullPipelineSmallScale:
    """QAT -> conversion -> integer inference, measured (not surrogate)."""

    def test_icn_integer_accuracy_close_to_fake_quant(self, qat_pc_icn_model, small_dataset):
        fq_acc = evaluate_model(qat_pc_icn_model, small_dataset)
        net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PC_ICN)
        int_acc = float((net.predict(small_dataset.x_test) == small_dataset.y_test).mean())
        assert fq_acc > 0.8
        assert abs(fq_acc - int_acc) <= 0.05

    def test_4bit_pipeline_preserves_accuracy(self, qat_pc_icn_4bit_model, small_dataset):
        fq_acc = evaluate_model(qat_pc_icn_4bit_model, small_dataset)
        net = convert_to_integer_network(qat_pc_icn_4bit_model, method=QuantMethod.PC_ICN)
        int_acc = float((net.predict(small_dataset.x_test) == small_dataset.y_test).mean())
        assert int_acc >= fq_acc - 0.08

    def test_layerwise_code_agreement(self, qat_pc_icn_model, small_dataset):
        """First-layer output codes agree with the fake-quantized graph for
        >= 98 % of positions with a max deviation of one code."""
        net = convert_to_integer_network(qat_pc_icn_model, method=QuantMethod.PC_ICN)
        x = small_dataset.x_test[:4]
        codes_int = net.conv_layers[0].forward(net.quantize_input(x))
        block = list(qat_pc_icn_model.features)[0]
        x_deq = np.floor(x / net.input_scale) * net.input_scale
        y_fq = block(x_deq)
        codes_fq = np.round(y_fq / block.act_quant.scale).astype(np.int64)
        diff = np.abs(codes_fq - codes_int)
        assert diff.max() <= 1
        assert (diff == 0).mean() > 0.98


class TestPLFBCollapseVsICN:
    """Table 2's qualitative story, measured with real (small-scale) QAT:
    folding batch-norm before 4-bit per-layer quantization destroys the
    network, while the ICN formulation trains fine."""

    @pytest.fixture(scope="class")
    def dataset(self, small_dataset):
        return small_dataset

    def _train_variant(self, dataset, method: QuantMethod, bits: int) -> float:
        model = repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5, seed=0)
        Trainer(model, TrainConfig(epochs=4, batch_size=32, lr=3e-3, seed=0)).fit(dataset)
        policy = QuantPolicy.uniform(model.spec, method=method, bits=bits)
        prepare_qat(model, policy, calibration_data=dataset.x_train[:64])
        QATTrainer(
            model,
            QATConfig(epochs=3, batch_size=32, lr=1e-3, lr_schedule={2: 5e-4},
                      enable_folding_after_epoch=0),
        ).fit(dataset)
        model.eval()
        net = convert_to_integer_network(model, method=method)
        return float((net.predict(dataset.x_test) == dataset.y_test).mean())

    def test_folding_inflates_per_layer_quantization_error(self, dataset):
        """The mechanism behind the PL+FB INT4 collapse (Table 2): folding a
        heterogeneous batch-norm scale into the weights inflates the
        per-layer quantization range, so a 4-bit per-layer quantizer
        destroys the small-scale channels; the unfolded per-channel (ICN)
        path keeps the relative error orders of magnitude lower."""
        import numpy as np

        from repro import nn
        from repro.core.fake_quant import WeightFakeQuant
        from repro.models.mobilenet_v1 import ConvBNBlock

        rng = np.random.default_rng(0)
        conv = nn.Conv2d(8, 16, 3, padding=1, bias=False, rng=rng)
        block = ConvBNBlock(conv, 16)
        # Heterogeneous channel scales, as produced by training on real data.
        gammas = np.logspace(-2, 1, 16)
        block.bn.gamma.data[...] = gammas
        block.bn._buffers["running_var"][...] = rng.uniform(0.25, 4.0, size=16)
        scale, _ = block.bn.channel_scale_shift()

        w = conv.weight.data
        w_folded = w * scale.reshape(-1, 1, 1, 1)
        fq_folded = WeightFakeQuant(bits=4, scheme="minmax_pl").fake_quantize(w_folded)
        fq_pc = WeightFakeQuant(bits=4, scheme="minmax_pc").fake_quantize(w)

        # Per-channel relative error in the folded domain (what the layer's
        # output actually sees).  A relative error near 1 means the channel
        # has been flattened to (almost) nothing by the quantizer.
        def per_channel_rel_error(fq, ref):
            err = ((fq - ref) ** 2).mean(axis=(1, 2, 3))
            energy = (ref ** 2).mean(axis=(1, 2, 3))
            return err / energy

        rel_folded = per_channel_rel_error(fq_folded, w_folded)
        rel_pc = per_channel_rel_error(fq_pc * scale.reshape(-1, 1, 1, 1), w_folded)
        # The small-gamma channels are destroyed by the per-layer folded
        # quantizer but preserved by the per-channel one.
        assert rel_folded.max() > 0.5
        assert rel_pc.max() < 0.05
        assert np.median(rel_folded) > 10 * np.median(rel_pc)

    def test_very_low_precision_degrades_both_variants(self, dataset):
        """At 2 bits even the per-channel pipeline loses most accuracy on the
        small task — aggressive quantization is not free (paper §6 notes the
        width-1.0 configurations lose 2-15 % under forced aggressive cuts)."""
        acc_icn_2bit = self._train_variant(dataset, QuantMethod.PC_ICN, bits=2)
        acc_icn_4bit = self._train_variant(dataset, QuantMethod.PC_ICN, bits=4)
        assert acc_icn_4bit > acc_icn_2bit + 0.3

    def test_pc_at_least_as_good_as_pl_at_4bit(self, dataset):
        acc_pl = self._train_variant(dataset, QuantMethod.PL_ICN, bits=4)
        acc_pc = self._train_variant(dataset, QuantMethod.PC_ICN, bits=4)
        assert acc_pc >= acc_pl - 0.05


class TestDeploymentPipeline:
    def test_policy_driven_qat_then_deploy(self, small_dataset):
        """Run the whole flow with a memory-driven policy on the tiny model
        and check the exported size agrees with the analytical model used
        by the search."""
        model = repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5, seed=0)
        Trainer(model, TrainConfig(epochs=3, batch_size=32, lr=3e-3)).fit(small_dataset)
        spec = model.spec
        # A budget tight enough to force 4-bit cuts on the tiny network.
        memory = MemoryModel(spec)
        full8 = memory.ro_bytes(QuantPolicy.uniform(spec, method=QuantMethod.PC_ICN, bits=8))
        policy = search_mixed_precision(
            spec, ro_budget=int(full8 * 0.7), rw_budget=64 * 1024, method=QuantMethod.PC_ICN
        )
        assert any(lp.q_w < 8 for lp in policy.layers)

        prepare_qat(model, policy, calibration_data=small_dataset.x_train[:32])
        QATTrainer(model, QATConfig(epochs=2, batch_size=32, lr=1e-3)).fit(small_dataset)
        model.eval()
        net = convert_to_integer_network(model, method=QuantMethod.PC_ICN)
        exported = deployment_size_bytes(net)
        assert exported["total"] <= int(full8 * 0.7) * 1.05
        acc = float((net.predict(small_dataset.x_test) == small_dataset.y_test).mean())
        assert acc > 0.5

    def test_paper_headline_deployment_report(self):
        """Full-size MobileNetV1 policies on the STM32H7: the report of the
        paper's headline configuration fits the device and the surrogate
        accuracy is ~8 % above the best uniform-INT8 model that fits."""
        acc_model = repro.AccuracyModel()
        best_mixed, best_int8 = 0.0, 0.0
        for spec in repro.all_mobilenet_configs():
            report = deploy(spec, STM32H7, method=QuantMethod.PC_ICN)
            if report.fits:
                best_mixed = max(best_mixed, acc_model.predict_top1(spec, report.policy))
            int8 = QuantPolicy.uniform(spec, method=QuantMethod.PL_FB, bits=8)
            if MemoryModel(spec).fits(int8, STM32H7.flash_bytes, STM32H7.ram_bytes):
                best_int8 = max(best_int8, acc_model.predict_top1(spec, int8))
        assert best_mixed > 64.0      # paper: 68 %
        assert best_mixed - best_int8 > 3.0  # paper: 8 %
