"""QuantizedTensor container behaviour."""

import numpy as np
import pytest

from repro.inference.int_tensor import QuantizedTensor


class TestQuantizedTensor:
    def test_dequantize(self):
        qt = QuantizedTensor(np.array([0, 5, 10]), scale=0.5, zero_point=2, bits=8)
        assert np.allclose(qt.dequantize(), [-1.0, 1.5, 4.0])

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(ValueError):
            QuantizedTensor(np.array([16]), scale=1.0, zero_point=0, bits=4)
        with pytest.raises(ValueError):
            QuantizedTensor(np.array([-1]), scale=1.0, zero_point=0, bits=4)

    def test_from_real_floor(self):
        qt = QuantizedTensor.from_real(np.array([0.49, 0.51]), scale=0.5, zero_point=0,
                                       bits=8, rounding="floor")
        assert list(qt.data) == [0, 1]

    def test_from_real_clamps_to_grid(self):
        qt = QuantizedTensor.from_real(np.array([-5.0, 100.0]), scale=1.0, zero_point=0, bits=4)
        assert list(qt.data) == [0, 15]

    def test_roundtrip_through_packed_bytes(self, rng):
        data = rng.integers(0, 16, size=(2, 3, 4, 4))
        qt = QuantizedTensor(data, scale=0.1, zero_point=3, bits=4)
        packed = qt.packed_bytes()
        restored = QuantizedTensor.from_packed(packed, data.shape, 0.1, 3, 4)
        assert np.array_equal(restored.data, data)
        assert qt.storage_bytes() == packed.size

    def test_shape_property(self, rng):
        qt = QuantizedTensor(rng.integers(0, 4, size=(2, 5)), 1.0, 0, 2)
        assert qt.shape == (2, 5)
