"""Activation-arena safety: arena vs. no-arena bit-identity on random
networks, planned-peak bounds on measured allocations, and the Eq. 7
cross-check against the analytical memory model."""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.memory_model import MemoryModel
from repro.core.policy import QuantMethod, QuantPolicy
from repro.inference.arena import (
    ActivationArena,
    LayerGeometry,
    logical_rw_peak_bytes,
    plan_activations,
)
from repro.inference.testing import integer_network_from_spec, random_network
from repro.mcu.deploy import assert_arena_fits
from repro.mcu.device import MCUDevice
from repro.models.model_zoo import mobilenet_v1_spec


@given(seed=st.integers(0, 2 ** 16), bits=st.sampled_from([2, 4, 8]))
@settings(deadline=None)
def test_property_arena_matches_no_arena(seed, bits):
    """Random topologies + mixed requant strategies: the arena/fused plan,
    the PR-1 style per-call-allocation plan and the interpreted reference
    all produce identical codes and logits."""
    net = random_network(
        np.random.default_rng(seed), resolution=11, act_bits=bits, w_bits=bits
    )
    x = np.random.default_rng(seed + 1).uniform(0, 1, size=(3, 3, 11, 11))
    codes = net.quantize_input(x)
    with_arena = net.compile()
    without = net.compile(use_arena=False, fused_depthwise=False)
    assert np.array_equal(with_arena.run_codes(codes), without.run_codes(codes))
    assert np.array_equal(with_arena.run(x), net.forward(x))


@given(seed=st.integers(0, 2 ** 16))
@settings(deadline=None)
def test_property_repeated_runs_reuse_slabs_bit_exactly(seed):
    """Slab reuse must not leak state between calls: alternating inputs
    through one plan matches fresh no-arena evaluations of each."""
    net = random_network(np.random.default_rng(seed), resolution=9)
    plan = net.compile()
    ref = net.compile(use_arena=False, fused_depthwise=False)
    rng = np.random.default_rng(seed + 1)
    xa = rng.uniform(0, 1, size=(2, 3, 9, 9))
    xb = rng.uniform(0, 1, size=(4, 3, 9, 9))
    for x in (xa, xb, xa, xb):
        assert np.array_equal(plan.run(x), ref.run(x))


def test_run_codes_returns_owned_copy():
    """run_codes output must survive (and not corrupt) later plan calls."""
    net = random_network(np.random.default_rng(5), resolution=10)
    plan = net.compile()
    codes = net.quantize_input(np.random.default_rng(6).uniform(0, 1, (2, 3, 10, 10)))
    first = plan.run_codes(codes)
    snapshot = first.copy()
    plan.run_codes(net.quantize_input(
        np.random.default_rng(7).uniform(0, 1, (2, 3, 10, 10))
    ))
    assert np.array_equal(first, snapshot)
    first.fill(255)  # caller-side mutation must not poison the arena
    assert np.array_equal(plan.run_codes(codes), snapshot)


@pytest.mark.parametrize("res,width", [(32, 0.25), (64, 0.5)])
def test_logical_rw_peak_matches_memory_model(res, width):
    """The arena's Eq. 7 peak equals core.memory_model.rw_peak_bytes for
    the same spec under the matching uniform policy — the runtime and the
    paper's analytical model agree layer for layer."""
    spec = mobilenet_v1_spec(res, width, num_classes=10)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    plan = net.compile(input_hw=(res, res))
    arena = plan.arena_for((res, res))
    policy = QuantPolicy.uniform(spec, method=QuantMethod.PC_ICN, bits=8)
    model = MemoryModel(spec)
    assert arena.logical_rw_peak_bytes == model.rw_peak_bytes(policy)
    per_layer = model.rw_bytes_per_layer(policy)
    assert [p.rw_bytes for p in arena.plans] == per_layer


def test_measured_peak_allocation_within_planned_arena():
    """With the arena warm, a full trunk pass must not allocate more new
    memory than the compile-time planned arena size (tracemalloc peak)."""
    spec = mobilenet_v1_spec(64, 0.25, num_classes=10)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    plan = net.compile(input_hw=(64, 64))
    codes = plan.quantize_input(
        np.random.default_rng(1).uniform(0, 1, size=(4, 3, 64, 64))
    )
    plan.run_codes(codes)  # warm: slabs allocated, einsum paths cached
    planned = plan.arena_for((64, 64)).planned_bytes(4)
    tracemalloc.start()
    plan.run_codes(codes)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert peak <= planned, f"measured peak {peak} B > planned arena {planned} B"


def test_arena_grows_monotonically_and_planned_bytes_exact():
    net = random_network(np.random.default_rng(8), resolution=12)
    plan = net.compile()
    x_small = np.random.default_rng(9).uniform(0, 1, (2, 3, 12, 12))
    x_large = np.random.default_rng(10).uniform(0, 1, (6, 3, 12, 12))
    plan.run(x_small)
    arena = plan.arena_for((12, 12))
    assert arena.capacity == 2
    assert arena.allocated_bytes == arena.planned_bytes(2)
    plan.run(x_large)
    assert arena.capacity == 6
    plan.run(x_small)  # shrink-free reuse
    assert arena.capacity == 6
    # Growing slabs scale linearly with the batch on top of the fixed
    # (batch-independent) requantization scratch.
    fixed = arena.fixed_bytes
    assert arena.planned_bytes(6) - fixed == 3 * (arena.planned_bytes(2) - fixed)


def test_arena_slab_overflow_rejected():
    net = random_network(np.random.default_rng(11), resolution=10)
    plan = net.compile()
    plan.run(np.random.default_rng(12).uniform(0, 1, (1, 3, 10, 10)))
    arena = plan.arena_for((10, 10))
    with pytest.raises(ValueError, match="arena slab overflow"):
        arena.codes(0, (10 ** 6,))


def test_plan_activations_rejects_collapsing_geometry():
    geom = LayerGeometry(
        name="conv", kind="conv", in_channels=3, out_channels=4,
        kh=7, kw=7, stride=1, padding=0, in_bits=8, out_bits=8,
        gemm_itemsize=4, fused=False,
    )
    with pytest.raises(ValueError, match="collapses"):
        plan_activations([geom], (4, 4))


def test_empty_plan_list():
    assert logical_rw_peak_bytes([]) == 0
    arena = ActivationArena([])
    assert arena.bytes_per_image() == 0
    arena.ensure(4)
    assert arena.allocated_bytes == 0


def test_assert_arena_fits_against_device_budget():
    spec = mobilenet_v1_spec(32, 0.25, num_classes=10)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    plan = net.compile()
    big = MCUDevice(name="big", flash_bytes=2 * 1024 ** 2,
                    ram_bytes=512 * 1024, clock_hz=400_000_000)
    tiny = MCUDevice(name="tiny", flash_bytes=2 * 1024 ** 2,
                     ram_bytes=1024, clock_hz=80_000_000)
    peak = assert_arena_fits(plan, big, (32, 32))
    assert 0 < peak <= big.ram_bytes
    with pytest.raises(ValueError, match="exceeds tiny RW budget"):
        assert_arena_fits(plan, tiny, (32, 32))


def test_describe_reports_arena_peak_and_fused_dispatch():
    spec = mobilenet_v1_spec(32, 0.25, num_classes=10)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    plan = net.compile(input_hw=(32, 32))
    text = plan.describe(batch_size=8)
    arena = plan.arena_for((32, 32))
    assert f"{arena.planned_bytes(8)} bytes" in text
    assert f"{arena.logical_rw_peak_bytes} bytes" in text
    assert "auto-stencil" in text  # default dw dispatch is the auto rule
    forced = net.compile(fused_depthwise=True, input_hw=(32, 32)).describe()
    assert "fused-stencil" in forced
    # Without a planned geometry the summary simply omits the arena block.
    assert "activation arena" not in net.compile().describe()
