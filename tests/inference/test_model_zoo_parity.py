"""Golden parity sweep: compiled-plan outputs vs. the interpreted
``IntegerNetwork`` reference for every model-zoo configuration, plus the
``run_batched`` tiling edge cases."""

import numpy as np
import pytest

from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import all_mobilenet_configs, mobilenet_v1_spec

# All 16 paper configurations.  The layer *stack* (channel counts,
# kernels, strides) is what varies across configs; the evaluation input
# is kept at 32x32 so the interpreted int64 reference stays fast — the
# spec resolution only parameterises the analytical models, not the
# synthetic deployment graph.
_CONFIGS = all_mobilenet_configs(num_classes=5)


@pytest.mark.parametrize("spec", _CONFIGS, ids=lambda s: s.label)
def test_model_zoo_config_compiled_matches_interpreted(spec):
    seed = spec.resolution * 100 + int(spec.width_multiplier * 100)
    net = integer_network_from_spec(spec, np.random.default_rng(seed))
    x = np.random.default_rng(seed + 1).uniform(0, 1, size=(2, 3, 32, 32))
    ref = net.forward(x)
    plan = net.compile()
    assert np.array_equal(ref, plan.run(x))
    assert np.array_equal(np.argmax(ref, axis=1), plan.predict(x))


@pytest.fixture(scope="module")
def small_plan():
    spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    return net, net.compile()


class TestRunBatchedEdgeCases:
    N = 7

    @pytest.fixture(scope="class")
    def sweep(self):
        return np.random.default_rng(2).uniform(0, 1, size=(self.N, 3, 32, 32))

    @pytest.mark.parametrize(
        "batch_size",
        [1, N, N + 5, 3],  # batch 1, batch == N, batch > N, non-divisible
        ids=["one", "equal", "larger", "ragged"],
    )
    def test_tilings_match_single_shot(self, small_plan, sweep, batch_size):
        _, plan = small_plan
        assert np.array_equal(
            plan.run(sweep), plan.run_batched(sweep, batch_size=batch_size)
        )

    def test_empty_sweep(self, small_plan):
        _, plan = small_plan
        out = plan.run_batched(np.zeros((0, 3, 32, 32)), batch_size=4)
        assert out.shape == (0, 5) and out.dtype == np.float64

    def test_batch_of_one_input(self, small_plan):
        _, plan = small_plan
        one = np.random.default_rng(3).uniform(0, 1, size=(1, 3, 32, 32))
        assert np.array_equal(plan.run(one), plan.run_batched(one, batch_size=32))

    def test_batch_size_larger_than_sweep(self, small_plan, sweep):
        _, plan = small_plan
        assert np.array_equal(
            plan.run(sweep), plan.run_batched(sweep, batch_size=10 * self.N)
        )

    def test_nonpositive_batch_size_rejected(self, small_plan, sweep):
        _, plan = small_plan
        for bad in (0, -3):
            with pytest.raises(ValueError, match="positive"):
                plan.run_batched(sweep, batch_size=bad)

    def test_output_spec_matches_real_output(self, small_plan, sweep):
        _, plan = small_plan
        shape, dtype = plan.output_spec(sweep.shape[1:])
        out = plan.run(sweep)
        assert out.shape[1:] == shape and out.dtype == dtype

    def test_batched_output_is_one_preallocated_array(self, small_plan, sweep):
        _, plan = small_plan
        out = plan.run_batched(sweep, batch_size=2)
        assert out.flags["C_CONTIGUOUS"] and out.flags["OWNDATA"]
        assert out.shape == (self.N, 5)
