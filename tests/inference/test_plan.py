"""Compiled ExecutionPlan: bit-exactness against the interpreted engine,
boundary validation semantics, and the tiled batched runner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.policy import QuantMethod
from repro.core.graph_convert import convert_to_integer_network
from repro.evaluation.experiments import evaluate_integer_network
from repro.inference.plan import ExecutionPlan
from repro.inference.testing import integer_network_from_spec
from repro.runtime import CompileOptions
from repro.models.model_zoo import mobilenet_v1_spec


@pytest.fixture(scope="module")
def integer_net(qat_pc_icn_model):
    return convert_to_integer_network(
        qat_pc_icn_model, method=QuantMethod.PC_ICN, input_scale=1.0 / 255.0
    )


class TestPlanBitExactness:
    def test_qat_network_logits_identical(self, integer_net, small_dataset):
        x = small_dataset.x_test[:8]
        ref = integer_net.forward(x)
        plan = integer_net.compile()
        assert np.array_equal(ref, plan.run(x))

    def test_qat_4bit_network_logits_identical(self, qat_pc_icn_4bit_model, small_dataset):
        net = convert_to_integer_network(qat_pc_icn_4bit_model, method=QuantMethod.PC_ICN)
        x = small_dataset.x_test[:8]
        assert np.array_equal(net.forward(x), net.compile().run(x))

    def test_trunk_codes_identical(self, integer_net, small_dataset):
        codes = integer_net.quantize_input(small_dataset.x_test[:4])
        ref = integer_net.forward_codes(codes)
        plan = integer_net.compile()
        assert np.array_equal(ref, plan.run_codes(codes))

    @pytest.mark.parametrize("strategy", ["icn", "folded", "thr"])
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_synthetic_networks_identical(self, strategy, bits, rng):
        """All three requantization strategies, all bit widths."""
        spec = mobilenet_v1_spec(32, 0.25, num_classes=10)
        net = integer_network_from_spec(
            spec, np.random.default_rng(7), act_bits=bits, w_bits=bits,
            strategy=strategy, per_channel=(strategy != "folded"),
        )
        x = rng.uniform(0, 1, size=(3, 3, 32, 32))
        assert np.array_equal(net.forward(x), net.compile().run(x))

    def test_predictions_identical(self, integer_net, small_dataset):
        x = small_dataset.x_test[:8]
        plan = integer_net.compile()
        assert np.array_equal(integer_net.predict(x), plan.predict(x))

    def test_forced_int64_plan_matches_blas_plan(self, integer_net, small_dataset):
        x = small_dataset.x_test[:4]
        blas = integer_net.compile(backend="blas")
        ref = integer_net.compile(backend="int64")
        assert np.array_equal(blas.run(x), ref.run(x))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2 ** 16), bits=st.sampled_from([2, 4, 8]))
def test_property_plan_matches_interpreter(seed, bits):
    """Random networks + random inputs: compiled == interpreted, bit for bit."""
    spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
    net = integer_network_from_spec(
        spec, np.random.default_rng(seed), act_bits=bits, w_bits=bits
    )
    x = np.random.default_rng(seed + 1).uniform(0, 1, size=(2, 3, 32, 32))
    assert np.array_equal(net.forward(x), net.compile().run(x))


class TestPlanStructure:
    def test_all_uint8_layers_use_blas(self, integer_net):
        plan = integer_net.compile()
        assert all(info.backend == "blas" for info in plan.layer_info())

    def test_forced_int64_backend(self, integer_net):
        plan = integer_net.compile(backend="int64")
        assert all(info.backend == "int64" for info in plan.layer_info())

    def test_depthwise_uses_float32_tier(self, integer_net):
        plan = integer_net.compile()
        dw = [i for i in plan.layer_info() if i.kind == "dw"]
        assert dw and all(i.gemm_dtype == "float32" for i in dw)

    def test_describe_lists_every_layer(self, integer_net):
        plan = integer_net.compile()
        text = plan.describe()
        for layer in integer_net.conv_layers:
            assert layer.name in text

    def test_weights_are_pre_shifted_gemm_form(self, integer_net):
        plan = integer_net.compile()
        layer = plan.layers[0]
        p = integer_net.conv_layers[0].params
        assert layer.w2.shape[0] == p.weights_q.shape[0]
        assert layer.w2.flags["C_CONTIGUOUS"]


class TestBoundaryValidation:
    def test_out_of_range_codes_rejected_at_boundary(self, integer_net):
        plan = integer_net.compile()
        bad = np.full((1, 3, 16, 16), 300, dtype=np.int64)
        with pytest.raises(ValueError, match="out of UINT8 range"):
            plan.run_codes(bad)

    def test_validation_can_be_disabled(self, integer_net, small_dataset):
        plan = integer_net.compile(validate=False)
        codes = integer_net.quantize_input(small_dataset.x_test[:2])
        assert plan.run_codes(codes).shape[0] == 2

    def test_per_call_override(self, integer_net):
        plan = integer_net.compile(validate=False)
        bad = np.full((1, 3, 16, 16), 300, dtype=np.int64)
        with pytest.raises(ValueError):
            plan.run_codes(bad, validate=True)

    def test_out_of_range_weights_rejected_at_compile_time(self, integer_net):
        """The plan enforces the interpreted engine's weight guard once,
        at compile time, instead of on every forward.  An 8-bit uint8
        container cannot even represent an out-of-range code, so the
        poisoned tensor is widened to int64 first (a corrupted legacy
        deployment)."""
        import copy

        broken = copy.deepcopy(integer_net)
        params = broken.conv_layers[0].params
        params.weights_q = params.weights_q.astype(np.int64)
        params.weights_q[0, 0, 0, 0] = 700
        with pytest.raises(ValueError, match="weight codes out of UINT8 range"):
            broken.compile()
        assert broken.compile(validate=False) is not None


class TestRunBatched:
    def test_matches_single_shot(self, integer_net, small_dataset):
        x = small_dataset.x_test[:10]
        plan = integer_net.compile()
        assert np.array_equal(plan.run(x), plan.run_batched(x, batch_size=3))

    def test_single_tile_short_circuit(self, integer_net, small_dataset):
        x = small_dataset.x_test[:4]
        plan = integer_net.compile()
        assert np.array_equal(plan.run(x), plan.run_batched(x, batch_size=16))

    def test_rejects_nonpositive_batch(self, integer_net, small_dataset):
        plan = integer_net.compile()
        with pytest.raises(ValueError, match="batch_size"):
            plan.run_batched(small_dataset.x_test[:4], batch_size=0)

    def test_predict_batched(self, integer_net, small_dataset):
        x = small_dataset.x_test[:10]
        plan = integer_net.compile()
        assert np.array_equal(plan.predict(x), plan.predict(x, batch_size=4))


class TestEvaluateIntegerNetwork:
    def test_compiled_and_interpreted_agree(self, integer_net, small_dataset):
        x = small_dataset.x_test[:12]
        y = small_dataset.y_test[:12]
        fast = evaluate_integer_network(integer_net, x, labels=y, batch_size=5)
        slow = evaluate_integer_network(integer_net, x, labels=y, batch_size=5, compiled=False)
        assert np.array_equal(fast["predictions"], slow["predictions"])
        assert fast["top1"] == slow["top1"]
        assert fast["num_images"] == 12

    def test_empty_sweep(self, integer_net):
        empty = np.zeros((0, 3, 16, 16))
        for compiled in (True, False):
            r = evaluate_integer_network(integer_net, empty, compiled=compiled)
            assert r["predictions"].shape == (0,)
            assert r["num_images"] == 0


def test_plan_constructor_direct(integer_net, small_dataset):
    """ExecutionPlan can also be built without the compile() sugar."""
    plan = ExecutionPlan(integer_net, CompileOptions(backend="auto", validate=True))
    x = small_dataset.x_test[:2]
    assert np.array_equal(plan.run(x), integer_net.forward(x))
