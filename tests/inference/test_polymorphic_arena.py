"""Shape-polymorphic arenas: one max-geometry slab set serves every
smaller input geometry, bit-exactly.

The contract under test: a plan compiled with
``CompileOptions(max_input_hw=(H, W))`` sizes its activation arena once
for ``(H, W)``; any request geometry ``(h, w) <= (H, W)`` executes
inside the *same* slabs (the per-geometry arena adopts the max arena's
storage) and produces outputs bit-identical to a plan compiled natively
for ``(h, w)``.  Geometries exceeding the declared max are rejected.
"""

import numpy as np
import pytest

from repro.inference.arena import ActivationArena
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import CompileOptions, Session, SessionOptions, pipeline
from repro.runtime.errors import InvalidInputError

MAX_HW = (64, 64)
#: Every multiple-of-32 geometry inside the max — the full set a
#: MobileNetV1 pyramid (stride-32 overall) accepts below 64x64.
GEOMETRIES = [(32, 32), (32, 64), (64, 32), (64, 64)]


def _zoo_session(resolution, width, *, max_input_hw=None, seed=3):
    spec = mobilenet_v1_spec(resolution, width, num_classes=5)
    compile_options = CompileOptions(max_input_hw=max_input_hw)
    options = SessionOptions(input_hw=(resolution, resolution))
    return pipeline(spec, seed=seed, compile_options=compile_options,
                    options=options)


@pytest.fixture(scope="module")
def poly_session():
    return _zoo_session(64, 0.25, max_input_hw=MAX_HW)


class TestBitExactParity:
    @pytest.mark.parametrize("hw", GEOMETRIES)
    def test_every_geometry_matches_native_plan(self, poly_session, hw):
        """The tentpole guarantee: polymorphic execution of (h, w) is
        bit-identical to a plan compiled natively for (h, w)."""
        native = _zoo_session(64, 0.25)
        x = np.random.default_rng(11).uniform(0.0, 1.0, (3, 3, *hw))
        np.testing.assert_array_equal(poly_session.run(x), native.run(x))

    @pytest.mark.parametrize("width", [0.25, 0.5])
    def test_parity_across_zoo_slice(self, width):
        """Two zoo widths, every admissible geometry, same slabs."""
        poly = _zoo_session(64, width, max_input_hw=MAX_HW, seed=5)
        native = _zoo_session(64, width, seed=5)
        rng = np.random.default_rng(13)
        for hw in GEOMETRIES:
            x = rng.uniform(0.0, 1.0, (2, 3, *hw))
            np.testing.assert_array_equal(poly.run(x), native.run(x))

    def test_ragged_run_batched(self, poly_session):
        """Tiled sweeps through the shared slabs stay exact."""
        native = _zoo_session(64, 0.25)
        x = np.random.default_rng(17).uniform(0.0, 1.0, (7, 3, 32, 32))
        np.testing.assert_array_equal(
            poly_session.run_batched(x, batch_size=3),
            native.run_batched(x, batch_size=3),
        )


class TestSlabSharing:
    def test_smaller_geometries_share_the_max_arena(self, poly_session):
        plan = poly_session.plan
        donor = plan.arena_for(MAX_HW)
        assert not donor.shares_slabs
        for hw in GEOMETRIES[:-1]:
            poly_session.run(
                np.random.default_rng(0).uniform(0.0, 1.0, (1, 3, *hw))
            )
            child = plan.arena_for(hw)
            assert child.shares_slabs
            assert child.donor is donor
            # No double accounting: shared slabs are charged to the
            # donor only.
            assert child.allocated_bytes == 0

    def test_child_keeps_its_own_eq7_accounting(self, poly_session):
        """Sharing storage must not change the Eq. 7 peak the child
        reports — the paper's accounting is per-geometry."""
        plan = poly_session.plan
        poly_session.run(
            np.random.default_rng(0).uniform(0.0, 1.0, (1, 3, 32, 32))
        )
        child = plan.arena_for((32, 32))
        native = _zoo_session(64, 0.25).plan.arena_for((32, 32))
        assert child.logical_rw_peak_bytes == native.logical_rw_peak_bytes
        assert (child.logical_rw_peak_bytes
                < plan.arena_for(MAX_HW).logical_rw_peak_bytes)

    def test_donor_too_small_is_rejected(self):
        """The defensive check: an arena cannot adopt slabs from a donor
        provisioned for a smaller geometry."""
        session = _zoo_session(64, 0.25)
        plan = session.plan
        small = plan.arena_for((32, 32))
        big_plans = plan.arena_for((64, 64)).plans
        with pytest.raises(ValueError, match="cannot share slabs"):
            ActivationArena(big_plans, slabs_from=small)


class TestOverMaxRejection:
    def test_run_rejects_over_max_geometry(self, poly_session):
        x = np.random.default_rng(0).uniform(0.0, 1.0, (1, 3, 96, 96))
        with pytest.raises(InvalidInputError, match="max geometry"):
            poly_session.run(x)

    def test_one_axis_over_is_enough(self, poly_session):
        x = np.random.default_rng(0).uniform(0.0, 1.0, (1, 3, 32, 96))
        with pytest.raises(InvalidInputError, match="max geometry"):
            poly_session.run(x)

    def test_plan_level_rejection(self, poly_session):
        with pytest.raises(ValueError, match="max geometry"):
            poly_session.plan.arena_for((96, 96))


class TestOptionsValidation:
    def test_input_hw_must_fit_max(self):
        with pytest.raises(ValueError, match="exceeds max_input_hw"):
            CompileOptions(input_hw=(96, 96), max_input_hw=(64, 64))

    def test_max_hw_roundtrips_through_dict(self):
        opts = CompileOptions(max_input_hw=(64, 64))
        assert CompileOptions.from_dict(opts.to_dict()) == opts

    def test_default_serialization_is_backward_compatible(self):
        """Artifacts written before this option existed must load: the
        default (None) serialises to *no key at all*."""
        assert "max_input_hw" not in CompileOptions().to_dict()

    def test_load_override(self, tmp_path):
        session = _zoo_session(32, 0.25)
        path = session.save(tmp_path / "m")
        loaded = Session.load(path, max_input_hw=(64, 64))
        assert loaded.compile_options.max_input_hw == (64, 64)
        x = np.random.default_rng(1).uniform(0.0, 1.0, (1, 3, 64, 64))
        np.testing.assert_array_equal(
            loaded.run(x), _zoo_session(32, 0.25).run(x)
        )
