"""Fused depthwise stencil kernel: bit-identity against the im2col int64
reference across bit widths, strides, paddings and channel counts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.inference.kernels import (
    blas_gemm_dtype,
    depthwise_stencil_accumulate,
    int_depthwise_conv2d,
    int_depthwise_conv2d_fused,
    shift_weights,
)


@st.composite
def dw_cases(draw):
    """One random depthwise problem: geometry, bit widths, RNG seed."""
    x_bits = draw(st.sampled_from([2, 4, 8]))
    w_bits = draw(st.sampled_from([2, 4, 8]))
    n = draw(st.integers(1, 3))
    c = draw(st.integers(1, 7))
    kernel = draw(st.sampled_from([1, 2, 3, 5]))
    stride = draw(st.integers(1, 3))
    padding = draw(st.integers(0, 2))
    # Input must yield at least one output position.
    min_hw = max(kernel - 2 * padding, 1)
    h = draw(st.integers(min_hw, min_hw + 6))
    w = draw(st.integers(min_hw, min_hw + 6))
    seed = draw(st.integers(0, 2 ** 32 - 1))
    return x_bits, w_bits, n, c, kernel, stride, padding, h, w, seed


def _random_problem(case):
    x_bits, w_bits, n, c, kernel, stride, padding, h, w, seed = case
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 2 ** x_bits, size=(n, c, h, w), dtype=np.int64)
    wq = rng.integers(0, 2 ** w_bits, size=(c, 1, kernel, kernel), dtype=np.int64)
    z_x = int(rng.integers(0, 2 ** x_bits))
    z_w = rng.integers(0, 2 ** w_bits, size=c, dtype=np.int64)
    kwargs = dict(stride=stride, padding=padding, x_bits=x_bits, w_bits=w_bits)
    return x, wq, z_x, z_w, kwargs


@given(case=dw_cases())
@settings(deadline=None)
def test_property_fused_matches_im2col_int64_reference(case):
    """Fused stencil == im2col int64 reference, bit for bit, both backends."""
    x, wq, z_x, z_w, kwargs = _random_problem(case)
    ref = int_depthwise_conv2d(x, wq, z_x, z_w, backend="int64", **kwargs)
    fused_int64 = int_depthwise_conv2d_fused(x, wq, z_x, z_w, backend="int64", **kwargs)
    fused_float = int_depthwise_conv2d_fused(x, wq, z_x, z_w, backend="blas", **kwargs)
    assert np.array_equal(ref, fused_int64)
    assert np.array_equal(ref, fused_float)
    assert fused_float.dtype == np.int64


@given(case=dw_cases())
@settings(deadline=None)
def test_property_stencil_out_tmp_buffers_reused(case):
    """Caller-provided out/tmp slab views produce the identical result
    (the contract the activation arena relies on)."""
    x, wq, z_x, z_w, kwargs = _random_problem(case)
    kernel = wq.shape[2]
    stride, padding = kwargs["stride"], kwargs["padding"]
    dtype = blas_gemm_dtype(kernel * kernel, kwargs["x_bits"], kwargs["w_bits"])
    w_cols = shift_weights(wq, z_w, wq.shape[0]).reshape(wq.shape[0], -1).astype(dtype)
    if padding:
        xs = np.zeros(
            (x.shape[0], x.shape[1], x.shape[2] + 2 * padding, x.shape[3] + 2 * padding),
            dtype=dtype,
        )
        np.subtract(x, z_x, out=xs[:, :, padding:-padding, padding:-padding])
    else:
        xs = np.subtract(x, z_x, dtype=dtype)
    fresh = depthwise_stencil_accumulate(xs, w_cols, kernel, kernel, stride)
    # Poisoned preallocated buffers must be fully overwritten.
    out = np.full_like(fresh, 123456)
    tmp = np.full_like(fresh, -777)
    reused = depthwise_stencil_accumulate(
        xs, w_cols, kernel, kernel, stride, out=out, tmp=tmp
    )
    assert reused is out
    assert np.array_equal(fresh, reused)


def test_fused_scalar_zero_point():
    """Per-layer (scalar) z_w takes the same path as the reference."""
    rng = np.random.default_rng(3)
    x = rng.integers(0, 256, size=(2, 4, 9, 9), dtype=np.int64)
    wq = rng.integers(0, 16, size=(4, 1, 3, 3), dtype=np.int64)
    ref = int_depthwise_conv2d(x, wq, 7, 5, padding=1, w_bits=4)
    fused = int_depthwise_conv2d_fused(x, wq, 7, 5, padding=1, w_bits=4)
    assert np.array_equal(ref, fused)


def test_fused_precomputed_w_shift():
    """A hoisted ``w_shift`` skips the per-call shift without changing codes."""
    rng = np.random.default_rng(4)
    x = rng.integers(0, 16, size=(1, 3, 6, 6), dtype=np.int64)
    wq = rng.integers(0, 16, size=(3, 1, 3, 3), dtype=np.int64)
    z_w = rng.integers(0, 16, size=3, dtype=np.int64)
    ws = shift_weights(wq, z_w, 3)
    a = int_depthwise_conv2d_fused(x, wq, 2, z_w, x_bits=4, w_bits=4)
    b = int_depthwise_conv2d_fused(x, wq, 2, z_w, x_bits=4, w_bits=4, w_shift=ws)
    assert np.array_equal(a, b)


def test_fused_validate_rejects_out_of_range_codes():
    x = np.full((1, 2, 4, 4), 300, dtype=np.int64)
    wq = np.zeros((2, 1, 3, 3), dtype=np.int64)
    with pytest.raises(ValueError, match="out of UINT8 range"):
        int_depthwise_conv2d_fused(x, wq, 0, 0)


def test_fused_rejects_bad_per_channel_z_w():
    x = np.zeros((1, 2, 4, 4), dtype=np.int64)
    wq = np.zeros((2, 1, 3, 3), dtype=np.int64)
    with pytest.raises(ValueError, match="one entry per channel"):
        int_depthwise_conv2d_fused(x, wq, 0, np.zeros(5, dtype=np.int64))


@pytest.mark.parametrize("bits,expected", [(2, np.float32), (8, np.float32)])
def test_fused_float_tier_dispatch(bits, expected):
    """3x3 depthwise reductions fit the float32 significand at any paper
    bit width (k=9, worst case 9*(2^8-1)^2 < 2^24)."""
    assert blas_gemm_dtype(9, bits, bits) == expected


class TestAutoDispatch:
    """The compiled plan's fused_depthwise="auto" rule and its parity."""

    def test_prefers_stencil_above_cache_threshold(self):
        from repro.inference.kernels import (
            DW_IM2COL_BYTES_THRESHOLD,
            DW_IM2COL_S2_BYTES_THRESHOLD,
            depthwise_prefers_stencil,
        )
        # 8 x 32ch x 3x3 x 112x112 float32 im2col is ~115 MB: stencil.
        assert depthwise_prefers_stencil(8, 32, 3, 3, 112, 112, 4)
        # 1 x 8ch x 3x3 x 16x16 is ~74 kB: stays on the matmul path.
        assert not depthwise_prefers_stencil(1, 8, 3, 3, 16, 16, 4)
        # Stride 2 dispatches on its own (lower) threshold: a ~115 MB
        # unfold takes the stencil, a small one keeps the matmul path.
        assert depthwise_prefers_stencil(8, 32, 3, 3, 112, 112, 4, stride=2)
        assert not depthwise_prefers_stencil(1, 8, 3, 3, 16, 16, 4, stride=2)
        # Strides beyond 2 always fall back to im2col.
        assert not depthwise_prefers_stencil(8, 32, 3, 3, 112, 112, 4, stride=3)
        assert 0 < DW_IM2COL_S2_BYTES_THRESHOLD < DW_IM2COL_BYTES_THRESHOLD

    @pytest.mark.parametrize("mode", [True, False, "auto"])
    def test_all_dispatch_modes_bit_identical(self, mode):
        from repro.inference.testing import integer_network_from_spec
        from repro.models.model_zoo import mobilenet_v1_spec

        spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
        net = integer_network_from_spec(spec, np.random.default_rng(0))
        x = np.random.default_rng(1).uniform(0, 1, size=(2, 3, 32, 32))
        ref = net.forward(x)
        assert np.array_equal(ref, net.compile(fused_depthwise=mode).run(x))

    def test_auto_engages_stencil_under_lowered_threshold(self, monkeypatch):
        """Force the auto rule to pick the stencil on a small net and
        confirm bit-identity (exercises the arena's stencil buffers)."""
        import repro.inference.kernels as k
        from repro.inference.testing import integer_network_from_spec
        from repro.models.model_zoo import mobilenet_v1_spec

        spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
        net = integer_network_from_spec(spec, np.random.default_rng(0))
        x = np.random.default_rng(2).uniform(0, 1, size=(2, 3, 32, 32))
        ref = net.forward(x)
        monkeypatch.setattr(k, "DW_IM2COL_BYTES_THRESHOLD", 0)
        assert np.array_equal(ref, net.compile().run(x))

    def test_invalid_mode_rejected(self):
        from repro.inference.testing import integer_network_from_spec
        from repro.models.model_zoo import mobilenet_v1_spec

        spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
        net = integer_network_from_spec(spec, np.random.default_rng(0))
        with pytest.raises(ValueError, match="fused_depthwise"):
            net.compile(fused_depthwise="sometimes")
