"""Narrow-dtype-native execution: container dtypes end to end.

Covers the container-dtype plumbing (quantizer -> QuantizedTensor ->
packing -> arena -> plan -> export), the weight-data refined accumulator
bound, the forced int32 MCU-accumulator backend (including max-magnitude
codes at the int32 boundary), narrow-vs-wide plan parity, and the
headline memory contract: for a pure 8-bit network the arena's physical
(container-width) code bytes equal ``core.memory_model.rw_peak_bytes``
exactly — no more 8x int64 inflation.
"""

import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.memory_model import MemoryModel
from repro.core.policy import QuantMethod, QuantPolicy
from repro.core.quantizer import QuantSpec, quantize_affine
from repro.inference.export import export_network, validate_export
from repro.inference.int_tensor import QuantizedTensor
from repro.inference.kernels import (
    INT32_EXACT_BITS,
    blas_gemm_dtype,
    int32_gemm_is_exact,
    int_einsum_gemm,
    int_linear,
    max_abs_accumulator,
    refined_max_abs_accumulator,
    resolve_gemm_backend,
)
from repro.inference.packing import (
    container_dtype,
    pack_subbyte,
    shifted_container_dtype,
    unpack_subbyte,
)
from repro.inference.testing import integer_network_from_spec, random_network
from repro.mcu.deploy import assert_arena_fits
from repro.mcu.device import MCUDevice
from repro.models.model_zoo import all_mobilenet_configs, mobilenet_v1_spec

_ZOO = all_mobilenet_configs(num_classes=5)


# ----------------------------------------------------------------------
# Container dtypes and packing round trips
# ----------------------------------------------------------------------
class TestContainerDtypes:
    def test_code_containers(self):
        assert container_dtype(2) == np.uint8
        assert container_dtype(4) == np.uint8
        assert container_dtype(8) == np.uint8
        assert container_dtype(16) == np.uint16
        assert container_dtype(8, signed=True) == np.int8

    def test_shifted_containers(self):
        # x - Z spans +-(2^Q - 1): one bit more than the code itself.
        assert shifted_container_dtype(4) == np.int8
        assert shifted_container_dtype(7) == np.int8
        assert shifted_container_dtype(8) == np.int16
        assert shifted_container_dtype(16) == np.int32

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            container_dtype(0)
        with pytest.raises(ValueError):
            shifted_container_dtype(0)

    def test_quantize_affine_emits_container(self):
        spec = QuantSpec(bits=4)
        q = quantize_affine(np.linspace(-1, 1, 7), 0.1, 8, spec)
        assert q.dtype == np.uint8
        signed = quantize_affine(np.linspace(-1, 1, 7), 0.1, 0, QuantSpec(bits=8, signed=True))
        assert signed.dtype == np.int8

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_quantized_tensor_holds_container(self, rng, bits):
        data = rng.integers(0, 2 ** bits, size=(3, 5))
        qt = QuantizedTensor(data, scale=0.1, zero_point=1, bits=bits)
        assert qt.data.dtype == container_dtype(bits)
        assert qt.container_bytes() == data.size
        restored = QuantizedTensor.from_packed(
            qt.packed_bytes(), data.shape, 0.1, 1, bits
        )
        assert restored.data.dtype == container_dtype(bits)
        assert np.array_equal(restored.data, qt.data)


@settings(max_examples=80, deadline=None)
@given(
    data=st.data(),
    bits=st.sampled_from([2, 4, 8]),
    n=st.integers(min_value=0, max_value=257),
)
def test_property_pack_unpack_roundtrip_container(data, bits, n):
    """pack -> unpack lands in the narrow container, bit-exactly, and the
    extreme codes (0 and 2^Q - 1) survive the trip."""
    values = data.draw(
        st.lists(st.integers(0, 2 ** bits - 1), min_size=n, max_size=n)
    )
    arr = np.array(values, dtype=container_dtype(bits))
    back = unpack_subbyte(pack_subbyte(arr, bits), bits, n)
    assert back.dtype == container_dtype(bits)
    assert np.array_equal(back, arr)
    # An explicit wider dtype is still honoured (legacy int64 escape hatch).
    wide = unpack_subbyte(pack_subbyte(arr, bits), bits, n, dtype=np.int64)
    assert wide.dtype == np.int64
    assert np.array_equal(wide, arr)


# ----------------------------------------------------------------------
# Accumulator bounds: int32 boundary and the refined weight-data bound
# ----------------------------------------------------------------------
class TestInt32Boundary:
    # Largest k for which an 8x8-bit reduction of max-magnitude codes
    # still fits the int32 accumulator: k * 255 * 255 < 2^31.
    K_MAX = (1 << INT32_EXACT_BITS) // (255 * 255)

    def test_bound_flips_exactly_at_k_max(self):
        assert int32_gemm_is_exact(self.K_MAX, 8, 8)
        assert not int32_gemm_is_exact(self.K_MAX + 1, 8, 8)
        assert resolve_gemm_backend("int32", self.K_MAX, 8, 8) == "int32"
        with pytest.raises(ValueError, match="int32 accumulation overflows"):
            resolve_gemm_backend("int32", self.K_MAX + 1, 8, 8)

    def test_max_magnitude_codes_at_the_boundary_are_exact(self):
        """All-corner codes at the largest admissible k: the int32 path
        must reproduce the int64 reference at |Phi| within one product of
        the int32 limit."""
        k = self.K_MAX
        x = np.full((1, k), 255, dtype=np.int64)
        w = np.zeros((2, k), dtype=np.int64)  # z_w = 255 -> shifted -255
        phi32 = int_linear(x, w, 0, 255, backend="int32")
        phi64 = int_linear(x, w, 0, 255, backend="int64")
        assert np.array_equal(phi32, phi64)
        assert phi64[0, 0] == -k * 255 * 255
        assert abs(phi64[0, 0]) < 2 ** 31
        assert abs(phi64[0, 0]) + 255 * 255 >= 2 ** 31  # truly at the edge

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_paper_reductions_fit_int32(self, bits):
        # The deepest model-zoo reduction (fc, k=1024) fits int32 at any
        # paper bit width, so the whole zoo can run the MCU-style backend.
        assert int32_gemm_is_exact(1024, bits, bits)


class TestRefinedBound:
    def test_refined_never_exceeds_a_priori(self, rng):
        for _ in range(10):
            k = int(rng.integers(1, 600))
            w = rng.integers(-255, 256, size=(4, k))
            z_x = int(rng.integers(0, 256))
            refined = refined_max_abs_accumulator(w, z_x, 8)
            assert refined <= max_abs_accumulator(k, 8, 8)

    def test_refined_drops_wide_pointwise_to_float32(self):
        """k=512 8x8-bit overflows the a-priori float32 bound, but random
        (realistic) weights keep the refined bound under 2^24 — the
        compiled plan runs those layers through sgemm, bit-exactly."""
        spec = mobilenet_v1_spec(224, 1.0, num_classes=10)
        net = integer_network_from_spec(spec, np.random.default_rng(0))
        plan = net.compile()
        wide_pw = [
            (l, i) for l, i in zip(plan.layers, plan.layer_info())
            if i.kind == "pw" and l.k_reduction >= 512
        ]
        assert wide_pw, "expected wide pointwise layers in 224_1.0"
        promoted = [i for _, i in wide_pw if i.gemm_dtype == "float32"]
        assert promoted, "refined bound promoted no wide layer to float32"
        for layer, info in wide_pw:
            assert blas_gemm_dtype(layer.k_reduction, 8, 8) == np.float64
            assert info.acc_bound == layer.acc_bound
        # Worst-case (all-corner) weights must NOT be promoted.
        corner = np.full((4, 512), 255, dtype=np.int64)
        assert refined_max_abs_accumulator(corner, 0, 8) == max_abs_accumulator(512, 8, 8)

    def test_refined_dispatch_stays_bit_exact(self):
        spec = mobilenet_v1_spec(64, 1.0, num_classes=10)
        net = integer_network_from_spec(spec, np.random.default_rng(3))
        x = np.random.default_rng(4).uniform(0, 1, size=(2, 3, 64, 64))
        assert np.array_equal(net.forward(x), net.compile().run(x))

    def test_split_k_sgemm_engages_and_stays_bit_exact(self):
        """A k=1024 pointwise layer whose refined bound exceeds 2^24 runs
        as chunked sgemms with exact float64 accumulation; each chunk's
        own refined bound must clear the float32 significand."""
        from repro.inference.plan import _split_k_chunks

        spec = mobilenet_v1_spec(64, 1.0, num_classes=10)
        net = integer_network_from_spec(spec, np.random.default_rng(3))
        plan = net.compile()
        split = [l for l in plan.layers if l.split_k is not None]
        assert split, "expected a split-K layer in the 1024-channel stack"
        for layer in split:
            assert layer.gemm_dtype == np.float32
            assert layer.acc_dtype == np.float64
            assert layer.split_k[0][0] == 0
            assert layer.split_k[-1][1] == layer.k_reduction
            for (_, a), (b, _) in zip(layer.split_k, layer.split_k[1:]):
                assert a == b  # contiguous partition
        # Disabled alongside the refined bound (the wide A/B baseline).
        legacy = net.compile(refined_bound=False)
        assert all(l.split_k is None for l in legacy.layers)
        x = np.random.default_rng(4).uniform(0, 1, size=(2, 3, 64, 64))
        ref = net.forward(x)
        assert np.array_equal(ref, plan.run(x))
        assert np.array_equal(ref, legacy.run(x))
        # All-corner weights cannot be partitioned into few small chunks.
        corner = np.full((4, 4096), 255, dtype=np.int64)
        assert _split_k_chunks(corner, 0, 8) is None


def test_int_einsum_gemm_k_tiling_bit_exact(rng):
    """The K-tiled int64 fallback GEMM equals the untiled contraction
    (integer addition is associative) across tile boundaries."""
    for k in (7, 512, 513, 1300):
        w2 = rng.integers(-255, 256, size=(5, k))
        cols = rng.integers(-255, 256, size=(2, k, 9))
        ref = np.einsum("ok,nkl->nol", w2, cols)
        assert np.array_equal(int_einsum_gemm(w2, cols), ref)
        out = np.empty_like(ref)
        assert int_einsum_gemm(w2, cols, out=out) is out
        assert np.array_equal(out, ref)


# ----------------------------------------------------------------------
# Narrow plan parity and the physical-memory contract
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2 ** 16), bits=st.sampled_from([2, 4, 8]))
def test_property_narrow_wide_and_int32_plans_agree(seed, bits):
    """Random topologies: the narrow (container) plan, the legacy wide
    (int64) plan, the forced-int32 MCU plan and the interpreted reference
    all produce identical results."""
    net = random_network(
        np.random.default_rng(seed), resolution=11, act_bits=bits, w_bits=bits
    )
    x = np.random.default_rng(seed + 1).uniform(0, 1, size=(2, 3, 11, 11))
    ref = net.forward(x)
    narrow = net.compile()
    wide = net.compile(narrow=False)
    mcu = net.compile(backend="int32")
    assert np.array_equal(ref, narrow.run(x))
    assert np.array_equal(ref, wide.run(x))
    assert np.array_equal(ref, mcu.run(x))
    codes = net.quantize_input(x)
    assert np.array_equal(narrow.run_codes(codes), wide.run_codes(codes))


def test_fused_kernel_accepts_narrow_codes_with_padding():
    """Regression: the padded branch of int_depthwise_conv2d_fused must
    widen uint8 codes below z_x instead of wrapping them (the subtract
    loop has to be pinned to the GEMM dtype)."""
    from repro.inference.kernels import int_depthwise_conv2d, int_depthwise_conv2d_fused

    rng = np.random.default_rng(0)
    x8 = rng.integers(0, 256, size=(2, 3, 6, 6), dtype=np.uint8)
    wq = rng.integers(0, 256, size=(3, 1, 3, 3), dtype=np.uint8)
    z_x = 200  # wraps any uint8 code < 200 if the loop runs in uint8
    for padding in (0, 1):
        ref = int_depthwise_conv2d(
            x8.astype(np.int64), wq, z_x, 7, padding=padding, backend="int64"
        )
        for backend in ("blas", "int32", "int64"):
            got = int_depthwise_conv2d_fused(x8, wq, z_x, 7, padding=padding,
                                             backend=backend)
            assert np.array_equal(ref, got), (padding, backend)


def test_narrow_codes_come_back_in_container_dtype():
    spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    plan = net.compile()
    x = np.random.default_rng(1).uniform(0, 1, size=(2, 3, 32, 32))
    codes = plan.quantize_input(x)
    assert codes.dtype == np.uint8
    out = plan.run_codes(codes)
    assert out.dtype == np.uint8
    wide = net.compile(narrow=False)
    assert wide.run_codes(net.quantize_input(x)).dtype == np.int64


@pytest.mark.parametrize("spec", _ZOO, ids=lambda s: s.label)
def test_zoo_physical_code_bytes_equal_rw_peak(spec):
    """The headline contract: for every pure 8-bit model-zoo config the
    container-width ping-pong pair is physically exactly the Eq. 7 peak
    of core.memory_model — not 8x it."""
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    res = spec.resolution
    plan = net.compile(input_hw=(res, res))
    arena = plan.arena_for((res, res))
    policy = QuantPolicy.uniform(spec, method=QuantMethod.PC_ICN, bits=8)
    rw_peak = MemoryModel(spec).rw_peak_bytes(policy)
    assert arena.physical_code_bytes(1) == rw_peak
    assert arena.logical_rw_peak_bytes == rw_peak


def test_arena_allocation_matches_plan_tracemalloc():
    """Slab allocation measured with tracemalloc: the narrow arena
    allocates exactly its planned bytes (codes pair == Eq. 7 peak, no
    int64 inflation), 8x less code-slab memory than the wide arena."""
    spec = mobilenet_v1_spec(64, 0.25, num_classes=10)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    plan = net.compile(input_hw=(64, 64))
    arena = plan.arena_for((64, 64))
    tracemalloc.start()
    arena.ensure(1)
    allocated, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    planned = arena.planned_bytes(1)
    # numpy adds a constant per-array header on top of the raw slabs.
    slack = 16 * 1024
    assert planned <= allocated <= planned + slack
    wide = net.compile(narrow=False, input_hw=(64, 64)).arena_for((64, 64))
    assert wide.physical_code_bytes(1) == 8 * arena.physical_code_bytes(1)
    policy = QuantPolicy.uniform(spec, method=QuantMethod.PC_ICN, bits=8)
    assert arena.physical_code_bytes(1) == MemoryModel(spec).rw_peak_bytes(policy)


def test_subbyte_containers_stay_one_byte():
    """2/4-bit activations keep the uint8 container: physical >= logical
    (the packed Eq. 7 figure), never int64-inflated."""
    spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
    net = integer_network_from_spec(
        spec, np.random.default_rng(0), act_bits=4, w_bits=4
    )
    plan = net.compile(input_hw=(32, 32))
    arena = plan.arena_for((32, 32))
    assert all(p.out_itemsize == 1 for p in arena.plans if p.kind != "fc")
    assert arena.physical_code_bytes(1) >= arena.logical_rw_peak_bytes
    assert arena.physical_code_bytes(1) == 2 * arena.logical_rw_peak_bytes


def test_assert_arena_fits_checks_physical_inflation():
    spec = mobilenet_v1_spec(32, 0.25, num_classes=10)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    device = MCUDevice(name="big", flash_bytes=2 * 1024 ** 2,
                       ram_bytes=512 * 1024, clock_hz=400_000_000)
    plan = net.compile()
    peak = assert_arena_fits(plan, device, (32, 32))
    arena = plan.arena_for((32, 32))
    assert arena.physical_code_bytes(1) == peak
    # An artificially inflated code slab must trip the deployment gate.
    arena.code_slot_bytes_per_image[0] *= 8
    with pytest.raises(ValueError, match="exceed the Eq. 7 RW peak"):
        assert_arena_fits(plan, device, (32, 32))


def test_stride2_stencil_plan_parity(monkeypatch):
    """Zero thresholds force every depthwise layer — stride 1 and the
    stride-2 ones that previously always fell back to im2col — through
    the fused stencil; the plan must stay bit-exact."""
    import repro.inference.kernels as k

    monkeypatch.setattr(k, "DW_IM2COL_BYTES_THRESHOLD", 0)
    monkeypatch.setattr(k, "DW_IM2COL_S2_BYTES_THRESHOLD", 0)
    spec = mobilenet_v1_spec(32, 0.5, num_classes=5)
    net = integer_network_from_spec(spec, np.random.default_rng(0))
    assert any(l.kind == "dw" and l.stride == 2 for l in net.conv_layers)
    x = np.random.default_rng(1).uniform(0, 1, size=(2, 3, 32, 32))
    ref = net.forward(x)
    assert np.array_equal(ref, net.compile().run(x))
    assert np.array_equal(ref, net.compile(fused_depthwise=True).run(x))


# ----------------------------------------------------------------------
# Export: packed narrow blobs
# ----------------------------------------------------------------------
class TestExportNarrowBlobs:
    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_validate_export_round_trip(self, bits):
        spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
        net = integer_network_from_spec(
            spec, np.random.default_rng(0), act_bits=bits, w_bits=bits
        )
        exported = export_network(net, input_hw=(32, 32))
        summary = validate_export(exported)
        assert summary["layers"] == len(exported["conv_layers"]) + 1
        assert all(
            e["container_dtype"] == "uint8" for e in exported["conv_layers"]
        )
        assert exported["arena"]["physical_code_bytes"] >= 0

    def test_validate_export_rejects_bit_flip(self):
        """Packing masks codes into range by construction, so corruption
        is caught by the CRC32, not a range scan."""
        spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
        net = integer_network_from_spec(spec, np.random.default_rng(0))
        exported = export_network(net)
        blob = exported["conv_layers"][0]["weights_packed"]
        blob[0] ^= 0x40  # single bit flip, size and range stay valid
        with pytest.raises(ValueError, match="CRC32"):
            validate_export(exported)

    def test_validate_export_rejects_truncated_blob(self):
        spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
        net = integer_network_from_spec(spec, np.random.default_rng(0))
        exported = export_network(net)
        exported["conv_layers"][0]["weights_packed"] = (
            exported["conv_layers"][0]["weights_packed"][:-1]
        )
        with pytest.raises(ValueError, match="packed blob"):
            validate_export(exported)

    def test_validate_export_rejects_wrong_container(self):
        spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
        net = integer_network_from_spec(spec, np.random.default_rng(0))
        exported = export_network(net)
        exported["conv_layers"][0]["container_dtype"] = "int64"
        with pytest.raises(ValueError, match="container"):
            validate_export(exported)

    def test_export_physical_matches_compiled_arena(self):
        spec = mobilenet_v1_spec(64, 0.5, num_classes=5)
        net = integer_network_from_spec(spec, np.random.default_rng(0))
        exported = export_network(net, input_hw=(64, 64))
        arena = net.compile(input_hw=(64, 64)).arena_for((64, 64))
        assert exported["arena"]["physical_code_bytes"] == arena.physical_code_bytes(1)
        assert exported["arena"]["rw_peak_bytes"] == arena.logical_rw_peak_bytes
