"""Property-based equivalence of the GEMM backends.

The float BLAS fast path must be bit-identical to the int64 einsum
reference for every operand regime the paper deploys: all bit-width
pairs in {2, 4, 8} x {2, 4, 8}, strides, paddings, and per-layer or
per-channel weight zero points.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.inference.kernels import (
    FLOAT32_EXACT_BITS,
    FLOAT64_EXACT_BITS,
    blas_gemm_dtype,
    blas_gemm_is_exact,
    int_conv2d,
    int_depthwise_conv2d,
    int_linear,
    max_abs_accumulator,
    resolve_gemm_backend,
)

BITS = st.sampled_from([2, 4, 8])


def _codes(rng, shape, bits):
    return rng.integers(0, 2 ** bits, size=shape)


@settings(max_examples=60, deadline=None)
@given(
    x_bits=BITS,
    w_bits=BITS,
    stride=st.integers(1, 3),
    padding=st.integers(0, 2),
    per_channel=st.booleans(),
    seed=st.integers(0, 2 ** 16),
)
def test_conv_blas_matches_int64(x_bits, w_bits, stride, padding, per_channel, seed):
    rng = np.random.default_rng(seed)
    c_in = int(rng.integers(1, 5))
    c_out = int(rng.integers(1, 7))
    kh = int(rng.integers(1, 4))
    hw = int(rng.integers(kh, 10))
    x = _codes(rng, (2, c_in, hw, hw), x_bits)
    w = _codes(rng, (c_out, c_in, kh, kh), w_bits)
    z_x = int(rng.integers(0, 2 ** x_bits))
    z_w = _codes(rng, c_out, w_bits) if per_channel else int(rng.integers(0, 2 ** w_bits))
    kwargs = dict(stride=stride, padding=padding, x_bits=x_bits, w_bits=w_bits)
    phi_blas = int_conv2d(x, w, z_x, z_w, backend="blas", **kwargs)
    phi_ref = int_conv2d(x, w, z_x, z_w, backend="int64", **kwargs)
    assert phi_blas.dtype == np.int64
    assert np.array_equal(phi_blas, phi_ref)


@settings(max_examples=60, deadline=None)
@given(
    x_bits=BITS,
    w_bits=BITS,
    stride=st.integers(1, 3),
    padding=st.integers(0, 2),
    per_channel=st.booleans(),
    seed=st.integers(0, 2 ** 16),
)
def test_depthwise_blas_matches_int64(x_bits, w_bits, stride, padding, per_channel, seed):
    rng = np.random.default_rng(seed)
    c = int(rng.integers(1, 6))
    kh = int(rng.integers(1, 4))
    hw = int(rng.integers(kh, 10))
    x = _codes(rng, (2, c, hw, hw), x_bits)
    w = _codes(rng, (c, 1, kh, kh), w_bits)
    z_x = int(rng.integers(0, 2 ** x_bits))
    z_w = _codes(rng, c, w_bits) if per_channel else int(rng.integers(0, 2 ** w_bits))
    kwargs = dict(stride=stride, padding=padding, x_bits=x_bits, w_bits=w_bits)
    phi_blas = int_depthwise_conv2d(x, w, z_x, z_w, backend="blas", **kwargs)
    phi_ref = int_depthwise_conv2d(x, w, z_x, z_w, backend="int64", **kwargs)
    assert np.array_equal(phi_blas, phi_ref)


@settings(max_examples=60, deadline=None)
@given(
    x_bits=BITS,
    w_bits=BITS,
    per_channel=st.booleans(),
    seed=st.integers(0, 2 ** 16),
)
def test_linear_blas_matches_int64(x_bits, w_bits, per_channel, seed):
    rng = np.random.default_rng(seed)
    n_in = int(rng.integers(1, 40))
    n_out = int(rng.integers(1, 12))
    x = _codes(rng, (3, n_in), x_bits)
    w = _codes(rng, (n_out, n_in), w_bits)
    z_x = int(rng.integers(0, 2 ** x_bits))
    z_w = _codes(rng, n_out, w_bits) if per_channel else int(rng.integers(0, 2 ** w_bits))
    phi_blas = int_linear(x, w, z_x, z_w, x_bits=x_bits, w_bits=w_bits, backend="blas")
    phi_ref = int_linear(x, w, z_x, z_w, x_bits=x_bits, w_bits=w_bits, backend="int64")
    assert np.array_equal(phi_blas, phi_ref)


@settings(max_examples=40, deadline=None)
@given(x_bits=BITS, w_bits=BITS, seed=st.integers(0, 2 ** 16))
def test_auto_backend_matches_reference(x_bits, w_bits, seed):
    """backend='auto' (the engine default) is bit-identical to the reference."""
    rng = np.random.default_rng(seed)
    x = _codes(rng, (1, 3, 6, 6), x_bits)
    w = _codes(rng, (4, 3, 3, 3), w_bits)
    phi_auto = int_conv2d(x, w, 1, 1, padding=1, x_bits=x_bits, w_bits=w_bits, backend="auto")
    phi_ref = int_conv2d(x, w, 1, 1, padding=1, x_bits=x_bits, w_bits=w_bits, backend="int64")
    assert np.array_equal(phi_auto, phi_ref)


class TestExactnessBound:
    def test_bound_formula(self):
        assert max_abs_accumulator(9, 8, 8) == 9 * 255 * 255

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_paper_regimes_are_exact(self, bits):
        # Largest reduction in MobileNetV1_224_1.0 is the fc layer (k=1024).
        assert blas_gemm_is_exact(1024, bits, bits)

    def test_bound_rejects_wide_operands(self):
        # 32-bit operands overflow the float64 significand even at k=10.
        assert not blas_gemm_is_exact(10, 32, 32)
        assert resolve_gemm_backend("auto", 10, 32, 32) == "int64"

    def test_forced_blas_raises_when_not_exact(self):
        with pytest.raises(ValueError, match="not exact"):
            resolve_gemm_backend("blas", 10, 32, 32)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown GEMM backend"):
            resolve_gemm_backend("fast", 9, 8, 8)

    def test_kernel_falls_back_when_bound_exceeded(self):
        """auto on 32-bit operands silently takes the int64 path."""
        rng = np.random.default_rng(0)
        assert resolve_gemm_backend("auto", 2 * 9, 32, 32) == "int64"
        x = rng.integers(0, 2 ** 32, size=(1, 2, 4, 4))
        w = rng.integers(0, 2 ** 32, size=(2, 2, 3, 3))
        phi = int_conv2d(x, w, 0, 0, x_bits=32, w_bits=32, backend="auto")
        ref = int_conv2d(x, w, 0, 0, x_bits=32, w_bits=32, backend="int64")
        assert np.array_equal(phi, ref)

    def test_dtype_tiering(self):
        # Depthwise 8x8 (k=9) fits float32; a 1024-wide 8x8 reduction needs float64.
        assert blas_gemm_dtype(9, 8, 8) == np.float32
        assert blas_gemm_dtype(1024, 8, 8) == np.float64
        assert max_abs_accumulator(9, 8, 8) < 2 ** FLOAT32_EXACT_BITS
        assert max_abs_accumulator(1024, 8, 8) < 2 ** FLOAT64_EXACT_BITS

    def test_float32_tier_boundary_is_exact(self):
        """k just below the float32 cutoff still matches the reference."""
        rng = np.random.default_rng(1)
        # k = 256 channels of 1x1: 256 * 255 * 255 < 2^24, the largest
        # 8x8-bit reduction the float32 tier accepts.
        assert blas_gemm_dtype(256, 8, 8) == np.float32
        x = np.full((1, 256, 3, 3), 255, dtype=np.int64)
        w = np.full((4, 256, 1, 1), 255, dtype=np.int64)
        phi = int_conv2d(x, w, 0, 0, x_bits=8, w_bits=8, backend="blas")
        ref = int_conv2d(x, w, 0, 0, x_bits=8, w_bits=8, backend="int64")
        assert np.array_equal(phi, ref)


class TestValidationFlag:
    def test_validation_on_by_default(self):
        x = np.full((1, 1, 3, 3), 300, dtype=np.int64)
        w = np.zeros((1, 1, 3, 3), dtype=np.int64)
        with pytest.raises(ValueError, match="out of UINT8 range"):
            int_conv2d(x, w, 0, 0, x_bits=8)

    def test_validation_opt_out_skips_scan(self):
        x = np.full((1, 1, 3, 3), 300, dtype=np.int64)
        w = np.zeros((1, 1, 3, 3), dtype=np.int64)
        phi = int_conv2d(x, w, 0, 0, x_bits=8, validate=False)
        assert phi.shape == (1, 1, 1, 1)
