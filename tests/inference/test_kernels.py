"""Integer kernels: equivalence with the float convolution they emulate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.inference.kernels import (
    int_avg_pool_global,
    int_conv2d,
    int_depthwise_conv2d,
    int_linear,
)
from repro.nn.functional import conv2d_forward, depthwise_conv2d_forward


def _random_codes(rng, shape, bits):
    return rng.integers(0, 2 ** bits, size=shape)


class TestIntConv2d:
    @pytest.mark.parametrize("x_bits,w_bits", [(8, 8), (8, 4), (4, 2), (2, 2)])
    def test_matches_float_conv_of_shifted_operands(self, rng, x_bits, w_bits):
        """Phi equals the float convolution of (X - Zx) with (W - Zw)."""
        x = _random_codes(rng, (2, 3, 6, 6), x_bits)
        w = _random_codes(rng, (4, 3, 3, 3), w_bits)
        z_x, z_w = 2, 1
        phi = int_conv2d(x, w, z_x, z_w, stride=1, padding=1, x_bits=x_bits, w_bits=w_bits)
        ref, _ = conv2d_forward((x - z_x).astype(float), (w - z_w).astype(float), None, 1, 1)
        assert np.array_equal(phi, np.round(ref).astype(np.int64))

    def test_per_channel_zero_points(self, rng):
        x = _random_codes(rng, (1, 3, 5, 5), 8)
        w = _random_codes(rng, (4, 3, 3, 3), 4)
        z_w = rng.integers(0, 16, size=4)
        phi = int_conv2d(x, w, 0, z_w, stride=1, padding=0, w_bits=4)
        ref, _ = conv2d_forward(
            x.astype(float), (w - z_w.reshape(-1, 1, 1, 1)).astype(float), None, 1, 0
        )
        assert np.array_equal(phi, np.round(ref).astype(np.int64))

    def test_padding_represents_real_zero(self, rng):
        """Zero padding must contribute the code Z_x, i.e. real value 0."""
        x = np.full((1, 1, 3, 3), 5, dtype=np.int64)
        w = np.ones((1, 1, 3, 3), dtype=np.int64)
        z_x = 5
        phi = int_conv2d(x, w, z_x, 0, stride=1, padding=1)
        # All (X - Zx) are zero, so every output must be exactly zero.
        assert np.all(phi == 0)

    def test_stride(self, rng):
        x = _random_codes(rng, (1, 2, 8, 8), 8)
        w = _random_codes(rng, (3, 2, 3, 3), 8)
        phi = int_conv2d(x, w, 0, 0, stride=2, padding=1)
        assert phi.shape == (1, 3, 4, 4)

    def test_out_of_range_codes_rejected(self, rng):
        x = np.full((1, 1, 3, 3), 300, dtype=np.int64)
        w = np.zeros((1, 1, 3, 3), dtype=np.int64)
        with pytest.raises(ValueError):
            int_conv2d(x, w, 0, 0, x_bits=8)

    def test_per_channel_zw_wrong_length_rejected(self, rng):
        x = _random_codes(rng, (1, 3, 5, 5), 8)
        w = _random_codes(rng, (4, 3, 3, 3), 8)
        with pytest.raises(ValueError):
            int_conv2d(x, w, 0, np.array([1, 2]))

    def test_accumulator_is_integer_dtype(self, rng):
        phi = int_conv2d(
            _random_codes(rng, (1, 2, 4, 4), 8), _random_codes(rng, (2, 2, 3, 3), 8), 0, 0,
            padding=1,
        )
        assert phi.dtype == np.int64


class TestIntDepthwiseConv2d:
    @pytest.mark.parametrize("w_bits", [8, 4, 2])
    def test_matches_float_depthwise(self, rng, w_bits):
        x = _random_codes(rng, (2, 4, 6, 6), 8)
        w = _random_codes(rng, (4, 1, 3, 3), w_bits)
        z_x, z_w = 3, 1
        phi = int_depthwise_conv2d(x, w, z_x, z_w, stride=1, padding=1, w_bits=w_bits)
        ref, _ = depthwise_conv2d_forward(
            (x - z_x).astype(float), (w - z_w).astype(float), None, 1, 1
        )
        assert np.array_equal(phi, np.round(ref).astype(np.int64))

    def test_per_channel_zero_points(self, rng):
        x = _random_codes(rng, (1, 3, 5, 5), 8)
        w = _random_codes(rng, (3, 1, 3, 3), 4)
        z_w = rng.integers(0, 16, size=3)
        phi = int_depthwise_conv2d(x, w, 0, z_w, padding=1, w_bits=4)
        ref, _ = depthwise_conv2d_forward(
            x.astype(float), (w - z_w.reshape(-1, 1, 1, 1)).astype(float), None, 1, 1
        )
        assert np.array_equal(phi, np.round(ref).astype(np.int64))

    def test_stride_two(self, rng):
        x = _random_codes(rng, (1, 4, 8, 8), 8)
        w = _random_codes(rng, (4, 1, 3, 3), 8)
        assert int_depthwise_conv2d(x, w, 0, 0, stride=2, padding=1).shape == (1, 4, 4, 4)


class TestIntLinear:
    def test_matches_float_matmul(self, rng):
        x = _random_codes(rng, (3, 10), 8)
        w = _random_codes(rng, (5, 10), 4)
        z_x, z_w = 1, 7
        phi = int_linear(x, w, z_x, z_w, w_bits=4)
        ref = (x - z_x) @ (w - z_w).T
        assert np.array_equal(phi, ref)

    def test_per_channel_zero_points(self, rng):
        x = _random_codes(rng, (2, 6), 8)
        w = _random_codes(rng, (4, 6), 8)
        z_w = rng.integers(0, 255, size=4)
        phi = int_linear(x, w, 0, z_w)
        ref = x @ (w - z_w.reshape(-1, 1)).T
        assert np.array_equal(phi, ref)


class TestIntAvgPool:
    def test_floor_division(self):
        x = np.arange(16).reshape(1, 1, 4, 4)
        out = int_avg_pool_global(x)
        assert out.shape == (1, 1)
        assert out[0, 0] == 7  # mean 7.5 floored

    def test_matches_float_mean_up_to_one(self, rng):
        x = rng.integers(0, 256, size=(2, 8, 7, 7))
        out = int_avg_pool_global(x)
        assert np.all(np.abs(out - x.mean(axis=(2, 3))) < 1.0)


@settings(max_examples=30, deadline=None)
@given(
    z_x=st.integers(0, 200),
    z_w=st.integers(0, 200),
    seed=st.integers(0, 2 ** 16),
)
def test_property_zero_point_shift_invariance(z_x, z_w, seed):
    """Shifting codes and zero points together leaves Phi unchanged —
    the integer kernel depends only on (X - Zx) and (W - Zw)."""
    rng = np.random.default_rng(seed)
    x_base = rng.integers(0, 32, size=(1, 2, 4, 4))
    w_base = rng.integers(0, 32, size=(3, 2, 3, 3))
    phi_a = int_conv2d(x_base, w_base, 0, 0, padding=1)
    phi_b = int_conv2d(x_base + z_x, w_base + z_w, z_x, z_w, padding=1)
    assert np.array_equal(phi_a, phi_b)
