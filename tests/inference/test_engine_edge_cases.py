"""Additional edge-case coverage for the integer engine and requantization."""

import numpy as np
import pytest

from repro.core.icn import (
    ICNParams,
    icn_requantize,
    quantize_multiplier,
)
from repro.inference.engine import IntegerConvLayer
from repro.inference.kernels import int_conv2d


def _identity_icn(c_out, out_bits=8, w_bits=8, m=1.0 / 256, per_channel=True):
    m0, n0 = quantize_multiplier(np.full(c_out, m))
    return ICNParams(
        weights_q=np.ones((c_out, 1, 1, 1), dtype=np.int64),
        z_w=np.zeros(c_out, dtype=np.int64),
        z_x=0,
        z_y=0,
        bq=np.zeros(c_out, dtype=np.int64),
        m0=m0,
        n0=n0,
        out_bits=out_bits,
        w_bits=w_bits,
        per_channel=per_channel,
    )


class TestRequantizeEdgeCases:
    def test_negative_accumulators_clamp_to_zero(self):
        params = _identity_icn(2)
        phi = np.array([[[[-1000]], [[-5]]]], dtype=np.int64)
        out = icn_requantize(phi, params)
        assert np.all(out == 0)

    def test_saturating_accumulators_clamp_to_max(self):
        params = _identity_icn(1, out_bits=4)
        phi = np.array([[[[10 ** 7]]]], dtype=np.int64)
        assert icn_requantize(phi, params).max() == 15

    def test_zero_multiplier_channel_outputs_zero_point(self):
        params = _identity_icn(1)
        params.m0[:] = 0
        phi = np.array([[[[12345]]]], dtype=np.int64)
        assert np.all(icn_requantize(phi, params) == params.z_y)

    def test_exact_scaling_matches_float(self, rng):
        """For random multipliers the fixed-point path matches the float
        floor within one unit (the Q31 mantissa rounding)."""
        c = 8
        m_real = rng.uniform(1e-4, 1e-1, size=c)
        m0, n0 = quantize_multiplier(m_real)
        params = _identity_icn(c)
        params.m0[:] = m0
        params.n0[:] = n0
        phi = rng.integers(-10000, 10000, size=(1, c, 3, 3))
        out = icn_requantize(phi, params)
        ref = np.clip(np.floor(m_real.reshape(1, -1, 1, 1) * phi), 0, 255)
        assert np.abs(out - ref).max() <= 1


class TestIntegerConvLayerEdgeCases:
    def test_pointwise_kind_uses_standard_kernel(self, rng):
        c_in, c_out = 3, 4
        params = ICNParams(
            weights_q=rng.integers(0, 256, size=(c_out, c_in, 1, 1)),
            z_w=rng.integers(0, 256, size=c_out),
            z_x=0, z_y=0,
            bq=np.zeros(c_out, dtype=np.int64),
            m0=np.full(c_out, 2 ** 30, dtype=np.int64),
            n0=np.full(c_out, -10, dtype=np.int64),
            out_bits=8, w_bits=8, per_channel=True,
        )
        layer = IntegerConvLayer(
            name="pw", kind="pw", stride=1, padding=0, params=params,
            in_bits=8, out_bits=8, in_scale=1.0, out_scale=1.0,
        )
        x = rng.integers(0, 256, size=(1, c_in, 5, 5))
        out = layer.forward(x)
        assert out.shape == (1, c_out, 5, 5)
        # Cross-check against the raw kernel + requantize path.
        phi = int_conv2d(x, params.weights_q, 0, params.z_w, 1, 0)
        assert np.array_equal(out, icn_requantize(phi, params))

    def test_unsupported_params_type_rejected(self, rng):
        layer = IntegerConvLayer(
            name="bad", kind="conv", stride=1, padding=0, params=object(),
            in_bits=8, out_bits=8, in_scale=1.0, out_scale=1.0,
        )
        with pytest.raises(Exception):
            layer.forward(rng.integers(0, 2, size=(1, 1, 3, 3)))
