"""Sub-byte packing: layout, sizes and exhaustive round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.inference.packing import pack_subbyte, packed_size_bytes, unpack_subbyte


class TestPackedSize:
    def test_exact_sizes(self):
        assert packed_size_bytes(8, 8) == 8
        assert packed_size_bytes(8, 4) == 4
        assert packed_size_bytes(8, 2) == 2

    def test_rounding_up(self):
        assert packed_size_bytes(3, 4) == 2
        assert packed_size_bytes(5, 2) == 2

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            packed_size_bytes(4, 3)
        with pytest.raises(ValueError):
            packed_size_bytes(-1, 4)


class TestPackUnpack:
    def test_known_4bit_layout(self):
        packed = pack_subbyte(np.array([0x1, 0x2, 0x3]), 4)
        # little-end first within a byte: 0x21, then 0x03 (padded)
        assert list(packed) == [0x21, 0x03]

    def test_known_2bit_layout(self):
        packed = pack_subbyte(np.array([1, 2, 3, 0, 1]), 2)
        assert list(packed) == [0b00111001, 0b00000001]

    def test_8bit_is_identity(self, rng):
        v = rng.integers(0, 256, size=10)
        assert np.array_equal(pack_subbyte(v, 8), v.astype(np.uint8))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            pack_subbyte(np.array([16]), 4)
        with pytest.raises(ValueError):
            pack_subbyte(np.array([-1]), 2)

    def test_unpack_needs_enough_bytes(self):
        with pytest.raises(ValueError):
            unpack_subbyte(np.array([0x12], dtype=np.uint8), 4, 3)

    def test_multidimensional_input_flattens(self, rng):
        v = rng.integers(0, 16, size=(3, 5))
        packed = pack_subbyte(v, 4)
        back = unpack_subbyte(packed, 4, v.size).reshape(v.shape)
        assert np.array_equal(back, v)

    @pytest.mark.parametrize("bits", [2, 4, 8])
    def test_roundtrip(self, rng, bits):
        v = rng.integers(0, 2 ** bits, size=1001)
        back = unpack_subbyte(pack_subbyte(v, bits), bits, v.size)
        assert np.array_equal(back, v)

    @pytest.mark.parametrize("bits", [2, 4])
    def test_storage_ratio(self, rng, bits):
        v = rng.integers(0, 2 ** bits, size=4096)
        assert pack_subbyte(v, bits).size == 4096 * bits // 8


@settings(max_examples=80, deadline=None)
@given(
    data=st.data(),
    bits=st.sampled_from([2, 4, 8]),
    n=st.integers(min_value=0, max_value=257),
)
def test_property_pack_unpack_roundtrip(data, bits, n):
    values = data.draw(
        st.lists(st.integers(0, 2 ** bits - 1), min_size=n, max_size=n)
    )
    arr = np.array(values, dtype=np.int64)
    packed = pack_subbyte(arr, bits)
    assert packed.size == packed_size_bytes(n, bits)
    back = unpack_subbyte(packed, bits, n)
    assert np.array_equal(back, arr)
