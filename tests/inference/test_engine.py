"""Integer network executor and deployment export."""

import numpy as np
import pytest

import repro
from repro.core.graph_convert import convert_to_integer_network
from repro.core.memory_model import MemoryModel
from repro.core.policy import QuantMethod, QuantPolicy
from repro.inference.engine import IntegerAvgPool, IntegerNetwork
from repro.inference.export import deployment_size_bytes, export_network
from repro.inference.packing import packed_size_bytes


@pytest.fixture(scope="module")
def integer_net(qat_pc_icn_model):
    return convert_to_integer_network(
        qat_pc_icn_model, method=QuantMethod.PC_ICN, input_scale=1.0 / 255.0
    )


class TestIntegerNetwork:
    def test_quantize_input_range(self, integer_net, rng):
        x = rng.uniform(0, 1, size=(2, 3, 16, 16))
        codes = integer_net.quantize_input(x)
        assert codes.min() >= 0 and codes.max() <= 255

    def test_forward_produces_logits(self, integer_net, small_dataset):
        logits = integer_net.forward(small_dataset.x_test[:4])
        assert logits.shape == (4, small_dataset.num_classes)
        assert np.isfinite(logits).all()

    def test_predict_labels_in_range(self, integer_net, small_dataset):
        preds = integer_net.predict(small_dataset.x_test[:8])
        assert preds.shape == (8,)
        assert preds.min() >= 0 and preds.max() < small_dataset.num_classes

    def test_intermediate_codes_within_bits(self, integer_net, small_dataset):
        codes = integer_net.quantize_input(small_dataset.x_test[:2])
        for layer in integer_net.conv_layers:
            codes = layer.forward(codes)
            assert codes.min() >= 0
            assert codes.max() <= 2 ** layer.out_bits - 1

    def test_pool_reduces_spatial_dims(self, integer_net, small_dataset):
        codes = integer_net.quantize_input(small_dataset.x_test[:2])
        codes = integer_net.forward_codes(codes)
        pooled = IntegerAvgPool().forward(codes)
        assert pooled.ndim == 2

    def test_weight_storage_accounts_for_packing(self, integer_net):
        total = integer_net.weight_storage_bytes()
        expected = sum(
            packed_size_bytes(int(l.params.weights_q.size), l.params.w_bits)
            for l in integer_net.conv_layers
        ) + packed_size_bytes(
            int(integer_net.classifier.weights_q.size), integer_net.classifier.w_bits
        )
        assert total == expected

    def test_empty_network_forward_is_identity_codes(self, rng):
        net = IntegerNetwork(conv_layers=[], pool=None, classifier=None)
        x = rng.uniform(0, 1, size=(1, 3, 4, 4))
        out = net.forward(x)
        assert out.shape == (1, 3, 4, 4)


class TestExport:
    def test_export_structure(self, integer_net):
        exported = export_network(integer_net)
        assert len(exported["conv_layers"]) == len(integer_net.conv_layers)
        assert "classifier" in exported and "input" in exported
        for entry in exported["conv_layers"]:
            assert entry["weight_bytes"] == packed_size_bytes(
                int(np.prod(entry["weight_shape"])), entry["w_bits"]
            )
            assert entry["strategy"] == "ICNParams"

    def test_deployment_size_breakdown(self, integer_net):
        sizes = deployment_size_bytes(integer_net)
        assert sizes["total"] == sizes["weights"] + sizes["aux_params"]
        assert sizes["weights"] > 0 and sizes["aux_params"] > 0

    def test_deployment_size_close_to_memory_model(self, qat_pc_icn_model, integer_net):
        """The exported Flash size matches the analytical Table-1 model for
        the convolutional trunk (the memory model counts the classifier's
        Table-1 parameters slightly differently from the float bias the
        export ships, so compare within a small tolerance)."""
        spec = qat_pc_icn_model.spec
        policy = QuantPolicy.uniform(spec, method=QuantMethod.PC_ICN, bits=8)
        analytic = MemoryModel(spec).ro_bytes(policy)
        exported = deployment_size_bytes(integer_net)["total"]
        assert abs(exported - analytic) / analytic < 0.1

    def test_packed_weights_roundtrip(self, integer_net):
        exported = export_network(integer_net)
        from repro.inference.packing import unpack_subbyte

        entry = exported["conv_layers"][0]
        layer = integer_net.conv_layers[0]
        back = unpack_subbyte(
            entry["weights_packed"], entry["w_bits"], int(np.prod(entry["weight_shape"]))
        ).reshape(entry["weight_shape"])
        assert np.array_equal(back, layer.params.weights_q)
