"""Integer network executor and deployment export."""

import numpy as np
import pytest

from repro.core.graph_convert import convert_to_integer_network
from repro.core.memory_model import MemoryModel
from repro.core.policy import QuantMethod, QuantPolicy
from repro.inference.engine import IntegerAvgPool, IntegerNetwork
from repro.inference.export import deployment_size_bytes, export_network
from repro.inference.packing import packed_size_bytes


@pytest.fixture(scope="module")
def integer_net(qat_pc_icn_model):
    return convert_to_integer_network(
        qat_pc_icn_model, method=QuantMethod.PC_ICN, input_scale=1.0 / 255.0
    )


class TestIntegerNetwork:
    def test_quantize_input_range(self, integer_net, rng):
        x = rng.uniform(0, 1, size=(2, 3, 16, 16))
        codes = integer_net.quantize_input(x)
        assert codes.min() >= 0 and codes.max() <= 255

    def test_forward_produces_logits(self, integer_net, small_dataset):
        logits = integer_net.forward(small_dataset.x_test[:4])
        assert logits.shape == (4, small_dataset.num_classes)
        assert np.isfinite(logits).all()

    def test_predict_labels_in_range(self, integer_net, small_dataset):
        preds = integer_net.predict(small_dataset.x_test[:8])
        assert preds.shape == (8,)
        assert preds.min() >= 0 and preds.max() < small_dataset.num_classes

    def test_intermediate_codes_within_bits(self, integer_net, small_dataset):
        codes = integer_net.quantize_input(small_dataset.x_test[:2])
        for layer in integer_net.conv_layers:
            codes = layer.forward(codes)
            assert codes.min() >= 0
            assert codes.max() <= 2 ** layer.out_bits - 1

    def test_pool_reduces_spatial_dims(self, integer_net, small_dataset):
        codes = integer_net.quantize_input(small_dataset.x_test[:2])
        codes = integer_net.forward_codes(codes)
        pooled = IntegerAvgPool().forward(codes)
        assert pooled.ndim == 2

    def test_weight_storage_accounts_for_packing(self, integer_net):
        total = integer_net.weight_storage_bytes()
        expected = sum(
            packed_size_bytes(int(l.params.weights_q.size), l.params.w_bits)
            for l in integer_net.conv_layers
        ) + packed_size_bytes(
            int(integer_net.classifier.weights_q.size), integer_net.classifier.w_bits
        )
        assert total == expected

    def test_empty_network_forward_is_identity_codes(self, rng):
        net = IntegerNetwork(conv_layers=[], pool=None, classifier=None)
        x = rng.uniform(0, 1, size=(1, 3, 4, 4))
        out = net.forward(x)
        assert out.shape == (1, 3, 4, 4)


class TestExport:
    def test_export_structure(self, integer_net):
        exported = export_network(integer_net)
        assert len(exported["conv_layers"]) == len(integer_net.conv_layers)
        assert "classifier" in exported and "input" in exported
        for entry in exported["conv_layers"]:
            assert entry["weight_bytes"] == packed_size_bytes(
                int(np.prod(entry["weight_shape"])), entry["w_bits"]
            )
            assert entry["strategy"] == "ICNParams"

    def test_deployment_size_breakdown(self, integer_net):
        sizes = deployment_size_bytes(integer_net)
        assert sizes["total"] == sizes["weights"] + sizes["aux_params"]
        assert sizes["weights"] > 0 and sizes["aux_params"] > 0

    def test_deployment_size_close_to_memory_model(self, qat_pc_icn_model, integer_net):
        """The exported Flash size matches the analytical Table-1 model for
        the convolutional trunk (the memory model counts the classifier's
        Table-1 parameters slightly differently from the float bias the
        export ships, so compare within a small tolerance)."""
        spec = qat_pc_icn_model.spec
        policy = QuantPolicy.uniform(spec, method=QuantMethod.PC_ICN, bits=8)
        analytic = MemoryModel(spec).ro_bytes(policy)
        exported = deployment_size_bytes(integer_net)["total"]
        assert abs(exported - analytic) / analytic < 0.1

    def test_packed_weights_roundtrip(self, integer_net):
        exported = export_network(integer_net)
        from repro.inference.packing import unpack_subbyte

        entry = exported["conv_layers"][0]
        layer = integer_net.conv_layers[0]
        back = unpack_subbyte(
            entry["weights_packed"], entry["w_bits"], int(np.prod(entry["weight_shape"]))
        ).reshape(entry["weight_shape"])
        assert np.array_equal(back, layer.params.weights_q)


class TestWeightShiftCaching:
    """The interpreted reference path must shift each weight tensor once,
    not on every forward (regression for the per-call re-shift)."""

    @pytest.fixture()
    def counted_net(self, monkeypatch):
        from repro.inference import testing as t
        import repro.inference.engine as eng

        net = t.random_network(np.random.default_rng(21), resolution=10)
        calls = []
        real = eng.shift_weights

        def counting(*args, **kwargs):
            calls.append(1)
            return real(*args, **kwargs)

        monkeypatch.setattr(eng, "shift_weights", counting)
        return net, calls

    def test_forward_shifts_each_weight_tensor_exactly_once(self, counted_net):
        net, calls = counted_net
        x = np.random.default_rng(22).uniform(0, 1, size=(2, 3, 10, 10))
        ref = net.forward(x)
        shifts_after_first = len(calls)
        # One shift per conv layer plus one for the classifier; repeat
        # forwards must not add any.
        assert shifts_after_first == len(net.conv_layers) + 1
        assert np.array_equal(net.forward(x), ref)
        assert np.array_equal(net.forward(x), ref)
        assert len(calls) == shifts_after_first

    def test_replacing_weight_tensor_invalidates_cache(self, counted_net):
        net, calls = counted_net
        x = np.random.default_rng(23).uniform(0, 1, size=(1, 3, 10, 10))
        net.forward(x)
        baseline = len(calls)
        layer = net.conv_layers[0]
        layer.params.weights_q = layer.params.weights_q.copy()
        net.forward(x)
        assert len(calls) == baseline + 1  # only the swapped tensor re-shifts

    def test_cached_path_matches_compiled_plan(self, counted_net):
        net, _ = counted_net
        x = np.random.default_rng(24).uniform(0, 1, size=(2, 3, 10, 10))
        assert np.array_equal(net.forward(x), net.compile().run(x))


class TestExportActivationPlan:
    def test_export_carries_arena_section(self):
        from repro.inference.testing import integer_network_from_spec
        from repro.models.model_zoo import mobilenet_v1_spec

        spec = mobilenet_v1_spec(32, 0.25, num_classes=5)
        net = integer_network_from_spec(spec, np.random.default_rng(0))
        exported = export_network(net, input_hw=(32, 32))
        arena = exported["arena"]
        assert arena["input_hw"] == [32, 32]
        assert arena["rw_peak_bytes"] == max(arena["per_layer_rw_bytes"])
        # The export's plan agrees with the compiled plan's arena.
        plan = net.compile(input_hw=(32, 32))
        assert arena["rw_peak_bytes"] == plan.arena_for((32, 32)).logical_rw_peak_bytes
        for entry in exported["conv_layers"]:
            act = entry["activations"]
            assert act["rw_bytes"] > 0
            assert len(act["in_shape"]) == len(act["out_shape"]) == 3

    def test_export_without_input_hw_unchanged(self, integer_net):
        exported = export_network(integer_net)
        assert "arena" not in exported
        assert all("activations" not in e for e in exported["conv_layers"])
