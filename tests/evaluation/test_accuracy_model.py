"""Accuracy surrogate: calibration against Table 2 and qualitative shape."""

import pytest

from repro.core.mixed_precision import search_mixed_precision
from repro.core.policy import QuantMethod, QuantPolicy
from repro.evaluation.accuracy_model import (
    CHANCE_TOP1,
    FP_TOP1_ACCURACY,
    AccuracyModel,
    QuantSensitivity,
)
from repro.models.model_zoo import all_mobilenet_configs, mobilenet_v1_spec

MB = 1024 * 1024
KB = 1024


@pytest.fixture(scope="module")
def model():
    return AccuracyModel()


@pytest.fixture(scope="module")
def spec224():
    return mobilenet_v1_spec(224, 1.0)


class TestBaselines:
    def test_all_16_configs_have_baselines(self, model):
        for spec in all_mobilenet_configs():
            assert model.full_precision_top1(spec) > 40.0

    def test_fp_accuracy_monotone_in_width(self, model):
        for res in (128, 160, 192, 224):
            accs = [FP_TOP1_ACCURACY[(res, wm)] for wm in (0.25, 0.5, 0.75, 1.0)]
            assert accs == sorted(accs)

    def test_fp_accuracy_monotone_in_resolution(self, model):
        for wm in (0.25, 0.5, 0.75, 1.0):
            accs = [FP_TOP1_ACCURACY[(res, wm)] for res in (128, 160, 192, 224)]
            assert accs == sorted(accs)

    def test_unknown_config_rejected(self, model):
        with pytest.raises(KeyError):
            model.full_precision_top1(mobilenet_v1_spec(256, 1.0))


class TestTable2Calibration:
    """The surrogate must land near the paper's Table 2 anchor points."""

    def test_int8_near_lossless(self, model, spec224):
        top1 = model.predict_uniform(spec224, QuantMethod.PL_FB, 8)
        assert abs(top1 - 70.1) < 1.5

    def test_pl_fb_int4_collapses(self, model, spec224):
        top1 = model.predict_uniform(spec224, QuantMethod.PL_FB, 4)
        assert top1 == pytest.approx(CHANCE_TOP1)

    def test_pl_icn_int4_recovers_training(self, model, spec224):
        """ICN avoids the folding collapse: Table 2 reports 61.75 %."""
        top1 = model.predict_uniform(spec224, QuantMethod.PL_ICN, 4)
        assert 57.0 < top1 < 65.0

    def test_pc_icn_int4_better_than_pl(self, model, spec224):
        pc = model.predict_uniform(spec224, QuantMethod.PC_ICN, 4)
        pl = model.predict_uniform(spec224, QuantMethod.PL_ICN, 4)
        assert pc > pl + 2.0
        assert 63.0 < pc < 69.0  # paper: 66.41

    def test_thresholds_match_icn_accuracy(self, model, spec224):
        """Thresholds are numerically equivalent to ICN (paper: 66.46 vs 66.41)."""
        thr = model.predict_uniform(spec224, QuantMethod.PC_THRESHOLDS, 4)
        icn = model.predict_uniform(spec224, QuantMethod.PC_ICN, 4)
        assert thr == pytest.approx(icn)


class TestPolicySensitivity:
    def test_more_aggressive_policy_loses_more(self, model, spec224):
        p8 = QuantPolicy.uniform(spec224, method=QuantMethod.PC_ICN, bits=8)
        p4 = QuantPolicy.uniform(spec224, method=QuantMethod.PC_ICN, bits=4)
        p2 = QuantPolicy.uniform(spec224, method=QuantMethod.PC_ICN, bits=2)
        a8, a4, a2 = (model.predict_top1(spec224, p) for p in (p8, p4, p2))
        assert a8 > a4 > a2

    def test_accuracy_never_below_chance(self, model, spec224):
        p2 = QuantPolicy.uniform(spec224, method=QuantMethod.PL_ICN, bits=2)
        assert model.predict_top1(spec224, p2) >= CHANCE_TOP1

    def test_mixed_policy_between_uniform_extremes(self, model, spec224):
        mixed = search_mixed_precision(spec224, 2 * MB, 512 * KB, method=QuantMethod.PC_ICN)
        a_mixed = model.predict_top1(spec224, mixed)
        a8 = model.predict_uniform(spec224, QuantMethod.PC_ICN, 8)
        a2 = model.predict_uniform(spec224, QuantMethod.PC_ICN, 2)
        assert a2 < a_mixed < a8

    def test_pc_beats_pl_for_every_2mb_config(self, model):
        """Table 4: MixQ-PC-ICN is at least as accurate as MixQ-PL everywhere."""
        for spec in all_mobilenet_configs():
            pl = search_mixed_precision(spec, 2 * MB, 512 * KB, method=QuantMethod.PL_ICN)
            pc = search_mixed_precision(spec, 2 * MB, 512 * KB, method=QuantMethod.PC_ICN)
            assert model.predict_top1(spec, pc) >= model.predict_top1(spec, pl) - 1e-9

    def test_custom_sensitivity(self, spec224):
        harsh = AccuracyModel(QuantSensitivity(weight_penalty={8: 0.1, 4: 2.0, 2: 10.0}))
        default = AccuracyModel()
        p4 = QuantPolicy.uniform(spec224, method=QuantMethod.PC_ICN, bits=4)
        assert harsh.predict_top1(spec224, p4) < default.predict_top1(spec224, p4)
