"""Pareto frontier utilities and the text table renderer."""

from repro.evaluation.pareto import ParetoPoint, pareto_frontier
from repro.evaluation.tables import render_table


class TestPareto:
    def test_dominance(self):
        a = ParetoPoint("a", latency_cycles=100, top1=60)
        b = ParetoPoint("b", latency_cycles=200, top1=50)
        c = ParetoPoint("c", latency_cycles=100, top1=60)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c)  # equal points do not dominate each other

    def test_frontier_removes_dominated(self):
        pts = [
            ParetoPoint("fast-bad", 10, 40),
            ParetoPoint("slow-good", 100, 70),
            ParetoPoint("dominated", 120, 65),
            ParetoPoint("mid", 50, 60),
        ]
        frontier = pareto_frontier(pts)
        labels = [p.label for p in frontier]
        assert "dominated" not in labels
        assert labels == ["fast-bad", "mid", "slow-good"]

    def test_frontier_sorted_by_latency(self):
        pts = [ParetoPoint(str(i), 100 - i, 10 + i) for i in range(5)]
        frontier = pareto_frontier(pts)
        lats = [p.latency_cycles for p in frontier]
        assert lats == sorted(lats)

    def test_single_point(self):
        pts = [ParetoPoint("only", 1, 1)]
        assert pareto_frontier(pts) == pts

    def test_empty(self):
        assert pareto_frontier([]) == []


class TestRenderTable:
    def test_contains_headers_and_rows(self):
        text = render_table(["name", "top1"], [["a", 61.234], ["bb", 7]], title="T")
        assert "T" in text and "name" in text and "61.23" in text and "bb" in text

    def test_alignment_consistent(self):
        text = render_table(["col"], [["x"], ["longer-value"]])
        lines = text.splitlines()
        assert len(set(len(l) for l in lines[1:])) <= 2  # header+sep+rows aligned
