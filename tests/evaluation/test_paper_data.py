"""Sanity checks on the transcribed paper reference data: the benches
compare against these values, so internal consistency matters."""

from repro.evaluation import paper_data
from repro.evaluation.accuracy_model import FP_TOP1_ACCURACY
from repro.models.model_zoo import all_mobilenet_configs


class TestTable2Data:
    def test_all_strategies_present(self):
        assert set(paper_data.TABLE2) == {
            "Full-precision", "PL+FB INT8", "PL+FB INT4", "PL+ICN INT4",
            "PC+ICN INT4", "PC+Thresholds INT4",
        }

    def test_footprints_decrease_with_precision(self):
        t = paper_data.TABLE2
        assert t["Full-precision"]["weight_mb"] > t["PL+FB INT8"]["weight_mb"]
        assert t["PL+FB INT8"]["weight_mb"] > t["PC+ICN INT4"]["weight_mb"]

    def test_icn_recovers_the_collapse(self):
        t = paper_data.TABLE2
        assert t["PL+FB INT4"]["top1"] < 1.0
        assert t["PL+ICN INT4"]["top1"] > 60.0
        assert t["PC+ICN INT4"]["top1"] > t["PL+ICN INT4"]["top1"]


class TestTable4Data:
    def test_covers_all_16_configs(self):
        labels = {spec.label for spec in all_mobilenet_configs()}
        assert set(paper_data.TABLE4) == labels

    def test_pc_icn_never_worse_than_pl(self):
        for pl, pc in paper_data.TABLE4.values():
            assert pc >= pl

    def test_headline_matches_best_table4_entry(self):
        best = max(pc for _, pc in paper_data.TABLE4.values())
        assert abs(best - paper_data.HEADLINE["best_top1"]) < 0.1

    def test_mixed_precision_never_exceeds_fp_by_much(self):
        """The quantized accuracies stay within ~4 points of the published
        full-precision baselines (the paper's QAT occasionally lands a
        few points above the TF-slim checkpoints it starts from)."""
        for label, (pl, pc) in paper_data.TABLE4.items():
            res, wm = label.split("_")
            fp = FP_TOP1_ACCURACY[(int(res), float(wm))]
            assert pc <= fp + 4.0


class TestFigure2Anchors:
    def test_anchor_fields(self):
        a = paper_data.FIGURE2_ANCHORS
        assert a["fastest_config"] == "128_0.25"
        assert a["most_accurate_config"] == "224_0.75"
        assert a["pc_overhead_factor"] > 1.0
        assert a["slowdown_most_accurate"] > 10.0

    def test_table3_entries(self):
        assert len(paper_data.TABLE3) == 4
        for entry in paper_data.TABLE3.values():
            assert 40.0 < entry["top1"] < 75.0
