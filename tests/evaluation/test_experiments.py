"""Experiment entry points: structure and qualitative agreement with the
paper's tables/figures (the benches print the full comparisons)."""

import pytest

from repro.core.policy import QuantMethod
from repro.evaluation import experiments, paper_data
from repro.mcu.device import MB, KB


class TestTable1Experiment:
    def test_all_methods_present(self):
        result = experiments.table1()
        assert set(result["rows"].keys()) == {m.value for m in QuantMethod}

    def test_counts_match_paper_structure(self):
        result = experiments.table1()
        pc = result["rows"]["PC+ICN"]["counts"]
        pl_fb = result["rows"]["PL+FB"]["counts"]
        thr = result["rows"]["PC+Thr"]["counts"]
        assert pc["Zw"] > 1 and pl_fb["Zw"] == 1
        assert thr["Thr"] > 0 and pc["Thr"] == 0

    def test_extra_bytes_ranking(self):
        result = experiments.table1()
        order = ["PL+FB", "PL+ICN", "PC+ICN", "PC+Thr"]
        sizes = [result["rows"][m]["layer_extra_bytes"] for m in order]
        assert sizes == sorted(sizes)


class TestTable2Experiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.label: r for r in experiments.table2()}

    def test_row_labels(self, rows):
        for label in paper_data.TABLE2:
            assert label in rows

    def test_footprints_match_paper_within_15_percent(self, rows):
        for label, ref in paper_data.TABLE2.items():
            if label == "PC+Thresholds INT4":
                continue  # threshold dtype differs; checked separately
            assert rows[label].weight_mb == pytest.approx(ref["weight_mb"], rel=0.15)

    def test_thresholds_footprint_larger_than_icn(self, rows):
        assert rows["PC+Thresholds INT4"].weight_mb > rows["PC+ICN INT4"].weight_mb

    def test_accuracy_ordering_matches_paper(self, rows):
        """FP > INT8 > PC+ICN INT4 > PL+ICN INT4 >> PL+FB INT4 (collapse)."""
        assert rows["Full-precision"].top1 > rows["PL+FB INT8"].top1
        assert rows["PL+FB INT8"].top1 > rows["PC+ICN INT4"].top1
        assert rows["PC+ICN INT4"].top1 > rows["PL+ICN INT4"].top1
        assert rows["PL+ICN INT4"].top1 > rows["PL+FB INT4"].top1 + 40


class TestFigure2Experiment:
    @pytest.fixture(scope="class")
    def fig(self):
        return experiments.figure2()

    def test_32_points(self, fig):
        assert len(fig["points"]) == 32  # 16 configs x 2 methods

    def test_all_points_feasible_on_stm32h7(self, fig):
        assert all(p.feasible for p in fig["points"])
        assert all(p.ro_bytes <= 2 * MB and p.rw_peak_bytes <= 512 * KB for p in fig["points"])

    def test_pc_icn_dominates_accuracy(self, fig):
        by_label = {}
        for p in fig["points"]:
            by_label.setdefault(p.label, {})[p.method] = p
        for label, d in by_label.items():
            assert d["MixQ-PC-ICN"].top1 >= d["MixQ-PL"].top1 - 1e-9
            assert d["MixQ-PC-ICN"].cycles >= d["MixQ-PL"].cycles

    def test_pareto_high_accuracy_end_is_pc(self, fig):
        """Paper §6: the accurate end of the Pareto frontier is populated by
        MixQ-PC-ICN configurations (the surrogate gives PC a smaller edge at
        8 bit than the paper measured, so the low-latency end remains PL;
        see EXPERIMENTS.md)."""
        pareto = fig["pareto"]
        assert len(pareto) >= 3
        assert any(p.method == "MixQ-PC-ICN" for p in pareto)
        most_accurate = max(pareto, key=lambda p: p.top1)
        assert most_accurate.method == "MixQ-PC-ICN"
        # Within the top-accuracy third of the frontier, PC dominates.
        top_third = sorted(pareto, key=lambda p: -p.top1)[: max(len(pareto) // 3, 1)]
        pc_share = sum(1 for p in top_third if p.method == "MixQ-PC-ICN") / len(top_third)
        assert pc_share >= 0.5

    def test_fastest_point_is_smallest_config(self, fig):
        fastest = min(fig["points"], key=lambda p: p.cycles)
        assert fastest.label == "128_0.25"
        assert 6.0 < fastest.fps < 15.0  # paper: ~10 fps

    def test_headline_accuracy_gap_over_int8(self, fig):
        """Paper: the best mixed-precision model is ~8 % above the best
        INT8 model that fits the same 2 MB device."""
        best_mixed = max(p.top1 for p in fig["points"] if p.method == "MixQ-PC-ICN")
        int8_points = [p for p in fig["points"] if p.policy.is_uniform(8)]
        best_int8 = max(p.top1 for p in int8_points)
        assert best_mixed - best_int8 > 3.0


class TestTable3Experiment:
    def test_rows_and_feasibility(self):
        rows = experiments.table3()
        assert len(rows) == 4
        mixed = [r for r in rows if r.method == "MixQ-PC-ICN"]
        assert all(r.feasible for r in mixed)
        assert all(r.ro_mb <= 1.0 + 1e-6 for r in mixed)

    def test_mixed_precision_beats_int8_that_fits_1mb(self):
        rows = {f"{r.label} {r.method}": r for r in experiments.table3()}
        ours = rows["MobilenetV1_224_0.5 MixQ-PC-ICN"].top1
        int8_smaller = rows["MobilenetV1_224_0.25 INT8 PL+FB [11]"].top1
        assert ours > int8_smaller + 5.0


class TestFigure3Table4Experiments:
    def test_figure3_covers_all_configs(self):
        result = experiments.figure3()
        assert len(result) == 16
        for label, per_method in result.items():
            assert set(per_method) == {"MixQ-PL", "MixQ-PC-ICN"}
            for policy in per_method.values():
                policy.validate()

    def test_table4_structure_and_ordering(self):
        result = experiments.table4()
        assert set(result.keys()) == set(paper_data.TABLE4.keys())
        for label, (pl, pc) in result.items():
            assert pc >= pl - 1e-9
