"""Fleet serving: the artifact registry, LRU eviction under a budget,
and model routing on the HTTP front end.

The fleet fixture is three zoo configs (32/64/96 at width 0.25) served
by one process under a budget that holds two of them — so mixed-model
traffic *must* exercise lazy load, LRU eviction, and reload, and the
tests assert those transitions in ``/stats`` rather than hoping for
them.  Responses are checked bit-identical to a dedicated single-model
session: residency churn may never change an answer.
"""

import asyncio

import numpy as np
import pytest

from repro.serving import (
    ModelNotFoundError,
    ModelRegistry,
    OverBudgetError,
    ServerOptions,
    ServingServer,
    materialize_fleet,
)
from repro.serving.client import predict, request_json

CONFIGS = [(32, 0.25), (64, 0.25), (96, 0.25)]


@pytest.fixture(scope="module")
def fleet_dir(tmp_path_factory):
    root = tmp_path_factory.mktemp("fleet")
    materialize_fleet(root, CONFIGS, num_classes=5)
    return root


@pytest.fixture(scope="module")
def costs(fleet_dir):
    with ModelRegistry.from_directory(fleet_dir) as registry:
        return {m: registry.entry(m).cost_bytes() for m in registry.models}


def _two_of_three_budget(costs):
    """Admits any two fleet members at once but never all three."""
    ordered = sorted(costs.values())
    budget = ordered[-1] + ordered[-2] + 1024
    assert budget < sum(ordered)
    return budget


def _image(model, seed=21):
    resolution = int(model.split("x")[0])
    return np.random.default_rng(seed).uniform(
        0.0, 1.0, size=(3, resolution, resolution)
    )


class TestRegistry:
    def test_scan_and_lazy_load(self, fleet_dir):
        with ModelRegistry.from_directory(fleet_dir) as registry:
            assert registry.models == ["32x0.25", "64x0.25", "96x0.25"]
            assert registry.stats()["models_resident"] == 0  # all cold
            registry.run("32x0.25", _image("32x0.25")[None])
            stats = registry.stats()
            assert stats["models_resident"] == 1
            assert stats["models"]["32x0.25"]["resident"]

    def test_lru_eviction_and_reload(self, fleet_dir, costs):
        budget = _two_of_three_budget(costs)
        with ModelRegistry.from_directory(
                fleet_dir, memory_budget_bytes=budget) as registry:
            for model in registry.models:  # third load must evict the LRU
                registry.run(model, _image(model)[None])
            stats = registry.stats()
            assert stats["evictions"] >= 1
            assert not stats["models"]["32x0.25"]["resident"]  # the LRU
            assert stats["resident_bytes"] <= budget
            # Reload after eviction: lazy, transparent, counted.
            registry.run("32x0.25", _image("32x0.25")[None])
            assert registry.stats()["models"]["32x0.25"]["loads"] == 2

    def test_eviction_never_changes_answers(self, fleet_dir, costs):
        """Bit-parity across residency churn: every model answers
        identically to a dedicated session, before and after being
        evicted and reloaded."""
        from repro.runtime import Session

        budget = _two_of_three_budget(costs)
        with ModelRegistry.from_directory(
                fleet_dir, memory_budget_bytes=budget) as registry:
            dedicated = {
                m: Session.load(fleet_dir / m).run(_image(m)[None])
                for m in registry.models
            }
            for sweep in range(2):  # second sweep hits reloaded models
                for m in registry.models:
                    np.testing.assert_array_equal(
                        registry.run(m, _image(m)[None]), dedicated[m]
                    )
            assert registry.stats()["evictions"] >= 2

    def test_over_budget_is_typed(self, fleet_dir, costs):
        budget = min(costs.values()) // 2
        with ModelRegistry.from_directory(
                fleet_dir, memory_budget_bytes=budget) as registry:
            with pytest.raises(OverBudgetError, match="budget"):
                registry.run("32x0.25", _image("32x0.25")[None])
            assert registry.stats()["models_resident"] == 0  # no leak

    def test_unknown_model_is_typed(self, fleet_dir):
        with ModelRegistry.from_directory(fleet_dir) as registry:
            with pytest.raises(ModelNotFoundError, match="ghost"):
                registry.run("ghost", _image("32x0.25")[None])

    def test_inflight_models_are_not_evictable(self, fleet_dir, costs):
        budget = _two_of_three_budget(costs)
        with ModelRegistry.from_directory(
                fleet_dir, memory_budget_bytes=budget) as registry:
            pinned = [registry.checkout("64x0.25"),
                      registry.checkout("96x0.25")]
            # Both resident models busy: the third cannot evict anyone.
            with pytest.raises(OverBudgetError):
                registry.checkout("32x0.25")
            for entry in pinned:
                registry.release(entry)
            registry.run("32x0.25", _image("32x0.25")[None])  # now fits

    def test_polymorphic_routing_inside_one_model(self, fleet_dir):
        """A smaller geometry runs inside the model's max arena and
        matches a dedicated session exactly."""
        from repro.runtime import Session

        with ModelRegistry.from_directory(fleet_dir) as registry:
            x = np.random.default_rng(5).uniform(0.0, 1.0, (1, 3, 64, 64))
            out = registry.run("96x0.25", x)
            np.testing.assert_array_equal(
                out, Session.load(fleet_dir / "96x0.25").run(x)
            )
            arena = registry.entry("96x0.25").session.plan.arena_for((64, 64))
            assert arena.shares_slabs

    def test_eviction_unmaps_blobs(self, fleet_dir, costs):
        import pathlib

        smaps = pathlib.Path("/proc/self/smaps")
        if not smaps.exists():
            pytest.skip("no /proc/self/smaps on this platform")
        budget = _two_of_three_budget(costs)
        with ModelRegistry.from_directory(
                fleet_dir, memory_budget_bytes=budget) as registry:
            registry.run("32x0.25", _image("32x0.25")[None])
            blob = str((fleet_dir / "32x0.25" / "blobs.bin").resolve())
            assert blob in smaps.read_text()
            for m in ("64x0.25", "96x0.25"):  # crowd the first one out
                registry.run(m, _image(m)[None])
            assert not registry.entry("32x0.25").resident
            assert blob not in smaps.read_text()


class TestFleetServer:
    def _scenario(self, fleet_dir, budget, body, server_kwargs=None):
        async def _main():
            registry = ModelRegistry.from_directory(
                fleet_dir, memory_budget_bytes=budget
            )
            server = ServingServer(
                registry=registry,
                options=ServerOptions(port=0, max_wait_ms=2.0),
                **(server_kwargs or {}),
            )
            host, port = await server.start()
            try:
                await body(server, registry, host, port)
            finally:
                await server.stop()

        asyncio.run(_main())

    def test_mixed_traffic_evicts_reloads_and_stays_exact(
            self, fleet_dir, costs):
        from repro.runtime import Session

        dedicated = {
            m: int(np.argmax(Session.load(fleet_dir / m).run(_image(m)[None])))
            for m in ("32x0.25", "64x0.25", "96x0.25")
        }

        async def body(server, registry, host, port):
            for sweep in range(2):
                for model, expected in dedicated.items():
                    status, reply = await predict(host, port, _image(model),
                                                  model=model)
                    assert status == 200, reply
                    assert reply["model"] == model
                    assert reply["prediction"] == expected
            status, stats = await request_json(host, port, "GET", "/stats")
            assert status == 200
            reg = stats["registry"]
            assert reg["evictions"] >= 1  # LRU observed via /stats
            assert reg["loads"] > reg["models_known"]  # lazy reload observed
            assert reg["resident_bytes"] <= reg["budget_bytes"]

        self._scenario(fleet_dir, _two_of_three_budget(costs), body)

    def test_unknown_model_is_404(self, fleet_dir, costs):
        async def body(server, registry, host, port):
            status, reply = await predict(host, port, _image("32x0.25"),
                                          model="ghost")
            assert status == 404
            assert reply["error"] == "ModelNotFoundError"
            assert server.stats.unknown_model == 1

        self._scenario(fleet_dir, _two_of_three_budget(costs), body)

    def test_over_budget_load_is_413(self, fleet_dir, costs):
        async def body(server, registry, host, port):
            status, reply = await predict(host, port, _image("96x0.25"),
                                          model="96x0.25")
            assert status == 413
            assert reply["error"] == "OverBudgetError"
            assert server.stats.over_budget == 1
            # The tier survives: a model that fits still answers.
            status, _ = await predict(host, port, _image("32x0.25"),
                                      model="32x0.25")
            assert status == 200

        # Budget fits the smallest model only.
        self._scenario(fleet_dir, min(costs.values()) + 1024, body)

    def test_default_model_and_warm_start(self, fleet_dir, costs):
        async def body(server, registry, host, port):
            assert registry.entry("64x0.25").resident  # warmed at startup
            status, reply = await predict(host, port, _image("64x0.25"))
            assert status == 200 and reply["model"] == "64x0.25"
            status, health = await request_json(host, port, "GET", "/healthz")
            assert status == 200
            assert health["fleet"]["models_known"] == 3
            assert health["startup"]["warmed"] == "64x0.25"

        self._scenario(fleet_dir, _two_of_three_budget(costs), body,
                       server_kwargs={"default_model": "64x0.25"})

    def test_missing_model_without_default_is_400(self, fleet_dir, costs):
        async def body(server, registry, host, port):
            status, reply = await predict(host, port, _image("32x0.25"))
            assert status == 400
            assert "model" in reply["detail"]

        self._scenario(fleet_dir, _two_of_three_budget(costs), body)

    def test_over_max_geometry_is_400_not_a_load(self, fleet_dir, costs):
        async def body(server, registry, host, port):
            status, reply = await predict(host, port, _image("96x0.25"),
                                          model="32x0.25")
            assert status == 400
            assert "max geometry" in reply["detail"]
            # Rejected at admission — the model was never loaded.
            assert not registry.entry("32x0.25").resident

        self._scenario(fleet_dir, _two_of_three_budget(costs), body)

    def test_single_model_serve_unchanged(self, tiny_session, image):
        """Migration guarantee: a session-backed server neither requires
        nor is confused by the fleet fields."""

        async def _main():
            server = ServingServer(tiny_session,
                                   options=ServerOptions(port=0))
            host, port = await server.start()
            try:
                status, reply = await predict(host, port, image)
                assert status == 200 and "model" not in reply
                # A stray "model" field on a single-model server is
                # ignored, exactly as before fleets existed.
                status, reply = await predict(host, port, image,
                                              model="whatever")
                assert status == 200
            finally:
                await server.stop()

        asyncio.run(_main())
