"""Shared serving-tier fixtures: one tiny compiled session per test
session (32x32, width 0.25 — milliseconds per batch) plus a canonical
valid image."""

import numpy as np
import pytest

from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import Session, SessionOptions

SPEC = mobilenet_v1_spec(32, 0.25, num_classes=5)


@pytest.fixture(scope="session")
def tiny_session():
    net = integer_network_from_spec(SPEC, np.random.default_rng(3))
    return Session(net, options=SessionOptions(input_hw=(32, 32)))


@pytest.fixture(scope="session")
def image():
    return np.random.default_rng(4).uniform(0.0, 1.0, size=(3, 32, 32))
