"""Shared serving-tier fixtures: one tiny compiled session per test
session (32x32, width 0.25 — milliseconds per batch), a canonical valid
image, a saved artifact of the tiny session (for worker-pool scenarios),
and the :func:`eventually` deadline-poll helper the chaos suite uses
instead of fixed sleeps."""

import asyncio
import time

import numpy as np
import pytest

from repro.inference.testing import integer_network_from_spec
from repro.models.model_zoo import mobilenet_v1_spec
from repro.runtime import Session, SessionOptions

SPEC = mobilenet_v1_spec(32, 0.25, num_classes=5)


@pytest.fixture(scope="session")
def tiny_session():
    net = integer_network_from_spec(SPEC, np.random.default_rng(3))
    return Session(net, options=SessionOptions(input_hw=(32, 32)))


@pytest.fixture(scope="session")
def tiny_artifact(tiny_session, tmp_path_factory):
    """The tiny session saved to disk — what pooled servers mmap."""
    path = tmp_path_factory.mktemp("serving") / "tiny.artifact"
    tiny_session.save(path)
    return path


@pytest.fixture(scope="session")
def image():
    return np.random.default_rng(4).uniform(0.0, 1.0, size=(3, 32, 32))


async def eventually(predicate, timeout: float = 5.0,
                     interval: float = 0.01, desc: str = ""):
    """Poll ``predicate`` until truthy or ``timeout`` elapses.

    The chaos suite's replacement for fixed ``asyncio.sleep`` waits:
    on an unloaded box it returns as soon as the condition holds, and
    on a saturated CI runner it keeps waiting up to the (generous)
    deadline instead of flaking.  Returns the truthy value.
    """
    deadline = time.monotonic() + timeout
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(
                f"condition not met within {timeout:.1f}s"
                + (f": {desc}" if desc else "")
            )
        await asyncio.sleep(interval)


@pytest.fixture
def wait_until():
    """Fixture handle on :func:`eventually` for scenario closures."""
    return eventually
