"""Micro-batcher core: flush-on-full, flush-on-timeout, remainder
carry-over, and the pre-batching deadline guarantee."""

import pytest

from repro.serving.batcher import MicroBatcher, Request


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


def make(batcher, clock, n, deadline_in=None):
    reqs = []
    for _ in range(n):
        deadline = None if deadline_in is None else clock() + deadline_in
        r = Request(x=len(reqs), enqueued_at=clock(), deadline=deadline)
        batcher.add(r)
        reqs.append(r)
    return reqs


@pytest.fixture
def clock():
    return FakeClock()


class TestFlushOnFull:
    def test_full_tile_emits_exactly_max_batch(self, clock):
        b = MicroBatcher(max_batch=4, max_wait_s=10.0, clock=clock)
        reqs = make(b, clock, 4)
        assert b.ready()
        batch, expired = b.take()
        assert batch == reqs and expired == [] and len(b) == 0

    def test_remainder_carries_over(self, clock):
        b = MicroBatcher(max_batch=4, max_wait_s=10.0, clock=clock)
        reqs = make(b, clock, 7)
        batch, _ = b.take()
        assert batch == reqs[:4]
        # The 3 leftovers stay pending, FIFO order preserved, and seed
        # the next tile once more requests arrive.
        assert len(b) == 3
        late = make(b, clock, 1)
        batch2, _ = b.take()
        assert batch2 == reqs[4:] + late and len(b) == 0

    def test_under_full_does_not_flush_early(self, clock):
        b = MicroBatcher(max_batch=4, max_wait_s=10.0, clock=clock)
        make(b, clock, 3)
        batch, _ = b.take()
        assert batch == [] and len(b) == 3


class TestFlushOnTimeout:
    def test_oldest_waiter_times_out_partial_tile(self, clock):
        b = MicroBatcher(max_batch=8, max_wait_s=0.5, clock=clock)
        reqs = make(b, clock, 3)
        assert not b.ready()
        clock.advance(0.5)
        assert b.ready()
        batch, _ = b.take()
        assert batch == reqs and len(b) == 0

    def test_next_flush_in_counts_down_from_oldest(self, clock):
        b = MicroBatcher(max_batch=8, max_wait_s=0.5, clock=clock)
        assert b.next_flush_in() is None
        make(b, clock, 1)
        clock.advance(0.2)
        make(b, clock, 1)  # newer request must not extend the wait
        assert b.next_flush_in() == pytest.approx(0.3)
        clock.advance(0.4)
        assert b.next_flush_in() == 0.0

    def test_next_flush_in_respects_earliest_deadline(self, clock):
        b = MicroBatcher(max_batch=8, max_wait_s=10.0, clock=clock)
        make(b, clock, 1, deadline_in=0.25)
        assert b.next_flush_in() == pytest.approx(0.25)

    def test_force_flush_drains_partial(self, clock):
        b = MicroBatcher(max_batch=8, max_wait_s=10.0, clock=clock)
        reqs = make(b, clock, 2)
        batch, _ = b.take(force=True)
        assert batch == reqs


class TestDeadlines:
    def test_expired_requests_never_reach_a_batch(self, clock):
        b = MicroBatcher(max_batch=2, max_wait_s=10.0, clock=clock)
        doomed = make(b, clock, 1, deadline_in=0.1)
        clock.advance(0.2)
        alive = make(b, clock, 2)  # fills a tile
        batch, expired = b.take()
        assert expired == doomed
        assert batch == alive
        assert all(r not in batch for r in doomed)

    def test_expiry_is_checked_before_tile_formation(self, clock):
        # 4 requests with deadlines + enough fresh ones for a full tile:
        # the expired ones are dropped first, the tile forms from the rest.
        b = MicroBatcher(max_batch=4, max_wait_s=10.0, clock=clock)
        doomed = make(b, clock, 4, deadline_in=0.1)
        clock.advance(1.0)
        fresh = make(b, clock, 4)
        batch, expired = b.take()
        assert expired == doomed and batch == fresh

    def test_expire_alone_leaves_live_requests(self, clock):
        b = MicroBatcher(max_batch=8, max_wait_s=10.0, clock=clock)
        doomed = make(b, clock, 1, deadline_in=0.1)
        live = make(b, clock, 1, deadline_in=5.0)
        clock.advance(0.2)
        assert b.expire() == doomed
        assert len(b) == 1
        batch, _ = b.take(force=True)
        assert batch == live

    def test_no_deadline_never_expires(self, clock):
        b = MicroBatcher(max_batch=8, max_wait_s=0.1, clock=clock)
        make(b, clock, 1)
        clock.advance(1e6)
        assert b.expire() == []
        batch, _ = b.take()
        assert len(batch) == 1


class TestValidation:
    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=0, max_wait_s=1.0)
        with pytest.raises(ValueError):
            MicroBatcher(max_batch=1, max_wait_s=-1.0)

    def test_drain_empties_everything(self, clock):
        b = MicroBatcher(max_batch=4, max_wait_s=1.0, clock=clock)
        reqs = make(b, clock, 3)
        assert b.drain() == reqs and len(b) == 0
