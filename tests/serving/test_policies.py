"""Retry/backoff determinism and the circuit-breaker state machine."""

import pytest

from repro.serving.policies import (
    BreakerState,
    CircuitBreaker,
    RetryPolicy,
    ServerOptions,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestRetryPolicy:
    def test_delays_are_exponential_and_capped(self):
        p = RetryPolicy(attempts=5, base_delay_s=0.1, factor=2.0, max_delay_s=0.5)
        assert list(p.delays()) == [0.1, 0.2, 0.4, 0.5, 0.5]

    def test_zero_attempts_fails_fast(self):
        assert list(RetryPolicy(attempts=0).delays()) == []

    def test_deterministic_no_jitter(self):
        p = RetryPolicy(attempts=3)
        assert list(p.delays()) == list(p.delays())

    def test_rejects_negative_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=3, reset_after_s=1.0, clock=clock)
        for _ in range(2):
            b.record_failure()
        assert b.state is BreakerState.CLOSED and b.allow()
        b.record_failure()
        assert b.state is BreakerState.OPEN and not b.allow()

    def test_success_resets_the_failure_streak(self):
        b = CircuitBreaker(failure_threshold=2)
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state is BreakerState.CLOSED

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, reset_after_s=1.0, clock=clock)
        b.record_failure()
        assert not b.allow()
        clock.advance(1.0)
        assert b.state is BreakerState.HALF_OPEN
        assert b.allow()       # the probe
        assert not b.allow()   # no second concurrent probe

    def test_probe_success_closes(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=1, reset_after_s=1.0, clock=clock)
        b.record_failure()
        clock.advance(1.0)
        assert b.allow()
        b.record_success()
        assert b.state is BreakerState.CLOSED and b.allow()

    def test_probe_failure_reopens_and_restarts_the_clock(self):
        clock = FakeClock()
        b = CircuitBreaker(failure_threshold=5, reset_after_s=1.0, clock=clock)
        for _ in range(5):
            b.record_failure()
        clock.advance(1.0)
        assert b.allow()
        b.record_failure()  # half-open probe fails -> OPEN immediately
        assert b.state is BreakerState.OPEN and not b.allow()
        clock.advance(0.5)
        assert not b.allow()  # reset clock restarted at the probe failure
        clock.advance(0.5)
        assert b.allow()


class TestServerOptions:
    def test_defaults_are_valid(self):
        ServerOptions()

    @pytest.mark.parametrize("kwargs", [
        {"max_batch": 0},
        {"queue_depth": 0},
        {"max_wait_ms": -1},
        {"default_deadline_ms": -1},
        {"batch_timeout_s": 0},
    ])
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServerOptions(**kwargs)

    def test_replace(self):
        assert ServerOptions().replace(max_batch=2).max_batch == 2


class TestRetryAfter:
    """The Retry-After fix: derived from queue depth and drain rate
    instead of the old hardcoded ``1``."""

    def test_estimates_drain_time(self):
        from repro.serving.policies import retry_after_s

        # 40 queued, draining 10/s -> 4 seconds.
        assert retry_after_s(40, 10.0) == 4

    def test_rounds_up(self):
        from repro.serving.policies import retry_after_s

        assert retry_after_s(25, 10.0) == 3

    def test_clamped_to_bounds(self):
        from repro.serving.policies import retry_after_s

        assert retry_after_s(1, 1000.0) == 1       # floor
        assert retry_after_s(10_000, 0.5) == 30     # ceiling

    def test_no_drain_observed(self):
        from repro.serving.policies import retry_after_s

        # Backlog but nothing completing: worst case, not best case.
        assert retry_after_s(10, 0.0) == 30
        # Nothing queued either (cold start): optimistic floor.
        assert retry_after_s(0, 0.0) == 1


class TestDrainTracker:
    def test_rate_over_window(self):
        from repro.serving.metrics import DrainTracker

        clock = FakeClock()
        tracker = DrainTracker(window_s=10.0, clock=clock)
        for _ in range(20):
            clock.advance(0.5)
            tracker.mark()
        assert tracker.rate() == pytest.approx(20 / 9.5, rel=0.01)

    def test_stale_marks_age_out(self):
        from repro.serving.metrics import DrainTracker

        clock = FakeClock()
        tracker = DrainTracker(window_s=10.0, clock=clock)
        tracker.mark()
        clock.advance(60.0)
        assert tracker.rate() == 0.0

    def test_empty_tracker(self):
        from repro.serving.metrics import DrainTracker

        assert DrainTracker().rate() == 0.0
