"""Fault injector: deterministic schedules, parsing, artifact corruption."""

import pytest

from repro.runtime import ArtifactError, Session
from repro.serving.errors import InjectedFaultError
from repro.serving.faults import FaultInjector, FaultSpec, corrupt_artifact


class TestSchedules:
    def test_every_n_fires_on_exact_counts(self):
        inj = FaultInjector([FaultSpec("kernel", every=3)])
        fired = [inj.fire("kernel") is not None for _ in range(9)]
        assert fired == [False, False, True] * 3

    def test_offset_shifts_the_phase(self):
        inj = FaultInjector([FaultSpec("kernel", every=3, offset=1)])
        fired = [inj.fire("kernel") is not None for _ in range(6)]
        assert fired == [True, False, False, True, False, False]

    def test_limit_caps_total_fires(self):
        inj = FaultInjector([FaultSpec("kernel", every=1, limit=2)])
        fired = [inj.fire("kernel") is not None for _ in range(5)]
        assert fired == [True, True, False, False, False]

    def test_rate_is_seed_deterministic(self):
        a = FaultInjector([FaultSpec("slow", rate=0.5)], seed=7)
        b = FaultInjector([FaultSpec("slow", rate=0.5)], seed=7)
        seq_a = [a.fire("slow") is not None for _ in range(50)]
        seq_b = [b.fire("slow") is not None for _ in range(50)]
        assert seq_a == seq_b and any(seq_a) and not all(seq_a)

    def test_unconfigured_kind_never_fires(self):
        inj = FaultInjector([FaultSpec("kernel", every=1)])
        assert inj.fire("slow") is None
        assert not FaultInjector()

    def test_duplicate_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector([FaultSpec("kernel", every=1),
                           FaultSpec("kernel", every=2)])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("gremlins", every=1)


class TestApplyBatchFaults:
    def test_kernel_fault_raises_injected_error(self):
        inj = FaultInjector([FaultSpec("kernel", every=1)])
        with pytest.raises(InjectedFaultError):
            inj.apply_batch_faults()

    def test_slow_fault_sleeps_the_configured_delay(self):
        inj = FaultInjector([FaultSpec("slow", every=1, delay=0.25)])
        slept = []
        inj.apply_batch_faults(sleep=slept.append)
        assert slept == [0.25]

    def test_summary_reports_events_and_fires(self):
        inj = FaultInjector([FaultSpec("kernel", every=2)])
        inj.fire("kernel")
        inj.fire("kernel")
        assert inj.summary() == {"kernel": {"events": 2, "fires": 1}}


class TestParse:
    def test_parse_round_trip(self):
        inj = FaultInjector.parse(
            "kernel:every=7;slow:every=5,delay=0.05;malformed:rate=0.1,limit=3"
        )
        assert inj.specs["kernel"] == FaultSpec("kernel", every=7)
        assert inj.specs["slow"] == FaultSpec("slow", every=5, delay=0.05)
        assert inj.specs["malformed"] == FaultSpec("malformed", rate=0.1, limit=3)

    @pytest.mark.parametrize("text", [
        "gremlins:every=1",       # unknown kind
        "kernel:whatever=1",      # unknown argument
        "kernel:every",           # not key=value
        "kernel:rate=2.0",        # out of range
    ])
    def test_parse_rejects_bad_specs(self, text):
        with pytest.raises(ValueError):
            FaultInjector.parse(text)


class TestCorruptArtifact:
    def test_corrupt_copy_fails_the_crc_pass(self, tmp_path, tiny_session):
        src = tiny_session.save(tmp_path / "good.artifact")
        bad = corrupt_artifact(src, tmp_path / "bad.artifact")
        with pytest.raises(ArtifactError, match="CRC32"):
            Session.load(bad)
        # The original is untouched and still loads.
        Session.load(src)
