"""Chaos suite: the server under every injected fault class.

Each scenario boots a real server on an ephemeral port, injects one
fault class at a deterministic rate, talks to it over real sockets, and
asserts three things: the server stays live, every request is answered
*per policy* (the status table in ``repro/serving/server.py``), and
shutdown is clean.  No mocking below the HTTP surface — the batcher,
engine, executor thread, watchdog and breaker all run for real.
"""

import asyncio

import numpy as np
import pytest

from repro.serving import (
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    ServerOptions,
    ServingServer,
    predict,
    raw_request,
    request_json,
)
from repro.serving.policies import BreakerState

BASE = ServerOptions(
    port=0,
    max_batch=4,
    max_wait_ms=5.0,
    retry=RetryPolicy(attempts=2, base_delay_s=0.01, max_delay_s=0.05),
    circuit_reset_s=0.3,
)


def run_scenario(tiny_session, options, faults, scenario):
    """Boot server -> run the async scenario -> clean stop, in one loop."""

    async def _main():
        server = ServingServer(tiny_session, options, faults=faults)
        host, port = await server.start()
        try:
            await scenario(server, host, port)
        finally:
            await server.stop()
        # Clean shutdown: nothing pending, engine refuses further work.
        assert len(server.batcher) == 0
        with pytest.raises(Exception):
            await server.engine.run_batch(np.zeros((1, 3, 32, 32)))

    asyncio.run(_main())


async def alive(host, port, image):
    """The liveness probe every scenario ends with: a normal request
    still gets a normal answer."""
    status, body = await predict(host, port, image)
    assert status == 200 and "prediction" in body


class TestHappyPath:
    def test_concurrent_requests_are_microbatched(self, tiny_session, image):
        async def scenario(server, host, port):
            results = await asyncio.gather(
                *[predict(host, port, image) for _ in range(10)]
            )
            assert [s for s, _ in results] == [200] * 10
            # Tiling happened: fewer batches than requests.
            assert 1 <= server.stats.batches < 10
            assert server.stats.batched_images == 10
            st, stats = await request_json(host, port, "GET", "/stats")
            assert st == 200 and stats["requests"]["completed"] == 10

        run_scenario(tiny_session, BASE, None, scenario)

    def test_healthz_reports_ok(self, tiny_session, image):
        async def scenario(server, host, port):
            st, body = await request_json(host, port, "GET", "/healthz")
            assert st == 200 and body["status"] == "ok"
            assert body["startup"]["ok"] is True

        run_scenario(tiny_session, BASE, None, scenario)


class TestKernelFaults:
    def test_transient_kernel_fault_is_retried_away(self, tiny_session, image):
        async def scenario(server, host, port):
            status, body = await predict(host, port, image)
            assert status == 200
            assert server.stats.retries >= 1
            await alive(host, port, image)

        run_scenario(
            tiny_session, BASE,
            FaultInjector([FaultSpec("kernel", every=1, limit=1)]), scenario,
        )

    def test_persistent_failures_open_the_circuit_then_recover(
            self, tiny_session, image, wait_until):
        options = BASE.replace(
            max_batch=2, circuit_threshold=2, degrade=False,
            retry=RetryPolicy(attempts=0),
        )
        # Fails the first 2 batches (opening the circuit), then heals.
        faults = FaultInjector([FaultSpec("kernel", every=1, limit=2)])

        async def scenario(server, host, port):
            results = await asyncio.gather(
                *[predict(host, port, image, deadline_ms=0) for _ in range(8)]
            )
            statuses = [s for s, _ in results]
            assert statuses.count(500) >= 2          # failed batches
            assert server.stats.breaker_opens == 1
            # While open: shed at admission with Retry-After, healthz degraded.
            if server.engine.breaker.state is BreakerState.OPEN:
                status, body = await predict(host, port, image)
                assert status == 503 and body["error"] == "CircuitOpenError"
                st, health = await request_json(host, port, "GET", "/healthz")
                assert st == 503 and health["status"] == "degraded"
            # After the reset window the half-open probe succeeds and
            # the tier recovers on its own.  Deadline-based wait: the
            # breaker leaves OPEN by its own clock, whenever the loaded
            # runner gets around to it.
            await wait_until(
                lambda: server.engine.breaker.state is not BreakerState.OPEN,
                desc="circuit breaker never left OPEN",
            )
            status, _ = await predict(host, port, image)
            assert status == 200
            assert server.engine.breaker.state is BreakerState.CLOSED

        run_scenario(tiny_session, options, faults, scenario)


class TestPoisonedBatch:
    def test_degradation_quarantines_only_the_poisoner(self, tiny_session, image):
        options = BASE.replace(max_wait_ms=30.0,
                               retry=RetryPolicy(attempts=1, base_delay_s=0.01))
        faults = FaultInjector([FaultSpec("poison", every=4)])  # 4th admit

        async def scenario(server, host, port):
            results = await asyncio.gather(
                *[predict(host, port, image, deadline_ms=0) for _ in range(4)]
            )
            statuses = sorted(s for s, _ in results)
            assert statuses == [200, 200, 200, 500]
            assert server.stats.degraded_batches == 1
            assert server.stats.quarantined == 1
            # The tile failure did not open the circuit: innocents served.
            assert server.engine.breaker.state is BreakerState.CLOSED
            await alive(host, port, image)

        run_scenario(tiny_session, options, faults, scenario)

    def test_without_degradation_the_whole_tile_fails(self, tiny_session, image):
        options = BASE.replace(max_wait_ms=30.0, degrade=False,
                               retry=RetryPolicy(attempts=0))
        faults = FaultInjector([FaultSpec("poison", every=4)])

        async def scenario(server, host, port):
            results = await asyncio.gather(
                *[predict(host, port, image, deadline_ms=0) for _ in range(4)]
            )
            assert [s for s, _ in results] == [500] * 4
            await alive(host, port, image)

        run_scenario(tiny_session, options, faults, scenario)


class TestHungBatch:
    def test_watchdog_abandons_the_batch_and_replaces_the_executor(
            self, tiny_session, image):
        options = BASE.replace(batch_timeout_s=0.25,
                               retry=RetryPolicy(attempts=1, base_delay_s=0.01))
        faults = FaultInjector([FaultSpec("hang", every=1, limit=1, delay=10.0)])

        async def scenario(server, host, port):
            status, _ = await predict(host, port, image, deadline_ms=0)
            assert status == 200                      # retry on fresh thread
            assert server.stats.hung_batches == 1
            await alive(host, port, image)

        run_scenario(tiny_session, options, faults, scenario)


class TestMalformedPayloads:
    @pytest.mark.parametrize("payload", [
        {"input": [[1.0, 2.0], [3.0, 4.0]]},              # wrong rank
        {"input": [[["x"] * 32] * 32] * 3},               # non-numeric
        {"wrong_key": 1},                                 # missing input
        {"input": [[[float("nan")] * 32] * 32] * 3},      # non-finite
    ])
    def test_bad_json_payloads_get_400(self, tiny_session, image, payload):
        async def scenario(server, host, port):
            status, body = await request_json(
                host, port, "POST", "/v1/predict", payload
            )
            assert status == 400
            assert body["error"] in ("MalformedRequestError",)
            assert server.stats.malformed >= 1
            await alive(host, port, image)

        run_scenario(tiny_session, BASE, None, scenario)

    def test_non_json_body_and_garbage_http(self, tiny_session, image):
        async def scenario(server, host, port):
            status, _, _ = await raw_request(
                host, port,
                b"POST /v1/predict HTTP/1.1\r\nContent-Length: 7\r\n\r\nnotjson",
            )
            assert status == 400
            status, _, _ = await raw_request(host, port, b"complete garbage\r\n")
            assert status == 400
            status, body = await predict(host, port, image,
                                         deadline_ms="not-a-number")
            assert status == 400
            await alive(host, port, image)

        run_scenario(tiny_session, BASE, None, scenario)

    def test_unknown_route_and_method(self, tiny_session):
        async def scenario(server, host, port):
            status, _ = await request_json(host, port, "GET", "/nope")
            assert status == 404
            status, _ = await request_json(host, port, "GET", "/v1/predict")
            assert status == 405

        run_scenario(tiny_session, BASE, None, scenario)


class TestBackpressure:
    def test_queue_overflow_sheds_with_503(self, tiny_session, image):
        options = BASE.replace(max_batch=2, queue_depth=3)
        faults = FaultInjector([FaultSpec("slow", every=1, limit=2, delay=0.1)])

        async def scenario(server, host, port):
            results = await asyncio.gather(
                *[predict(host, port, image) for _ in range(12)]
            )
            statuses = [s for s, _ in results]
            assert statuses.count(503) >= 1
            assert statuses.count(200) >= 1
            assert server.stats.shed_queue >= 1
            shed = next(b for s, b in results if s == 503)
            assert shed["error"] == "QueueFullError"
            await alive(host, port, image)

        run_scenario(tiny_session, options, faults, scenario)

    def test_injected_queue_overflow_sheds_deterministically(
            self, tiny_session, image):
        faults = FaultInjector([FaultSpec("queue-overflow", every=3)])

        async def scenario(server, host, port):
            statuses = []
            for _ in range(6):
                status, _ = await predict(host, port, image)
                statuses.append(status)
            assert statuses == [200, 200, 503, 200, 200, 503]

        run_scenario(tiny_session, BASE, faults, scenario)


class TestDeadlines:
    def test_expired_requests_dropped_before_the_engine(self, tiny_session, image):
        # Batch 1 is slow; everything queued behind it expires and must
        # be answered 504 without ever being batched.
        options = BASE.replace(max_batch=1, max_wait_ms=0.0)
        faults = FaultInjector([FaultSpec("slow", every=1, limit=1, delay=0.2)])

        async def scenario(server, host, port):
            results = await asyncio.gather(
                *[predict(host, port, image, deadline_ms=80) for _ in range(6)]
            )
            statuses = [s for s, _ in results]
            assert statuses.count(504) >= 1
            assert server.stats.deadline_dropped == statuses.count(504)
            # Engine only saw what was served, never the dropped ones.
            assert server.stats.batched_images == statuses.count(200)
            await alive(host, port, image)

        run_scenario(tiny_session, options, faults, scenario)


class TestShutdown:
    def test_pending_requests_fail_fast_on_stop(self, tiny_session, image,
                                                wait_until):
        options = BASE.replace(max_batch=1, max_wait_ms=0.0)
        faults = FaultInjector([FaultSpec("slow", every=1, limit=1, delay=0.3)])

        async def scenario():
            server = ServingServer(tiny_session, options, faults=faults)
            host, port = await server.start()
            tasks = [asyncio.create_task(predict(host, port, image, deadline_ms=0))
                     for _ in range(5)]
            # Event-based wait: stop once the first (slowed) batch is
            # actually inside the engine, not after a guessed sleep.
            await wait_until(lambda: server.stats.batches >= 1,
                             desc="first batch never reached the engine")
            await server.stop()
            results = await asyncio.gather(*tasks, return_exceptions=True)
            statuses = [r[0] for r in results if isinstance(r, tuple)]
            assert statuses and all(s in (200, 503) for s in statuses)
            assert server.stats.shed_shutdown >= 1
            # Stopped server refuses connections.
            with pytest.raises(OSError):
                await predict(host, port, image, timeout=1.0)

        asyncio.run(scenario())


class TestWorkerCrash:
    """The ``--workers N`` pool backend under injected SIGKILLs.

    These scenarios boot a real 2-worker process pool over the saved
    tiny artifact; the ``worker-kill`` fault SIGKILLs a worker right
    after a batch is handed to it, mid-flight.  What must hold: the
    dispatcher respawns the dead worker, the batch retries (or fails,
    when every retry budget is zero) per policy, and the restart is
    visible through ``/healthz`` and ``/stats``.
    """

    def run_pooled(self, tiny_session, tiny_artifact, options, faults,
                   scenario):
        async def _main():
            server = ServingServer(tiny_session, options, faults=faults,
                                   artifact_path=tiny_artifact)
            host, port = await server.start()
            assert server.engine.pool is not None
            assert server.engine.concurrency == options.workers
            try:
                await scenario(server, host, port)
            finally:
                await server.stop()
            assert server.engine.pool is None  # pool released on stop

        asyncio.run(_main())

    def test_killed_worker_respawns_and_requests_retry(
            self, tiny_session, tiny_artifact, image):
        options = BASE.replace(workers=2, worker_retries=2)
        # SIGKILL a worker on the 2nd dispatched task (how many tasks
        # are dispatched in total depends on microbatch tiling, so the
        # schedule pins only the first kill and the counters are
        # asserted as >= — the *policy* outcome, all-200, is exact).
        faults = FaultInjector([FaultSpec("worker-kill", every=2, limit=2)])

        async def scenario(server, host, port):
            results = await asyncio.gather(
                *[predict(host, port, image, deadline_ms=0,
                          timeout=60.0) for _ in range(10)]
            )
            assert [s for s, _ in results] == [200] * 10
            pool = server.engine.pool
            assert pool.kills >= 1
            assert pool.restarts >= 1
            assert pool.alive_workers() == 2
            st, health = await request_json(host, port, "GET", "/healthz")
            assert st == 200
            assert health["workers"]["configured"] == 2
            assert health["workers"]["alive"] == 2
            assert health["workers"]["restarts"] >= 1
            st, stats = await request_json(host, port, "GET", "/stats")
            assert st == 200
            assert stats["pool"]["restarts"] == pool.restarts >= 1
            assert stats["pool"]["kills"] == pool.kills
            assert stats["faults"]["worker-kill"]["fires"] == pool.kills

        self.run_pooled(tiny_session, tiny_artifact, options, faults, scenario)

    def test_exhausted_retry_budget_fails_the_batch_then_recovers(
            self, tiny_session, tiny_artifact, image):
        # Zero retry budget everywhere: the one killed batch must fail
        # with a 500 — and the tier must still heal for the next request.
        options = BASE.replace(workers=2, worker_retries=0, degrade=False,
                               retry=RetryPolicy(attempts=0))
        faults = FaultInjector([FaultSpec("worker-kill", every=1, limit=1)])

        async def scenario(server, host, port):
            status, body = await predict(host, port, image, deadline_ms=0,
                                         timeout=60.0)
            assert status == 500
            assert body["error"] == "BatchExecutionError"
            assert "WorkerCrashedError" in body["detail"]
            # The slot respawned: the very next request is served.
            status, _ = await predict(host, port, image, deadline_ms=0,
                                      timeout=60.0)
            assert status == 200
            assert server.engine.pool.restarts >= 1
            assert server.engine.pool.alive_workers() == 2

        self.run_pooled(tiny_session, tiny_artifact, options, faults, scenario)

    def test_pooled_happy_path_is_concurrent_and_correct(
            self, tiny_session, tiny_artifact, image):
        """No faults: the pooled backend answers exactly like the
        in-process one (bit-identical logits ⇒ identical predictions)."""
        options = BASE.replace(workers=2)

        async def scenario(server, host, port):
            results = await asyncio.gather(
                *[predict(host, port, image, deadline_ms=0,
                          timeout=60.0) for _ in range(12)]
            )
            assert [s for s, _ in results] == [200] * 12
            expected = int(np.argmax(tiny_session.run(image[None]), axis=1)[0])
            assert {b["prediction"] for _, b in results} == {expected}
            st, stats = await request_json(host, port, "GET", "/stats")
            assert stats["pool"]["served"] >= 1
            assert stats["pool"]["alive"] == 2

        self.run_pooled(tiny_session, tiny_artifact, options, None, scenario)
