"""Command line interface (repro-mcu)."""


import pytest

from repro import cli
from repro.core.policy import QuantPolicy


class TestSearchCommand:
    def test_search_prints_policy_and_memory(self, capsys):
        rc = cli.main(["search", "--resolution", "192", "--width", "0.5",
                       "--device", "stm32h7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "policy for mobilenet_v1_192_0.5" in out
        assert "read-only" in out and "feasible  : True" in out

    def test_search_writes_policy_json(self, tmp_path, capsys):
        path = tmp_path / "policy.json"
        rc = cli.main(["search", "--resolution", "224", "--width", "0.75",
                       "--output", str(path)])
        assert rc == 0
        policy = QuantPolicy.from_json(path.read_text())
        assert len(policy) == 28
        policy.validate()

    def test_search_infeasible_budget_returns_nonzero(self, capsys):
        rc = cli.main(["search", "--resolution", "224", "--width", "1.0",
                       "--flash-mb", "0.1", "--ram-kb", "16"])
        assert rc == 1

    def test_search_method_option(self, capsys):
        rc = cli.main(["search", "--resolution", "192", "--width", "0.5",
                       "--method", "PL+ICN"])
        out = capsys.readouterr().out
        assert rc == 0 and "[PL+ICN]" in out


class TestDeployCommand:
    def test_deploy_report(self, capsys):
        rc = cli.main(["deploy", "--resolution", "224", "--width", "0.75"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "STM32H743" in out and "predicted Top-1" in out

    def test_deploy_with_saved_policy(self, tmp_path, capsys):
        path = tmp_path / "p.json"
        cli.main(["search", "--resolution", "128", "--width", "0.25",
                  "--output", str(path)])
        capsys.readouterr()
        rc = cli.main(["deploy", "--resolution", "128", "--width", "0.25",
                       "--policy", str(path)])
        assert rc == 0

    def test_deploy_budget_override(self, capsys):
        rc = cli.main(["deploy", "--resolution", "224", "--width", "1.0",
                       "--device", "stm32l4"])
        # 224_1.0 cannot fit an STM32L4 even at 2 bit.
        assert rc == 1


class TestSweepAndTable:
    def test_sweep_lists_configs(self, capsys):
        rc = cli.main(["sweep", "--device", "stm32h7"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "128_0.25" in out and "Pareto frontier" in out

    def test_sweep_all_methods(self, capsys):
        rc = cli.main(["sweep", "--all-methods"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "MixQ-PL" in out and "MixQ-PC-ICN" in out

    @pytest.mark.parametrize("name", ["table1", "table2", "table3", "table4"])
    def test_tables_render(self, capsys, name):
        rc = cli.main(["table", name])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table" in out and "|" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["frobnicate"])


class TestRunCommand:
    """deploy --save-artifact -> run: the CLI serve round trip."""

    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.artifact"
        rc = cli.main(["deploy", "--resolution", "128", "--width", "0.25",
                       "--save-artifact", str(path)])
        assert rc == 0
        return path

    def test_deploy_saves_loadable_artifact(self, artifact, capsys):
        from repro.runtime import Session

        session = Session.load(artifact)
        assert session.options.input_hw == (128, 128)

    def test_run_serves_synthetic_batch(self, artifact, capsys):
        rc = cli.main(["run", str(artifact), "--batch", "2"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "predictions:" in out and "imgs/sec" in out
        assert "activation arena" in out

    def test_run_profile_breakdown(self, artifact, capsys):
        rc = cli.main(["run", str(artifact), "--profile", "--repeats", "1"])
        out = capsys.readouterr().out
        assert rc == 0 and "session profile" in out

    def test_run_npy_input(self, artifact, tmp_path, capsys):
        import numpy as np

        x = np.random.default_rng(0).uniform(0, 1, size=(3, 3, 32, 32))
        np.save(tmp_path / "batch.npy", x)
        rc = cli.main(["run", str(artifact), "--input", str(tmp_path / "batch.npy")])
        out = capsys.readouterr().out
        assert rc == 0 and "ran 3 image(s)" in out

    def test_run_rejects_non_nchw_input(self, artifact, tmp_path, capsys):
        import numpy as np

        np.save(tmp_path / "bad.npy", np.zeros((3, 32, 32)))
        rc = cli.main(["run", str(artifact), "--input", str(tmp_path / "bad.npy")])
        assert rc == 2


class TestArtifactErrorReporting:
    """Satellite contract: missing/corrupt artifacts exit nonzero with a
    one-line ``error:`` message, never a traceback."""

    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli-err") / "model.artifact"
        rc = cli.main(["deploy", "--resolution", "128", "--width", "0.25",
                       "--save-artifact", str(path)])
        assert rc == 0
        return path

    def _assert_one_line_error(self, capsys, rc):
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error: ")
        assert err.count("\n") == 1 and "Traceback" not in err

    def test_run_missing_artifact(self, capsys):
        rc = cli.main(["run", "/nonexistent/model.artifact"])
        self._assert_one_line_error(capsys, rc)

    def test_serve_missing_artifact(self, capsys):
        rc = cli.main(["serve", "/nonexistent/model.artifact"])
        self._assert_one_line_error(capsys, rc)

    def test_run_corrupt_artifact(self, artifact, tmp_path, capsys):
        from repro.serving.faults import corrupt_artifact

        bad = corrupt_artifact(artifact, tmp_path / "bad.artifact")
        rc = cli.main(["run", str(bad)])
        err = capsys.readouterr().err
        assert rc == 2
        assert err.startswith("error: ") and "CRC32" in err
        assert "Traceback" not in err

    def test_run_partial_artifact(self, artifact, tmp_path, capsys):
        import shutil

        partial = tmp_path / "partial.artifact"
        shutil.copytree(artifact, partial)
        (partial / "blobs.bin").unlink()
        rc = cli.main(["run", str(partial)])
        self._assert_one_line_error(capsys, rc)

    def test_serve_rejects_bad_fault_spec(self, artifact, capsys):
        with pytest.raises(SystemExit):
            cli.main(["serve", str(artifact), "--inject", "gremlins:every=1"])


class TestServeCommand:
    def test_serve_ttl_boots_and_exits_cleanly(self, tmp_path, capsys):
        path = tmp_path / "model.artifact"
        assert cli.main(["deploy", "--resolution", "128", "--width", "0.25",
                         "--save-artifact", str(path)]) == 0
        capsys.readouterr()
        rc = cli.main(["serve", str(path), "--port", "0", "--ttl", "0.2",
                       "--inject", "kernel:every=100"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "serving on" in out
