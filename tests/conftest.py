"""Shared fixtures: synthetic datasets, small models and a trained
fake-quantized model reused across integration tests."""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

import repro

# Hypothesis effort profiles, selected via HYPOTHESIS_PROFILE (CI runs
# "fast" on pull requests and "thorough" on pushes to main).  Tests that
# pin their own @settings(max_examples=...) override the profile.
settings.register_profile("fast", max_examples=25, deadline=None)
settings.register_profile("thorough", max_examples=200, deadline=None)
settings.register_profile("default", max_examples=50, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))
from repro.core.policy import QuantMethod, QuantPolicy
from repro.data import make_synthetic_classification
from repro.training import QATConfig, QATTrainer, TrainConfig, Trainer, prepare_qat


@pytest.fixture(scope="session")
def small_dataset():
    """A small, easy synthetic classification task (5 classes, 16x16)."""
    return make_synthetic_classification(
        num_classes=5, resolution=16, train_per_class=40, test_per_class=12, seed=1
    )


@pytest.fixture(scope="session")
def pretrained_tiny_model(small_dataset):
    """A tiny MobileNet-style model trained in full precision."""
    model = repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5, seed=0)
    trainer = Trainer(model, TrainConfig(epochs=4, batch_size=32, lr=3e-3, seed=0))
    result = trainer.fit(small_dataset)
    model.eval()
    return model, result


def _clone_pretrained(small_dataset, seed: int = 0):
    """Re-train the same tiny model (weights are deterministic given seed)."""
    model = repro.build_tiny_mobilenet(resolution=16, width=8, num_classes=5, seed=seed)
    Trainer(model, TrainConfig(epochs=4, batch_size=32, lr=3e-3, seed=seed)).fit(small_dataset)
    return model


@pytest.fixture(scope="session")
def qat_pc_icn_model(small_dataset):
    """A QAT-trained (PC, 8-bit) model ready for ICN conversion."""
    model = _clone_pretrained(small_dataset)
    policy = QuantPolicy.uniform(model.spec, method=QuantMethod.PC_ICN, bits=8)
    prepare_qat(model, policy, calibration_data=small_dataset.x_train[:64])
    QATTrainer(model, QATConfig(epochs=3, batch_size=32, lr=1e-3, lr_schedule={2: 5e-4})).fit(
        small_dataset
    )
    model.eval()
    return model


@pytest.fixture(scope="session")
def qat_pc_icn_4bit_model(small_dataset):
    """A QAT-trained per-channel 4-bit model (weights and activations)."""
    model = _clone_pretrained(small_dataset)
    policy = QuantPolicy.uniform(model.spec, method=QuantMethod.PC_ICN, bits=4)
    prepare_qat(model, policy, calibration_data=small_dataset.x_train[:64])
    QATTrainer(model, QATConfig(epochs=3, batch_size=32, lr=1e-3, lr_schedule={2: 5e-4})).fit(
        small_dataset
    )
    model.eval()
    return model


@pytest.fixture
def rng():
    return np.random.default_rng(1234)
