"""Instantiable models: MobileNetV1 and the small testbed networks."""

import numpy as np

import repro
from repro import nn
from repro.models.mobilenet_v1 import ConvBNBlock, build_mobilenet_v1


class TestMobileNetV1:
    def test_small_config_forward_shape(self, rng):
        model = build_mobilenet_v1(resolution=32, width_multiplier=0.25, num_classes=10)
        # resolution 32 is not a paper config but is valid (multiple of 32)
        x = rng.normal(size=(2, 3, 32, 32))
        logits = model(x)
        assert logits.shape == (2, 10)

    def test_backward_produces_gradients(self, rng):
        model = build_mobilenet_v1(resolution=32, width_multiplier=0.25, num_classes=5)
        x = rng.normal(size=(2, 3, 32, 32))
        logits = model(x)
        model.backward(np.ones_like(logits))
        grads = [np.abs(p.grad).sum() for p in model.parameters() if p.requires_grad]
        assert sum(g > 0 for g in grads) > len(grads) // 2

    def test_block_count_matches_spec(self):
        model = build_mobilenet_v1(resolution=32, width_multiplier=0.25, num_classes=5)
        assert len(model.conv_blocks()) == len(model.spec) - 1

    def test_blocks_are_conv_bn_blocks(self):
        model = build_mobilenet_v1(resolution=32, width_multiplier=0.25, num_classes=5)
        assert all(isinstance(b, ConvBNBlock) for b in model.conv_blocks())

    def test_classifier_matches_spec(self):
        model = build_mobilenet_v1(resolution=32, width_multiplier=0.5, num_classes=7)
        assert model.classifier.out_features == 7
        assert model.classifier.in_features == model.spec.layers[-1].in_channels

    def test_deterministic_given_seed(self, rng):
        m1 = build_mobilenet_v1(resolution=32, width_multiplier=0.25, num_classes=5, seed=3)
        m2 = build_mobilenet_v1(resolution=32, width_multiplier=0.25, num_classes=5, seed=3)
        x = rng.normal(size=(1, 3, 32, 32))
        assert np.allclose(m1(x), m2(x))


class TestSmallModels:
    def test_small_cnn_forward(self, rng):
        model = repro.build_small_cnn(resolution=16, channels=8, num_classes=4)
        y = model(rng.normal(size=(3, 3, 16, 16)))
        assert y.shape == (3, 4)

    def test_tiny_mobilenet_forward(self, rng):
        model = repro.build_tiny_mobilenet(resolution=32, width=8, num_classes=6)
        y = model(rng.normal(size=(2, 3, 32, 32)))
        assert y.shape == (2, 6)

    def test_tiny_mobilenet_spec_consistency(self):
        model = repro.build_tiny_mobilenet(resolution=32, width=8, num_classes=6)
        assert len(model.conv_blocks()) == len(model.spec) - 1
        kinds = [l.kind for l in model.spec.layers]
        assert "dw" in kinds and "pw" in kinds and kinds[-1] == "fc"

    def test_tiny_mobilenet_uses_depthwise_layers(self):
        model = repro.build_tiny_mobilenet(resolution=32, width=8, num_classes=6)
        convs = [b.conv for b in model.conv_blocks()]
        assert any(isinstance(c, nn.DepthwiseConv2d) for c in convs)

    def test_small_cnn_backward(self, rng):
        model = repro.build_small_cnn(resolution=16, channels=8, num_classes=4)
        y = model(rng.normal(size=(2, 3, 16, 16)))
        gx = model.backward(np.ones_like(y))
        assert gx.shape == (2, 3, 16, 16)
