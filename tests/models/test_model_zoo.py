"""Architecture specs: layer shapes, MAC/parameter counts of the family."""

import pytest

from repro.models.model_zoo import (
    MOBILENET_RESOLUTIONS,
    MOBILENET_WIDTH_MULTIPLIERS,
    all_mobilenet_configs,
    mobilenet_v1_spec,
)


class TestMobileNetSpec:
    def test_layer_count(self):
        spec = mobilenet_v1_spec(224, 1.0)
        # 1 full conv + 13 (dw + pw) + 1 fc = 28 quantized layers.
        assert len(spec) == 28

    def test_label(self):
        assert mobilenet_v1_spec(192, 0.5).label == "192_0.5"
        assert mobilenet_v1_spec(224, 1.0).label == "224_1.0"
        assert mobilenet_v1_spec(224, 0.25).label == "224_0.25"

    def test_parameter_count_224_1_0(self):
        """MobileNetV1 1.0 has ~4.2 M parameters (conv + fc weights)."""
        spec = mobilenet_v1_spec(224, 1.0)
        assert 4.0e6 < spec.total_weights < 4.4e6

    def test_mac_count_224_1_0(self):
        """~569 M multiply-accumulates for 224x224 width 1.0."""
        spec = mobilenet_v1_spec(224, 1.0)
        assert 540e6 < spec.total_macs < 600e6

    def test_mac_count_scales_with_resolution(self):
        base = mobilenet_v1_spec(224, 1.0).total_macs
        small = mobilenet_v1_spec(128, 1.0).total_macs
        ratio = base / small
        assert 2.5 < ratio < 3.5  # (224/128)^2 ≈ 3.06

    def test_channel_scaling(self):
        spec = mobilenet_v1_spec(224, 0.5)
        assert spec.layers[0].out_channels == 16
        assert spec.layers[-1].in_channels == 512

    def test_minimum_channels_floor(self):
        spec = mobilenet_v1_spec(128, 0.25)
        assert all(l.out_channels >= 8 for l in spec.layers[:-1])

    def test_spatial_sizes_chain(self):
        spec = mobilenet_v1_spec(224, 1.0)
        for prev, nxt in zip(spec.layers[:-2], spec.layers[1:-1]):
            assert prev.out_h == nxt.in_h
            assert prev.out_channels == nxt.in_channels

    def test_first_layer_stride_two(self):
        spec = mobilenet_v1_spec(224, 1.0)
        l0 = spec.layers[0]
        assert l0.kind == "conv" and l0.stride == 2 and l0.out_h == 112

    def test_fc_layer_shape(self):
        spec = mobilenet_v1_spec(224, 1.0, num_classes=1000)
        fc = spec.layers[-1]
        assert fc.kind == "fc" and fc.out_channels == 1000 and fc.in_channels == 1024

    def test_invalid_resolution_rejected(self):
        with pytest.raises(ValueError):
            mobilenet_v1_spec(100, 1.0)

    def test_weight_counts_by_kind(self):
        spec = mobilenet_v1_spec(224, 1.0)
        dw = spec.layers[1]
        assert dw.kind == "dw"
        assert dw.weight_count == dw.out_channels * 9
        pw = spec.layers[2]
        assert pw.kind == "pw"
        assert pw.weight_count == pw.out_channels * pw.in_channels

    def test_im2col_patch(self):
        spec = mobilenet_v1_spec(224, 1.0)
        assert spec.layers[0].im2col_patch == 3 * 9
        assert spec.layers[1].im2col_patch == 9
        assert spec.layers[-1].im2col_patch == 1024


class TestAllConfigs:
    def test_sixteen_configurations(self):
        configs = all_mobilenet_configs()
        assert len(configs) == len(MOBILENET_RESOLUTIONS) * len(MOBILENET_WIDTH_MULTIPLIERS)
        labels = {c.label for c in configs}
        assert len(labels) == 16

    def test_macs_monotone_in_width(self):
        for res in MOBILENET_RESOLUTIONS:
            macs = [mobilenet_v1_spec(res, wm).total_macs for wm in MOBILENET_WIDTH_MULTIPLIERS]
            assert macs == sorted(macs)

    def test_weights_independent_of_resolution(self):
        w224 = mobilenet_v1_spec(224, 0.5).total_weights
        w128 = mobilenet_v1_spec(128, 0.5).total_weights
        assert w224 == w128
